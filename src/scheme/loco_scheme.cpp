// LOCO-style C-element self-resilient latch as a registered scheme
// (after arXiv 2512.19292): each flip-flop is replaced by a latch pair
// sampling D at t and t+δ into a 2-input Muller C-element keeper. While
// the two samples agree the keeper is transparent; a SET narrower than δ
// can corrupt at most one sample, so the keeper holds the previous state
// and the glitch is filtered inline — no detection event, no recompute
// bubble, but also no recovery once a pulse wider than δ corrupts both
// samples.
//
// ProtectionSite mapping for kProtectionPath strikes: kCwStarDff ≙ the
// C-element keeper state node (the scheme's single point of failure — an
// upset there IS the stored bit flipping); every other site ≙ one of the
// two sampling latches or the delay line, whose disagreement the keeper
// rides out.

#include <sstream>

#include "cell/calibration.hpp"
#include "cwsp/harden.hpp"
#include "cwsp/timing.hpp"
#include "scheme/scheme.hpp"
#include "sta/sta.hpp"

namespace cwsp::scheme {
namespace {

/// 2-input Muller C-element with keeper: 8 stack + 4 keeper devices.
constexpr double kCElementUnits = 12.0;
/// Active area per delay-line segment (POLY2 resistor + min inverter),
/// matching the CWSP calibration's 2 units per segment.
constexpr double kUnitsPerDelaySegment = 2.0;
/// C-element propagation once both samples agree.
constexpr double kCElementDelayPs = 30.0;

class LocoScheme final : public ProtectionScheme {
 public:
  const char* name() const override { return "loco"; }
  const char* description() const override {
    return "LOCO-style C-element self-resilient latch: dual time-offset "
           "sampling into a Muller C-element keeper (arXiv 2512.19292)";
  }

  /// Per protected FF: one shadow sampling latch, the C-element keeper
  /// and a δ delay line (same POLY2 ladder the CWSP δ element uses).
  /// The cycle stretches by δ (the late sample) plus the C-element.
  Characterization characterize(
      const Netlist& netlist,
      const core::ProtectionParams& params) const override {
    const auto sta = run_sta(netlist);
    const CellLibrary& lib = netlist.library();
    const double num_ffs =
        static_cast<double>(core::protected_ff_count(netlist));
    Characterization c;
    c.scheme = name();
    c.area_regular = netlist.total_area();
    const SquareMicrons per_ff =
        lib.regular_ff().area +
        cal::kUnitActiveArea *
            (kCElementUnits +
             kUnitsPerDelaySegment * static_cast<double>(params.segments_delta));
    c.area_hardened = c.area_regular + per_ff * num_ffs;
    c.period_regular = core::regular_clock_period(sta.dmax, lib);
    c.period_hardened =
        c.period_regular + params.delta + Picoseconds(kCElementDelayPs);
    c.max_glitch = params.delta;
    c.feasible = true;
    return c;
  }

  /// The keeper filters inline; no cycle is ever squashed.
  bool squash_at_strike(const Netlist& /*netlist*/,
                        const core::ProtectionParams& /*params*/,
                        const set::PlannedStrike& /*planned*/) const override {
    return false;
  }

  /// Sampling-latch and delay-line upsets produce disagreeing samples,
  /// which the keeper rides out. An upset of the keeper state itself is
  /// unrecoverable: the stored bit flips with no disagreement to detect.
  campaign::StrikeResult resolve_protection_path(
      const set::PlannedStrike& p, std::size_t cycles_per_run,
      Picoseconds /*clock_period*/) const override {
    campaign::StrikeResult r;
    r.index = p.index;
    r.status = campaign::StrikeStatus::kCovered;
    if (p.cycle < cycles_per_run &&
        p.site == set::ProtectionSite::kCwStarDff) {
      r.status = campaign::StrikeStatus::kEscape;
      r.diagnostic =
          "C-element keeper state flipped (no sample disagreement to hold "
          "on)";
    }
    return r;
  }

  /// Width <= δ: the two samples disagree only transiently, the keeper
  /// holds golden state — covered silently, zero timing penalty. Width
  /// > δ: both samples see the corrupted value, the keeper latches it;
  /// the strike escapes iff the corruption becomes architecturally
  /// visible in a later commit.
  campaign::StrikeResult resolve_functional(
      const set::PlannedStrike& p, const sim::LaneOutcome& o,
      bool /*squashed*/, std::size_t /*cycles_per_run*/,
      const core::ProtectionParams& params) const override {
    campaign::StrikeResult r;
    r.index = p.index;
    r.status = campaign::StrikeStatus::kCovered;
    r.unprotected_failed = o.latched_diff || o.aperture;
    if (!o.fired || !o.latched_diff) return r;
    if (p.strike.width > params.delta && o.silent_corruptions > 0) {
      r.status = campaign::StrikeStatus::kEscape;
      std::ostringstream os;
      os << o.silent_corruptions
         << " corrupted commit(s) outlived the C-element filter";
      r.diagnostic = os.str();
    }
    return r;
  }
};

}  // namespace

const ProtectionScheme& detail::loco_scheme() {
  static const LocoScheme scheme;
  return scheme;
}

}  // namespace cwsp::scheme
