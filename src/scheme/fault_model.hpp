#pragma once
// FaultModel registry: how strikes are generated, behind one interface.
//
// A fault model materialises the campaign plan — every strike enumerated
// up front with a stable index — so execution order (thread count, shard
// assignment, resume) cannot change what gets injected, whatever the
// model. Registered models:
//
//   * "single-set"     — one SET per run, as the paper evaluates;
//     delegates to set::build_strike_plan verbatim (plans and their
//     fingerprints are unchanged from the pre-registry planner).
//   * "double-set"     — charge-sharing double SETs: each functional
//     strike gains a simultaneous partner node drawn from the struck
//     net's layout-adjacency candidates (fanout gate outputs and fanin
//     siblings), per-strike deterministic via a partner RNG stream
//     decorrelated from the stimulus streams.
//   * "protection-seu" — SEUs inside the protection logic itself: the
//     plan's whole budget is spent on kProtectionPath strikes across
//     the §3.2 sites (per arXiv 2103.05106's SET→multi-SEU view, state
//     upsets in the hardening cells are first-class faults).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "set/strike_plan.hpp"

namespace cwsp::scheme {

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Registry key; stable, lower-case, appears in reports/fingerprints.
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual const char* description() const = 0;

  /// Deterministically materialises the campaign plan: same (netlist,
  /// options, seed) → identical plan at any jobs value and across
  /// shards.
  [[nodiscard]] virtual set::StrikePlan build_plan(
      const Netlist& netlist, const set::StrikePlanOptions& options,
      std::uint64_t seed) const = 0;
};

/// All registered fault models, in stable registration order
/// (single-set first).
[[nodiscard]] const std::vector<const FaultModel*>& registered_fault_models();

/// Lookup by name(); nullptr when unknown.
[[nodiscard]] const FaultModel* find_fault_model(std::string_view name);

/// The registry default: one SET per run.
[[nodiscard]] const FaultModel& default_fault_model();

/// "single-set, double-set, protection-seu" — for error messages.
[[nodiscard]] std::string known_fault_model_names();

/// Charge-sharing partner candidates of `node`: outputs of the gates the
/// net fans out to, plus the driving gate's other internally-driven
/// fanins — sorted and deduplicated, so partner choice is deterministic.
/// Exposed for the double-set model's tests.
[[nodiscard]] std::vector<NetId> adjacent_strike_sites(const Netlist& netlist,
                                                       NetId node);

}  // namespace cwsp::scheme
