#include "scheme/fault_model.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace cwsp::scheme {
namespace {

/// Salt separating the double-set partner streams from the stimulus
/// streams (Rng::stream(seed, index)), so adding a partner never
/// perturbs the inputs a strike is injected into.
constexpr std::uint64_t kPartnerStreamSalt = 0x9e3779b97f4a7c15ULL;

class SingleSetModel final : public FaultModel {
 public:
  const char* name() const override { return "single-set"; }
  const char* description() const override {
    return "one single-event transient per run (the paper's model)";
  }
  set::StrikePlan build_plan(const Netlist& netlist,
                             const set::StrikePlanOptions& options,
                             std::uint64_t seed) const override {
    return set::build_strike_plan(netlist, options, seed);
  }
};

class DoubleSetModel final : public FaultModel {
 public:
  const char* name() const override { return "double-set"; }
  const char* description() const override {
    return "charge-sharing double SET: each functional strike hits an "
           "adjacency-derived partner node simultaneously";
  }
  /// Extends the single-set plan in place: every functional-class strike
  /// draws a partner from its node's adjacency candidates through a
  /// per-strike RNG stream keyed by the plan index — deterministic at
  /// any jobs value, and shard-stable because shard_plan preserves the
  /// planned strikes verbatim. Nodes without neighbours stay
  /// single-node (nothing shares charge with an isolated site).
  set::StrikePlan build_plan(const Netlist& netlist,
                             const set::StrikePlanOptions& options,
                             std::uint64_t seed) const override {
    set::StrikePlan plan = set::build_strike_plan(netlist, options, seed);
    for (set::PlannedStrike& p : plan.strikes) {
      if (p.klass == set::StrikeClass::kProtectionPath) continue;
      const std::vector<NetId> candidates =
          adjacent_strike_sites(netlist, p.strike.node);
      if (candidates.empty()) continue;
      Rng rng = Rng::stream(seed ^ kPartnerStreamSalt, p.index);
      p.node2 = candidates[rng.next_below(candidates.size())];
    }
    return plan;
  }
};

class ProtectionSeuModel final : public FaultModel {
 public:
  const char* name() const override { return "protection-seu"; }
  const char* description() const override {
    return "state upsets inside the protection circuitry itself (the "
           "multi-SEU view of arXiv 2103.05106)";
  }
  /// Spends the plan's whole strike budget on kProtectionPath strikes
  /// across the §3.2 sites; the class mix of the incoming options
  /// determines only the total count, keeping `runs` comparable across
  /// models.
  set::StrikePlan build_plan(const Netlist& netlist,
                             const set::StrikePlanOptions& options,
                             std::uint64_t seed) const override {
    set::StrikePlanOptions seu = options;
    seu.protection_path_strikes =
        options.functional_strikes + options.protection_path_strikes +
        options.clock_edge_strikes + options.out_of_envelope_strikes;
    seu.functional_strikes = 0;
    seu.clock_edge_strikes = 0;
    seu.out_of_envelope_strikes = 0;
    return set::build_strike_plan(netlist, seu, seed);
  }
};

}  // namespace

std::vector<NetId> adjacent_strike_sites(const Netlist& netlist, NetId node) {
  std::vector<NetId> out;
  if (!node.valid()) return out;
  const Net& net = netlist.net(node);
  for (GateId gid : net.fanout_gates) {
    const NetId partner = netlist.gate(gid).output;
    if (partner != node) out.push_back(partner);
  }
  // The driving gate's other internally-driven fanins share its layout
  // neighbourhood; primary inputs are excluded (driven off-die).
  if (net.driver_kind == DriverKind::kGate) {
    for (NetId in : netlist.gate(GateId{net.driver_index}).inputs) {
      const DriverKind kind = netlist.net(in).driver_kind;
      if ((kind == DriverKind::kGate || kind == DriverKind::kFlipFlop) &&
          in != node) {
        out.push_back(in);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const std::vector<const FaultModel*>& registered_fault_models() {
  static const SingleSetModel single;
  static const DoubleSetModel double_set;
  static const ProtectionSeuModel seu;
  static const std::vector<const FaultModel*> models = {&single, &double_set,
                                                        &seu};
  return models;
}

const FaultModel* find_fault_model(std::string_view name) {
  for (const FaultModel* m : registered_fault_models()) {
    if (name == m->name()) return m;
  }
  return nullptr;
}

const FaultModel& default_fault_model() {
  return *registered_fault_models().front();
}

std::string known_fault_model_names() {
  std::string names;
  for (const FaultModel* m : registered_fault_models()) {
    if (!names.empty()) names += ", ";
    names += m->name();
  }
  return names;
}

}  // namespace cwsp::scheme
