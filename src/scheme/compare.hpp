#pragma once
// Comparative Tables 1–4 across the registered protection schemes ×
// fault models: design characteristics (Table 1), area (Table 2), delay
// (Table 3), and measured coverage + soft-error rate (Table 4), in text
// or deterministic JSON ("cwsp-compare-v1").
//
// Every number is a deterministic function of (design, options): the
// coverage rows come from campaign runs whose reports are byte-identical
// at any jobs value, and the SER rows fold each scheme's characterized
// glitch envelope and the campaign's measured unprotected-failure
// fraction through set::SerAnalyzer.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "cwsp/protection_params.hpp"
#include "netlist/netlist.hpp"
#include "scheme/scheme.hpp"
#include "sim/compiled_kernel.hpp"

namespace cwsp::scheme {

struct CompareOptions {
  /// Functional strikes per (scheme, model) campaign; each adversarial
  /// class adds max(1, runs/4) more.
  std::size_t runs = 50;
  std::size_t cycles = 16;
  /// In-envelope glitch width.
  Picoseconds glitch_width{400.0};
  std::uint64_t seed = 1;
  std::size_t jobs = 1;
  /// Scheme / fault-model names to compare; empty = every registered one.
  std::vector<std::string> schemes;
  std::vector<std::string> fault_models;
};

struct CompareReport {
  // ---- Table 1: design characteristics -----------------------------
  std::string design;
  std::size_t gates = 0;
  std::size_t flip_flops = 0;
  std::size_t protected_ffs = 0;
  SquareMicrons area{0.0};
  Picoseconds dmax{0.0};
  Picoseconds regular_period{0.0};

  std::size_t runs = 0;
  std::size_t cycles = 0;
  std::uint64_t seed = 0;

  // ---- Tables 2 + 3: per-scheme area / delay -----------------------
  std::vector<Characterization> characterizations;

  // ---- Table 4: per (scheme, model) coverage + SER -----------------
  struct CoverageRow {
    std::string scheme;
    std::string model;
    std::size_t strikes = 0;
    std::size_t escapes = 0;
    std::size_t unexpected_escapes = 0;
    std::size_t inconclusive = 0;
    double coverage_pct = 0.0;
    double unprotected_failure_pct = 0.0;
    double hardened_errors_per_year = 0.0;
    double unprotected_errors_per_year = 0.0;
    double improvement_factor = 0.0;
  };
  std::vector<CoverageRow> coverage;
  /// Combinational designs have no campaign substrate (the engine
  /// injects against flip-flop state); Table 4 is omitted, never faked.
  bool coverage_skipped_combinational = false;
};

/// Characterizes and campaigns every requested (scheme, model) cell.
/// `context` may be null (one is built); when given it must have been
/// built from `netlist`. Throws cwsp::Error for unknown scheme/model
/// names. Observes scheme.harden_latency_us per characterization.
[[nodiscard]] CompareReport run_compare(
    const Netlist& netlist, const core::ProtectionParams& params,
    Picoseconds clock_period,
    std::shared_ptr<const sim::CompiledKernelContext> context,
    const CompareOptions& options);

[[nodiscard]] std::string format_compare_text(const CompareReport& report);
[[nodiscard]] std::string format_compare_json(const CompareReport& report);

}  // namespace cwsp::scheme
