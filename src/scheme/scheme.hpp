#pragma once
// ProtectionScheme registry: the hardening techniques the platform can
// evaluate, behind one interface.
//
// A scheme owns (a) its area/delay characterization through the src/cell
// calibration data and (b) its per-strike verdict semantics — the mapping
// from strike-lane simulation facts (sim::LaneOutcome) and closed-form
// protection-path case analysis to a campaign::StrikeResult. The campaign
// engine is scheme-agnostic: it batches strikes onto the lane kernel and
// asks the scheme for the verdict, which is what lets one campaign sweep
// schemes × fault models with byte-identical determinism per cell.
//
// Registered schemes:
//   * "cwsp" — the paper's CWSP watchdog (§3.2/§3.3), refactored out of
//     the campaign engine verbatim; the registry default. The only
//     scheme whose protection predicate the static certifier can
//     express (certifiable() == true).
//   * "tmr"  — spatial triple-modular redundancy with a per-FF majority
//     voter (baselines::harden_spatial_tmr characterization).
//   * "loco" — a LOCO-style C-element self-resilient latch
//     (arXiv 2512.19292): two time-offset samples feed a Muller
//     C-element keeper that holds state while the samples disagree.
//
// See docs/schemes.md for the interface contract, the verdict semantics
// of each scheme, and how to add one.

#include <string>
#include <string_view>
#include <vector>

#include "campaign/strike_result.hpp"
#include "cwsp/protection_params.hpp"
#include "netlist/netlist.hpp"
#include "set/strike_plan.hpp"
#include "sim/strike_lanes.hpp"

namespace cwsp::scheme {

/// Area/delay/envelope figures of one hardening technique applied to one
/// design — the per-scheme rows of the comparative Tables 2–4.
struct Characterization {
  std::string scheme;
  SquareMicrons area_regular{0.0};
  SquareMicrons area_hardened{0.0};
  Picoseconds period_regular{0.0};
  Picoseconds period_hardened{0.0};
  /// Widest glitch the scheme tolerates on this design.
  Picoseconds max_glitch{0.0};
  bool feasible = true;

  [[nodiscard]] double area_overhead_pct() const {
    return (area_hardened / area_regular - 1.0) * 100.0;
  }
  [[nodiscard]] double delay_overhead_pct() const {
    return (period_hardened / period_regular - 1.0) * 100.0;
  }
};

class ProtectionScheme {
 public:
  virtual ~ProtectionScheme() = default;

  /// Registry key; stable, lower-case, appears in reports/fingerprints.
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual const char* description() const = 0;

  /// Area/delay characterization of the hardened design through the
  /// src/cell calibration data. Deterministic.
  [[nodiscard]] virtual Characterization characterize(
      const Netlist& netlist, const core::ProtectionParams& params) const = 0;

  /// Whether the strike cycle's capture is squashed and discarded by the
  /// scheme's own checking (decidable without simulation; evaluated once
  /// per planned strike before lane batching).
  [[nodiscard]] virtual bool squash_at_strike(
      const Netlist& netlist, const core::ProtectionParams& params,
      const set::PlannedStrike& planned) const = 0;

  /// Closed-form verdict for a strike inside the scheme's own protection
  /// circuitry (set::StrikeClass::kProtectionPath). The ProtectionSite
  /// enum is interpreted per scheme — see docs/schemes.md for each
  /// scheme's site mapping.
  [[nodiscard]] virtual campaign::StrikeResult resolve_protection_path(
      const set::PlannedStrike& planned, std::size_t cycles_per_run,
      Picoseconds clock_period) const = 0;

  /// Maps one lane's simulation facts to the scheme's verdict for a
  /// functional-class strike. Must be a pure function of its arguments
  /// (this is what keeps reports byte-identical at any jobs/lane width).
  [[nodiscard]] virtual campaign::StrikeResult resolve_functional(
      const set::PlannedStrike& planned, const sim::LaneOutcome& outcome,
      bool squashed, std::size_t cycles_per_run,
      const core::ProtectionParams& params) const = 0;

  /// Whether analysis::certify_design can express this scheme's
  /// protection predicate. Non-certifiable schemes degrade every site to
  /// `unknown` — never silently pass.
  [[nodiscard]] virtual bool certifiable() const { return false; }
};

/// All registered schemes, in stable registration order (cwsp first).
[[nodiscard]] const std::vector<const ProtectionScheme*>& registered_schemes();

/// Lookup by name(); nullptr when unknown.
[[nodiscard]] const ProtectionScheme* find_scheme(std::string_view name);

/// The registry default: the paper's CWSP protocol.
[[nodiscard]] const ProtectionScheme& default_scheme();

/// "cwsp, tmr, loco" — for error messages.
[[nodiscard]] std::string known_scheme_names();

namespace detail {
// Singleton accessors defined in the per-scheme translation units; the
// registry in scheme.cpp is built from these.
const ProtectionScheme& cwsp_scheme();
const ProtectionScheme& tmr_scheme();
const ProtectionScheme& loco_scheme();
}  // namespace detail

}  // namespace cwsp::scheme
