#include "scheme/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "campaign/campaign.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "cwsp/harden.hpp"
#include "cwsp/timing.hpp"
#include "scheme/fault_model.hpp"
#include "set/ser.hpp"
#include "sta/sta.hpp"

namespace cwsp::scheme {
namespace {

std::string num(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Scientific form for the SER magnitudes (%.6g): errors/year spans
/// ~1e-12 .. 1e3 across designs. MTBF improvement is infinite when the
/// hardened design never fails.
std::string sci(double v) {
  if (!std::isfinite(v)) return v > 0.0 ? "inf" : (v < 0.0 ? "-inf" : "nan");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// JSON has no infinity literal; non-finite values serialise as null.
std::string sci_json(double v) {
  return std::isfinite(v) ? sci(v) : "null";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::vector<const ProtectionScheme*> resolve_schemes(
    const std::vector<std::string>& names) {
  std::vector<const ProtectionScheme*> out;
  if (names.empty()) return registered_schemes();
  for (const std::string& name : names) {
    const ProtectionScheme* s = find_scheme(name);
    CWSP_REQUIRE_MSG(s != nullptr, "unknown scheme '" << name
                                       << "' (known: "
                                       << known_scheme_names() << ")");
    out.push_back(s);
  }
  return out;
}

std::vector<const FaultModel*> resolve_models(
    const std::vector<std::string>& names) {
  std::vector<const FaultModel*> out;
  if (names.empty()) return registered_fault_models();
  for (const std::string& name : names) {
    const FaultModel* m = find_fault_model(name);
    CWSP_REQUIRE_MSG(m != nullptr, "unknown fault model '" << name
                                       << "' (known: "
                                       << known_fault_model_names() << ")");
    out.push_back(m);
  }
  return out;
}

}  // namespace

CompareReport run_compare(
    const Netlist& netlist, const core::ProtectionParams& params,
    Picoseconds clock_period,
    std::shared_ptr<const sim::CompiledKernelContext> context,
    const CompareOptions& options) {
  const std::vector<const ProtectionScheme*> schemes =
      resolve_schemes(options.schemes);
  const std::vector<const FaultModel*> models =
      resolve_models(options.fault_models);

  CompareReport report;
  report.design = netlist.name();
  report.gates = netlist.num_gates();
  report.flip_flops = netlist.num_flip_flops();
  report.protected_ffs =
      static_cast<std::size_t>(core::protected_ff_count(netlist));
  report.area = netlist.total_area();
  const auto sta = run_sta(netlist);
  report.dmax = sta.dmax;
  report.regular_period = core::regular_clock_period(sta.dmax,
                                                     netlist.library());
  report.runs = options.runs;
  report.cycles = options.cycles;
  report.seed = options.seed;

  auto& registry = metrics::Registry::global();
  for (const ProtectionScheme* s : schemes) {
    Stopwatch watch;
    report.characterizations.push_back(s->characterize(netlist, params));
    registry.histogram("scheme.harden_latency_us")
        .observe_ms(watch.elapsed_ms());
  }

  if (netlist.num_flip_flops() == 0) {
    report.coverage_skipped_combinational = true;
    return report;
  }

  set::StrikePlanOptions plan_options;
  plan_options.functional_strikes = options.runs;
  const std::size_t extra = std::max<std::size_t>(1, options.runs / 4);
  plan_options.protection_path_strikes = extra;
  plan_options.clock_edge_strikes = extra;
  plan_options.out_of_envelope_strikes = extra;
  plan_options.cycles_per_run = options.cycles;
  plan_options.glitch_width = options.glitch_width;
  plan_options.out_of_envelope_width = params.delta + Picoseconds(400.0);
  plan_options.clock_period = clock_period;

  const campaign::CampaignEngine engine =
      context != nullptr
          ? campaign::CampaignEngine(netlist, params, clock_period, context)
          : campaign::CampaignEngine(netlist, params, clock_period);
  set::SerAnalyzer analyzer;
  // A characterized envelope can exceed the widest glitch the MiniSpice
  // charge→width map models (e.g. TMR masks glitches up to Dmax). The
  // LET spectrum makes strikes beyond the modelled charge grid vanishingly
  // rare, so folding such envelopes at the model's edge is conservative.
  const set::GlitchModel glitch_model;
  const Picoseconds max_modelled_width =
      glitch_model.glitch_width(Femtocoulombs(set::GlitchModel::kMaxChargeFc));

  for (std::size_t si = 0; si < schemes.size(); ++si) {
    const ProtectionScheme* s = schemes[si];
    const Characterization& ch = report.characterizations[si];
    for (const FaultModel* m : models) {
      const set::StrikePlan plan =
          m->build_plan(netlist, plan_options, options.seed);
      campaign::EngineOptions engine_options;
      engine_options.seed = options.seed;
      engine_options.cycles_per_run = options.cycles;
      engine_options.jobs = options.jobs;
      engine_options.scheme = s;
      engine_options.fault_model = m->name();
      const campaign::CampaignResult result = engine.run(plan, engine_options);

      CompareReport::CoverageRow row;
      row.scheme = s->name();
      row.model = m->name();
      row.strikes = result.report.strikes_injected;
      row.escapes = result.report.protected_failures;
      row.unexpected_escapes = result.unexpected_escapes;
      row.inconclusive = result.report.inconclusive;
      row.coverage_pct = result.report.protected_coverage_pct();
      row.unprotected_failure_pct = result.report.unprotected_failure_pct();
      const set::SerAnalyzer::SerReport ser =
          analyzer.analyze(ch.area_hardened,
                           std::min(ch.max_glitch, max_modelled_width),
                           row.unprotected_failure_pct / 100.0);
      row.hardened_errors_per_year = ser.hardened_errors_per_year;
      row.unprotected_errors_per_year = ser.unprotected_errors_per_year;
      row.improvement_factor = ser.improvement_factor;
      report.coverage.push_back(std::move(row));
    }
  }
  return report;
}

std::string format_compare_text(const CompareReport& report) {
  std::ostringstream os;
  os << "Table 1 — design characteristics: " << report.design << "\n";
  {
    TextTable t;
    t.set_header({"gates", "FFs", "protected FFs", "area (um^2)",
                  "Dmax (ps)", "regular period (ps)"});
    t.add_row({std::to_string(report.gates), std::to_string(report.flip_flops),
               std::to_string(report.protected_ffs), num(report.area.value()),
               num(report.dmax.value()), num(report.regular_period.value())});
    t.print(os);
  }
  os << "\nTable 2 — area per scheme\n";
  {
    TextTable t;
    t.set_header({"scheme", "regular (um^2)", "hardened (um^2)",
                  "overhead %", "feasible"});
    for (const Characterization& c : report.characterizations) {
      t.add_row({c.scheme, num(c.area_regular.value()),
                 num(c.area_hardened.value()), num(c.area_overhead_pct()),
                 c.feasible ? "yes" : "no"});
    }
    t.print(os);
  }
  os << "\nTable 3 — delay per scheme\n";
  {
    TextTable t;
    t.set_header({"scheme", "regular period (ps)", "hardened period (ps)",
                  "overhead %", "max glitch (ps)"});
    for (const Characterization& c : report.characterizations) {
      t.add_row({c.scheme, num(c.period_regular.value()),
                 num(c.period_hardened.value()), num(c.delay_overhead_pct()),
                 num(c.max_glitch.value())});
    }
    t.print(os);
  }
  os << "\nTable 4 — coverage and SER per scheme x fault model ("
     << report.runs << " runs, seed " << report.seed << ")\n";
  if (report.coverage_skipped_combinational) {
    os << "  (skipped: combinational design, no flip-flop state to "
          "campaign against)\n";
    return os.str();
  }
  TextTable t;
  t.set_header({"scheme", "fault model", "strikes", "escapes", "unexpected",
                "coverage %", "unprot fail %", "hardened err/yr",
                "improvement"});
  for (const CompareReport::CoverageRow& row : report.coverage) {
    t.add_row({row.scheme, row.model, std::to_string(row.strikes),
               std::to_string(row.escapes),
               std::to_string(row.unexpected_escapes), num(row.coverage_pct),
               num(row.unprotected_failure_pct),
               sci(row.hardened_errors_per_year),
               sci(row.improvement_factor)});
  }
  t.print(os);
  return os.str();
}

std::string format_compare_json(const CompareReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"cwsp-compare-v1\",\n";
  os << "  \"design\": \"" << json_escape(report.design) << "\",\n";
  os << "  \"seed\": " << report.seed << ",\n";
  os << "  \"runs\": " << report.runs << ",\n";
  os << "  \"cycles\": " << report.cycles << ",\n";
  os << "  \"table1\": {\n";
  os << "    \"gates\": " << report.gates << ",\n";
  os << "    \"flip_flops\": " << report.flip_flops << ",\n";
  os << "    \"protected_ffs\": " << report.protected_ffs << ",\n";
  os << "    \"area_um2\": " << num(report.area.value()) << ",\n";
  os << "    \"dmax_ps\": " << num(report.dmax.value()) << ",\n";
  os << "    \"regular_period_ps\": " << num(report.regular_period.value())
     << "\n";
  os << "  },\n";
  os << "  \"table2\": [\n";
  for (std::size_t i = 0; i < report.characterizations.size(); ++i) {
    const Characterization& c = report.characterizations[i];
    os << "    {\"scheme\": \"" << json_escape(c.scheme)
       << "\", \"area_regular_um2\": " << num(c.area_regular.value())
       << ", \"area_hardened_um2\": " << num(c.area_hardened.value())
       << ", \"area_overhead_pct\": " << num(c.area_overhead_pct())
       << ", \"feasible\": " << (c.feasible ? "true" : "false") << "}"
       << (i + 1 < report.characterizations.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"table3\": [\n";
  for (std::size_t i = 0; i < report.characterizations.size(); ++i) {
    const Characterization& c = report.characterizations[i];
    os << "    {\"scheme\": \"" << json_escape(c.scheme)
       << "\", \"period_regular_ps\": " << num(c.period_regular.value())
       << ", \"period_hardened_ps\": " << num(c.period_hardened.value())
       << ", \"delay_overhead_pct\": " << num(c.delay_overhead_pct())
       << ", \"max_glitch_ps\": " << num(c.max_glitch.value()) << "}"
       << (i + 1 < report.characterizations.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  if (report.coverage_skipped_combinational) {
    os << "  \"table4\": [],\n";
    os << "  \"table4_skipped\": \"combinational design\"\n";
  } else {
    os << "  \"table4\": [\n";
    for (std::size_t i = 0; i < report.coverage.size(); ++i) {
      const CompareReport::CoverageRow& row = report.coverage[i];
      os << "    {\"scheme\": \"" << json_escape(row.scheme)
         << "\", \"fault_model\": \"" << json_escape(row.model)
         << "\", \"strikes\": " << row.strikes
         << ", \"escapes\": " << row.escapes
         << ", \"unexpected_escapes\": " << row.unexpected_escapes
         << ", \"inconclusive\": " << row.inconclusive
         << ", \"coverage_pct\": " << num(row.coverage_pct)
         << ", \"unprotected_failure_pct\": "
         << num(row.unprotected_failure_pct)
         << ", \"hardened_errors_per_year\": "
         << sci_json(row.hardened_errors_per_year)
         << ", \"unprotected_errors_per_year\": "
         << sci_json(row.unprotected_errors_per_year)
         << ", \"improvement_factor\": " << sci_json(row.improvement_factor)
         << "}" << (i + 1 < report.coverage.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace cwsp::scheme
