// Spatial TMR as a registered scheme: three copies of the combinational
// logic and flip-flops feeding a per-FF majority voter
// (baselines::harden_spatial_tmr supplies the calibrated area/delay
// model). ProtectionSite mapping for kProtectionPath strikes:
// kEqChecker ≙ the voter output (the single unreplicated node); every
// other site ≙ circuitry inside one replica, which the other two
// out-vote.

#include <sstream>

#include "baselines/tmr.hpp"
#include "scheme/scheme.hpp"

namespace cwsp::scheme {
namespace {

class TmrScheme final : public ProtectionScheme {
 public:
  const char* name() const override { return "tmr"; }
  const char* description() const override {
    return "Spatial triple-modular redundancy with per-FF majority "
           "voters (baseline)";
  }

  Characterization characterize(
      const Netlist& netlist,
      const core::ProtectionParams& /*params*/) const override {
    const baselines::BaselineReport report =
        baselines::harden_spatial_tmr(netlist);
    Characterization c;
    c.scheme = name();
    c.area_regular = report.area_regular;
    c.area_hardened = report.area_hardened;
    c.period_regular = report.period_regular;
    c.period_hardened = report.period_hardened;
    c.max_glitch = report.max_glitch;
    c.feasible = report.feasible;
    return c;
  }

  /// TMR never squashes a cycle: the voter masks inline with zero
  /// recovery protocol.
  bool squash_at_strike(const Netlist& /*netlist*/,
                        const core::ProtectionParams& /*params*/,
                        const set::PlannedStrike& /*planned*/) const override {
    return false;
  }

  /// A strike inside one replica's circuitry is out-voted. The voter
  /// output itself is the single point of failure: a glitch there that
  /// is still present at the capture edge is latched identically into
  /// all three downstream replicas — an escape the voter cannot see.
  campaign::StrikeResult resolve_protection_path(
      const set::PlannedStrike& p, std::size_t cycles_per_run,
      Picoseconds clock_period) const override {
    campaign::StrikeResult r;
    r.index = p.index;
    r.status = campaign::StrikeStatus::kCovered;
    if (p.cycle < cycles_per_run &&
        p.site == set::ProtectionSite::kEqChecker) {
      const double t1 = p.strike.start.value() + p.strike.width.value();
      if (t1 >= clock_period.value()) {
        r.status = campaign::StrikeStatus::kEscape;
        r.diagnostic =
            "voter-output glitch latched into all replicas at the capture "
            "edge";
      }
    }
    return r;
  }

  /// A single-node functional strike corrupts at most one replica —
  /// masked by the majority at every width (max_glitch is D_max), with
  /// no bubble and no recompute. Only a charge-sharing double strike
  /// (node2 set) can out-vote the majority: it escapes when the
  /// corrupted state becomes architecturally visible.
  campaign::StrikeResult resolve_functional(
      const set::PlannedStrike& p, const sim::LaneOutcome& o,
      bool /*squashed*/, std::size_t /*cycles_per_run*/,
      const core::ProtectionParams& /*params*/) const override {
    campaign::StrikeResult r;
    r.index = p.index;
    r.status = campaign::StrikeStatus::kCovered;
    r.unprotected_failed = o.latched_diff || o.aperture;
    if (!o.fired || !o.latched_diff) return r;
    if (p.node2.valid() && o.silent_corruptions > 0) {
      r.status = campaign::StrikeStatus::kEscape;
      std::ostringstream os;
      os << "charge-sharing pair defeated the majority voter: "
         << o.silent_corruptions << " corrupted commit(s)";
      r.diagnostic = os.str();
    }
    return r;
  }
};

}  // namespace

const ProtectionScheme& detail::tmr_scheme() {
  static const TmrScheme scheme;
  return scheme;
}

}  // namespace cwsp::scheme
