#include "scheme/scheme.hpp"

namespace cwsp::scheme {

const std::vector<const ProtectionScheme*>& registered_schemes() {
  static const std::vector<const ProtectionScheme*> schemes = {
      &detail::cwsp_scheme(), &detail::tmr_scheme(), &detail::loco_scheme()};
  return schemes;
}

const ProtectionScheme* find_scheme(std::string_view name) {
  for (const ProtectionScheme* s : registered_schemes()) {
    if (name == s->name()) return s;
  }
  return nullptr;
}

const ProtectionScheme& default_scheme() {
  return *registered_schemes().front();
}

std::string known_scheme_names() {
  std::string names;
  for (const ProtectionScheme* s : registered_schemes()) {
    if (!names.empty()) names += ", ";
    names += s->name();
  }
  return names;
}

}  // namespace cwsp::scheme
