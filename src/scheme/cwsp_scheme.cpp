// The paper's CWSP protocol as a registered scheme. The verdict mappings
// here were lifted verbatim from the campaign engine's pre-registry lane
// path — the scalar ProtectionSim remains the executable specification,
// and the differential tests pin `--scheme cwsp` byte-identical to the
// pre-refactor default.

#include <sstream>

#include "cwsp/harden.hpp"
#include "scheme/scheme.hpp"

namespace cwsp::scheme {
namespace {

class CwspScheme final : public ProtectionScheme {
 public:
  const char* name() const override { return "cwsp"; }
  const char* description() const override {
    return "CWSP watchdog: per-FF code-word state preservation with "
           "equivalence check and one-cycle recompute (the paper, "
           "§3.2/§3.3)";
  }

  Characterization characterize(
      const Netlist& netlist,
      const core::ProtectionParams& params) const override {
    const core::HardenedDesign design = core::harden(netlist, params);
    Characterization c;
    c.scheme = name();
    c.area_regular = design.regular_area;
    c.area_hardened = design.hardened_area;
    c.period_regular = design.regular_period;
    c.period_hardened = design.hardened_period;
    c.max_glitch = design.max_glitch;
    c.feasible = true;
    return c;
  }

  /// A functional strike on a FF Q net whose pulse spans the CLK_DEL
  /// sampling moment flips the equivalence comparison spuriously —
  /// ProtectionSim's kFunctional spurious-EQ condition, decidable
  /// without simulation.
  bool squash_at_strike(const Netlist& netlist,
                        const core::ProtectionParams& params,
                        const set::PlannedStrike& p) const override {
    const Net& net = netlist.net(p.strike.node);
    if (net.driver_kind != DriverKind::kFlipFlop) return false;
    const double t0 = p.strike.start.value();
    const double t1 = t0 + p.strike.width.value();
    const double t_sample = params.clk_del_delay().value();
    return t0 <= t_sample && t1 >= t_sample;
  }

  /// Protection-path strikes never corrupt architectural state (that is
  /// the paper's §3.2 case analysis): only an EQ-checker glitch still
  /// present at the next clock edge costs anything — one spurious
  /// recomputation bubble. EQGLBF/CW*/CWSP-output hits are benign.
  campaign::StrikeResult resolve_protection_path(
      const set::PlannedStrike& p, std::size_t cycles_per_run,
      Picoseconds clock_period) const override {
    campaign::StrikeResult r;
    r.index = p.index;
    r.status = campaign::StrikeStatus::kCovered;
    if (p.cycle < cycles_per_run &&
        p.site == set::ProtectionSite::kEqChecker) {
      const double t1 = p.strike.start.value() + p.strike.width.value();
      if (t1 >= clock_period.value()) {
        r.bubbles = 1;
        r.spurious_recomputes = 1;
      }
    }
    return r;
  }

  /// Maps one lane's facts to the scalar ProtectionSim verdict:
  ///  * spurious EQ → the strike cycle is squashed and its capture
  ///    discarded: one bubble, one spurious recompute, covered;
  ///  * width <= δ capture diff → the check word carries the true next
  ///    state, so the next cycle's check detects and repairs it (one
  ///    bubble, one detected error) — unless the strike hit the final
  ///    cycle, whose capture is never checked;
  ///  * width > δ capture diff → the check word tracks the corrupted
  ///    trajectory (no detection); the strike escapes iff some later
  ///    commit differs from golden.
  /// The unprotected reference fails iff the capture differed or an
  /// aperture was violated — corrupted state (even output-invisible) and
  /// metastable captures both count, matching run_unprotected.
  campaign::StrikeResult resolve_functional(
      const set::PlannedStrike& p, const sim::LaneOutcome& o, bool squashed,
      std::size_t cycles_per_run,
      const core::ProtectionParams& params) const override {
    campaign::StrikeResult r;
    r.index = p.index;
    r.status = campaign::StrikeStatus::kCovered;
    r.unprotected_failed = o.latched_diff || o.aperture;
    if (!o.fired) return r;
    if (squashed) {
      r.bubbles = 1;
      r.spurious_recomputes = 1;
      return r;
    }
    if (!o.latched_diff) return r;
    if (p.strike.width > params.delta) {
      if (o.silent_corruptions > 0) {
        r.status = campaign::StrikeStatus::kEscape;
        std::ostringstream os;
        os << o.silent_corruptions << " corrupted commit(s)";
        r.diagnostic = os.str();
      }
    } else if (p.cycle + 1 < cycles_per_run) {
      r.bubbles = 1;
      r.detected_errors = 1;
    }
    return r;
  }

  bool certifiable() const override { return true; }
};

}  // namespace

const ProtectionScheme& detail::cwsp_scheme() {
  static const CwspScheme scheme;
  return scheme;
}

}  // namespace cwsp::scheme
