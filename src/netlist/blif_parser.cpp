#include "netlist/blif_parser.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

namespace cwsp {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

struct LatchDecl {
  std::string in;
  std::string out;
};

struct GateDecl {
  std::string cell;
  std::vector<std::pair<std::string, std::string>> pins;  // pin -> net
  int line = 0;
};

struct NamesDecl {
  std::vector<std::string> signals;  // inputs..., output last
  std::vector<std::string> cover;    // following cover lines
  int line = 0;
};

}  // namespace

Netlist parse_blif(std::istream& in, const CellLibrary& library) {
  std::string model_name = "blif";
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<LatchDecl> latches;
  std::vector<GateDecl> gates;
  std::vector<NamesDecl> names;

  // Read logical lines (handle '\' continuations and '#' comments).
  std::vector<std::pair<std::string, int>> lines;
  {
    std::string raw;
    std::string pending;
    int line_no = 0;
    int start_line = 0;
    while (std::getline(in, raw)) {
      ++line_no;
      const auto hash = raw.find('#');
      if (hash != std::string::npos) raw = raw.substr(0, hash);
      const bool continues = !raw.empty() && raw.back() == '\\';
      if (continues) raw.pop_back();
      if (pending.empty()) start_line = line_no;
      pending += raw + ' ';
      if (continues) continue;
      if (pending.find_first_not_of(" \t\r") != std::string::npos) {
        lines.emplace_back(pending, start_line);
      }
      pending.clear();
    }
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto tokens = tokenize(lines[i].first);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];
    const int line_no = lines[i].second;

    if (head == ".model") {
      if (tokens.size() >= 2) model_name = tokens[1];
    } else if (head == ".inputs") {
      inputs.insert(inputs.end(), tokens.begin() + 1, tokens.end());
    } else if (head == ".outputs") {
      outputs.insert(outputs.end(), tokens.begin() + 1, tokens.end());
    } else if (head == ".latch") {
      CWSP_REQUIRE_MSG(tokens.size() >= 3,
                       "blif line " << line_no << ": malformed .latch");
      latches.push_back({tokens[1], tokens[2]});
    } else if (head == ".gate") {
      CWSP_REQUIRE_MSG(tokens.size() >= 3,
                       "blif line " << line_no << ": malformed .gate");
      GateDecl g;
      g.cell = tokens[1];
      g.line = line_no;
      for (std::size_t t = 2; t < tokens.size(); ++t) {
        const auto eq = tokens[t].find('=');
        CWSP_REQUIRE_MSG(eq != std::string::npos,
                         "blif line " << line_no
                                      << ": expected pin=net, got "
                                      << tokens[t]);
        g.pins.emplace_back(tokens[t].substr(0, eq), tokens[t].substr(eq + 1));
      }
      gates.push_back(std::move(g));
    } else if (head == ".names") {
      NamesDecl nd;
      nd.signals.assign(tokens.begin() + 1, tokens.end());
      nd.line = line_no;
      // Absorb following cover lines (until the next dot-directive).
      while (i + 1 < lines.size()) {
        auto next = tokenize(lines[i + 1].first);
        if (!next.empty() && next[0][0] == '.') break;
        ++i;
        std::string joined;
        for (const auto& t : next) joined += t + ' ';
        nd.cover.push_back(joined);
      }
      names.push_back(std::move(nd));
    } else if (head == ".end") {
      break;
    } else {
      throw Error("blif line " + std::to_string(line_no) +
                  ": unsupported construct " + head);
    }
  }

  Netlist netlist(library, model_name);

  // Pass 1: declare nets. PIs, latch outputs, gate outputs, names outputs.
  for (const auto& pi : inputs) netlist.add_primary_input(pi);

  auto declare = [&](const std::string& n) {
    if (!netlist.find_net(n).has_value()) netlist.add_net(n);
  };
  for (const auto& latch : latches) declare(latch.out);
  for (const auto& g : gates) {
    CWSP_REQUIRE_MSG(!g.pins.empty(), "blif: .gate with no pins");
    declare(g.pins.back().second);  // convention: output pin listed last
  }

  for (const auto& nd : names) {
    CWSP_REQUIRE_MSG(!nd.signals.empty(), "blif: .names with no signals");
    const std::string& out = nd.signals.back();
    if (nd.signals.size() == 1) {
      // Constant: value 1 iff the cover contains a bare "1".
      bool value = false;
      for (const auto& c : nd.cover) {
        if (tokenize(c) == std::vector<std::string>{"1"}) value = true;
      }
      netlist.add_constant(value, out);
    } else {
      declare(out);
    }
  }

  auto net_of = [&](const std::string& n, int line_no) {
    const auto id = netlist.find_net(n);
    CWSP_REQUIRE_MSG(id.has_value(),
                     "blif line " << line_no << ": undefined net " << n);
    return *id;
  };

  // Pass 2: wire everything.
  for (const auto& latch : latches) {
    netlist.add_flip_flop_onto(net_of(latch.in, 0), *netlist.find_net(latch.out));
  }

  for (const auto& g : gates) {
    const auto cell_id = library.find(g.cell);
    CWSP_REQUIRE_MSG(cell_id.has_value(),
                     "blif line " << g.line << ": unknown cell " << g.cell);
    const Cell& cell = library.cell(*cell_id);
    CWSP_REQUIRE_MSG(
        static_cast<int>(g.pins.size()) == cell.num_inputs() + 1,
        "blif line " << g.line << ": cell " << g.cell << " expects "
                     << cell.num_inputs() << " inputs + 1 output");
    std::vector<NetId> ins;
    for (std::size_t p = 0; p + 1 < g.pins.size(); ++p) {
      ins.push_back(net_of(g.pins[p].second, g.line));
    }
    netlist.add_gate_onto(*cell_id, ins,
                          net_of(g.pins.back().second, g.line));
  }

  for (const auto& nd : names) {
    if (nd.signals.size() == 1) continue;  // constant, done in pass 1
    CWSP_REQUIRE_MSG(nd.signals.size() == 2,
                     "blif line " << nd.line
                                  << ": only 1-input .names supported "
                                     "(use .gate for logic)");
    // "1 1" → buffer; "0 1" → inverter.
    bool is_buffer = true;
    bool matched = false;
    for (const auto& c : nd.cover) {
      const auto t = tokenize(c);
      if (t == std::vector<std::string>{"1", "1"}) {
        is_buffer = true;
        matched = true;
      } else if (t == std::vector<std::string>{"0", "1"}) {
        is_buffer = false;
        matched = true;
      }
    }
    CWSP_REQUIRE_MSG(matched, "blif line " << nd.line
                                           << ": unsupported .names cover");
    const NetId in_net = net_of(nd.signals[0], nd.line);
    const NetId out_net = net_of(nd.signals[1], nd.line);
    netlist.add_gate_onto(
        library.cell_for(is_buffer ? CellKind::kBuf : CellKind::kInv),
        {in_net}, out_net);
  }

  for (const auto& po : outputs) netlist.mark_primary_output(net_of(po, 0));

  netlist.validate();
  return netlist;
}

Netlist parse_blif_string(const std::string& text,
                          const CellLibrary& library) {
  std::istringstream in(text);
  try {
    return parse_blif(in, library);
  } catch (const Error& e) {
    throw ParseError(e.what());
  }
}

Netlist parse_blif_file(const std::string& path, const CellLibrary& library) {
  std::ifstream in(path);
  if (!in.good()) throw ParseError("cannot open blif file " + path);
  try {
    return parse_blif(in, library);
  } catch (const Error& e) {
    throw ParseError(e.what());
  }
}

}  // namespace cwsp
