#pragma once
// Structural netlist analyses used by reports, the benchmark harness and
// the resizing baseline: logic depth, fanout statistics and cones of
// influence.

#include <vector>

#include "netlist/netlist.hpp"

namespace cwsp {

struct DepthInfo {
  /// Per-net logic depth in gate levels (sources = 0; unreachable = -1).
  std::vector<int> depth;
  int max_depth = 0;

  [[nodiscard]] int of(NetId net) const { return depth[net.index()]; }
};

/// Longest gate-level depth from any timing source to each net.
[[nodiscard]] DepthInfo compute_logic_depth(const Netlist& netlist);

struct FanoutStats {
  std::size_t max_fanout = 0;
  double mean_fanout = 0.0;
  /// histogram[k] = number of driven nets with fanout k (capped at the
  /// last bucket).
  std::vector<std::size_t> histogram;
};

[[nodiscard]] FanoutStats compute_fanout_stats(const Netlist& netlist,
                                               std::size_t max_bucket = 16);

/// Gates in the transitive fan-in cone of `net` (the logic that computes
/// it), in topological order.
[[nodiscard]] std::vector<GateId> cone_of_influence(const Netlist& netlist,
                                                    NetId net);

/// Nets reachable (through gates) from the given net's output — the
/// transitive fan-out, i.e. everything an SET on `net` could disturb.
[[nodiscard]] std::vector<NetId> transitive_fanout(const Netlist& netlist,
                                                   NetId net);

struct KindCount {
  std::string cell_name;
  std::size_t count = 0;
};

/// Gate count per cell type, descending by count.
[[nodiscard]] std::vector<KindCount> kind_histogram(const Netlist& netlist);

}  // namespace cwsp
