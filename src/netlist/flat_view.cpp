#include "netlist/flat_view.hpp"

#include <algorithm>

namespace cwsp {

FlatNetlistView::FlatNetlistView(const Netlist& netlist) : netlist_(&netlist) {
  const std::size_t num_nets = netlist.num_nets();
  const std::size_t num_gates = netlist.num_gates();
  num_pis_ = netlist.primary_inputs().size();

  // ---- gate CSR + cell data -----------------------------------------
  gate_input_offsets_.reserve(num_gates + 1);
  gate_input_offsets_.push_back(0);
  gate_truth_.reserve(num_gates);
  gate_output_.reserve(num_gates);
  gate_inertial_ps_.reserve(num_gates);
  for (std::size_t g = 0; g < num_gates; ++g) {
    const Gate& gate = netlist.gate(GateId{g});
    for (NetId in : gate.inputs) {
      gate_input_nets_.push_back(in.value());
    }
    gate_input_offsets_.push_back(
        static_cast<std::uint32_t>(gate_input_nets_.size()));
    const Cell& cell = netlist.cell_of(GateId{g});
    gate_truth_.push_back(cell.truth_table());
    gate_output_.push_back(gate.output.value());
    gate_inertial_ps_.push_back(cell.inertial_delay().value());
  }

  // ---- net source descriptors + fanout CSR --------------------------
  source_kind_.resize(num_nets, SourceKind::kNone);
  source_index_.resize(num_nets, 0);
  net_fanout_offsets_.reserve(num_nets + 1);
  net_fanout_offsets_.push_back(0);
  for (std::size_t n = 0; n < num_nets; ++n) {
    const Net& net = netlist.net(NetId{n});
    switch (net.driver_kind) {
      case DriverKind::kPrimaryInput:
        source_kind_[n] = SourceKind::kPrimaryInput;
        source_index_[n] = net.driver_index;
        break;
      case DriverKind::kFlipFlop:
        source_kind_[n] = SourceKind::kFlipFlop;
        source_index_[n] = net.driver_index;
        break;
      case DriverKind::kConstant:
        source_kind_[n] = SourceKind::kConstant;
        source_index_[n] = net.constant_value ? 1 : 0;
        break;
      case DriverKind::kGate:
        source_kind_[n] = SourceKind::kGate;
        source_index_[n] = net.driver_index;
        break;
      case DriverKind::kNone:
        break;
    }
    for (GateId fan : net.fanout_gates) {
      net_fanout_gates_.push_back(fan.value());
    }
    net_fanout_offsets_.push_back(
        static_cast<std::uint32_t>(net_fanout_gates_.size()));
  }

  // ---- topological order, positions and levels ----------------------
  const std::vector<GateId>& order = netlist.topological_order();
  topo_order_.reserve(num_gates);
  topo_position_.resize(num_gates, 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    topo_order_.push_back(order[pos].value());
    topo_position_[order[pos].index()] = static_cast<std::uint32_t>(pos);
  }
  level_.resize(num_gates, 0);
  for (std::uint32_t g : topo_order_) {
    std::uint32_t lvl = 0;
    const std::uint32_t* in = gate_inputs_begin(g);
    const std::uint32_t arity = gate_num_inputs(g);
    for (std::uint32_t i = 0; i < arity; ++i) {
      if (source_kind_[in[i]] == SourceKind::kGate) {
        lvl = std::max(lvl, level_[source_index_[in[i]]] + 1);
      }
    }
    level_[g] = lvl;
    num_levels_ = std::max(num_levels_, lvl + 1);
  }

  // ---- endpoints ----------------------------------------------------
  ff_d_net_.reserve(netlist.num_flip_flops());
  for (std::size_t f = 0; f < netlist.num_flip_flops(); ++f) {
    ff_d_net_.push_back(netlist.flip_flop(FlipFlopId{f}).d.value());
  }
  po_nets_.reserve(netlist.primary_outputs().size());
  for (NetId po : netlist.primary_outputs()) {
    po_nets_.push_back(po.value());
  }

  cone_ready_.assign(num_nets, 0);
  cones_.resize(num_nets);
}

const std::vector<std::uint32_t>& FlatNetlistView::cone_of(NetId net) const {
  CWSP_REQUIRE(net.valid() && net.index() < num_nets());
  const std::size_t n = net.index();
  std::lock_guard<std::mutex> lock(cone_mutex_);
  if (cone_ready_[n] != 0) return cones_[n];

  // Forward BFS over the fanout adjacency; `in_cone` doubles as the
  // visited set. The result is sorted by topo position so a kernel can
  // replay just these gates in dependency order.
  std::vector<char> in_cone(num_gates(), 0);
  std::vector<std::uint32_t> frontier;
  auto push_fanout = [&](std::uint32_t from_net) {
    const std::uint32_t* fan = net_fanout_begin(from_net);
    const std::uint32_t count = net_fanout_size(from_net);
    for (std::uint32_t i = 0; i < count; ++i) {
      if (in_cone[fan[i]] == 0) {
        in_cone[fan[i]] = 1;
        frontier.push_back(fan[i]);
      }
    }
  };
  push_fanout(static_cast<std::uint32_t>(n));
  std::vector<std::uint32_t>& cone = cones_[n];
  while (!frontier.empty()) {
    const std::uint32_t g = frontier.back();
    frontier.pop_back();
    cone.push_back(g);
    push_fanout(gate_output_[g]);
  }
  std::sort(cone.begin(), cone.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return topo_position_[a] < topo_position_[b];
            });
  cone_ready_[n] = 1;
  return cone;
}

}  // namespace cwsp
