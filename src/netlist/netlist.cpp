#include "netlist/netlist.hpp"

#include <algorithm>
#include <queue>

namespace cwsp {

Netlist::Netlist(const CellLibrary& library, std::string name)
    : library_(&library), name_(std::move(name)) {}

NetId Netlist::add_net_internal(const std::string& name) {
  CWSP_REQUIRE_MSG(!net_by_name_.contains(name),
                   "duplicate net name " << name);
  const NetId id{nets_.size()};
  Net net;
  net.name = name;
  nets_.push_back(std::move(net));
  net_by_name_.emplace(name, id);
  return id;
}

void Netlist::attach_driver(NetId net, DriverKind kind, std::uint32_t index) {
  CWSP_REQUIRE(net.valid() && net.index() < nets_.size());
  Net& n = nets_[net.index()];
  CWSP_REQUIRE_MSG(n.driver_kind == DriverKind::kNone,
                   "net " << n.name << " already driven");
  n.driver_kind = kind;
  n.driver_index = index;
  // Every structural append flows through here (gate/FF/PI/constant
  // creation), so this is the single invalidation point for the memoized
  // topological order.
  std::lock_guard<std::mutex> lock(topo_->mutex);
  topo_->valid = false;
}

NetId Netlist::add_primary_input(const std::string& name) {
  const NetId id = add_net_internal(name);
  attach_driver(id, DriverKind::kPrimaryInput,
                static_cast<std::uint32_t>(primary_inputs_.size()));
  primary_inputs_.push_back(id);
  return id;
}

NetId Netlist::add_net(const std::string& name) {
  return add_net_internal(name);
}

NetId Netlist::add_constant(bool value, const std::string& name) {
  const NetId id = add_net_internal(name);
  attach_driver(id, DriverKind::kConstant, 0);
  nets_[id.index()].constant_value = value;
  return id;
}

GateId Netlist::add_gate(CellId cell, const std::vector<NetId>& inputs,
                         const std::string& output_name) {
  const NetId out = add_net_internal(output_name);
  return add_gate_onto(cell, inputs, out);
}

GateId Netlist::add_gate_onto(CellId cell, const std::vector<NetId>& inputs,
                              NetId output) {
  const Cell& c = library_->cell(cell);
  CWSP_REQUIRE_MSG(
      static_cast<int>(inputs.size()) == c.num_inputs(),
      "gate of cell " << c.name() << " needs " << c.num_inputs()
                      << " inputs, got " << inputs.size());
  const GateId id{gates_.size()};
  Gate gate;
  gate.name = nets_[output.index()].name;
  gate.cell = cell;
  gate.inputs = inputs;
  gate.output = output;
  attach_driver(output, DriverKind::kGate, id.value());
  for (NetId in : inputs) {
    CWSP_REQUIRE(in.valid() && in.index() < nets_.size());
    nets_[in.index()].fanout_gates.push_back(id);
  }
  gates_.push_back(std::move(gate));
  return id;
}

FlipFlopId Netlist::add_flip_flop(NetId d, const std::string& q_name) {
  const NetId q = add_net_internal(q_name);
  return add_flip_flop_onto(d, q);
}

FlipFlopId Netlist::add_flip_flop_onto(NetId d, NetId q) {
  CWSP_REQUIRE(d.valid() && d.index() < nets_.size());
  CWSP_REQUIRE(q.valid() && q.index() < nets_.size());
  const FlipFlopId id{ffs_.size()};
  attach_driver(q, DriverKind::kFlipFlop, id.value());
  nets_[d.index()].fanout_ffs.push_back(id);
  ffs_.push_back(FlipFlop{nets_[q.index()].name, d, q});
  return id;
}

void Netlist::mark_primary_output(NetId net) {
  CWSP_REQUIRE(net.valid() && net.index() < nets_.size());
  Net& n = nets_[net.index()];
  if (!n.is_primary_output) {
    n.is_primary_output = true;
    primary_outputs_.push_back(net);
  }
}

const Net& Netlist::net(NetId id) const {
  CWSP_REQUIRE(id.valid() && id.index() < nets_.size());
  return nets_[id.index()];
}

const Gate& Netlist::gate(GateId id) const {
  CWSP_REQUIRE(id.valid() && id.index() < gates_.size());
  return gates_[id.index()];
}

const FlipFlop& Netlist::flip_flop(FlipFlopId id) const {
  CWSP_REQUIRE(id.valid() && id.index() < ffs_.size());
  return ffs_[id.index()];
}

const Cell& Netlist::cell_of(GateId id) const {
  return library_->cell(gate(id).cell);
}

std::optional<NetId> Netlist::find_net(const std::string& name) const {
  const auto it = net_by_name_.find(name);
  if (it == net_by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<FlipFlopId> Netlist::flip_flop_ids() const {
  std::vector<FlipFlopId> ids;
  ids.reserve(ffs_.size());
  for (std::size_t i = 0; i < ffs_.size(); ++i) ids.emplace_back(i);
  return ids;
}

std::vector<GateId> Netlist::gate_ids() const {
  std::vector<GateId> ids;
  ids.reserve(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) ids.emplace_back(i);
  return ids;
}

const std::vector<GateId>& Netlist::topological_order() const {
  std::lock_guard<std::mutex> lock(topo_->mutex);
  if (!topo_->valid) {
    topo_->order = compute_topological_order();
    topo_->valid = true;
  }
  return topo_->order;
}

std::vector<GateId> Netlist::compute_topological_order() const {
  // Kahn's algorithm over gates only: a gate becomes ready once all of its
  // gate-driven inputs are placed. PI/FF/constant-driven inputs are
  // boundary sources.
  std::vector<int> pending(gates_.size(), 0);
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    for (NetId in : gates_[g].inputs) {
      if (nets_[in.index()].driver_kind == DriverKind::kGate) ++pending[g];
    }
  }
  std::queue<GateId> ready;
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    if (pending[g] == 0) ready.emplace(g);
  }
  std::vector<GateId> order;
  order.reserve(gates_.size());
  while (!ready.empty()) {
    const GateId g = ready.front();
    ready.pop();
    order.push_back(g);
    const Net& out = nets_[gates_[g.index()].output.index()];
    for (GateId succ : out.fanout_gates) {
      if (--pending[succ.index()] == 0) ready.push(succ);
    }
  }
  CWSP_REQUIRE_MSG(order.size() == gates_.size(),
                   "combinational cycle detected in netlist " << name_);
  return order;
}

Femtofarads Netlist::load_of(NetId id) const {
  const Net& n = net(id);
  Femtofarads load{0.0};
  // Each fanout_gates entry corresponds to exactly one pin connection (a
  // net feeding the same gate on two pins appears twice).
  for (GateId g : n.fanout_gates) {
    load += library_->cell(gates_[g.index()].cell).input_capacitance();
  }
  for (FlipFlopId f : n.fanout_ffs) {
    (void)f;
    load += library_->regular_ff().d_capacitance;
  }
  const std::size_t fanout_count = n.fanout_gates.size() + n.fanout_ffs.size();
  load += library_->wire_capacitance_per_fanout() *
          static_cast<double>(fanout_count);
  return load;
}

void Netlist::validate() const {
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const Net& n = nets_[i];
    CWSP_REQUIRE_MSG(n.driver_kind != DriverKind::kNone,
                     "net " << n.name << " has no driver");
    const bool used = !n.fanout_gates.empty() || !n.fanout_ffs.empty() ||
                      n.is_primary_output;
    // Unused primary inputs are legal (optimisation passes can strand
    // them without changing the module interface); anything else dangling
    // indicates a construction bug.
    CWSP_REQUIRE_MSG(used || n.driver_kind == DriverKind::kPrimaryInput,
                     "net " << n.name << " is dangling");
  }
  for (const Gate& g : gates_) {
    const Cell& c = library_->cell(g.cell);
    CWSP_REQUIRE(static_cast<int>(g.inputs.size()) == c.num_inputs());
  }
  (void)topological_order();  // throws on combinational cycles
}

SquareMicrons Netlist::combinational_area() const {
  SquareMicrons area{0.0};
  for (const Gate& g : gates_) area += library_->cell(g.cell).active_area();
  return area;
}

SquareMicrons Netlist::total_area() const {
  return combinational_area() +
         library_->regular_ff().area * static_cast<double>(ffs_.size());
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.num_primary_inputs = primary_inputs_.size();
  s.num_primary_outputs = primary_outputs_.size();
  s.num_gates = gates_.size();
  s.num_flip_flops = ffs_.size();
  s.num_nets = nets_.size();
  s.combinational_area = combinational_area();
  s.sequential_area =
      library_->regular_ff().area * static_cast<double>(ffs_.size());
  s.total_area = s.combinational_area + s.sequential_area;
  return s;
}

}  // namespace cwsp
