#pragma once
// Netlist transformation passes. The netlist structure itself is
// append-only, so every pass rebuilds into a fresh netlist (cheap at the
// sizes this library handles, and it keeps intermediate states valid).

#include "netlist/netlist.hpp"

namespace cwsp {

/// Structure-preserving deep copy.
[[nodiscard]] Netlist clone_netlist(const Netlist& source,
                                    const std::string& name = "");

/// Constant propagation: gates whose value is fixed by constant inputs
/// collapse into constant nets; gates reducible to a single live input
/// become buffers/inverters. Iterates to a fixed point.
[[nodiscard]] Netlist sweep_constants(const Netlist& source);

/// Removes gates that reach no primary output and no flip-flop D pin.
/// Unused primary inputs are retained (the interface is preserved).
[[nodiscard]] Netlist remove_dead_logic(const Netlist& source);

struct TransformStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  [[nodiscard]] std::size_t removed() const {
    return gates_before - gates_after;
  }
};

/// sweep_constants followed by remove_dead_logic, with statistics.
[[nodiscard]] std::pair<Netlist, TransformStats> optimize(
    const Netlist& source);

}  // namespace cwsp
