#pragma once
// Structural Verilog export: gates map onto Verilog primitives
// (not/buf/nand/nor/and/or/xor/xnor), MUX2/AOI21/OAI21 onto continuous
// assigns, and flip-flops onto a positive-edge always block with a
// single `clk` port.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace cwsp {

void write_verilog(const Netlist& netlist, std::ostream& os);

[[nodiscard]] std::string to_verilog_string(const Netlist& netlist);

}  // namespace cwsp
