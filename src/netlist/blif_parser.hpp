#pragma once
// Structural BLIF subset parser. Supported constructs:
//
//   .model <name>
//   .inputs a b c         (continuation with trailing '\' supported)
//   .outputs y z
//   .latch <in> <out> [re <clk>] [<init>]
//   .gate <CELL> <pin>=<net> ... <outpin>=<net>
//   .names <out>                  (constant-0 net)
//   .names <out> + "1" line       (constant-1 net)
//   .names <in> <out> + "1 1"     (buffer)  / "0 1" (inverter)
//   .end
//
// Logic-style multi-input .names covers are out of scope — this project
// consumes technology-mapped netlists, as the paper's flow does.

#include <istream>
#include <string>

#include "netlist/netlist.hpp"

namespace cwsp {

[[nodiscard]] Netlist parse_blif(std::istream& in, const CellLibrary& library);

[[nodiscard]] Netlist parse_blif_string(const std::string& text,
                                        const CellLibrary& library);

[[nodiscard]] Netlist parse_blif_file(const std::string& path,
                                      const CellLibrary& library);

}  // namespace cwsp
