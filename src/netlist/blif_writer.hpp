#pragma once
// Structural BLIF writer — inverse of parse_blif (round-trips through it).

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace cwsp {

void write_blif(const Netlist& netlist, std::ostream& os);

[[nodiscard]] std::string to_blif_string(const Netlist& netlist);

}  // namespace cwsp
