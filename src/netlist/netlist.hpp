#pragma once
// Gate-level netlist: combinational gates from a CellLibrary, D flip-flops,
// primary inputs/outputs and constant nets. Index-based storage with typed
// handles; the structure is append-only (gates are never removed — the
// hardening transforms build new netlists instead).

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/library.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"

namespace cwsp {

enum class DriverKind : std::uint8_t {
  kNone,          // undriven (illegal in a validated netlist)
  kPrimaryInput,  // driven from outside
  kGate,          // driven by a combinational gate
  kFlipFlop,      // driven by a flip-flop Q output
  kConstant,      // tied to 0 or 1
};

struct Net {
  std::string name;
  DriverKind driver_kind = DriverKind::kNone;
  /// Index of the driving gate/flip-flop (meaning depends on driver_kind).
  std::uint32_t driver_index = 0;
  bool constant_value = false;
  bool is_primary_output = false;
  std::vector<GateId> fanout_gates;
  std::vector<FlipFlopId> fanout_ffs;
};

struct Gate {
  std::string name;
  CellId cell;
  std::vector<NetId> inputs;
  NetId output;
};

struct FlipFlop {
  std::string name;
  NetId d;
  NetId q;
};

/// Summary statistics used by the benchmark harness and reports.
struct NetlistStats {
  std::size_t num_primary_inputs = 0;
  std::size_t num_primary_outputs = 0;
  std::size_t num_gates = 0;
  std::size_t num_flip_flops = 0;
  std::size_t num_nets = 0;
  SquareMicrons combinational_area{0.0};
  SquareMicrons sequential_area{0.0};
  SquareMicrons total_area{0.0};
};

class Netlist {
 public:
  /// The library must outlive the netlist (non-owning reference).
  explicit Netlist(const CellLibrary& library, std::string name = "top");

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const CellLibrary& library() const { return *library_; }

  // ---------------------------------------------------------- building
  NetId add_primary_input(const std::string& name);
  /// Creates an undriven net; a driver must be attached before validate().
  NetId add_net(const std::string& name);
  NetId add_constant(bool value, const std::string& name);
  /// Creates a gate and a fresh output net named `output_name`.
  GateId add_gate(CellId cell, const std::vector<NetId>& inputs,
                  const std::string& output_name);
  /// Creates a gate driving an existing (so far undriven) net.
  GateId add_gate_onto(CellId cell, const std::vector<NetId>& inputs,
                       NetId output);
  /// Creates a flip-flop with a fresh Q net named `q_name`.
  FlipFlopId add_flip_flop(NetId d, const std::string& q_name);
  /// Creates a flip-flop driving an existing (so far undriven) net.
  FlipFlopId add_flip_flop_onto(NetId d, NetId q);
  void mark_primary_output(NetId net);

  // ---------------------------------------------------------- access
  [[nodiscard]] const Net& net(NetId id) const;
  [[nodiscard]] const Gate& gate(GateId id) const;
  [[nodiscard]] const FlipFlop& flip_flop(FlipFlopId id) const;
  [[nodiscard]] const Cell& cell_of(GateId id) const;

  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }
  [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }
  [[nodiscard]] std::size_t num_flip_flops() const { return ffs_.size(); }

  [[nodiscard]] const std::vector<NetId>& primary_inputs() const {
    return primary_inputs_;
  }
  [[nodiscard]] const std::vector<NetId>& primary_outputs() const {
    return primary_outputs_;
  }
  [[nodiscard]] std::optional<NetId> find_net(const std::string& name) const;

  /// All flip-flop ids, in creation order.
  [[nodiscard]] std::vector<FlipFlopId> flip_flop_ids() const;
  [[nodiscard]] std::vector<GateId> gate_ids() const;

  // ---------------------------------------------------------- analysis
  /// Gates in topological order (FF Q outputs and PIs are sources; FF D
  /// inputs and POs are sinks). Throws if the combinational core is cyclic.
  ///
  /// Memoized: Kahn's algorithm runs once per structural revision and the
  /// cached order is invalidated whenever a driver is attached (gate or
  /// flip-flop append). The returned reference stays valid until the next
  /// mutation. Safe to call from concurrent readers of a fixed netlist.
  [[nodiscard]] const std::vector<GateId>& topological_order() const;

  /// Capacitive load seen by the driver of `net` (pin caps + wire cap).
  [[nodiscard]] Femtofarads load_of(NetId net) const;

  /// Structural checks: every net driven exactly once, gate arity matches
  /// cell, combinational core acyclic. Throws cwsp::Error on violation.
  void validate() const;

  [[nodiscard]] NetlistStats stats() const;
  [[nodiscard]] SquareMicrons combinational_area() const;
  [[nodiscard]] SquareMicrons total_area() const;

 private:
  NetId add_net_internal(const std::string& name);
  void attach_driver(NetId net, DriverKind kind, std::uint32_t index);
  [[nodiscard]] std::vector<GateId> compute_topological_order() const;

  /// Lazily-filled topological-order cache. Heap-allocated so the netlist
  /// stays movable (std::mutex is not); the mutex makes concurrent
  /// first-computation from reader threads safe.
  struct TopoCache {
    std::mutex mutex;
    bool valid = false;
    std::vector<GateId> order;
  };

  const CellLibrary* library_;
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Gate> gates_;
  std::vector<FlipFlop> ffs_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::unique_ptr<TopoCache> topo_ = std::make_unique<TopoCache>();
};

}  // namespace cwsp
