#include "netlist/decompose.hpp"

#include <string>

namespace cwsp {
namespace {

CellKind narrow_kind(GateFunction fn, int n) {
  switch (fn) {
    case GateFunction::kAnd:
      return n == 2 ? CellKind::kAnd2 : n == 3 ? CellKind::kAnd3
                                               : CellKind::kAnd4;
    case GateFunction::kOr:
      return n == 2 ? CellKind::kOr2 : n == 3 ? CellKind::kOr3
                                              : CellKind::kOr4;
    case GateFunction::kNand:
      return n == 2 ? CellKind::kNand2 : n == 3 ? CellKind::kNand3
                                                : CellKind::kNand4;
    case GateFunction::kNor:
      return n == 2 ? CellKind::kNor2 : n == 3 ? CellKind::kNor3
                                               : CellKind::kNor4;
    default:
      throw Error("narrow_kind: not an and/or family function");
  }
}

std::string fresh_name(const Netlist& netlist, NetId out) {
  return netlist.net(out).name + "__t" + std::to_string(netlist.num_nets());
}

/// Reduces args with an associative AND/OR tree down to ≤4 signals.
std::vector<NetId> reduce_tree(Netlist& netlist, GateFunction assoc_fn,
                               std::vector<NetId> args, NetId out) {
  while (args.size() > 4) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i < args.size(); i += 4) {
      const std::size_t n = std::min<std::size_t>(4, args.size() - i);
      if (n == 1) {
        next.push_back(args[i]);
        continue;
      }
      std::vector<NetId> group(args.begin() + static_cast<long>(i),
                               args.begin() + static_cast<long>(i + n));
      const NetId t = netlist.add_net(fresh_name(netlist, out));
      netlist.add_gate_onto(
          netlist.library().cell_for(narrow_kind(assoc_fn, static_cast<int>(n))),
          group, t);
      next.push_back(t);
    }
    args = std::move(next);
  }
  return args;
}

}  // namespace

GateId build_function(Netlist& netlist, GateFunction fn,
                      const std::vector<NetId>& args, NetId out) {
  const CellLibrary& lib = netlist.library();
  const auto n = args.size();

  switch (fn) {
    case GateFunction::kNot:
      CWSP_REQUIRE(n == 1);
      return netlist.add_gate_onto(lib.cell_for(CellKind::kInv), args, out);
    case GateFunction::kBuf:
      CWSP_REQUIRE(n == 1);
      return netlist.add_gate_onto(lib.cell_for(CellKind::kBuf), args, out);
    case GateFunction::kMux:
      CWSP_REQUIRE(n == 3);
      return netlist.add_gate_onto(lib.cell_for(CellKind::kMux2), args, out);

    case GateFunction::kAnd:
    case GateFunction::kOr: {
      CWSP_REQUIRE(n >= 1);
      if (n == 1) {
        return netlist.add_gate_onto(lib.cell_for(CellKind::kBuf), args, out);
      }
      auto reduced = reduce_tree(netlist, fn, args, out);
      if (reduced.size() == 1) {
        return netlist.add_gate_onto(lib.cell_for(CellKind::kBuf), reduced,
                                     out);
      }
      return netlist.add_gate_onto(
          lib.cell_for(narrow_kind(fn, static_cast<int>(reduced.size()))),
          reduced, out);
    }

    case GateFunction::kNand:
    case GateFunction::kNor: {
      CWSP_REQUIRE(n >= 1);
      if (n == 1) {
        return netlist.add_gate_onto(lib.cell_for(CellKind::kInv), args, out);
      }
      const GateFunction assoc =
          fn == GateFunction::kNand ? GateFunction::kAnd : GateFunction::kOr;
      auto reduced = reduce_tree(netlist, assoc, args, out);
      if (reduced.size() == 1) {
        return netlist.add_gate_onto(lib.cell_for(CellKind::kInv), reduced,
                                     out);
      }
      return netlist.add_gate_onto(
          lib.cell_for(narrow_kind(fn, static_cast<int>(reduced.size()))),
          reduced, out);
    }

    case GateFunction::kXor:
    case GateFunction::kXnor: {
      CWSP_REQUIRE(n >= 2);
      // Left-to-right XOR chain; the final stage carries the polarity.
      NetId acc = args[0];
      for (std::size_t i = 1; i + 1 < n; ++i) {
        const NetId t = netlist.add_net(fresh_name(netlist, out));
        netlist.add_gate_onto(lib.cell_for(CellKind::kXor2), {acc, args[i]},
                              t);
        acc = t;
      }
      const CellKind last =
          fn == GateFunction::kXor ? CellKind::kXor2 : CellKind::kXnor2;
      return netlist.add_gate_onto(lib.cell_for(last), {acc, args[n - 1]},
                                   out);
    }
  }
  throw Error("build_function: unhandled function");
}

}  // namespace cwsp
