#pragma once
// Netlist writers: extended .bench (round-trips through parse_bench) and
// Graphviz dot for visual inspection of small circuits.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace cwsp {

/// Writes the netlist in the extended .bench dialect accepted by
/// parse_bench. Cells without a .bench spelling (MUX2, AOI21, OAI21) are
/// expanded into their NAND/NOT equivalents on the fly, so output is
/// always re-parseable.
void write_bench(const Netlist& netlist, std::ostream& os);

[[nodiscard]] std::string to_bench_string(const Netlist& netlist);

/// Graphviz rendering (gates as boxes, FFs as doubly-framed boxes).
void write_dot(const Netlist& netlist, std::ostream& os);

}  // namespace cwsp
