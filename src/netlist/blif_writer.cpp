#include "netlist/blif_writer.hpp"

#include <ostream>
#include <sstream>

namespace cwsp {

void write_blif(const Netlist& netlist, std::ostream& os) {
  os << "# written by cwsp-rad-hard\n";
  os << ".model " << netlist.name() << "\n";

  os << ".inputs";
  for (NetId pi : netlist.primary_inputs()) {
    os << ' ' << netlist.net(pi).name;
  }
  os << "\n.outputs";
  for (NetId po : netlist.primary_outputs()) {
    os << ' ' << netlist.net(po).name;
  }
  os << '\n';

  // Constants as 1/0-cover .names.
  for (std::size_t i = 0; i < netlist.num_nets(); ++i) {
    const Net& net = netlist.net(NetId{i});
    if (net.driver_kind == DriverKind::kConstant) {
      os << ".names " << net.name << '\n';
      if (net.constant_value) os << "1\n";
    }
  }

  for (FlipFlopId f : netlist.flip_flop_ids()) {
    const FlipFlop& ff = netlist.flip_flop(f);
    os << ".latch " << netlist.net(ff.d).name << ' '
       << netlist.net(ff.q).name << " re clk 0\n";
  }

  for (GateId g : netlist.gate_ids()) {
    const Gate& gate = netlist.gate(g);
    const Cell& cell = netlist.cell_of(g);
    os << ".gate " << cell.name();
    // Pin naming convention mirrors parse_blif: inputs in order (the pin
    // names are informational, output pin last).
    static constexpr const char* kPins[] = {"a", "b", "c", "d"};
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      os << ' ' << kPins[i] << '=' << netlist.net(gate.inputs[i]).name;
    }
    os << " O=" << netlist.net(gate.output).name << '\n';
  }
  os << ".end\n";
}

std::string to_blif_string(const Netlist& netlist) {
  std::ostringstream os;
  write_blif(netlist, os);
  return os.str();
}

}  // namespace cwsp
