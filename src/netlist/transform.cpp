#include "netlist/transform.hpp"

#include <optional>

namespace cwsp {
namespace {

/// Three-valued lattice for constant propagation.
enum class Lattice : std::uint8_t { kZero, kOne, kUnknown };

Lattice to_lattice(bool v) { return v ? Lattice::kOne : Lattice::kZero; }

/// Per-gate folding result.
struct Folded {
  std::optional<bool> constant;
  /// When the gate reduces to a function of exactly one live input:
  /// that input plus the polarity (true = buffer, false = inverter).
  std::optional<std::pair<NetId, bool>> single_input;
};

Folded fold_gate(const Netlist& netlist, GateId g,
                 const std::vector<Lattice>& values) {
  const Gate& gate = netlist.gate(g);
  const Cell& cell = netlist.cell_of(g);
  const int n = cell.num_inputs();

  // Enumerate all assignments of the *unique* unknown nets (the same net
  // on two pins must receive the same value).
  std::vector<NetId> unknown_nets;
  std::vector<int> net_of_pin(static_cast<std::size_t>(n), -1);
  unsigned fixed_bits = 0;
  for (int i = 0; i < n; ++i) {
    const NetId in = gate.inputs[static_cast<std::size_t>(i)];
    const Lattice v = values[in.index()];
    if (v == Lattice::kUnknown) {
      int idx = -1;
      for (std::size_t k = 0; k < unknown_nets.size(); ++k) {
        if (unknown_nets[k] == in) idx = static_cast<int>(k);
      }
      if (idx < 0) {
        idx = static_cast<int>(unknown_nets.size());
        unknown_nets.push_back(in);
      }
      net_of_pin[static_cast<std::size_t>(i)] = idx;
    } else if (v == Lattice::kOne) {
      fixed_bits |= 1u << i;
    }
  }

  bool seen_zero = false;
  bool seen_one = false;
  const unsigned combos = 1u << unknown_nets.size();
  std::vector<bool> outputs(combos);
  for (unsigned c = 0; c < combos; ++c) {
    unsigned bits = fixed_bits;
    for (int i = 0; i < n; ++i) {
      const int idx = net_of_pin[static_cast<std::size_t>(i)];
      if (idx >= 0 && ((c >> idx) & 1u)) bits |= 1u << i;
    }
    outputs[c] = cell.evaluate(bits);
    (outputs[c] ? seen_one : seen_zero) = true;
  }

  Folded folded;
  if (!seen_zero || !seen_one) {
    folded.constant = seen_one;
    return folded;
  }
  // Dependence on exactly one unknown net ⇒ buffer or inverter of it.
  for (std::size_t k = 0; k < unknown_nets.size(); ++k) {
    bool depends_only_on_k = true;
    for (unsigned c = 0; c < combos && depends_only_on_k; ++c) {
      for (std::size_t j = 0; j < unknown_nets.size(); ++j) {
        if (j == k) continue;
        if (outputs[c] != outputs[c ^ (1u << j)]) {
          depends_only_on_k = false;
          break;
        }
      }
    }
    if (depends_only_on_k) {
      folded.single_input = {unknown_nets[k], outputs[1u << k]};
      return folded;
    }
  }
  return folded;
}

/// Rebuilds `source` keeping only live logic; `values`/`folds` (optional)
/// redirect folded nets to constants or buffers/inverters.
Netlist rebuild(const Netlist& source, const std::vector<Lattice>* values,
                const std::vector<Folded>* folds) {
  const CellLibrary& lib = source.library();
  Netlist out(lib, source.name());


  std::vector<NetId> map(source.num_nets());
  // Interface first: every PI is kept (even if now unused).
  for (NetId pi : source.primary_inputs()) {
    map[pi.index()] = out.add_primary_input(source.net(pi).name);
  }

  auto is_const = [&](NetId id) {
    return values != nullptr &&
           (*values)[id.index()] != Lattice::kUnknown &&
           source.net(id).driver_kind != DriverKind::kPrimaryInput;
  };

  // Post-fold liveness fixpoint: a net is needed if a primary output, a
  // needed flip-flop's D, or an emitted gate's (folded) input references
  // it. Folding reroutes or removes references, so the pre-fold `live`
  // set over-approximates.

  std::vector<char> needed(source.num_nets(), 0);
  for (NetId po : source.primary_outputs()) needed[po.index()] = 1;
  const auto order = source.topological_order();
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const Gate& gate = source.gate(*it);
      if (!needed[gate.output.index()]) continue;
      if (is_const(gate.output)) continue;  // replaced by a constant net
      if (folds != nullptr &&
          (*folds)[it->index()].single_input.has_value()) {
        const NetId in = (*folds)[it->index()].single_input->first;
        if (!needed[in.index()]) {
          needed[in.index()] = 1;
          changed = true;
        }
      } else {
        for (NetId in : gate.inputs) {
          if (!needed[in.index()]) {
            needed[in.index()] = 1;
            changed = true;
          }
        }
      }
    }
    for (FlipFlopId f : source.flip_flop_ids()) {
      const FlipFlop& ff = source.flip_flop(f);
      if (needed[ff.q.index()] && !needed[ff.d.index()]) {
        needed[ff.d.index()] = 1;
        changed = true;
      }
    }
  }

  // Declare every needed non-PI net (constants with their value).
  for (std::size_t i = 0; i < source.num_nets(); ++i) {
    const Net& net = source.net(NetId{i});
    if (net.driver_kind == DriverKind::kPrimaryInput) continue;
    if (!needed[i]) continue;
    if (is_const(NetId{i})) {
      map[i] = out.add_constant((*values)[i] == Lattice::kOne, net.name);
    } else if (net.driver_kind == DriverKind::kConstant) {
      map[i] = out.add_constant(net.constant_value, net.name);
    } else {
      map[i] = out.add_net(net.name);
    }
  }

  // Gates (topological order keeps inputs defined before use).
  for (GateId g : source.topological_order()) {
    const Gate& gate = source.gate(g);
    if (!needed[gate.output.index()]) continue;
    if (is_const(gate.output)) continue;  // folded to a constant net

    if (folds != nullptr) {
      const auto& folded = (*folds)[g.index()];
      if (folded.single_input.has_value()) {
        const auto [input, is_buffer] = *folded.single_input;
        out.add_gate_onto(
            lib.cell_for(is_buffer ? CellKind::kBuf : CellKind::kInv),
            {map[input.index()]}, map[gate.output.index()]);
        continue;
      }
    }
    std::vector<NetId> ins;
    ins.reserve(gate.inputs.size());
    for (NetId in : gate.inputs) ins.push_back(map[in.index()]);
    out.add_gate_onto(gate.cell, ins, map[gate.output.index()]);
  }

  for (FlipFlopId f : source.flip_flop_ids()) {
    const FlipFlop& ff = source.flip_flop(f);
    if (!needed[ff.q.index()]) continue;
    out.add_flip_flop_onto(map[ff.d.index()], map[ff.q.index()]);
  }

  for (NetId po : source.primary_outputs()) {
    out.mark_primary_output(map[po.index()]);
  }
  out.validate();
  return out;
}

}  // namespace

Netlist clone_netlist(const Netlist& source, const std::string& name) {
  Netlist copy = rebuild(source, nullptr, nullptr);
  if (!name.empty()) copy.set_name(name);
  return copy;
}

Netlist sweep_constants(const Netlist& source) {
  // Forward propagation over the combinational core; FF outputs are
  // unknown (no propagation across clock edges).
  std::vector<Lattice> values(source.num_nets(), Lattice::kUnknown);
  for (std::size_t i = 0; i < source.num_nets(); ++i) {
    const Net& net = source.net(NetId{i});
    if (net.driver_kind == DriverKind::kConstant) {
      values[i] = to_lattice(net.constant_value);
    }
  }
  std::vector<Folded> folds(source.num_gates());
  for (GateId g : source.topological_order()) {
    folds[g.index()] = fold_gate(source, g, values);
    if (folds[g.index()].constant.has_value()) {
      values[source.gate(g).output.index()] =
          to_lattice(*folds[g.index()].constant);
    }
  }
  return rebuild(source, &values, &folds);
}

Netlist remove_dead_logic(const Netlist& source) {
  return rebuild(source, nullptr, nullptr);
}

std::pair<Netlist, TransformStats> optimize(const Netlist& source) {
  TransformStats stats;
  stats.gates_before = source.num_gates();
  Netlist result = sweep_constants(source);
  // Folding can expose more constants (e.g. a buffer of a constant);
  // iterate to a fixed point.
  for (int iter = 0; iter < 8; ++iter) {
    Netlist next = sweep_constants(result);
    if (next.num_gates() == result.num_gates()) break;
    result = std::move(next);
  }
  stats.gates_after = result.num_gates();
  return {std::move(result), stats};
}

}  // namespace cwsp
