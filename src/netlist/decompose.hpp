#pragma once
// Maps n-ary boolean functions onto the (≤4-input) cell library, building
// balanced trees for wide gates. Used by the parsers and the synthetic
// benchmark generator.

#include <vector>

#include "netlist/netlist.hpp"

namespace cwsp {

enum class GateFunction {
  kNot,
  kBuf,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kMux,  // (d0, d1, sel)
};

/// Realises `fn(args)` driving the existing, so far undriven net `out`,
/// adding intermediate gates/nets as required. Returns the gate driving
/// `out`.
GateId build_function(Netlist& netlist, GateFunction fn,
                      const std::vector<NetId>& args, NetId out);

}  // namespace cwsp
