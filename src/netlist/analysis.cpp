#include "netlist/analysis.hpp"

#include <algorithm>
#include <queue>

namespace cwsp {

DepthInfo compute_logic_depth(const Netlist& netlist) {
  DepthInfo info;
  info.depth.assign(netlist.num_nets(), -1);
  for (std::size_t i = 0; i < netlist.num_nets(); ++i) {
    const auto kind = netlist.net(NetId{i}).driver_kind;
    if (kind == DriverKind::kPrimaryInput ||
        kind == DriverKind::kFlipFlop) {
      info.depth[i] = 0;
    }
  }
  for (GateId g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    int in_depth = -1;
    for (NetId in : gate.inputs) {
      in_depth = std::max(in_depth, info.depth[in.index()]);
    }
    if (in_depth < 0) continue;  // constant-only cone
    info.depth[gate.output.index()] = in_depth + 1;
    info.max_depth = std::max(info.max_depth, in_depth + 1);
  }
  return info;
}

FanoutStats compute_fanout_stats(const Netlist& netlist,
                                 std::size_t max_bucket) {
  FanoutStats stats;
  stats.histogram.assign(max_bucket + 1, 0);
  std::size_t total = 0;
  std::size_t driven = 0;
  for (std::size_t i = 0; i < netlist.num_nets(); ++i) {
    const Net& net = netlist.net(NetId{i});
    const std::size_t fanout =
        net.fanout_gates.size() + net.fanout_ffs.size();
    if (fanout == 0) continue;
    ++driven;
    total += fanout;
    stats.max_fanout = std::max(stats.max_fanout, fanout);
    ++stats.histogram[std::min(fanout, max_bucket)];
  }
  stats.mean_fanout =
      driven > 0 ? static_cast<double>(total) / static_cast<double>(driven)
                 : 0.0;
  return stats;
}

std::vector<GateId> cone_of_influence(const Netlist& netlist, NetId net) {
  std::vector<char> in_cone(netlist.num_nets(), 0);
  in_cone[net.index()] = 1;
  // Walk the topological order backwards, marking inputs of cone gates.
  const auto order = netlist.topological_order();
  std::vector<char> gate_in_cone(netlist.num_gates(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Gate& gate = netlist.gate(*it);
    if (!in_cone[gate.output.index()]) continue;
    gate_in_cone[it->index()] = 1;
    for (NetId in : gate.inputs) in_cone[in.index()] = 1;
  }
  std::vector<GateId> cone;
  for (GateId g : order) {
    if (gate_in_cone[g.index()]) cone.push_back(g);
  }
  return cone;
}

std::vector<KindCount> kind_histogram(const Netlist& netlist) {
  std::vector<KindCount> counts;
  for (GateId g : netlist.gate_ids()) {
    const std::string& name = netlist.cell_of(g).name();
    bool found = false;
    for (auto& kc : counts) {
      if (kc.cell_name == name) {
        ++kc.count;
        found = true;
        break;
      }
    }
    if (!found) counts.push_back({name, 1});
  }
  std::sort(counts.begin(), counts.end(),
            [](const KindCount& a, const KindCount& b) {
              return a.count > b.count;
            });
  return counts;
}

std::vector<NetId> transitive_fanout(const Netlist& netlist, NetId net) {
  std::vector<char> reached(netlist.num_nets(), 0);
  std::queue<NetId> frontier;
  frontier.push(net);
  reached[net.index()] = 1;
  std::vector<NetId> result;
  while (!frontier.empty()) {
    const NetId current = frontier.front();
    frontier.pop();
    for (GateId g : netlist.net(current).fanout_gates) {
      const NetId out = netlist.gate(g).output;
      if (!reached[out.index()]) {
        reached[out.index()] = 1;
        result.push_back(out);
        frontier.push(out);
      }
    }
  }
  return result;
}

}  // namespace cwsp
