#include "netlist/bench_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "netlist/decompose.hpp"

namespace cwsp {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

struct Assignment {
  std::string lhs;
  std::string func;  // upper-cased
  std::vector<std::string> args;
  int line = 0;
};

std::vector<std::string> split_args(const std::string& s) {
  std::vector<std::string> args;
  std::string current;
  for (char c : s) {
    if (c == ',') {
      args.push_back(trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  const std::string last = trim(current);
  if (!last.empty()) args.push_back(last);
  return args;
}

}  // namespace

Netlist parse_bench(std::istream& in, const CellLibrary& library,
                    const std::string& name,
                    const BenchParseOptions& options) {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<Assignment> assignments;

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::string upper_line = upper(line);
    auto parse_decl = [&](const char* keyword) -> std::string {
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      CWSP_REQUIRE_MSG(open != std::string::npos && close != std::string::npos &&
                           close > open,
                       "bench line " << line_no << ": malformed " << keyword);
      return trim(line.substr(open + 1, close - open - 1));
    };

    if (upper_line.rfind("INPUT", 0) == 0) {
      inputs.push_back(parse_decl("INPUT"));
      continue;
    }
    if (upper_line.rfind("OUTPUT", 0) == 0) {
      outputs.push_back(parse_decl("OUTPUT"));
      continue;
    }

    const auto eq = line.find('=');
    CWSP_REQUIRE_MSG(eq != std::string::npos,
                     "bench line " << line_no << ": expected assignment: "
                                   << line);
    Assignment a;
    a.lhs = trim(line.substr(0, eq));
    a.line = line_no;
    std::string rhs = trim(line.substr(eq + 1));
    const auto open = rhs.find('(');
    if (open == std::string::npos) {
      // Constant alias form: `X = GND` / `X = VDD`.
      a.func = upper(rhs);
      CWSP_REQUIRE_MSG(a.func == "GND" || a.func == "VDD",
                       "bench line " << line_no << ": malformed RHS: " << rhs);
    } else {
      const auto close = rhs.rfind(')');
      CWSP_REQUIRE_MSG(close != std::string::npos && close > open,
                       "bench line " << line_no << ": malformed RHS: " << rhs);
      a.func = upper(trim(rhs.substr(0, open)));
      a.args = split_args(rhs.substr(open + 1, close - open - 1));
    }
    assignments.push_back(std::move(a));
  }

  Netlist netlist(library, name);
  auto record_issue = [&](int issue_line, const std::string& symbol,
                          const std::string& message, bool redefinition) {
    if (options.issues != nullptr) {
      options.issues->push_back(
          BenchParseIssue{issue_line, symbol, message, redefinition});
    }
  };

  // Pass 1: create every net. PIs first, then all assignment LHS nets.
  // Lenient mode drops redefined assignments (keeping the first driver)
  // instead of aborting.
  std::unordered_set<std::string> defined;
  std::vector<bool> dropped(assignments.size(), false);
  for (const std::string& pi : inputs) {
    netlist.add_primary_input(pi);
    defined.insert(pi);
  }
  for (std::size_t k = 0; k < assignments.size(); ++k) {
    const Assignment& a = assignments[k];
    if (defined.contains(a.lhs)) {
      CWSP_REQUIRE_MSG(options.lenient, "bench line " << a.line << ": "
                                                      << a.lhs
                                                      << " defined twice");
      record_issue(a.line, a.lhs,
                   a.lhs + " is driven more than once (redefined at line " +
                       std::to_string(a.line) + ")",
                   /*redefinition=*/true);
      dropped[k] = true;
      continue;
    }
    if (a.func == "GND") {
      netlist.add_constant(false, a.lhs);
    } else if (a.func == "VDD") {
      netlist.add_constant(true, a.lhs);
    } else {
      netlist.add_net(a.lhs);
    }
    defined.insert(a.lhs);
  }

  // Pass 2: wire gates and flip-flops. Lenient mode materialises
  // references to undefined signals as (undriven) nets so the lint rules
  // can report them with full connectivity context.
  auto net_of = [&](const std::string& n, int line_no2) {
    const auto id = netlist.find_net(n);
    if (!id.has_value() && options.lenient) {
      record_issue(line_no2, n, "undefined signal " + n, false);
      return netlist.add_net(n);
    }
    CWSP_REQUIRE_MSG(id.has_value(),
                     "bench line " << line_no2 << ": undefined net " << n);
    return *id;
  };

  for (std::size_t k = 0; k < assignments.size(); ++k) {
    const Assignment& a = assignments[k];
    if (dropped[k] || a.func == "GND" || a.func == "VDD") continue;
    std::vector<NetId> args;
    args.reserve(a.args.size());
    for (const std::string& arg : a.args) args.push_back(net_of(arg, a.line));
    const NetId out = *netlist.find_net(a.lhs);

    if (a.func == "DFF") {
      CWSP_REQUIRE_MSG(args.size() == 1,
                       "bench line " << a.line << ": DFF takes 1 input");
      netlist.add_flip_flop_onto(args[0], out);
      continue;
    }

    GateFunction fn;
    if (a.func == "NOT" || a.func == "INV") {
      fn = GateFunction::kNot;
    } else if (a.func == "BUF" || a.func == "BUFF") {
      fn = GateFunction::kBuf;
    } else if (a.func == "AND") {
      fn = GateFunction::kAnd;
    } else if (a.func == "OR") {
      fn = GateFunction::kOr;
    } else if (a.func == "NAND") {
      fn = GateFunction::kNand;
    } else if (a.func == "NOR") {
      fn = GateFunction::kNor;
    } else if (a.func == "XOR") {
      fn = GateFunction::kXor;
    } else if (a.func == "XNOR") {
      fn = GateFunction::kXnor;
    } else if (a.func == "MUX") {
      fn = GateFunction::kMux;
    } else {
      throw Error("bench line " + std::to_string(a.line) +
                  ": unknown function " + a.func);
    }
    build_function(netlist, fn, args, out);
  }

  for (const std::string& po : outputs) {
    netlist.mark_primary_output(net_of(po, 0));
  }

  if (!options.lenient) netlist.validate();
  return netlist;
}

Netlist parse_bench_string(const std::string& text, const CellLibrary& library,
                           const std::string& name,
                           const BenchParseOptions& options) {
  std::istringstream in(text);
  try {
    return parse_bench(in, library, name, options);
  } catch (const Error& e) {
    // Re-type every parse failure (the REQUIRE macros throw plain Error)
    // so callers can map it to the parse exit code.
    throw ParseError(e.what());
  }
}

Netlist parse_bench_file(const std::string& path, const CellLibrary& library,
                         const BenchParseOptions& options) {
  std::ifstream in(path);
  if (!in.good()) throw ParseError("cannot open bench file " + path);
  // Derive the netlist name from the file name, sans directory/extension.
  auto slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  try {
    return parse_bench(in, library, base, options);
  } catch (const Error& e) {
    throw ParseError(e.what());
  }
}

}  // namespace cwsp
