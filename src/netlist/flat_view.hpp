#pragma once
// Flattened, cache-friendly view of a Netlist for simulation kernels.
//
// The pointer-chasing Netlist API (std::vector per gate, std::string
// names, unordered maps) is the right structure for construction and
// transformation, but fault-injection campaigns evaluate the same netlist
// millions of times. A FlatNetlistView lowers everything a simulator
// needs into contiguous arrays built once per netlist:
//
//   * CSR gate-input lists and per-net fanout adjacency,
//   * per-gate truth tables, arities, output nets and inertial delays,
//   * per-net source descriptors (PI index / FF index / constant / gate),
//   * the memoized topological order, per-gate topo positions and levels,
//   * per-net fanout cones (the set of gates a glitch on that net can
//     reach), computed on demand and memoized — the basis for
//     cone-restricted event propagation.
//
// The view holds a non-owning pointer to the netlist it was built from
// and is immutable after construction (cone memoization is internally
// synchronized), so one instance can be shared read-only across campaign
// worker threads.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "netlist/netlist.hpp"

namespace cwsp {

class FlatNetlistView {
 public:
  /// How a net gets its value at the start of a cycle.
  enum class SourceKind : std::uint8_t {
    kPrimaryInput,  // source_index = PI position
    kFlipFlop,      // source_index = FF position
    kConstant,      // source_index = 0/1 constant value
    kGate,          // source_index = driving gate
    kNone,          // undriven (only in not-yet-validated netlists)
  };

  /// The netlist must outlive the view and must not be mutated while the
  /// view is alive (the view caches its topology).
  explicit FlatNetlistView(const Netlist& netlist);

  [[nodiscard]] static std::shared_ptr<const FlatNetlistView> build(
      const Netlist& netlist) {
    return std::make_shared<const FlatNetlistView>(netlist);
  }

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }

  [[nodiscard]] std::size_t num_nets() const { return source_kind_.size(); }
  [[nodiscard]] std::size_t num_gates() const { return gate_output_.size(); }
  [[nodiscard]] std::size_t num_flip_flops() const { return ff_d_net_.size(); }
  [[nodiscard]] std::size_t num_primary_inputs() const { return num_pis_; }

  // ---------------------------------------------------------- gates
  /// Input nets of gate `g` as a contiguous [begin, end) range.
  [[nodiscard]] const std::uint32_t* gate_inputs_begin(std::size_t g) const {
    return gate_input_nets_.data() + gate_input_offsets_[g];
  }
  [[nodiscard]] std::uint32_t gate_num_inputs(std::size_t g) const {
    return gate_input_offsets_[g + 1] - gate_input_offsets_[g];
  }
  [[nodiscard]] std::uint16_t gate_truth(std::size_t g) const {
    return gate_truth_[g];
  }
  [[nodiscard]] std::uint32_t gate_output(std::size_t g) const {
    return gate_output_[g];
  }
  [[nodiscard]] double gate_inertial_delay_ps(std::size_t g) const {
    return gate_inertial_ps_[g];
  }
  /// Position of gate `g` in the topological order.
  [[nodiscard]] std::uint32_t topo_position(std::size_t g) const {
    return topo_position_[g];
  }
  /// Logic level of gate `g`: 0 for gates fed only by sources, else
  /// 1 + max(level of gate-driven inputs).
  [[nodiscard]] std::uint32_t level(std::size_t g) const { return level_[g]; }
  [[nodiscard]] std::uint32_t num_levels() const { return num_levels_; }

  /// Gate indices in topological order (same order as
  /// Netlist::topological_order()).
  [[nodiscard]] const std::vector<std::uint32_t>& topo_order() const {
    return topo_order_;
  }

  // ---------------------------------------------------------- nets
  [[nodiscard]] SourceKind source_kind(std::size_t net) const {
    return source_kind_[net];
  }
  [[nodiscard]] std::uint32_t source_index(std::size_t net) const {
    return source_index_[net];
  }
  /// Fanout gates of net `net` as a contiguous [begin, end) range.
  [[nodiscard]] const std::uint32_t* net_fanout_begin(std::size_t net) const {
    return net_fanout_gates_.data() + net_fanout_offsets_[net];
  }
  [[nodiscard]] std::uint32_t net_fanout_size(std::size_t net) const {
    return net_fanout_offsets_[net + 1] - net_fanout_offsets_[net];
  }

  // ---------------------------------------------------------- endpoints
  [[nodiscard]] std::uint32_t ff_d_net(std::size_t ff) const {
    return ff_d_net_[ff];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& po_nets() const {
    return po_nets_;
  }

  // ---------------------------------------------------------- cones
  /// Gates inside the fanout cone of `net` — every gate a glitch on that
  /// net can influence — sorted by topological position. Memoized after
  /// the first request; safe to call concurrently.
  [[nodiscard]] const std::vector<std::uint32_t>& cone_of(NetId net) const;

 private:
  const Netlist* netlist_;
  std::size_t num_pis_ = 0;

  // Gate arrays (indexed by gate).
  std::vector<std::uint32_t> gate_input_offsets_;  // size num_gates + 1
  std::vector<std::uint32_t> gate_input_nets_;
  std::vector<std::uint16_t> gate_truth_;
  std::vector<std::uint32_t> gate_output_;
  std::vector<double> gate_inertial_ps_;
  std::vector<std::uint32_t> topo_position_;
  std::vector<std::uint32_t> level_;
  std::uint32_t num_levels_ = 0;
  std::vector<std::uint32_t> topo_order_;

  // Net arrays (indexed by net).
  std::vector<SourceKind> source_kind_;
  std::vector<std::uint32_t> source_index_;
  std::vector<std::uint32_t> net_fanout_offsets_;  // size num_nets + 1
  std::vector<std::uint32_t> net_fanout_gates_;

  // Endpoint arrays.
  std::vector<std::uint32_t> ff_d_net_;
  std::vector<std::uint32_t> po_nets_;

  // Memoized per-net cones.
  mutable std::mutex cone_mutex_;
  mutable std::vector<char> cone_ready_;
  mutable std::vector<std::vector<std::uint32_t>> cones_;
};

}  // namespace cwsp
