#pragma once
// Parser for the ISCAS85/89 ".bench" netlist format, with two documented
// extensions: MUX(d0, d1, sel) and constant assignments (`= GND` / `= VDD`).
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G17)
//   G17 = NAND(G1, G2)
//   G8  = NOT(G1)
//   G5  = DFF(G10)
//
// Gates wider than the library's 4-input cells are decomposed into
// balanced trees. Definitions may appear in any order (two-pass parse).

#include <istream>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace cwsp {

/// A structural problem tolerated by a lenient parse (see
/// BenchParseOptions): the source line, the offending signal name and a
/// human-readable description.
struct BenchParseIssue {
  int line = 0;
  std::string symbol;
  std::string message;
  /// True when `symbol` was assigned more than once (a multiply-driven
  /// net in the source; only the first driver is kept in the netlist).
  bool redefinition = false;
};

struct BenchParseOptions {
  /// Lenient mode, used by the lint front end: signals assigned twice and
  /// references to undefined signals are recorded in `issues` instead of
  /// aborting the parse, and the returned netlist is *not* validate()d so
  /// undriven/dangling nets survive for the design-rule checker to
  /// report. Syntax errors (malformed lines, unknown functions, wrong
  /// arity) still throw in either mode.
  bool lenient = false;
  std::vector<BenchParseIssue>* issues = nullptr;
};

/// Parses a .bench description. Throws cwsp::Error on syntax or structural
/// errors. The returned netlist is validated (unless options.lenient).
[[nodiscard]] Netlist parse_bench(std::istream& in, const CellLibrary& library,
                                  const std::string& name = "bench",
                                  const BenchParseOptions& options = {});

[[nodiscard]] Netlist parse_bench_string(const std::string& text,
                                         const CellLibrary& library,
                                         const std::string& name = "bench",
                                         const BenchParseOptions& options = {});

[[nodiscard]] Netlist parse_bench_file(const std::string& path,
                                       const CellLibrary& library,
                                       const BenchParseOptions& options = {});

}  // namespace cwsp
