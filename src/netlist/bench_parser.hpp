#pragma once
// Parser for the ISCAS85/89 ".bench" netlist format, with two documented
// extensions: MUX(d0, d1, sel) and constant assignments (`= GND` / `= VDD`).
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G17)
//   G17 = NAND(G1, G2)
//   G8  = NOT(G1)
//   G5  = DFF(G10)
//
// Gates wider than the library's 4-input cells are decomposed into
// balanced trees. Definitions may appear in any order (two-pass parse).

#include <istream>
#include <string>

#include "netlist/netlist.hpp"

namespace cwsp {

/// Parses a .bench description. Throws cwsp::Error on syntax or structural
/// errors. The returned netlist is validated.
[[nodiscard]] Netlist parse_bench(std::istream& in, const CellLibrary& library,
                                  const std::string& name = "bench");

[[nodiscard]] Netlist parse_bench_string(const std::string& text,
                                         const CellLibrary& library,
                                         const std::string& name = "bench");

[[nodiscard]] Netlist parse_bench_file(const std::string& path,
                                       const CellLibrary& library);

}  // namespace cwsp
