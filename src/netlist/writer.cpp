#include "netlist/writer.hpp"

#include <ostream>
#include <sstream>

namespace cwsp {
namespace {

const char* bench_function(CellKind kind) {
  switch (kind) {
    case CellKind::kInv: return "NOT";
    case CellKind::kBuf: return "BUFF";
    case CellKind::kNand2:
    case CellKind::kNand3:
    case CellKind::kNand4: return "NAND";
    case CellKind::kNor2:
    case CellKind::kNor3:
    case CellKind::kNor4: return "NOR";
    case CellKind::kAnd2:
    case CellKind::kAnd3:
    case CellKind::kAnd4: return "AND";
    case CellKind::kOr2:
    case CellKind::kOr3:
    case CellKind::kOr4: return "OR";
    case CellKind::kXor2: return "XOR";
    case CellKind::kXnor2: return "XNOR";
    case CellKind::kMux2: return "MUX";
    case CellKind::kAoi21:
    case CellKind::kOai21: return nullptr;  // expanded by the writer
  }
  return nullptr;
}

}  // namespace

void write_bench(const Netlist& netlist, std::ostream& os) {
  os << "# " << netlist.name() << " — written by cwsp-rad-hard\n";
  for (NetId pi : netlist.primary_inputs()) {
    os << "INPUT(" << netlist.net(pi).name << ")\n";
  }
  for (NetId po : netlist.primary_outputs()) {
    os << "OUTPUT(" << netlist.net(po).name << ")\n";
  }

  // Constants spelled in the extended dialect.
  for (std::size_t i = 0; i < netlist.num_nets(); ++i) {
    const Net& n = netlist.net(NetId{i});
    if (n.driver_kind == DriverKind::kConstant) {
      os << n.name << " = " << (n.constant_value ? "VDD" : "GND") << "\n";
    }
  }

  for (FlipFlopId f : netlist.flip_flop_ids()) {
    const FlipFlop& ff = netlist.flip_flop(f);
    os << netlist.net(ff.q).name << " = DFF(" << netlist.net(ff.d).name
       << ")\n";
  }

  for (GateId g : netlist.gate_ids()) {
    const Gate& gate = netlist.gate(g);
    const Cell& cell = netlist.cell_of(g);
    const std::string out = netlist.net(gate.output).name;
    auto in_name = [&](std::size_t i) {
      return netlist.net(gate.inputs[i]).name;
    };

    if (const char* fn = bench_function(cell.kind())) {
      os << out << " = " << fn << '(';
      for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
        if (i) os << ", ";
        os << in_name(i);
      }
      os << ")\n";
      continue;
    }

    // AOI21(a,b,c) = NOT(OR(AND(a,b), c)); OAI21 dually.
    const bool is_aoi = cell.kind() == CellKind::kAoi21;
    const std::string t1 = out + "__x1";
    const std::string t2 = out + "__x2";
    os << t1 << " = " << (is_aoi ? "AND" : "OR") << '(' << in_name(0) << ", "
       << in_name(1) << ")\n";
    os << t2 << " = " << (is_aoi ? "OR" : "AND") << '(' << t1 << ", "
       << in_name(2) << ")\n";
    os << out << " = NOT(" << t2 << ")\n";
  }
}

std::string to_bench_string(const Netlist& netlist) {
  std::ostringstream os;
  write_bench(netlist, os);
  return os.str();
}

void write_dot(const Netlist& netlist, std::ostream& os) {
  os << "digraph \"" << netlist.name() << "\" {\n  rankdir=LR;\n";
  for (NetId pi : netlist.primary_inputs()) {
    os << "  \"" << netlist.net(pi).name << "\" [shape=triangle];\n";
  }
  for (GateId g : netlist.gate_ids()) {
    const Gate& gate = netlist.gate(g);
    const std::string out = netlist.net(gate.output).name;
    os << "  \"" << out << "\" [shape=box,label=\""
       << netlist.cell_of(g).name() << "\\n" << out << "\"];\n";
    for (NetId in : gate.inputs) {
      os << "  \"" << netlist.net(in).name << "\" -> \"" << out << "\";\n";
    }
  }
  for (FlipFlopId f : netlist.flip_flop_ids()) {
    const FlipFlop& ff = netlist.flip_flop(f);
    const std::string q = netlist.net(ff.q).name;
    os << "  \"" << q << "\" [shape=box,peripheries=2,label=\"DFF\\n" << q
       << "\"];\n";
    os << "  \"" << netlist.net(ff.d).name << "\" -> \"" << q << "\";\n";
  }
  for (NetId po : netlist.primary_outputs()) {
    os << "  \"po_" << netlist.net(po).name
       << "\" [shape=doublecircle,label=\"" << netlist.net(po).name
       << "\"];\n";
    os << "  \"" << netlist.net(po).name << "\" -> \"po_"
       << netlist.net(po).name << "\";\n";
  }
  os << "}\n";
}

}  // namespace cwsp
