#pragma once
// Reporters for lint results: a human-readable text listing and a
// machine-readable JSON document (schema documented in docs/lint.md).

#include <string>

#include "lint/diagnostic.hpp"

namespace cwsp::lint {

/// One line per diagnostic plus a summary line; ends with '\n'.
[[nodiscard]] std::string format_text(const LintReport& report);

/// JSON object: {"design", "clean", "counts": {...}, "diagnostics":
/// [{"rule", "severity", "message", "nets", "gates", "flip_flops"}]}.
[[nodiscard]] std::string format_json(const LintReport& report);

/// JSON string escaping (exposed for the CLI's ad-hoc fields).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace cwsp::lint
