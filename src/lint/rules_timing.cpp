#include <algorithm>
#include <sstream>

#include "lint/rules.hpp"

namespace cwsp::lint {
namespace {

using core::DesignTiming;
using core::ProtectionParams;

std::string ps(Picoseconds value) {
  std::ostringstream os;
  os << value.value() << " ps";
  return os.str();
}

DesignTiming timing_of(const LintContext& ctx) {
  return DesignTiming{ctx.sta->dmax, ctx.sta->dmin};
}

/// The clock period the rules check against: the explicit one when given,
/// otherwise the design's own hardened period floored at Eq. 6's minimum
/// (what the campaign driver uses).
Picoseconds effective_period(const LintContext& ctx) {
  if (ctx.options.clock_period.has_value()) return *ctx.options.clock_period;
  const ProtectionParams& params = *ctx.options.params;
  return std::max(
      core::hardened_clock_period(ctx.sta->dmax, ctx.netlist->library()),
      core::min_clock_period_for_delta(params));
}

// δ must satisfy Eq. 5: δ ≤ min{D_min/2, (D_max − Δ)/2}. A positive but
// reduced envelope is a warning (Table-3 designs run in exactly this
// regime); a vanished envelope means the protection hardware cannot
// tolerate any glitch — an error.

void rule_delta_envelope(const LintContext& ctx, LintReport& report) {
  if (!ctx.options.params.has_value()) return;
  const ProtectionParams& params = *ctx.options.params;
  const DesignTiming timing = timing_of(ctx);
  const Picoseconds max_glitch =
      core::max_protected_glitch(timing, params, ctx.options.clock_skew);
  if (max_glitch.value() <= 0.0 ||
      core::supports_full_protection(timing, params, ctx.options.clock_skew)) {
    return;
  }
  Diagnostic d;
  d.rule_id = "delta-envelope";
  d.severity = Severity::kWarning;
  d.nets.push_back(ctx.sta->dmax_endpoint);
  d.message = "designed delta " + ps(params.delta) +
              " exceeds the protected envelope " + ps(max_glitch) +
              " (Eq. 5: Dmax " + ps(timing.dmax) + ", Dmin " +
              ps(timing.dmin) + ", Delta " +
              ps(params.protection_path_delta()) + ")";
  report.add(std::move(d));
}

void rule_delta_unprotectable(const LintContext& ctx, LintReport& report) {
  if (!ctx.options.params.has_value()) return;
  const ProtectionParams& params = *ctx.options.params;
  const DesignTiming timing = timing_of(ctx);
  const Picoseconds max_glitch =
      core::max_protected_glitch(timing, params, ctx.options.clock_skew);
  if (max_glitch.value() > 0.0) return;
  Diagnostic d;
  d.rule_id = "delta-unprotectable";
  d.severity = Severity::kError;
  d.nets.push_back(ctx.sta->dmax_endpoint);
  d.message =
      "protection envelope is empty: min{Dmin/2, (Dmax - Delta)/2} <= 0"
      " (Dmax " +
      ps(timing.dmax) + ", Dmin " + ps(timing.dmin) + ", Delta " +
      ps(params.protection_path_delta()) + ", skew " +
      ps(ctx.options.clock_skew) + ")";
  report.add(std::move(d));
}

void rule_clk_del_period(const LintContext& ctx, LintReport& report) {
  if (!ctx.options.params.has_value()) return;
  const ProtectionParams& params = *ctx.options.params;
  const Picoseconds period = effective_period(ctx);
  const Picoseconds clk_del = params.clk_del_delay();
  if (clk_del.value() < period.value()) return;
  Diagnostic d;
  d.rule_id = "clk-del-period";
  d.severity = Severity::kError;
  d.message = "CLK_DEL lag " + ps(clk_del) +
              " (Eq. 3) does not fit within the clock period " + ps(period);
  report.add(std::move(d));
}

void rule_period_too_short(const LintContext& ctx, LintReport& report) {
  if (!ctx.options.params.has_value()) return;
  if (!ctx.options.clock_period.has_value()) return;
  const ProtectionParams& params = *ctx.options.params;
  const Picoseconds period = *ctx.options.clock_period;
  const Picoseconds admissible = core::max_delta_for_period(period, params);
  if (admissible.value() >= params.delta.value()) return;
  Diagnostic d;
  d.rule_id = "period-too-short";
  d.severity = Severity::kError;
  d.message = "clock period " + ps(period) + " admits delta <= " +
              ps(admissible) + " (Eq. 6), below the designed " +
              ps(params.delta) + "; need at least " +
              ps(core::min_clock_period_for_delta(params));
  report.add(std::move(d));
}

// Designs whose reported D_max depends on a delay arc that could not be
// electrically characterized (the solver degraded it to the calibrated
// analytical model) carry extra timing uncertainty: the number is a
// model prediction, not a measurement.

void rule_timing_fallback_arc(const LintContext& ctx, LintReport& report) {
  if (ctx.options.fallback_cells.empty()) return;
  const TimingProvenanceAudit audit = audit_timing_provenance(
      *ctx.netlist, *ctx.sta, ctx.options.fallback_cells);
  if (!audit.critical_path_tainted) return;
  Diagnostic d;
  d.rule_id = "timing-fallback-arc";
  d.severity = Severity::kWarning;
  d.nets.push_back(ctx.sta->dmax_endpoint);
  d.gates = audit.tainted_critical_gates;
  std::ostringstream os;
  os << "critical path (Dmax " << ps(ctx.sta->dmax) << ") rests on "
     << audit.tainted_critical_gates.size()
     << " gate(s) with calibrated-fallback delay arcs ("
     << audit.fallback_gates.size()
     << " such gate(s) in the design); the reported timing is a model "
        "prediction, not an electrical measurement";
  d.message = os.str();
  report.add(std::move(d));
}

}  // namespace

void register_timing_rules(RuleRegistry& registry) {
  registry.add(Rule{"delta-envelope", RuleCategory::kTiming,
                    Severity::kWarning,
                    "the designed delta must satisfy Eq. 5's envelope",
                    rule_delta_envelope});
  registry.add(Rule{"delta-unprotectable", RuleCategory::kTiming,
                    Severity::kError,
                    "the protection envelope must be non-empty",
                    rule_delta_unprotectable});
  registry.add(Rule{"clk-del-period", RuleCategory::kTiming,
                    Severity::kError,
                    "CLK_DEL's lag (Eq. 3) must fit in the clock period",
                    rule_clk_del_period});
  registry.add(Rule{"period-too-short", RuleCategory::kTiming,
                    Severity::kError,
                    "the clock period must admit the designed delta (Eq. 6)",
                    rule_period_too_short});
  registry.add(Rule{"timing-fallback-arc", RuleCategory::kTiming,
                    Severity::kWarning,
                    "the critical path must not rest on calibrated-fallback "
                    "delay arcs",
                    rule_timing_fallback_arc});
}

}  // namespace cwsp::lint
