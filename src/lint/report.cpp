#include "lint/report.hpp"

#include <cstdio>
#include <sstream>

namespace cwsp::lint {
namespace {

void append_name_array(std::ostringstream& os, const char* key,
                       const std::vector<std::string>& names) {
  os << '"' << key << "\": [";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << json_escape(names[i]) << '"';
  }
  os << ']';
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_text(const LintReport& report) {
  std::ostringstream os;
  for (const Diagnostic& d : report.diagnostics) {
    os << to_string(d.severity) << " [" << d.rule_id << "] " << d.message
       << '\n';
  }
  os << "lint '" << report.design << "': ";
  if (report.clean()) {
    os << "clean\n";
  } else {
    os << report.errors() << " error(s), " << report.warnings()
       << " warning(s), " << report.count(Severity::kInfo) << " info\n";
  }
  return os.str();
}

std::string format_json(const LintReport& report) {
  std::ostringstream os;
  os << "{\n  \"design\": \"" << json_escape(report.design) << "\",\n";
  os << "  \"clean\": " << (report.clean() ? "true" : "false") << ",\n";
  os << "  \"counts\": {\"error\": " << report.errors()
     << ", \"warning\": " << report.warnings()
     << ", \"info\": " << report.count(Severity::kInfo) << "},\n";
  os << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"rule\": \""
       << json_escape(d.rule_id) << "\", \"severity\": \""
       << to_string(d.severity) << "\", \"message\": \""
       << json_escape(d.message) << "\", ";
    append_name_array(os, "nets", d.net_names);
    os << ", ";
    append_name_array(os, "gates", d.gate_names);
    os << ", ";
    append_name_array(os, "flip_flops", d.ff_names);
    os << '}';
  }
  os << (report.diagnostics.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace cwsp::lint
