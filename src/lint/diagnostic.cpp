#include "lint/diagnostic.hpp"

#include <algorithm>

namespace cwsp::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::size_t LintReport::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.severity == severity; }));
}

bool LintReport::fails_at(Severity threshold) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return static_cast<int>(d.severity) >=
                              static_cast<int>(threshold);
                     });
}

std::vector<Diagnostic> LintReport::by_rule(const std::string& rule_id) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.rule_id == rule_id) out.push_back(d);
  }
  return out;
}

bool LintReport::has_rule(const std::string& rule_id) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule_id == rule_id; });
}

void LintReport::merge(const LintReport& other) {
  diagnostics.insert(diagnostics.end(), other.diagnostics.begin(),
                     other.diagnostics.end());
}

}  // namespace cwsp::lint
