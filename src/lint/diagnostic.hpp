#pragma once
// Diagnostics emitted by the netlist/hardening design-rule checker: a
// stable rule id, a severity, the netlist entities involved and a
// human-readable message. A LintReport aggregates one lint run.

#include <cstddef>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace cwsp::lint {

enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

[[nodiscard]] const char* to_string(Severity severity);

struct Diagnostic {
  std::string rule_id;
  Severity severity = Severity::kError;
  std::string message;
  /// Entities the diagnostic anchors to (any subset may be empty).
  std::vector<NetId> nets;
  std::vector<GateId> gates;
  std::vector<FlipFlopId> ffs;
  /// Entity names, resolved by run_lint so reports stay self-contained
  /// once merged across netlists (same order as the id vectors).
  std::vector<std::string> net_names;
  std::vector<std::string> gate_names;
  std::vector<std::string> ff_names;
};

struct LintReport {
  /// Name of the linted design (netlist name or file stem).
  std::string design;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::kError); }
  [[nodiscard]] std::size_t warnings() const {
    return count(Severity::kWarning);
  }
  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
  /// True when any diagnostic is at or above `threshold`.
  [[nodiscard]] bool fails_at(Severity threshold) const;
  /// All diagnostics produced by one rule (tests use this heavily).
  [[nodiscard]] std::vector<Diagnostic> by_rule(
      const std::string& rule_id) const;
  [[nodiscard]] bool has_rule(const std::string& rule_id) const;

  void add(Diagnostic diagnostic) {
    diagnostics.push_back(std::move(diagnostic));
  }
  /// Appends another report's diagnostics (multi-netlist lint runs).
  void merge(const LintReport& other);
};

}  // namespace cwsp::lint
