#pragma once
// The rule registry of the design-rule checker. Rules are small pure
// functions over a LintContext; the registry carries their metadata
// (stable id, category, default severity, one-line description) so the
// CLI and docs can enumerate them.
//
// Categories:
//   * structure — netlist well-formedness (always run)
//   * timing    — STA-backed protection-envelope checks (Eqs. 2–6); run
//                 when the context carries ProtectionParams
//   * hardening — structural invariants of an elaborated hardened system
//                 and EQGLB-tree model consistency; run on request
//   * certify   — static SET-coverage certification (src/analysis); the
//                 rules are registered by the analysis library via
//                 register_certify_rules (this library cannot link it),
//                 and run when options.certify is set with params
//
// The checker lives below cwsp::core on purpose: core's harden() calls
// the structure rules as a precondition, so this library must not link
// against core (the protection equations it needs are header-inline).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cwsp/eqglb_tree.hpp"
#include "cwsp/protection_params.hpp"
#include "cwsp/timing.hpp"
#include "lint/diagnostic.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace cwsp::lint {

enum class RuleCategory : std::uint8_t {
  kStructure,
  kTiming,
  kHardening,
  kCertify,
};

[[nodiscard]] const char* to_string(RuleCategory category);

struct LintOptions {
  /// Protection configuration to check the design against. Setting this
  /// enables the timing rules.
  std::optional<core::ProtectionParams> params;
  /// Explicit clock period to verify Eq. 6 against; when absent the
  /// period rules use the design's own hardened period (which satisfies
  /// Eq. 6 by construction, so they can only fire with an explicit
  /// period).
  std::optional<Picoseconds> clock_period;
  Picoseconds clock_skew{0.0};
  /// Run the hardening *netlist* rules: the linted netlist claims to be
  /// an elaborated hardened system (shadow FFs named cw<i>, suppression
  /// FF eqglbf — the naming convention of elaborate_hardened_system).
  bool hardened_structure = false;
  /// Claimed EQGLB reduction model to cross-check against the protected
  /// flip-flop count.
  std::optional<core::EqglbTree> tree;
  /// Cells whose electrical characterization degraded to the calibrated
  /// analytical model (CharacterizationReport::fallback_cells). Non-empty
  /// enables the `timing-fallback-arc` rule, which warns when the
  /// critical path rests on such arcs.
  std::vector<std::string> fallback_cells;
  /// Run the certify rule family (requires `params` and a registry the
  /// analysis library registered its rules into; a no-op otherwise).
  bool certify = false;
  /// Envelope width for the certifier, ps (0 → the params' designed δ).
  double certify_envelope_ps = 0.0;
  /// Seed for the certifier's fallback sweeps.
  std::uint64_t certify_seed = 1;
};

struct LintContext {
  const Netlist* netlist = nullptr;
  LintOptions options;
  /// Filled by run_lint before the timing rules execute (null when the
  /// structure rules found errors — STA needs a well-formed netlist).
  const TimingResult* sta = nullptr;
};

struct Rule {
  std::string id;
  RuleCategory category = RuleCategory::kStructure;
  Severity severity = Severity::kError;
  std::string description;
  std::function<void(const LintContext&, LintReport&)> run;
};

class RuleRegistry {
 public:
  /// Registers a rule; ids must be unique.
  void add(Rule rule);
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
  [[nodiscard]] const Rule* find(const std::string& id) const;

 private:
  std::vector<Rule> rules_;
};

/// The built-in rule set (see docs/lint.md for the catalogue).
[[nodiscard]] const RuleRegistry& default_registry();

/// Registration helpers, one per category (used by default_registry and
/// by tests that want a narrower registry).
void register_structure_rules(RuleRegistry& registry);
void register_timing_rules(RuleRegistry& registry);
void register_hardening_rules(RuleRegistry& registry);

/// Runs every applicable rule of `registry` over the netlist. Structure
/// rules always run; timing rules run when options.params is set and the
/// structure pass found no errors; hardening rules run when
/// options.hardened_structure or options.tree ask for them.
[[nodiscard]] LintReport run_lint(const Netlist& netlist,
                                  const LintOptions& options = {},
                                  const RuleRegistry& registry =
                                      default_registry());

/// Structure-rules-only convenience used as a precondition check by the
/// hardening flow: throws cwsp::Error listing every error-severity
/// diagnostic when the netlist is malformed.
void require_clean_structure(const Netlist& netlist);

}  // namespace cwsp::lint
