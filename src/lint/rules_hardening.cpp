// Hardening rules: structural invariants of an elaborated hardened
// system (every system flip-flop carries its CWSP shadow latch, repair
// MUX and equivalence checker; the EQGLB/EQGLBF suppression pair exists)
// plus model-level consistency of a claimed EQGLB reduction tree.
//
// Protection instances are identified by the naming convention of
// elaborate_hardened_system: shadow (CWSP/DFF2) flip-flops are named
// cw<i> and the suppression flip-flop eqglbf; every other flip-flop is a
// system state bit that must be protected.

#include <algorithm>
#include <cctype>
#include <string>

#include "cell/cell.hpp"
#include "lint/rules.hpp"

namespace cwsp::lint {
namespace {

bool is_shadow_ff_name(const std::string& name) {
  if (name.size() < 3 || name.rfind("cw", 0) != 0) return false;
  return std::all_of(name.begin() + 2, name.end(),
                     [](unsigned char c) { return std::isdigit(c); });
}

bool is_protection_ff(const Netlist& nl, FlipFlopId id) {
  const std::string& name = nl.flip_flop(id).name;
  return name == "eqglbf" || is_shadow_ff_name(name);
}

void rule_hardening_repair_mux(const LintContext& ctx, LintReport& report) {
  if (!ctx.options.hardened_structure) return;
  const Netlist& nl = *ctx.netlist;
  for (FlipFlopId f : nl.flip_flop_ids()) {
    if (is_protection_ff(nl, f)) continue;
    const FlipFlop& ff = nl.flip_flop(f);
    const Net& d = nl.net(ff.d);

    const bool has_mux =
        d.driver_kind == DriverKind::kGate &&
        nl.cell_of(GateId{d.driver_index}).kind() == CellKind::kMux2;
    if (has_mux) {
      // The MUX's recompute leg (d1) must come from the CWSP shadow
      // latch, i.e. be flip-flop-driven.
      const Gate& mux = nl.gate(GateId{d.driver_index});
      if (nl.net(mux.inputs[1]).driver_kind == DriverKind::kFlipFlop) {
        continue;
      }
      Diagnostic d2;
      d2.rule_id = "hardening-shadow-ff";
      d2.severity = Severity::kError;
      d2.ffs.push_back(f);
      d2.nets.push_back(mux.inputs[1]);
      d2.message = "repair MUX of flip-flop '" + ff.name +
                   "' does not recompute from a CWSP shadow latch (net '" +
                   nl.net(mux.inputs[1]).name + "' is not flip-flop-driven)";
      report.add(std::move(d2));
      continue;
    }
    Diagnostic diag;
    diag.rule_id = "hardening-repair-mux";
    diag.severity = Severity::kError;
    diag.ffs.push_back(f);
    diag.nets.push_back(ff.d);
    diag.message = "flip-flop '" + ff.name +
                   "' has no repair MUX in front of its D pin (net '" +
                   nl.net(ff.d).name + "')";
    report.add(std::move(diag));
  }
}

void rule_hardening_eq_checker(const LintContext& ctx, LintReport& report) {
  if (!ctx.options.hardened_structure) return;
  const Netlist& nl = *ctx.netlist;
  for (FlipFlopId f : nl.flip_flop_ids()) {
    if (is_protection_ff(nl, f)) continue;
    const FlipFlop& ff = nl.flip_flop(f);
    const Net& q = nl.net(ff.q);
    const bool checked = std::any_of(
        q.fanout_gates.begin(), q.fanout_gates.end(), [&](GateId g) {
          return nl.cell_of(g).kind() == CellKind::kXnor2;
        });
    if (checked) continue;
    Diagnostic d;
    d.rule_id = "hardening-eq-checker";
    d.severity = Severity::kError;
    d.ffs.push_back(f);
    d.nets.push_back(ff.q);
    d.message = "flip-flop '" + ff.name +
                "' is never compared against its CWSP value (no XNOR on Q)";
    report.add(std::move(d));
  }
}

void rule_hardening_suppression_ff(const LintContext& ctx,
                                   LintReport& report) {
  if (!ctx.options.hardened_structure) return;
  const Netlist& nl = *ctx.netlist;
  auto fail = [&](const std::string& message) {
    Diagnostic d;
    d.rule_id = "hardening-suppression-ff";
    d.severity = Severity::kError;
    d.message = message;
    report.add(std::move(d));
  };

  const auto eqglb = nl.find_net("eqglb");
  if (!eqglb.has_value()) {
    fail("no 'eqglb' net: the EQ signals are never reduced");
    return;
  }
  if (nl.net(*eqglb).driver_kind != DriverKind::kGate) {
    fail("'eqglb' must be driven by the reduction logic");
  }
  const auto eqglbf = nl.find_net("eqglbf");
  if (!eqglbf.has_value()) {
    fail("no 'eqglbf' net: detections cannot suppress the next check");
    return;
  }
  const Net& suppress = nl.net(*eqglbf);
  if (suppress.driver_kind != DriverKind::kFlipFlop) {
    fail("'eqglbf' must be a flip-flop output (DFF1 of Fig. 5)");
    return;
  }
  const FlipFlop& dff1 = nl.flip_flop(FlipFlopId{suppress.driver_index});
  if (dff1.d != *eqglb) {
    fail("suppression flip-flop must sample 'eqglb', samples '" +
         nl.net(dff1.d).name + "'");
  }
}

void rule_eqglb_tree_bounds(const LintContext& ctx, LintReport& report) {
  if (!ctx.options.tree.has_value()) return;
  const core::EqglbTree& tree = *ctx.options.tree;
  auto fail = [&](const std::string& message) {
    Diagnostic d;
    d.rule_id = "eqglb-tree-bounds";
    d.severity = Severity::kError;
    d.message = "EQGLB tree: " + message;
    report.add(std::move(d));
  };

  if (tree.num_inputs < 1) {
    fail("needs at least one EQ input, has " +
         std::to_string(tree.num_inputs));
    return;
  }
  // Protected-FF count of the linted design (its own FFs, or one per
  // primary output for the paper's combinational benchmarks).
  const Netlist& nl = *ctx.netlist;
  const int expected_inputs =
      nl.num_flip_flops() > 0
          ? static_cast<int>(nl.num_flip_flops())
          : static_cast<int>(nl.primary_outputs().size());
  if (tree.num_inputs != expected_inputs) {
    fail("has " + std::to_string(tree.num_inputs) + " EQ inputs but '" +
         nl.name() + "' protects " + std::to_string(expected_inputs) +
         " flip-flop(s)");
  }
  const core::EqglbTree reference = core::build_eqglb_tree(tree.num_inputs);
  if (tree.num_inputs > cal::kTreeSingleLevelMax && tree.levels < 2) {
    fail("a single NOR level only serves up to " +
         std::to_string(cal::kTreeSingleLevelMax) + " inputs; " +
         std::to_string(tree.num_inputs) + " need a multilevel reduction");
  } else if (tree.levels != reference.levels) {
    fail("has " + std::to_string(tree.levels) + " level(s), expected " +
         std::to_string(reference.levels));
  }
  if (tree.first_level_gates != reference.first_level_gates) {
    fail("has " + std::to_string(tree.first_level_gates) +
         " first-level gate(s), expected " +
         std::to_string(reference.first_level_gates));
  } else if (tree.levels >= 2 &&
             static_cast<long>(tree.first_level_gates) * cal::kTreeChunk <
                 tree.num_inputs) {
    fail(std::to_string(tree.first_level_gates) + " chunks of <= " +
         std::to_string(cal::kTreeChunk) + " inputs cannot cover " +
         std::to_string(tree.num_inputs) + " EQ signals");
  }
}

}  // namespace

void register_hardening_rules(RuleRegistry& registry) {
  registry.add(Rule{"hardening-repair-mux", RuleCategory::kHardening,
                    Severity::kError,
                    "every system flip-flop needs a repair MUX on D",
                    rule_hardening_repair_mux});
  registry.add(Rule{"hardening-shadow-ff", RuleCategory::kHardening,
                    Severity::kError,
                    "the repair MUX must recompute from the CWSP latch",
                    [](const LintContext&, LintReport&) {
                      // Emitted by hardening-repair-mux's traversal; the
                      // registry entry documents the id.
                    }});
  registry.add(Rule{"hardening-eq-checker", RuleCategory::kHardening,
                    Severity::kError,
                    "every system flip-flop needs an XNOR equivalence check",
                    rule_hardening_eq_checker});
  registry.add(Rule{"hardening-suppression-ff", RuleCategory::kHardening,
                    Severity::kError,
                    "the EQGLB/EQGLBF suppression pair must exist",
                    rule_hardening_suppression_ff});
  registry.add(Rule{"eqglb-tree-bounds", RuleCategory::kHardening,
                    Severity::kError,
                    "the EQGLB reduction must match the protected-FF count",
                    rule_eqglb_tree_bounds});
}

}  // namespace cwsp::lint
