#pragma once
// Lint baselines: freeze today's diagnostics so future runs fail only on
// *new* findings. This is what lets a strict rule family (e.g. certify)
// land as warnings on benches that legitimately fail it today.
//
// A baseline entry is a stable diagnostic identity — design, rule id and
// the sorted entity names it anchors to — with a count. Messages and
// ordering are deliberately excluded (they carry margins, line numbers
// and other values that shift with unrelated edits). Parse failures
// (rule id "parse-error") are never recorded or suppressed: a design that
// stops parsing must always fail.
//
// Workflow (docs/lint.md):
//   cwsp_tool lint --baseline base.json design.bench   # absent: record
//   cwsp_tool lint --baseline base.json design.bench   # present: apply

#include <cstddef>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"

namespace cwsp::lint {

struct Baseline {
  struct Entry {
    std::string key;
    std::size_t count = 0;
  };
  /// Sorted by key; unique keys.
  std::vector<Entry> entries;
};

/// Stable identity of one diagnostic within a design.
[[nodiscard]] std::string baseline_key(const std::string& design,
                                       const Diagnostic& diagnostic);

/// Serializes the report's baselinable diagnostics (schema
/// cwsp-lint-baseline-v1, keys sorted); ends with '\n'.
[[nodiscard]] std::string format_baseline(const LintReport& report);

/// Parses a baseline document; throws cwsp::Error on malformed input or
/// an unknown schema.
[[nodiscard]] Baseline parse_baseline(const std::string& text);

/// Removes diagnostics covered by the baseline (up to each entry's count,
/// in report order) in place. Returns the number suppressed.
std::size_t apply_baseline(LintReport& report, const Baseline& baseline);

}  // namespace cwsp::lint
