#include "lint/baseline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "lint/report.hpp"

namespace cwsp::lint {
namespace {

constexpr const char* kSchema = "cwsp-lint-baseline-v1";

/// Parse failures must always fail, baseline or not.
bool baselinable(const Diagnostic& d) { return d.rule_id != "parse-error"; }

std::string sorted_names(const Diagnostic& d) {
  std::vector<std::string> names;
  names.reserve(d.net_names.size() + d.gate_names.size() +
                d.ff_names.size());
  names.insert(names.end(), d.net_names.begin(), d.net_names.end());
  names.insert(names.end(), d.gate_names.begin(), d.gate_names.end());
  names.insert(names.end(), d.ff_names.begin(), d.ff_names.end());
  std::sort(names.begin(), names.end());
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) out += ',';
    out += names[i];
  }
  return out;
}

// ------------------------------------------------- minimal JSON reader
// The baseline schema is a fixed shape ({"schema":..., "entries":[{"key":
// string, "count": integer}]}), so a small recursive-descent reader over
// exactly that subset keeps this library free of a JSON dependency. It
// accepts arbitrary whitespace and the escapes json_escape produces.

struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  [[nodiscard]] bool at(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  void expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) {
      throw Error(std::string("baseline: expected '") + c + "' at offset " +
                  std::to_string(pos));
    }
    ++pos;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char e = text[pos++];
        switch (e) {
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          case '/':
            c = '/';
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          default:
            throw Error(std::string("baseline: unsupported escape '\\") + e +
                        "'");
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }
  std::size_t parse_count() {
    skip_ws();
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      throw Error("baseline: expected integer at offset " +
                  std::to_string(pos));
    }
    std::size_t value = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      value = value * 10 + static_cast<std::size_t>(text[pos] - '0');
      ++pos;
    }
    return value;
  }
};

}  // namespace

std::string baseline_key(const std::string& design,
                         const Diagnostic& diagnostic) {
  return design + "|" + diagnostic.rule_id + "|" + sorted_names(diagnostic);
}

std::string format_baseline(const LintReport& report) {
  std::map<std::string, std::size_t> counts;
  for (const Diagnostic& d : report.diagnostics) {
    if (!baselinable(d)) continue;
    ++counts[baseline_key(report.design, d)];
  }
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kSchema << "\",\n  \"entries\": [";
  bool first = true;
  for (const auto& [key, count] : counts) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"key\": \"" << json_escape(key)
       << "\", \"count\": " << count << "}";
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

Baseline parse_baseline(const std::string& text) {
  Cursor cur{text};
  cur.expect('{');

  Baseline baseline;
  bool schema_seen = false;
  bool first_member = true;
  while (!cur.at('}')) {
    if (!first_member) cur.expect(',');
    first_member = false;
    const std::string member = cur.parse_string();
    cur.expect(':');
    if (member == "schema") {
      const std::string schema = cur.parse_string();
      if (schema != kSchema) {
        throw Error("baseline: unknown schema '" + schema + "'");
      }
      schema_seen = true;
    } else if (member == "entries") {
      cur.expect('[');
      bool first_entry = true;
      while (!cur.at(']')) {
        if (!first_entry) cur.expect(',');
        first_entry = false;
        cur.expect('{');
        Baseline::Entry entry;
        bool first_field = true;
        while (!cur.at('}')) {
          if (!first_field) cur.expect(',');
          first_field = false;
          const std::string field = cur.parse_string();
          cur.expect(':');
          if (field == "key") {
            entry.key = cur.parse_string();
          } else if (field == "count") {
            entry.count = cur.parse_count();
          } else {
            throw Error("baseline: unknown entry field '" + field + "'");
          }
        }
        cur.expect('}');
        baseline.entries.push_back(std::move(entry));
      }
      cur.expect(']');
    } else {
      throw Error("baseline: unknown member '" + member + "'");
    }
  }
  cur.expect('}');
  if (!schema_seen) throw Error("baseline: missing schema");

  std::sort(baseline.entries.begin(), baseline.entries.end(),
            [](const Baseline::Entry& a, const Baseline::Entry& b) {
              return a.key < b.key;
            });
  for (std::size_t i = 1; i < baseline.entries.size(); ++i) {
    if (baseline.entries[i].key == baseline.entries[i - 1].key) {
      throw Error("baseline: duplicate key '" + baseline.entries[i].key +
                  "'");
    }
  }
  return baseline;
}

std::size_t apply_baseline(LintReport& report, const Baseline& baseline) {
  std::map<std::string, std::size_t> budget;
  for (const Baseline::Entry& entry : baseline.entries) {
    budget[entry.key] = entry.count;
  }

  std::vector<Diagnostic> kept;
  kept.reserve(report.diagnostics.size());
  std::size_t suppressed = 0;
  for (Diagnostic& d : report.diagnostics) {
    if (baselinable(d)) {
      const auto it = budget.find(baseline_key(report.design, d));
      if (it != budget.end() && it->second > 0) {
        --it->second;
        ++suppressed;
        continue;
      }
    }
    kept.push_back(std::move(d));
  }
  report.diagnostics = std::move(kept);
  return suppressed;
}

}  // namespace cwsp::lint
