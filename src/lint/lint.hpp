#pragma once
// Umbrella entry points of the design-rule checker: lint an in-memory
// netlist (rules.hpp) or a .bench design straight from disk, where a
// lenient parse lets source-level problems (multiply-driven signals,
// references to undefined nets) surface as diagnostics instead of
// exceptions.

#include <string>
#include <vector>

#include "lint/report.hpp"
#include "lint/rules.hpp"
#include "netlist/bench_parser.hpp"

namespace cwsp::lint {

/// Converts lenient-parse issues into diagnostics: signal redefinitions
/// become multiply-driven-net errors (the in-memory netlist keeps only
/// the first driver, so the structural rule alone cannot see them).
void add_parse_issue_diagnostics(const std::vector<BenchParseIssue>& issues,
                                 LintReport& report);

/// Parses `path` leniently and runs the applicable rules. A syntax-level
/// failure (unreadable file, malformed line, unknown function) produces a
/// single error diagnostic with the pseudo rule id `parse-error`.
[[nodiscard]] LintReport lint_bench_file(const std::string& path,
                                         const CellLibrary& library,
                                         const LintOptions& options = {});

/// As lint_bench_file, over an in-memory .bench description (tests).
[[nodiscard]] LintReport lint_bench_string(const std::string& text,
                                           const CellLibrary& library,
                                           const std::string& name = "bench",
                                           const LintOptions& options = {});

}  // namespace cwsp::lint
