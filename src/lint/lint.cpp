#include "lint/lint.hpp"

namespace cwsp::lint {
namespace {

template <typename ParseFn>
LintReport lint_parsed(const std::string& design_name,
                       const LintOptions& options, ParseFn&& parse) {
  std::vector<BenchParseIssue> issues;
  BenchParseOptions parse_options;
  parse_options.lenient = true;
  parse_options.issues = &issues;
  LintReport report;
  try {
    const Netlist netlist = parse(parse_options);
    report = run_lint(netlist, options);
  } catch (const Error& e) {
    report.design = design_name;
    Diagnostic d;
    d.rule_id = "parse-error";
    d.severity = Severity::kError;
    d.message = e.what();
    report.add(std::move(d));
    return report;
  }
  add_parse_issue_diagnostics(issues, report);
  return report;
}

}  // namespace

void add_parse_issue_diagnostics(const std::vector<BenchParseIssue>& issues,
                                 LintReport& report) {
  for (const BenchParseIssue& issue : issues) {
    if (!issue.redefinition) continue;  // undefined signals surface as
                                        // undriven nets via the rules
    Diagnostic d;
    d.rule_id = "multiply-driven-net";
    d.severity = Severity::kError;
    d.message = "line " + std::to_string(issue.line) + ": " + issue.message;
    report.add(std::move(d));
  }
}

LintReport lint_bench_file(const std::string& path,
                           const CellLibrary& library,
                           const LintOptions& options) {
  return lint_parsed(path, options, [&](const BenchParseOptions& po) {
    return parse_bench_file(path, library, po);
  });
}

LintReport lint_bench_string(const std::string& text,
                             const CellLibrary& library,
                             const std::string& name,
                             const LintOptions& options) {
  return lint_parsed(name, options, [&](const BenchParseOptions& po) {
    return parse_bench_string(text, library, name, po);
  });
}

}  // namespace cwsp::lint
