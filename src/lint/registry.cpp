#include <algorithm>
#include <sstream>

#include "lint/rules.hpp"

namespace cwsp::lint {

const char* to_string(RuleCategory category) {
  switch (category) {
    case RuleCategory::kStructure:
      return "structure";
    case RuleCategory::kTiming:
      return "timing";
    case RuleCategory::kHardening:
      return "hardening";
    case RuleCategory::kCertify:
      return "certify";
  }
  return "unknown";
}

void RuleRegistry::add(Rule rule) {
  CWSP_REQUIRE_MSG(find(rule.id) == nullptr,
                   "duplicate lint rule id " << rule.id);
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(const std::string& id) const {
  const auto it = std::find_if(rules_.begin(), rules_.end(),
                               [&](const Rule& r) { return r.id == id; });
  return it == rules_.end() ? nullptr : &*it;
}

const RuleRegistry& default_registry() {
  static const RuleRegistry registry = [] {
    RuleRegistry r;
    register_structure_rules(r);
    register_timing_rules(r);
    register_hardening_rules(r);
    return r;
  }();
  return registry;
}

LintReport run_lint(const Netlist& netlist, const LintOptions& options,
                    const RuleRegistry& registry) {
  LintContext ctx;
  ctx.netlist = &netlist;
  ctx.options = options;

  LintReport report;
  report.design = netlist.name();

  auto run_category = [&](RuleCategory category) {
    for (const Rule& rule : registry.rules()) {
      if (rule.category == category) rule.run(ctx, report);
    }
  };

  run_category(RuleCategory::kStructure);

  // The STA-backed rules need a well-formed netlist with combinational
  // logic: skip them (rather than crash in STA) when the structure pass
  // already found errors. Provenance auditing (fallback_cells) needs the
  // same STA pass even without ProtectionParams; the parameter-dependent
  // rules skip themselves in that case.
  TimingResult sta;
  if ((options.params.has_value() || !options.fallback_cells.empty()) &&
      netlist.num_gates() > 0 && !report.fails_at(Severity::kError)) {
    if (options.params.has_value()) options.params->validate();
    sta = run_sta(netlist);
    ctx.sta = &sta;
    run_category(RuleCategory::kTiming);
    // The certify rules need the same preconditions as the timing rules
    // plus explicit opt-in (a whole-design certification run is orders of
    // magnitude heavier than the envelope checks).
    if (options.certify && options.params.has_value()) {
      run_category(RuleCategory::kCertify);
    }
    ctx.sta = nullptr;
  }

  if (options.hardened_structure || options.tree.has_value()) {
    run_category(RuleCategory::kHardening);
  }

  for (Diagnostic& d : report.diagnostics) {
    for (NetId id : d.nets) d.net_names.push_back(netlist.net(id).name);
    for (GateId id : d.gates) d.gate_names.push_back(netlist.gate(id).name);
    for (FlipFlopId id : d.ffs) d.ff_names.push_back(netlist.flip_flop(id).name);
  }
  return report;
}

void require_clean_structure(const Netlist& netlist) {
  static const RuleRegistry structure_only = [] {
    RuleRegistry r;
    register_structure_rules(r);
    return r;
  }();
  const LintReport report = run_lint(netlist, {}, structure_only);
  if (!report.fails_at(Severity::kError)) return;

  std::ostringstream os;
  os << "netlist '" << netlist.name() << "' fails structural design rules:";
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity != Severity::kError) continue;
    os << "\n  [" << d.rule_id << "] " << d.message;
  }
  throw Error(os.str());
}

}  // namespace cwsp::lint
