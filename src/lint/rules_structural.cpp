#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace cwsp::lint {
namespace {

std::string net_ref(const Netlist& nl, NetId id) {
  return "net '" + nl.net(id).name + "'";
}

// ---------------------------------------------------------------- drivers

void rule_undriven_net(const LintContext& ctx, LintReport& report) {
  const Netlist& nl = *ctx.netlist;
  for (std::size_t i = 0; i < nl.num_nets(); ++i) {
    const NetId id{i};
    const Net& net = nl.net(id);
    if (net.driver_kind != DriverKind::kNone || net.is_primary_output) {
      continue;  // undriven primary outputs belong to dangling-output
    }
    const std::size_t fanout =
        net.fanout_gates.size() + net.fanout_ffs.size();
    Diagnostic d;
    d.rule_id = "undriven-net";
    d.severity = Severity::kError;
    d.nets.push_back(id);
    d.message = net_ref(nl, id) + " has no driver but feeds " +
                std::to_string(fanout) + " sink(s)";
    report.add(std::move(d));
  }
}

void rule_dangling_output(const LintContext& ctx, LintReport& report) {
  const Netlist& nl = *ctx.netlist;
  for (NetId id : nl.primary_outputs()) {
    if (nl.net(id).driver_kind != DriverKind::kNone) continue;
    Diagnostic d;
    d.rule_id = "dangling-output";
    d.severity = Severity::kError;
    d.nets.push_back(id);
    d.message = "primary output " + net_ref(nl, id) + " is never driven";
    report.add(std::move(d));
  }
}

void rule_multiply_driven_net(const LintContext& ctx, LintReport& report) {
  // The in-memory Netlist enforces single drivers at construction, so
  // this recount is defensive; the .bench front end reports source-level
  // redefinitions under the same rule id (lint_parse_issues below).
  const Netlist& nl = *ctx.netlist;
  std::vector<int> drivers(nl.num_nets(), 0);
  for (std::size_t i = 0; i < nl.num_nets(); ++i) {
    const DriverKind kind = nl.net(NetId{i}).driver_kind;
    if (kind == DriverKind::kPrimaryInput || kind == DriverKind::kConstant) {
      ++drivers[i];
    }
  }
  for (GateId g : nl.gate_ids()) ++drivers[nl.gate(g).output.index()];
  for (FlipFlopId f : nl.flip_flop_ids()) ++drivers[nl.flip_flop(f).q.index()];
  for (std::size_t i = 0; i < nl.num_nets(); ++i) {
    if (drivers[i] <= 1) continue;
    Diagnostic d;
    d.rule_id = "multiply-driven-net";
    d.severity = Severity::kError;
    d.nets.push_back(NetId{i});
    d.message = net_ref(nl, NetId{i}) + " has " + std::to_string(drivers[i]) +
                " drivers";
    report.add(std::move(d));
  }
}

// ----------------------------------------------------------- dead logic

void rule_floating_gate_output(const LintContext& ctx, LintReport& report) {
  const Netlist& nl = *ctx.netlist;
  for (GateId g : nl.gate_ids()) {
    const NetId out = nl.gate(g).output;
    const Net& net = nl.net(out);
    if (net.is_primary_output || !net.fanout_gates.empty() ||
        !net.fanout_ffs.empty()) {
      continue;
    }
    Diagnostic d;
    d.rule_id = "floating-gate-output";
    d.severity = Severity::kWarning;
    d.gates.push_back(g);
    d.nets.push_back(out);
    d.message = "output " + net_ref(nl, out) + " of gate '" +
                nl.gate(g).name + "' drives nothing";
    report.add(std::move(d));
  }
}

void rule_unused_input(const LintContext& ctx, LintReport& report) {
  const Netlist& nl = *ctx.netlist;
  for (NetId id : nl.primary_inputs()) {
    const Net& net = nl.net(id);
    if (net.is_primary_output || !net.fanout_gates.empty() ||
        !net.fanout_ffs.empty()) {
      continue;
    }
    Diagnostic d;
    d.rule_id = "unused-input";
    d.severity = Severity::kInfo;
    d.nets.push_back(id);
    d.message = "primary input " + net_ref(nl, id) + " is unused";
    report.add(std::move(d));
  }
}

void rule_unreachable_gate(const LintContext& ctx, LintReport& report) {
  // Reverse reachability from the observation points (primary outputs and
  // flip-flop D pins). Gates whose output drives nothing at all are
  // covered by floating-gate-output; this rule flags logic that feeds
  // only other dead logic.
  const Netlist& nl = *ctx.netlist;
  std::vector<bool> net_live(nl.num_nets(), false);
  std::vector<NetId> worklist;
  auto mark = [&](NetId id) {
    if (!net_live[id.index()]) {
      net_live[id.index()] = true;
      worklist.push_back(id);
    }
  };
  for (NetId po : nl.primary_outputs()) mark(po);
  for (FlipFlopId f : nl.flip_flop_ids()) mark(nl.flip_flop(f).d);

  std::vector<bool> gate_live(nl.num_gates(), false);
  while (!worklist.empty()) {
    const NetId id = worklist.back();
    worklist.pop_back();
    const Net& net = nl.net(id);
    if (net.driver_kind != DriverKind::kGate) continue;
    const GateId g{net.driver_index};
    if (gate_live[g.index()]) continue;
    gate_live[g.index()] = true;
    for (NetId in : nl.gate(g).inputs) mark(in);
  }

  for (GateId g : nl.gate_ids()) {
    if (gate_live[g.index()]) continue;
    const Net& out = nl.net(nl.gate(g).output);
    if (out.fanout_gates.empty() && out.fanout_ffs.empty()) continue;
    Diagnostic d;
    d.rule_id = "unreachable-gate";
    d.severity = Severity::kWarning;
    d.gates.push_back(g);
    d.nets.push_back(nl.gate(g).output);
    d.message = "gate '" + nl.gate(g).name +
                "' cannot reach any primary output or flip-flop";
    report.add(std::move(d));
  }
}

// ----------------------------------------------------------------- loops

void rule_combinational_loop(const LintContext& ctx, LintReport& report) {
  // Iterative DFS over the gate graph; a gray-edge hit reconstructs the
  // cycle from the explicit stack. Each gate is reported in at most one
  // cycle.
  const Netlist& nl = *ctx.netlist;
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(nl.num_gates(), kWhite);
  std::vector<bool> reported(nl.num_gates(), false);

  struct Frame {
    GateId gate;
    std::size_t next_succ = 0;
  };
  auto successors = [&](GateId g) -> const std::vector<GateId>& {
    return nl.net(nl.gate(g).output).fanout_gates;
  };

  for (GateId root : nl.gate_ids()) {
    if (color[root.index()] != kWhite) continue;
    std::vector<Frame> stack{Frame{root}};
    color[root.index()] = kGray;
    while (!stack.empty()) {
      Frame& top = stack.back();
      const auto& succ = successors(top.gate);
      if (top.next_succ >= succ.size()) {
        color[top.gate.index()] = kBlack;
        stack.pop_back();
        continue;
      }
      const GateId next = succ[top.next_succ++];
      if (color[next.index()] == kWhite) {
        color[next.index()] = kGray;
        stack.push_back(Frame{next});
        continue;
      }
      if (color[next.index()] != kGray || reported[next.index()]) continue;

      // Back edge: the cycle is `next … stack.back()` on the DFS stack.
      std::size_t start = 0;
      while (stack[start].gate != next) ++start;
      Diagnostic d;
      d.rule_id = "combinational-loop";
      d.severity = Severity::kError;
      std::string path;
      for (std::size_t i = start; i < stack.size(); ++i) {
        const GateId g = stack[i].gate;
        reported[g.index()] = true;
        d.gates.push_back(g);
        d.nets.push_back(nl.gate(g).output);
        if (!path.empty()) path += " -> ";
        path += nl.net(nl.gate(g).output).name;
      }
      path += " -> " + nl.net(nl.gate(next).output).name;
      d.message = "combinational loop: " + path;
      report.add(std::move(d));
    }
  }
}

}  // namespace

void register_structure_rules(RuleRegistry& registry) {
  registry.add(Rule{"undriven-net", RuleCategory::kStructure,
                    Severity::kError,
                    "every non-output net must have exactly one driver",
                    rule_undriven_net});
  registry.add(Rule{"multiply-driven-net", RuleCategory::kStructure,
                    Severity::kError,
                    "no net may be driven by more than one source",
                    rule_multiply_driven_net});
  registry.add(Rule{"dangling-output", RuleCategory::kStructure,
                    Severity::kError,
                    "every declared primary output must be driven",
                    rule_dangling_output});
  registry.add(Rule{"floating-gate-output", RuleCategory::kStructure,
                    Severity::kWarning,
                    "gate outputs must feed a gate, flip-flop or output",
                    rule_floating_gate_output});
  registry.add(Rule{"unreachable-gate", RuleCategory::kStructure,
                    Severity::kWarning,
                    "logic must be observable at an output or flip-flop",
                    rule_unreachable_gate});
  registry.add(Rule{"combinational-loop", RuleCategory::kStructure,
                    Severity::kError,
                    "the combinational core must be acyclic",
                    rule_combinational_loop});
  registry.add(Rule{"unused-input", RuleCategory::kStructure,
                    Severity::kInfo, "primary inputs should be used",
                    rule_unused_input});
}

}  // namespace cwsp::lint
