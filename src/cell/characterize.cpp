#include "cell/characterize.hpp"

#include <cmath>
#include <sstream>

#include "cell/calibration.hpp"
#include "netlist/netlist.hpp"
#include "spice/transient.hpp"

namespace cwsp {
namespace {

using spice::SolverDiagnostics;
using spice::SourceFunction;
using spice::TransientOptions;

/// Cell kinds with a transistor topology in the electrical bridge.
constexpr CellKind kSupportedKinds[] = {
    CellKind::kInv,   CellKind::kBuf,  CellKind::kNand2,
    CellKind::kNor2,  CellKind::kAnd2, CellKind::kOr2,
};

/// With input `a` rising and `b` held non-controlling, does the output
/// rise or fall?
bool output_rises(CellKind kind) {
  switch (kind) {
    case CellKind::kInv:
    case CellKind::kNand2:
    case CellKind::kNor2:
      return false;
    default:
      return true;
  }
}

/// Non-controlling DC level for the second input, V.
double side_input_level(CellKind kind, const spice::SpiceTech& tech) {
  switch (kind) {
    case CellKind::kNand2:
    case CellKind::kAnd2:
      return tech.vdd;  // AND-like: 1 is non-controlling
    default:
      return 0.0;  // OR-like: 0 is non-controlling
  }
}

ArcProvenance provenance_of(const SolverDiagnostics& diag) {
  if (!diag.converged) return ArcProvenance::kCalibratedFallback;
  return diag.exact ? ArcProvenance::kSpiceExact
                    : ArcProvenance::kSpiceRecovered;
}

/// Measures one cell's a→out delay on a one-gate circuit. Returns false
/// (leaving delay_ps untouched) when the solver failed or the output
/// never switched; `diag` always carries the run's diagnostics.
bool measure_cell_arc(const CellLibrary& library, CellKind kind,
                      const CharacterizeOptions& options, double& delay_ps,
                      SolverDiagnostics& diag) {
  const Cell& cell = library.cell(library.cell_for(kind));
  Netlist nl(library, std::string("char_") + cell.name());
  const NetId a = nl.add_primary_input("a");
  std::vector<NetId> inputs{a};
  if (cell.num_inputs() == 2) inputs.push_back(nl.add_primary_input("b"));
  nl.add_gate(nl.library().cell_for(kind), inputs, "out");
  nl.mark_primary_output(*nl.find_net("out"));

  const double vdd = options.tech.vdd;
  std::map<std::string, SourceFunction> drives;
  drives.emplace("a", SourceFunction::pulse(0.0, vdd, 200.0, 5.0, 1e6, 5.0));
  if (cell.num_inputs() == 2) {
    drives.emplace("b",
                   SourceFunction::dc(side_input_level(kind, options.tech)));
  }

  auto elaboration = spice::elaborate_to_spice(nl, drives, options.tech);
  const int out = elaboration.node(*nl.find_net("out"));
  elaboration.circuit.add_capacitor("Cload", out, spice::kGround,
                                    options.load);

  TransientOptions topt = options.transient;
  if (topt.t_stop_ps <= 0.0) topt.t_stop_ps = 1000.0;
  const int in_node = elaboration.node(a);
  const auto result =
      spice::try_run_transient(elaboration.circuit, topt, {in_node, out});
  diag.merge(result.diagnostics);
  if (!result.diagnostics.converged) return false;

  const auto t_in =
      result.probe(in_node).first_crossing(vdd / 2.0, /*rising=*/true);
  const auto t_out = result.probe(out).first_crossing(
      vdd / 2.0, /*rising=*/output_rises(kind), t_in.value_or(0.0));
  if (!t_in.has_value() || !t_out.has_value()) return false;
  delay_ps = *t_out - *t_in;
  return true;
}

void characterize_cwsp_arc(const char* name, double wp, double wn,
                           double model_ps,
                           const CharacterizeOptions& options,
                           CharacterizationReport& report) {
  CharacterizedArc arc;
  arc.cell = name;
  arc.model_delay_ps = model_ps;
  try {
    arc.delay_ps = spice::measure_cwsp_delay(wp, wn, options.load,
                                             options.tech, &arc.diagnostics)
                       .value();
    arc.provenance = provenance_of(arc.diagnostics);
  } catch (const Error&) {
    arc.delay_ps = model_ps;
    arc.provenance = ArcProvenance::kCalibratedFallback;
    arc.diagnostics.converged = false;
    if (arc.diagnostics.failure.empty()) {
      arc.diagnostics.failure = "CWSP delay measurement failed";
    }
  }
  report.arcs.push_back(std::move(arc));
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

const char* to_string(ArcProvenance provenance) {
  switch (provenance) {
    case ArcProvenance::kSpiceExact: return "spice-exact";
    case ArcProvenance::kSpiceRecovered: return "spice-recovered";
    case ArcProvenance::kCalibratedFallback: return "calibrated-fallback";
  }
  return "?";
}

std::size_t CharacterizationReport::fallback_count() const {
  std::size_t n = 0;
  for (const auto& arc : arcs) {
    if (arc.provenance == ArcProvenance::kCalibratedFallback) ++n;
  }
  return n;
}

bool CharacterizationReport::any_fallback() const {
  return fallback_count() != 0;
}

std::vector<std::string> CharacterizationReport::fallback_cells() const {
  std::vector<std::string> cells;
  for (const auto& arc : arcs) {
    if (arc.provenance == ArcProvenance::kCalibratedFallback) {
      cells.push_back(arc.cell);
    }
  }
  return cells;
}

std::string CharacterizationReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"load_ff\": " << load_ff << ",\n  \"arcs\": [\n";
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    const auto& arc = arcs[i];
    os << "    {\"cell\": \"" << json_escape(arc.cell) << "\", "
       << "\"provenance\": \"" << to_string(arc.provenance) << "\", "
       << "\"delay_ps\": " << arc.delay_ps << ", "
       << "\"model_delay_ps\": " << arc.model_delay_ps << ", "
       << "\"diagnostics\": " << arc.diagnostics.to_json() << "}";
    os << (i + 1 < arcs.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"fallback_count\": " << fallback_count() << "\n}\n";
  return os.str();
}

std::string CharacterizationReport::to_text() const {
  std::ostringstream os;
  os << "characterization @ " << load_ff << " fF load\n";
  for (const auto& arc : arcs) {
    os << "  " << arc.cell << ": " << arc.delay_ps << " ps (model "
       << arc.model_delay_ps << " ps) [" << to_string(arc.provenance)
       << "]\n";
  }
  if (any_fallback()) {
    os << "  WARNING: " << fallback_count()
       << " arc(s) degraded to the calibrated model\n";
  }
  return os.str();
}

CharacterizationReport characterize_library(
    const CellLibrary& library, const CharacterizeOptions& options) {
  CharacterizationReport report;
  report.load_ff = options.load.value();

  for (CellKind kind : kSupportedKinds) {
    const Cell& cell = library.cell(library.cell_for(kind));
    CharacterizedArc arc;
    arc.cell = cell.name();
    arc.model_delay_ps = cell.delay(options.load).value();
    double measured = 0.0;
    if (measure_cell_arc(library, kind, options, measured,
                         arc.diagnostics)) {
      arc.delay_ps = measured;
      arc.provenance = provenance_of(arc.diagnostics);
    } else {
      // Ladder exhausted (or no switching edge): degrade to the
      // calibrated analytical model, visibly.
      arc.delay_ps = arc.model_delay_ps;
      arc.provenance = ArcProvenance::kCalibratedFallback;
      if (arc.diagnostics.converged && arc.diagnostics.failure.empty()) {
        arc.diagnostics.failure = "output never crossed 50%";
      }
    }
    report.arcs.push_back(std::move(arc));
  }

  if (options.include_cwsp) {
    characterize_cwsp_arc("CWSP_30_12", cal::kCwspPmosMultQLow,
                          cal::kCwspNmosMultQLow, cal::kDCwspQLow.value(),
                          options, report);
    characterize_cwsp_arc("CWSP_40_16", cal::kCwspPmosMultQHigh,
                          cal::kCwspNmosMultQHigh, cal::kDCwspQHigh.value(),
                          options, report);
  }
  return report;
}

}  // namespace cwsp
