#include "cell/library_io.hpp"

#include <optional>
#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace cwsp {
namespace {

/// Whitespace tokenizer with '#' comments; braces are standalone tokens.
std::vector<std::string> tokenize(std::istream& in) {
  std::vector<std::string> tokens;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::string current;
    auto flush = [&] {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    };
    for (char c : line) {
      if (c == '{' || c == '}') {
        flush();
        tokens.push_back(std::string(1, c));
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        flush();
      } else {
        current.push_back(c);
      }
    }
    flush();
  }
  return tokens;
}

class Cursor {
 public:
  explicit Cursor(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {}

  [[nodiscard]] bool done() const { return pos_ >= tokens_.size(); }
  [[nodiscard]] const std::string& peek() const {
    CWSP_REQUIRE_MSG(!done(), "library: unexpected end of input");
    return tokens_[pos_];
  }
  std::string next() {
    CWSP_REQUIRE_MSG(!done(), "library: unexpected end of input");
    return tokens_[pos_++];
  }
  void expect(const std::string& token) {
    const std::string got = next();
    CWSP_REQUIRE_MSG(got == token,
                     "library: expected '" << token << "', got '" << got
                                           << "'");
  }
  double number() {
    const std::string token = next();
    try {
      return std::stod(token);
    } catch (const std::exception&) {
      throw Error("library: expected a number, got '" + token + "'");
    }
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

/// key → value block: `{ key num key num ... }`.
std::map<std::string, double> parse_kv_block(Cursor& cursor) {
  cursor.expect("{");
  std::map<std::string, double> kv;
  while (cursor.peek() != "}") {
    const std::string key = cursor.next();
    kv[key] = cursor.number();
  }
  cursor.expect("}");
  return kv;
}

double require(const std::map<std::string, double>& kv,
               const std::string& key, const std::string& context) {
  const auto it = kv.find(key);
  CWSP_REQUIRE_MSG(it != kv.end(),
                   "library: " << context << " is missing '" << key << "'");
  return it->second;
}

FlipFlopModel parse_ff(const std::map<std::string, double>& kv,
                       const std::string& context) {
  FlipFlopModel ff;
  ff.setup = Picoseconds(require(kv, "setup", context));
  ff.clk_to_q = Picoseconds(require(kv, "clkq", context));
  ff.hold = Picoseconds(require(kv, "hold", context));
  ff.area = cal::kUnitActiveArea * require(kv, "area_units", context);
  ff.d_capacitance = Femtofarads(require(kv, "dcap", context));
  ff.drive_resistance = Kiloohms(require(kv, "rdrive", context));
  return ff;
}

}  // namespace

CellLibrary parse_library(std::istream& in) {
  Cursor cursor(tokenize(in));
  cursor.expect("library");
  cursor.next();  // library name (informational)
  cursor.expect("{");

  CellLibrary lib;
  bool have_regular = false;
  bool have_modified = false;

  while (cursor.peek() != "}") {
    const std::string entry = cursor.next();
    if (entry == "wire_cap_per_fanout") {
      lib.set_wire_capacitance_per_fanout(Femtofarads(cursor.number()));
    } else if (entry == "ff") {
      const std::string which = cursor.next();
      const auto kv = parse_kv_block(cursor);
      if (which == "regular") {
        lib.set_regular_ff(parse_ff(kv, "ff regular"));
        have_regular = true;
      } else if (which == "modified") {
        lib.set_modified_ff(parse_ff(kv, "ff modified"));
        have_modified = true;
      } else {
        throw Error("library: unknown ff variant '" + which + "'");
      }
    } else if (entry == "cell") {
      const std::string name = cursor.next();
      cursor.expect("{");
      std::optional<CellKind> kind;
      std::map<std::string, double> nums;
      while (cursor.peek() != "}") {
        const std::string key = cursor.next();
        if (key == "kind") {
          kind = cell_kind_from_string(cursor.next());
        } else {
          nums[key] = cursor.number();
        }
      }
      cursor.expect("}");
      CWSP_REQUIRE_MSG(kind.has_value(),
                       "library: cell " << name << " is missing 'kind'");
      const int n = input_count_for(*kind);
      const std::string ctx = "cell " + name;
      lib.add_cell(Cell(name, *kind, n, truth_table_for(*kind, n),
                        canonical_devices_for(*kind),
                        Picoseconds(require(nums, "intrinsic", ctx)),
                        Kiloohms(require(nums, "rdrive", ctx)),
                        Femtofarads(require(nums, "cin", ctx)),
                        Picoseconds(require(nums, "inertial", ctx))));
    } else {
      throw Error("library: unknown entry '" + entry + "'");
    }
  }
  cursor.expect("}");

  CWSP_REQUIRE_MSG(have_regular && have_modified,
                   "library: both ff regular and ff modified are required");
  return lib;
}

CellLibrary parse_library_string(const std::string& text) {
  std::istringstream in(text);
  return parse_library(in);
}

CellLibrary parse_library_file(const std::string& path) {
  std::ifstream in(path);
  CWSP_REQUIRE_MSG(in.good(), "cannot open library file " << path);
  return parse_library(in);
}

void write_library(const CellLibrary& library, const std::string& name,
                   std::ostream& os) {
  os << "library " << name << " {\n";
  os << "  wire_cap_per_fanout "
     << library.wire_capacitance_per_fanout().value() << "\n";
  auto emit_ff = [&](const char* which, const FlipFlopModel& ff) {
    os << "  ff " << which << " { setup " << ff.setup.value() << " clkq "
       << ff.clk_to_q.value() << " hold " << ff.hold.value()
       << " area_units " << ff.area.value() / cal::kUnitActiveArea.value()
       << " dcap " << ff.d_capacitance.value() << " rdrive "
       << ff.drive_resistance.value() << " }\n";
  };
  emit_ff("regular", library.regular_ff());
  emit_ff("modified", library.modified_ff());
  for (std::size_t i = 0; i < library.size(); ++i) {
    const Cell& cell = library.cell(CellId{i});
    os << "  cell " << cell.name() << " { kind " << to_string(cell.kind())
       << " intrinsic " << cell.intrinsic_delay().value() << " rdrive "
       << cell.drive_resistance().value() << " cin "
       << cell.input_capacitance().value() << " inertial "
       << cell.inertial_delay().value() << " }\n";
  }
  os << "}\n";
}

}  // namespace cwsp
