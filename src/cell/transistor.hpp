#pragma once
// Transistor-level composition of standard cells. Active area is computed
// the way the paper accounts it: the sum of W·L over all devices, measured
// in units of the minimum device area a0 (see calibration.hpp).

#include <vector>

#include "cell/calibration.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace cwsp {

enum class TransistorType { kNmos, kPmos };

struct Transistor {
  TransistorType type = TransistorType::kNmos;
  /// Width as a multiple of the minimum width.
  double width_mult = 1.0;
  /// Length as a multiple of the minimum length (1.0 for logic).
  double length_mult = 1.0;

  [[nodiscard]] SquareMicrons active_area() const {
    return cal::kUnitActiveArea * (width_mult * length_mult);
  }
};

/// Area of a set of devices.
[[nodiscard]] inline SquareMicrons total_active_area(
    const std::vector<Transistor>& devices) {
  SquareMicrons area{0.0};
  for (const auto& t : devices) area += t.active_area();
  return area;
}

/// Builds the device list of a static CMOS gate with `n` inputs where each
/// input drives one NMOS and one PMOS device (NAND/NOR/INV topologies).
[[nodiscard]] inline std::vector<Transistor> cmos_gate_devices(
    int n_inputs, double nmos_mult = 1.0, double pmos_mult = 1.0) {
  CWSP_REQUIRE(n_inputs >= 1);
  std::vector<Transistor> devices;
  devices.reserve(static_cast<std::size_t>(2 * n_inputs));
  for (int i = 0; i < n_inputs; ++i) {
    devices.push_back({TransistorType::kNmos, nmos_mult, 1.0});
    devices.push_back({TransistorType::kPmos, pmos_mult, 1.0});
  }
  return devices;
}

}  // namespace cwsp
