#pragma once
// Plain-text cell-library format ("liberty-lite") so downstream users can
// retarget the flow to their own technology without recompiling:
//
//   library my65nm {
//     wire_cap_per_fanout 0.3
//     ff regular  { setup 40 clkq 69 hold 5 area_units 24 dcap 1.4 rdrive 4.0 }
//     ff modified { setup 38 clkq 76 hold 5 area_units 24 dcap 1.4 rdrive 4.0 }
//     cell INV   { kind INV   intrinsic 8  rdrive 4.0 cin 1.2 inertial 10 }
//     cell NAND2 { kind NAND2 intrinsic 12 rdrive 5.0 cin 1.4 inertial 14 }
//     ...
//   }
//
// Units follow the library convention: ps, kΩ, fF; areas in min-device
// W·L units (multiplied by the calibrated a0). Transistor composition is
// derived from the cell kind. `#` starts a comment.

#include <iosfwd>
#include <string>

#include "cell/library.hpp"

namespace cwsp {

/// Parses a liberty-lite description. Throws cwsp::Error on syntax errors,
/// unknown kinds or missing flip-flop models.
[[nodiscard]] CellLibrary parse_library(std::istream& in);
[[nodiscard]] CellLibrary parse_library_string(const std::string& text);
[[nodiscard]] CellLibrary parse_library_file(const std::string& path);

/// Writes a library in the same format (round-trips through
/// parse_library).
void write_library(const CellLibrary& library, const std::string& name,
                   std::ostream& os);

}  // namespace cwsp
