#pragma once
// The cell library: a registry of combinational cells plus the flip-flop
// timing models. `make_default_library()` builds the 65 nm-calibrated
// library used by every experiment in this repo.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/calibration.hpp"
#include "cell/cell.hpp"
#include "common/ids.hpp"

namespace cwsp {

/// Timing/area model of a D flip-flop. The paper characterises the
/// regular system FF as setup 40 ps / clk→Q 69 ps and the CWSP-modified
/// FF (MUX folded into the master latch) as setup 38 ps / clk→Q 76 ps.
struct FlipFlopModel {
  Picoseconds setup{0.0};
  Picoseconds hold{0.0};
  Picoseconds clk_to_q{0.0};
  SquareMicrons area{0.0};
  Femtofarads d_capacitance{0.0};
  Kiloohms drive_resistance{0.0};
};

class CellLibrary {
 public:
  /// Registers a cell; names must be unique.
  CellId add_cell(Cell cell);

  [[nodiscard]] const Cell& cell(CellId id) const;
  [[nodiscard]] std::optional<CellId> find(const std::string& name) const;
  /// Looks up the canonical cell for a kind; throws if absent.
  [[nodiscard]] CellId cell_for(CellKind kind) const;
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  [[nodiscard]] const FlipFlopModel& regular_ff() const { return regular_ff_; }
  [[nodiscard]] const FlipFlopModel& modified_ff() const {
    return modified_ff_;
  }
  void set_regular_ff(FlipFlopModel m) { regular_ff_ = m; }
  void set_modified_ff(FlipFlopModel m) { modified_ff_ = m; }

  /// Estimated interconnect capacitance added per fanout connection.
  [[nodiscard]] Femtofarads wire_capacitance_per_fanout() const {
    return wire_cap_per_fanout_;
  }
  void set_wire_capacitance_per_fanout(Femtofarads c) {
    wire_cap_per_fanout_ = c;
  }

 private:
  std::vector<Cell> cells_;
  std::unordered_map<std::string, CellId> by_name_;
  std::unordered_map<CellKind, CellId> by_kind_;
  FlipFlopModel regular_ff_;
  FlipFlopModel modified_ff_;
  Femtofarads wire_cap_per_fanout_{0.3};
};

/// Builds the 65 nm library calibrated to the paper (see calibration.hpp).
[[nodiscard]] CellLibrary make_default_library();

/// Canonical static-CMOS transistor composition for a cell kind (used by
/// the default library and the liberty-lite loader).
[[nodiscard]] std::vector<Transistor> canonical_devices_for(CellKind kind);

/// Inverse of to_string(CellKind); throws on unknown names.
[[nodiscard]] CellKind cell_kind_from_string(const std::string& name);

}  // namespace cwsp
