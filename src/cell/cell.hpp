#pragma once
// Standard-cell model: logic function (truth table), transistor
// composition (for active area) and a linear RC timing model
//   delay = intrinsic + R_drive · C_load.

#include <cstdint>
#include <string>
#include <vector>

#include "cell/transistor.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"

namespace cwsp {

enum class CellKind {
  kInv,
  kBuf,
  kNand2,
  kNand3,
  kNand4,
  kNor2,
  kNor3,
  kNor4,
  kAnd2,
  kAnd3,
  kAnd4,
  kOr2,
  kOr3,
  kOr4,
  kXor2,
  kXnor2,
  kMux2,  // inputs: (d0, d1, sel); out = sel ? d1 : d0
  kAoi21, // inputs: (a, b, c); out = !((a & b) | c)
  kOai21, // inputs: (a, b, c); out = !((a | b) & c)
};

[[nodiscard]] const char* to_string(CellKind kind);

/// A combinational standard cell. Sequential elements (flip-flops) are
/// modelled separately (see FlipFlopModel in library.hpp) because their
/// timing is characterised by setup/clk→Q rather than a propagation delay.
class Cell {
 public:
  Cell(std::string name, CellKind kind, int num_inputs, std::uint16_t truth,
       std::vector<Transistor> devices, Picoseconds intrinsic_delay,
       Kiloohms drive_resistance, Femtofarads input_capacitance,
       Picoseconds inertial_delay);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] CellKind kind() const { return kind_; }
  [[nodiscard]] int num_inputs() const { return num_inputs_; }

  /// Evaluates the cell on an input assignment packed LSB-first
  /// (bit i = value of input pin i).
  [[nodiscard]] bool evaluate(unsigned input_bits) const {
    CWSP_ASSERT(input_bits < (1u << num_inputs_));
    return (truth_ >> input_bits) & 1u;
  }

  /// Raw truth table, bit i = output for input assignment i.
  [[nodiscard]] std::uint16_t truth_table() const { return truth_; }

  [[nodiscard]] SquareMicrons active_area() const { return area_; }
  [[nodiscard]] const std::vector<Transistor>& devices() const {
    return devices_;
  }

  [[nodiscard]] Picoseconds intrinsic_delay() const { return intrinsic_delay_; }
  [[nodiscard]] Kiloohms drive_resistance() const { return drive_resistance_; }
  [[nodiscard]] Femtofarads input_capacitance() const {
    return input_capacitance_;
  }
  /// Minimum input pulse width the gate propagates (inertial filtering):
  /// SET glitches narrower than this die inside the gate.
  [[nodiscard]] Picoseconds inertial_delay() const { return inertial_delay_; }

  /// Propagation delay into a given load.
  [[nodiscard]] Picoseconds delay(Femtofarads load) const {
    return intrinsic_delay_ + rc_delay(drive_resistance_, load);
  }

 private:
  std::string name_;
  CellKind kind_;
  int num_inputs_;
  std::uint16_t truth_;
  std::vector<Transistor> devices_;
  SquareMicrons area_;
  Picoseconds intrinsic_delay_;
  Kiloohms drive_resistance_;
  Femtofarads input_capacitance_;
  Picoseconds inertial_delay_;
};

/// Computes the truth table of a basic function over n inputs.
[[nodiscard]] std::uint16_t truth_table_for(CellKind kind, int num_inputs);

/// Number of inputs implied by the cell kind.
[[nodiscard]] int input_count_for(CellKind kind);

}  // namespace cwsp
