#include "cell/library.hpp"

#include "common/error.hpp"

namespace cwsp {
namespace {

using literals::operator""_ps;
using literals::operator""_fF;
using literals::operator""_kohm;

/// Transistor networks of non-NAND/NOR cells.
std::vector<Transistor> and_like_devices(int n) {
  // NANDn/NORn stage followed by an output inverter.
  auto devices = cmos_gate_devices(n);
  auto inv = cmos_gate_devices(1);
  devices.insert(devices.end(), inv.begin(), inv.end());
  return devices;
}

std::vector<Transistor> xor_devices() {
  // 10-transistor static XOR/XNOR (two input inverters + pass network).
  return cmos_gate_devices(5);
}

std::vector<Transistor> mux_devices() {
  // Two transmission gates + select inverter.
  return cmos_gate_devices(3);
}

struct TimingRow {
  CellKind kind;
  double intrinsic_ps;
  double drive_kohm;
  double input_cap_ff;
  double inertial_ps;
};

// 65 nm-plausible linear-RC characterisation. The synthetic benchmark
// generator calibrates path structure against these values to hit each
// circuit's published Dmax, so only their relative plausibility matters.
constexpr TimingRow kTiming[] = {
    {CellKind::kInv, 8.0, 4.0, 1.2, 10.0},
    {CellKind::kBuf, 16.0, 3.0, 1.2, 14.0},
    {CellKind::kNand2, 12.0, 5.0, 1.4, 14.0},
    {CellKind::kNand3, 16.0, 6.0, 1.6, 18.0},
    {CellKind::kNand4, 20.0, 7.0, 1.8, 22.0},
    {CellKind::kNor2, 14.0, 6.0, 1.4, 16.0},
    {CellKind::kNor3, 19.0, 7.5, 1.6, 20.0},
    {CellKind::kNor4, 24.0, 9.0, 1.8, 24.0},
    {CellKind::kAnd2, 18.0, 4.0, 1.4, 18.0},
    {CellKind::kAnd3, 22.0, 4.0, 1.6, 22.0},
    {CellKind::kAnd4, 26.0, 4.0, 1.8, 24.0},
    {CellKind::kOr2, 20.0, 4.0, 1.4, 18.0},
    {CellKind::kOr3, 25.0, 4.0, 1.6, 22.0},
    {CellKind::kOr4, 30.0, 4.0, 1.8, 24.0},
    {CellKind::kXor2, 24.0, 5.5, 1.8, 20.0},
    {CellKind::kXnor2, 24.0, 5.5, 1.8, 20.0},
    {CellKind::kMux2, 18.0, 4.5, 1.5, 16.0},
    {CellKind::kAoi21, 16.0, 6.0, 1.5, 16.0},
    {CellKind::kOai21, 16.0, 6.0, 1.5, 16.0},
};

}  // namespace

std::vector<Transistor> canonical_devices_for(CellKind kind) {
  switch (kind) {
    case CellKind::kInv: return cmos_gate_devices(1);
    case CellKind::kBuf: return and_like_devices(1);
    case CellKind::kNand2: return cmos_gate_devices(2);
    case CellKind::kNand3: return cmos_gate_devices(3);
    case CellKind::kNand4: return cmos_gate_devices(4);
    case CellKind::kNor2: return cmos_gate_devices(2);
    case CellKind::kNor3: return cmos_gate_devices(3);
    case CellKind::kNor4: return cmos_gate_devices(4);
    case CellKind::kAnd2: return and_like_devices(2);
    case CellKind::kAnd3: return and_like_devices(3);
    case CellKind::kAnd4: return and_like_devices(4);
    case CellKind::kOr2: return and_like_devices(2);
    case CellKind::kOr3: return and_like_devices(3);
    case CellKind::kOr4: return and_like_devices(4);
    case CellKind::kXor2: return xor_devices();
    case CellKind::kXnor2: return xor_devices();
    case CellKind::kMux2: return mux_devices();
    case CellKind::kAoi21: return cmos_gate_devices(3);
    case CellKind::kOai21: return cmos_gate_devices(3);
  }
  return {};
}

CellKind cell_kind_from_string(const std::string& name) {
  static constexpr CellKind kAll[] = {
      CellKind::kInv,   CellKind::kBuf,   CellKind::kNand2,
      CellKind::kNand3, CellKind::kNand4, CellKind::kNor2,
      CellKind::kNor3,  CellKind::kNor4,  CellKind::kAnd2,
      CellKind::kAnd3,  CellKind::kAnd4,  CellKind::kOr2,
      CellKind::kOr3,   CellKind::kOr4,   CellKind::kXor2,
      CellKind::kXnor2, CellKind::kMux2,  CellKind::kAoi21,
      CellKind::kOai21};
  for (CellKind kind : kAll) {
    if (name == to_string(kind)) return kind;
  }
  throw Error("unknown cell kind: " + name);
}

CellId CellLibrary::add_cell(Cell cell) {
  CWSP_REQUIRE_MSG(!by_name_.contains(cell.name()),
                   "duplicate cell name " << cell.name());
  const CellId id{cells_.size()};
  by_name_.emplace(cell.name(), id);
  by_kind_.emplace(cell.kind(), id);  // first registration of a kind wins
  cells_.push_back(std::move(cell));
  return id;
}

const Cell& CellLibrary::cell(CellId id) const {
  CWSP_REQUIRE(id.valid() && id.index() < cells_.size());
  return cells_[id.index()];
}

std::optional<CellId> CellLibrary::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

CellId CellLibrary::cell_for(CellKind kind) const {
  const auto it = by_kind_.find(kind);
  CWSP_REQUIRE_MSG(it != by_kind_.end(),
                   "no cell registered for kind " << to_string(kind));
  return it->second;
}

CellLibrary make_default_library() {
  CellLibrary lib;
  for (const TimingRow& row : kTiming) {
    const int n = input_count_for(row.kind);
    lib.add_cell(Cell(to_string(row.kind), row.kind, n,
                      truth_table_for(row.kind, n), canonical_devices_for(row.kind),
                      Picoseconds(row.intrinsic_ps), Kiloohms(row.drive_kohm),
                      Femtofarads(row.input_cap_ff),
                      Picoseconds(row.inertial_ps)));
  }

  // Regular system flip-flop: transmission-gate master/slave, 24 devices.
  FlipFlopModel regular;
  regular.setup = cal::kSetupRegular;
  regular.hold = 5.0_ps;
  regular.clk_to_q = cal::kClkQRegular;
  regular.area = cal::kUnitActiveArea * 24.0;
  regular.d_capacitance = 1.4_fF;
  regular.drive_resistance = 4.0_kohm;
  lib.set_regular_ff(regular);

  // DFF_modified: the CW*/D MUX is folded into the master latch, which
  // slows clk→Q to 76 ps but relaxes setup to 38 ps (paper §4). Its area
  // delta over the regular FF is accounted inside the per-FF protection
  // area (calibration.hpp).
  FlipFlopModel modified = regular;
  modified.setup = cal::kSetupModified;
  modified.clk_to_q = cal::kClkQModified;
  modified.d_capacitance = 1.4_fF;  // D pin cap unchanged; the extra load
                                    // delay is modelled explicitly as
                                    // cal::kExtraDLoadDelay.
  lib.set_modified_ff(modified);

  lib.set_wire_capacitance_per_fanout(0.3_fF);
  return lib;
}

}  // namespace cwsp
