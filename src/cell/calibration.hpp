#pragma once
// Calibration constants for the 65 nm model used throughout the
// reproduction. Every number here is either stated in the paper or
// reverse-engineered from its tables; the derivation of each
// reverse-engineered constant is given inline and re-checked by
// tests/test_calibration.cpp.
//
// Paper setup: 65 nm BPTM, VDD = 1 V, |VT| = 0.22 V, radiation pulse
// I(t) = Q/(τα−τβ)·(e^{−t/τα} − e^{−t/τβ}) with τα = 200 ps, τβ = 50 ps.

#include "common/units.hpp"

namespace cwsp::cal {

// ---------------------------------------------------------------- process
inline constexpr Volts kVdd{1.0};
inline constexpr Volts kVtn{0.22};
inline constexpr Volts kVtp{0.22};  // magnitude; PMOS threshold is -0.22 V
/// Junction diodes clamp struck nodes ~0.6 V above VDD (paper Fig. 6:
/// waveform saturates at 1.6 V).
inline constexpr Volts kDiodeClampAboveVdd{0.6};

// ----------------------------------------------------- radiation strike
inline constexpr Picoseconds kTauAlpha{200.0};  // charge collection constant
inline constexpr Picoseconds kTauBeta{50.0};    // ion track establishment
/// SPICE-measured glitch widths on a struck min-sized inverter (paper §4).
inline constexpr Femtocoulombs kQLow{100.0};
inline constexpr Femtocoulombs kQHigh{150.0};
inline constexpr Picoseconds kGlitchWidthQLow{500.0};
inline constexpr Picoseconds kGlitchWidthQHigh{600.0};

// ------------------------------------------------------ flip-flop timing
// Paper §4: "the CLK-to-Q delay increased to 76ps using our approach
// (compared to 69ps). However, the setup time decreased by 2ps (from 40ps
// to 38ps) ... increased load on the D input ... increase in the delay (by
// 6.5ps)". Regular design delay = Dmax + 40 + 69 = Dmax + 109; hardened =
// Dmax + 6.5 + 38 + 76 = Dmax + 120.5. These reproduce every delay row of
// Tables 1–3 exactly.
inline constexpr Picoseconds kSetupRegular{40.0};
inline constexpr Picoseconds kClkQRegular{69.0};
inline constexpr Picoseconds kSetupModified{38.0};
inline constexpr Picoseconds kClkQModified{76.0};
inline constexpr Picoseconds kExtraDLoadDelay{6.5};
/// Total hardening delay penalty per design: (76−69) + (38−40)·(−1)… i.e.
/// (120.5 − 109) = 11.5 ps, independent of Q (paper §4).
inline constexpr Picoseconds kHardeningDelayPenalty{11.5};

// --------------------------------------------------- protection-path Δ
// Δ = T_CLKQ_EQ + T_CLKQ_DFF2 + D_CWSP − T_CLKQ_SYS + D_MUX + T_SETUP_EQ
//     + delay(AND1)                                           (Eq. 5)
// Paper: min Dmax = 1415 ps at δ=500 ps and 1605 ps at δ=600 ps, i.e.
// Δ(100 fC) = 1415 − 2·500 = 415 ps and Δ(150 fC) = 1605 − 2·600 = 405 ps
// (the upsized 40/16 CWSP element is 10 ps faster into its larger load).
inline constexpr Picoseconds kClkQEq{76.0};
inline constexpr Picoseconds kClkQDff2{76.0};
inline constexpr Picoseconds kDelayMux{35.0};
inline constexpr Picoseconds kSetupEq{38.0};
/// Measured delay of a 30-input NOR implementing AND1 (paper §3.3: ~80 ps).
inline constexpr Picoseconds kDelayAnd1{80.0};
inline constexpr Picoseconds kDCwspQLow{186.0};
inline constexpr Picoseconds kDCwspQHigh{176.0};

// -------------------------------------------------------- area model
// Active area is accounted as Σ W·L over transistors, in units of the
// min-device area a0 = Wmin·Lmin.
//
// From Tables 1/2 the per-FF protection area is linear in FF count:
//   overhead(n) = n·p_Q + c,  p100 = 1.3272 µm², p150 = 1.4791 µm²,
//   c = 0.1666 µm²  (fits alu2/alu4/apex2/C3540/C6288/seq/C880, C1908,
//   dalu, C432, C1355, ... to ≤1e-4 µm²).
// The Q-dependent difference p150 − p100 = 0.1519 µm² is exactly the CWSP
// upsizing (30/12 → 40/16 ⇒ 2·(30+12)=84 → 2·(40+16)=112 W·L units) plus
// two extra CLK_DEL delay segments (2 min inverters ⇒ 4 units):
// 32 units ⇒ a0 = 0.1519/32 µm².
inline constexpr SquareMicrons kUnitActiveArea{0.1519 / 32.0};
inline constexpr SquareMicrons kPerFfProtectionAreaQLow{1.3272};
inline constexpr SquareMicrons kPerFfProtectionAreaQHigh{1.4791};
/// Global fixed overhead: EQGLBF flip-flop + final EQGLB stage.
inline constexpr SquareMicrons kGlobalProtectionArea{0.1666};
/// Second-level EQGLB-tree gate area per first-level chunk (fitted from
/// the C7552/C5315 rows: +0.0392/+0.0490 µm² at 4/5 chunks).
inline constexpr SquareMicrons kTreeSecondLevelPerInput{0.0098};

// CWSP element sizing (paper §4): "X/Y indicates PMOS X times min, NMOS Y
// times min"; the inverter-type CWSP element has 2 series PMOS + 2 series
// NMOS devices.
inline constexpr double kCwspPmosMultQLow = 30.0;
inline constexpr double kCwspNmosMultQLow = 12.0;
inline constexpr double kCwspPmosMultQHigh = 40.0;
inline constexpr double kCwspNmosMultQHigh = 16.0;

// Delay-line construction (paper §4): POLY2 resistor + min inverter per
// segment; 4 segments realise δ and 8 (Q=100 fC) / 10 (Q=150 fC) segments
// realise the CLK_DEL delay.
inline constexpr int kSegmentsDelta = 4;
inline constexpr int kSegmentsClkDelQLow = 8;
inline constexpr int kSegmentsClkDelQHigh = 10;

// ------------------------------------------------- EQGLB tree structure
/// The paper measured a single NOR to be usable "up to 30 inputs", yet its
/// own C6288 (32 FFs) and seq (35 FFs) rows fit the single-level area
/// model exactly; we therefore use a single level up to 35 inputs and
/// 30-wide chunks above that (documented deviation, DESIGN.md §5).
inline constexpr int kTreeSingleLevelMax = 35;
inline constexpr int kTreeChunk = 30;

// ------------------------------------------------------- design rules
/// Technology mappers balance paths so that Dmin ≈ 0.8·Dmax (paper §4,
/// citing [33]).
inline constexpr double kDminToDmaxRatio = 0.8;
/// Min Dmax for full-width glitch protection: 2δ + Δ (Eq. 4/5).
inline constexpr Picoseconds kMinDmaxQLow{1415.0};
inline constexpr Picoseconds kMinDmaxQHigh{1605.0};

}  // namespace cwsp::cal
