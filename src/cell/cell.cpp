#include "cell/cell.hpp"

namespace cwsp {

const char* to_string(CellKind kind) {
  switch (kind) {
    case CellKind::kInv: return "INV";
    case CellKind::kBuf: return "BUF";
    case CellKind::kNand2: return "NAND2";
    case CellKind::kNand3: return "NAND3";
    case CellKind::kNand4: return "NAND4";
    case CellKind::kNor2: return "NOR2";
    case CellKind::kNor3: return "NOR3";
    case CellKind::kNor4: return "NOR4";
    case CellKind::kAnd2: return "AND2";
    case CellKind::kAnd3: return "AND3";
    case CellKind::kAnd4: return "AND4";
    case CellKind::kOr2: return "OR2";
    case CellKind::kOr3: return "OR3";
    case CellKind::kOr4: return "OR4";
    case CellKind::kXor2: return "XOR2";
    case CellKind::kXnor2: return "XNOR2";
    case CellKind::kMux2: return "MUX2";
    case CellKind::kAoi21: return "AOI21";
    case CellKind::kOai21: return "OAI21";
  }
  return "?";
}

Cell::Cell(std::string name, CellKind kind, int num_inputs,
           std::uint16_t truth, std::vector<Transistor> devices,
           Picoseconds intrinsic_delay, Kiloohms drive_resistance,
           Femtofarads input_capacitance, Picoseconds inertial_delay)
    : name_(std::move(name)),
      kind_(kind),
      num_inputs_(num_inputs),
      truth_(truth),
      devices_(std::move(devices)),
      area_(total_active_area(devices_)),
      intrinsic_delay_(intrinsic_delay),
      drive_resistance_(drive_resistance),
      input_capacitance_(input_capacitance),
      inertial_delay_(inertial_delay) {
  CWSP_REQUIRE(num_inputs_ >= 1 && num_inputs_ <= 4);
  CWSP_REQUIRE(intrinsic_delay_ >= Picoseconds(0.0));
}

int input_count_for(CellKind kind) {
  switch (kind) {
    case CellKind::kInv:
    case CellKind::kBuf:
      return 1;
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kXor2:
    case CellKind::kXnor2:
      return 2;
    case CellKind::kNand3:
    case CellKind::kNor3:
    case CellKind::kAnd3:
    case CellKind::kOr3:
    case CellKind::kMux2:
    case CellKind::kAoi21:
    case CellKind::kOai21:
      return 3;
    case CellKind::kNand4:
    case CellKind::kNor4:
    case CellKind::kAnd4:
    case CellKind::kOr4:
      return 4;
  }
  return 0;
}

std::uint16_t truth_table_for(CellKind kind, int num_inputs) {
  CWSP_REQUIRE(num_inputs == input_count_for(kind));
  const unsigned rows = 1u << num_inputs;
  std::uint16_t table = 0;
  for (unsigned row = 0; row < rows; ++row) {
    const auto bit = [&](int i) { return (row >> i) & 1u; };
    bool out = false;
    switch (kind) {
      case CellKind::kInv: out = !bit(0); break;
      case CellKind::kBuf: out = bit(0); break;
      case CellKind::kNand2: out = !(bit(0) && bit(1)); break;
      case CellKind::kNand3: out = !(bit(0) && bit(1) && bit(2)); break;
      case CellKind::kNand4: out = !(bit(0) && bit(1) && bit(2) && bit(3)); break;
      case CellKind::kNor2: out = !(bit(0) || bit(1)); break;
      case CellKind::kNor3: out = !(bit(0) || bit(1) || bit(2)); break;
      case CellKind::kNor4: out = !(bit(0) || bit(1) || bit(2) || bit(3)); break;
      case CellKind::kAnd2: out = bit(0) && bit(1); break;
      case CellKind::kAnd3: out = bit(0) && bit(1) && bit(2); break;
      case CellKind::kAnd4: out = bit(0) && bit(1) && bit(2) && bit(3); break;
      case CellKind::kOr2: out = bit(0) || bit(1); break;
      case CellKind::kOr3: out = bit(0) || bit(1) || bit(2); break;
      case CellKind::kOr4: out = bit(0) || bit(1) || bit(2) || bit(3); break;
      case CellKind::kXor2: out = bit(0) != bit(1); break;
      case CellKind::kXnor2: out = bit(0) == bit(1); break;
      case CellKind::kMux2: out = bit(2) ? bit(1) : bit(0); break;
      case CellKind::kAoi21: out = !((bit(0) && bit(1)) || bit(2)); break;
      case CellKind::kOai21: out = !((bit(0) || bit(1)) && bit(2)); break;
    }
    if (out) table |= static_cast<std::uint16_t>(1u << row);
  }
  return table;
}

}  // namespace cwsp
