#pragma once
// Electrical characterization of the cell library against MiniSpice, with
// graceful degradation: every delay arc is measured on a one-gate
// transistor-level circuit; when the solver's recovery ladder is
// exhausted the arc falls back to the library's calibrated analytical
// model (docs/calibration.md) and is tagged with its provenance. Exact
// and fallback numbers are never silently mixed — the report carries a
// provenance tag and the full SolverDiagnostics per arc, and lint flags
// designs whose timing rests on fallback arcs.

#include <string>
#include <vector>

#include "cell/library.hpp"
#include "spice/netlist_bridge.hpp"
#include "spice/subckt.hpp"

namespace cwsp {

/// Where a characterized delay number came from.
enum class ArcProvenance : std::uint8_t {
  /// Direct MiniSpice measurement, no recovery rung fired.
  kSpiceExact,
  /// MiniSpice measurement that needed the recovery ladder (gmin/source
  /// stepping or step subdivision) — trustworthy but not bit-reproducible
  /// against the direct path.
  kSpiceRecovered,
  /// Solver exhausted the ladder; the value is the calibrated analytical
  /// model from docs/calibration.md, not a measurement.
  kCalibratedFallback,
};

[[nodiscard]] const char* to_string(ArcProvenance provenance);

/// One characterized delay arc (input rise → output switch, 50%→50%).
struct CharacterizedArc {
  std::string cell;
  /// Measured delay; equals `model_delay_ps` for fallback arcs.
  double delay_ps = 0.0;
  /// The library's analytical linear-RC prediction at the same load.
  double model_delay_ps = 0.0;
  ArcProvenance provenance = ArcProvenance::kSpiceExact;
  spice::SolverDiagnostics diagnostics;
};

struct CharacterizationReport {
  double load_ff = 0.0;
  std::vector<CharacterizedArc> arcs;

  [[nodiscard]] std::size_t fallback_count() const;
  [[nodiscard]] bool any_fallback() const;
  /// Cell names of every fallback arc (input to the lint rule).
  [[nodiscard]] std::vector<std::string> fallback_cells() const;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_text() const;
};

struct CharacterizeOptions {
  /// External load on the measured output, fF.
  Femtofarads load{2.0};
  spice::SpiceTech tech;
  /// Solver configuration, including the recovery-ladder knobs. Tests and
  /// the tool's --max-newton flag shrink the iteration budget to provoke
  /// honest fallbacks.
  spice::TransientOptions transient;
  /// Also characterize the paper's CWSP element sizings (30/12, 40/16)
  /// against the calibrated D_CWSP constants.
  bool include_cwsp = true;
};

/// Characterizes every electrically supported library cell (INV, BUF,
/// NAND2, NOR2, AND2, OR2) plus, optionally, the CWSP element arcs.
/// Never throws on solver failure — failed arcs degrade to the
/// calibrated model with provenance kCalibratedFallback.
[[nodiscard]] CharacterizationReport characterize_library(
    const CellLibrary& library, const CharacterizeOptions& options = {});

}  // namespace cwsp
