#pragma once
// MiniSpice device models: linear R/C, independent sources (DC, pulse,
// double-exponential radiation strike), junction diode and a level-1
// (Shichman–Hodges) MOSFET. All values use the V/kΩ/fF/ps/mA unit system.

#include <cmath>

#include "common/units.hpp"
#include "spice/device.hpp"

namespace cwsp::spice {

class Resistor final : public Device {
 public:
  Resistor(std::string name, int a, int b, Kiloohms r)
      : Device(std::move(name)), a_(a), b_(b), g_ms_(1.0 / r.value()) {
    CWSP_REQUIRE(r.value() > 0.0);
  }
  void stamp(StampContext& ctx) const override {
    ctx.stamp_conductance(a_, b_, g_ms_);
  }

 private:
  int a_, b_;
  double g_ms_;
};

class Capacitor final : public Device {
 public:
  Capacitor(std::string name, int a, int b, Femtofarads c)
      : Device(std::move(name)), a_(a), b_(b), c_ff_(c.value()) {
    CWSP_REQUIRE(c_ff_ > 0.0);
  }
  void stamp(StampContext& ctx) const override {
    if (!ctx.transient()) return;  // open during the DC solve
    // Backward-Euler companion: i = C/dt·(v − v_prev).
    const double g = c_ff_ / ctx.dt_ps();
    ctx.stamp_conductance(a_, b_, g);
    const double i_hist = g * (ctx.v_prev(a_) - ctx.v_prev(b_));
    // Companion current source paralleling the conductance.
    ctx.stamp_current(b_, a_, i_hist);
  }

 private:
  int a_, b_;
  double c_ff_;
};

/// Time-dependent source value: DC, single pulse, or the paper's
/// double-exponential strike profile (Eq. 1).
class SourceFunction {
 public:
  static SourceFunction dc(double value) {
    SourceFunction f;
    f.kind_ = Kind::kDc;
    f.value_ = value;
    return f;
  }
  /// Single pulse from `low` to `high`, linear edges.
  static SourceFunction pulse(double low, double high, double delay_ps,
                              double rise_ps, double width_ps,
                              double fall_ps) {
    SourceFunction f;
    f.kind_ = Kind::kPulse;
    f.value_ = low;
    f.high_ = high;
    f.delay_ = delay_ps;
    f.rise_ = rise_ps;
    f.width_ = width_ps;
    f.fall_ = fall_ps;
    return f;
  }
  /// I(t) = Q/(τα−τβ)·(e^{−t'/τα} − e^{−t'/τβ}), t' = t − t0 (paper Eq. 1).
  /// With Q in fC and τ in ps the result is in mA.
  static SourceFunction double_exponential(Femtocoulombs q, Picoseconds tau_alpha,
                                           Picoseconds tau_beta,
                                           Picoseconds t0) {
    CWSP_REQUIRE(tau_alpha.value() > tau_beta.value());
    SourceFunction f;
    f.kind_ = Kind::kDoubleExp;
    f.value_ = q.value();
    f.tau_alpha_ = tau_alpha.value();
    f.tau_beta_ = tau_beta.value();
    f.delay_ = t0.value();
    return f;
  }

  [[nodiscard]] double at(double t_ps) const {
    switch (kind_) {
      case Kind::kDc:
        return value_;
      case Kind::kPulse: {
        const double t = t_ps - delay_;
        if (t <= 0.0) return value_;
        if (t < rise_) return value_ + (high_ - value_) * (t / rise_);
        if (t < rise_ + width_) return high_;
        if (t < rise_ + width_ + fall_) {
          return high_ - (high_ - value_) * ((t - rise_ - width_) / fall_);
        }
        return value_;
      }
      case Kind::kDoubleExp: {
        const double t = t_ps - delay_;
        if (t <= 0.0) return 0.0;
        return value_ / (tau_alpha_ - tau_beta_) *
               (std::exp(-t / tau_alpha_) - std::exp(-t / tau_beta_));
      }
    }
    return 0.0;
  }

 private:
  enum class Kind { kDc, kPulse, kDoubleExp };
  Kind kind_ = Kind::kDc;
  double value_ = 0.0;  // DC level / pulse low / charge Q
  double high_ = 0.0;
  double delay_ = 0.0;
  double rise_ = 0.0;
  double width_ = 0.0;
  double fall_ = 0.0;
  double tau_alpha_ = 0.0;
  double tau_beta_ = 0.0;
};

class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, int p, int n, SourceFunction fn,
                int branch_index)
      : Device(std::move(name)),
        p_(p),
        n_(n),
        fn_(fn),
        branch_index_(branch_index) {}

  void stamp(StampContext& ctx) const override {
    const int brow = ctx.branch_row(branch_index_);
    // Branch equation: v_p − v_n = E(t).
    ctx.add_matrix(brow, StampContext::row(p_), 1.0);
    ctx.add_matrix(brow, StampContext::row(n_), -1.0);
    ctx.add_rhs(brow, ctx.source_scale() * fn_.at(ctx.time_ps()));
    // KCL: branch current i flows p → n inside the external circuit view.
    ctx.add_matrix(StampContext::row(p_), brow, 1.0);
    ctx.add_matrix(StampContext::row(n_), brow, -1.0);
  }

  [[nodiscard]] int branch_index() const { return branch_index_; }
  [[nodiscard]] double value_at(double t_ps) const { return fn_.at(t_ps); }

 private:
  int p_, n_;
  SourceFunction fn_;
  int branch_index_;
};

/// Independent current source injecting fn(t) mA into node `into`.
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, int from, int into, SourceFunction fn)
      : Device(std::move(name)), from_(from), into_(into), fn_(fn) {}

  void stamp(StampContext& ctx) const override {
    ctx.stamp_current(from_, into_, ctx.source_scale() * fn_.at(ctx.time_ps()));
  }

 private:
  int from_, into_;
  SourceFunction fn_;
};

struct DiodeParams {
  /// Saturation current, mA.
  double is_ma = 1e-12;
  /// Emission coefficient × thermal voltage, V.
  double n_vt = 0.026;
  /// Voltage beyond which the exponential is linearly extended (both for
  /// numerical robustness and as a crude high-injection model).
  double v_linear = 0.8;
};

class Diode final : public Device {
 public:
  Diode(std::string name, int anode, int cathode, DiodeParams params = {})
      : Device(std::move(name)), a_(anode), c_(cathode), p_(params) {}

  void stamp(StampContext& ctx) const override;
  [[nodiscard]] bool nonlinear() const override { return true; }

  /// I(V) with linear extension above v_linear; exposed for tests.
  [[nodiscard]] double current(double v) const;
  [[nodiscard]] double conductance(double v) const;

 private:
  int a_, c_;
  DiodeParams p_;
};

enum class MosType { kNmos, kPmos };

struct MosParams {
  MosType type = MosType::kNmos;
  /// Transconductance KP·W/L in mA/V² for this instance.
  double kp_ma = 0.1;
  /// Threshold magnitude, V.
  double vt = 0.22;
  /// Channel-length modulation, 1/V.
  double lambda = 0.05;
};

/// Level-1 MOSFET (square law) with symmetric source/drain swap, suitable
/// for series stacks (CWSP elements) and inverters.
class Mosfet final : public Device {
 public:
  Mosfet(std::string name, int drain, int gate, int source, MosParams params)
      : Device(std::move(name)), d_(drain), g_(gate), s_(source), p_(params) {}

  void stamp(StampContext& ctx) const override;
  [[nodiscard]] bool nonlinear() const override { return true; }

  struct OperatingPoint {
    double ids = 0.0;  // u-space channel current, d_eff → s_eff
    double gm = 0.0;
    double gds = 0.0;
    double ugs = 0.0;
    double uds = 0.0;
    int d_eff = 0;
    int s_eff = 0;
  };
  /// Evaluates the square-law model at the given terminal voltages;
  /// exposed for tests.
  [[nodiscard]] OperatingPoint evaluate(double vd, double vg, double vs) const;

 private:
  int d_, g_, s_;
  MosParams p_;
};

}  // namespace cwsp::spice
