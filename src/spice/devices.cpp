#include "spice/devices.hpp"

#include <algorithm>

namespace cwsp::spice {

// --------------------------------------------------------------- Diode

double Diode::current(double v) const {
  if (v <= p_.v_linear) {
    return p_.is_ma * (std::exp(v / p_.n_vt) - 1.0);
  }
  // Linear extension: continue with the tangent at v_linear.
  const double i_lim = p_.is_ma * (std::exp(p_.v_linear / p_.n_vt) - 1.0);
  const double g_lim = p_.is_ma / p_.n_vt * std::exp(p_.v_linear / p_.n_vt);
  return i_lim + g_lim * (v - p_.v_linear);
}

double Diode::conductance(double v) const {
  const double ve = std::min(v, p_.v_linear);
  return p_.is_ma / p_.n_vt * std::exp(ve / p_.n_vt);
}

void Diode::stamp(StampContext& ctx) const {
  const double v = ctx.v(a_) - ctx.v(c_);
  const double i0 = current(v);
  const double g = std::max(conductance(v), 1e-12);
  // Companion: i(v) ≈ i0 + g·(v − v0)  ⇒  residual source i0 − g·v0.
  ctx.stamp_conductance(a_, c_, g);
  ctx.stamp_current(a_, c_, i0 - g * v);
}

// -------------------------------------------------------------- Mosfet

Mosfet::OperatingPoint Mosfet::evaluate(double vd, double vg, double vs) const {
  const double polarity = p_.type == MosType::kNmos ? 1.0 : -1.0;
  double ud = polarity * vd;
  double ug = polarity * vg;
  double us = polarity * vs;
  OperatingPoint op;
  op.d_eff = d_;
  op.s_eff = s_;
  if (ud < us) {
    std::swap(ud, us);
    std::swap(op.d_eff, op.s_eff);
  }
  op.ugs = ug - us;
  op.uds = ud - us;

  const double vov = op.ugs - p_.vt;
  if (vov <= 0.0) {
    op.ids = 0.0;
    op.gm = 0.0;
    op.gds = 0.0;
    return op;
  }
  const double clm = 1.0 + p_.lambda * op.uds;
  if (op.uds < vov) {
    // Triode region.
    op.ids = p_.kp_ma * (vov * op.uds - 0.5 * op.uds * op.uds) * clm;
    op.gm = p_.kp_ma * op.uds * clm;
    op.gds = p_.kp_ma * (vov - op.uds) * clm +
             p_.kp_ma * (vov * op.uds - 0.5 * op.uds * op.uds) * p_.lambda;
  } else {
    // Saturation.
    op.ids = 0.5 * p_.kp_ma * vov * vov * clm;
    op.gm = p_.kp_ma * vov * clm;
    op.gds = 0.5 * p_.kp_ma * vov * vov * p_.lambda;
  }
  return op;
}

void Mosfet::stamp(StampContext& ctx) const {
  const auto op = evaluate(ctx.v(d_), ctx.v(g_), ctx.v(s_));
  const double polarity = p_.type == MosType::kNmos ? 1.0 : -1.0;

  // dI_real/dv equals the u-space derivatives (polarity cancels), so the
  // conductance stamps are polarity-independent; only the residual current
  // carries the sign. Current I_real = polarity · I_u flows d_eff → s_eff.
  constexpr double kGmin = 1e-9;
  ctx.stamp_conductance(op.d_eff, op.s_eff, op.gds + kGmin);
  ctx.stamp_vccs(op.d_eff, op.s_eff, g_, op.s_eff, op.gm);

  const double vgs_real = ctx.v(g_) - ctx.v(op.s_eff);
  const double vds_real = ctx.v(op.d_eff) - ctx.v(op.s_eff);
  const double i_residual =
      polarity * op.ids - op.gm * vgs_real - op.gds * vds_real;
  ctx.stamp_current(op.d_eff, op.s_eff, i_residual);
}

}  // namespace cwsp::spice
