#pragma once
// Sampled waveform with the measurement helpers the experiments need:
// threshold crossings, pulse widths, peak values — the MiniSpice analogue
// of SPICE .MEASURE.

#include <cmath>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cwsp::spice {

struct Sample {
  double t_ps = 0.0;
  double v = 0.0;
};

class Waveform {
 public:
  /// Appends a sample. Throws cwsp::SolveError on a NaN/Inf time or value
  /// (a diverged solver must never poison downstream measurements) and on
  /// a non-monotone time axis.
  void append(double t_ps, double v);

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  /// Linear interpolation; clamps outside the sampled range.
  [[nodiscard]] double value_at(double t_ps) const;

  [[nodiscard]] double peak() const;
  [[nodiscard]] double trough() const;

  /// First time the waveform crosses `level` going up (rising=true) or
  /// down, at or after `after_ps`.
  [[nodiscard]] std::optional<double> first_crossing(double level, bool rising,
                                                     double after_ps = 0.0) const;

  /// Total time the waveform spends above `level`.
  [[nodiscard]] double time_above(double level) const;

  /// Width of the first contiguous excursion above `level` after
  /// `after_ps` (rise crossing to the matching fall crossing). Returns
  /// nullopt if the waveform never rises above the level.
  [[nodiscard]] std::optional<double> pulse_width_above(
      double level, double after_ps = 0.0) const;

  /// As above but for an excursion below `level`.
  [[nodiscard]] std::optional<double> pulse_width_below(
      double level, double after_ps = 0.0) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace cwsp::spice
