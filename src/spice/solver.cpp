#include "spice/solver.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/failpoint.hpp"

namespace cwsp::spice {

bool try_solve_linear_system(DenseMatrix a, std::vector<double> b,
                             std::vector<double>& x, LinearSolveInfo* info) {
  const std::size_t n = a.size();
  CWSP_REQUIRE(b.size() == n);
  // Chaos: report the matrix as singular so the Newton loop has to climb
  // its recovery ladder (gmin stepping, source stepping).
  if (failpoint::fires("spice.solver.linear")) {
    if (info != nullptr) {
      info->singular = true;
      info->singular_column = 0;
      info->pivot_ratio = 0.0;
    }
    return false;
  }
  constexpr double kPivotTol = 1e-16;
  // Threshold partial pivoting with diagonal preference — the standard
  // choice for MNA systems. Node rows carry their gmin on the diagonal;
  // preferring the diagonal keeps weakly-driven nodes (e.g. the drain of
  // a saturated transistor into an open load) anchored to their own row
  // instead of letting a large gm off-diagonal orphan the column.
  constexpr double kDiagThreshold = 1e-3;

  // Equilibrate first: MNA entries span ~1e-9 (gmin) to 1 (source
  // incidence), which defeats magnitude-based pivot heuristics. Row and
  // column scaling brings every row/column max to ~1.
  std::vector<double> row_scale(n, 1.0);
  std::vector<double> col_scale(n, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    double mx = 0.0;
    for (std::size_t c = 0; c < n; ++c) mx = std::max(mx, std::fabs(a.at(r, c)));
    row_scale[r] = mx > 0.0 ? 1.0 / mx : 1.0;
    for (std::size_t c = 0; c < n; ++c) a.at(r, c) *= row_scale[r];
    b[r] *= row_scale[r];
  }
  for (std::size_t c = 0; c < n; ++c) {
    double mx = 0.0;
    for (std::size_t r = 0; r < n; ++r) mx = std::max(mx, std::fabs(a.at(r, c)));
    col_scale[c] = mx > 0.0 ? 1.0 / mx : 1.0;
    for (std::size_t r = 0; r < n; ++r) a.at(r, c) *= col_scale[c];
  }

  double min_pivot = std::numeric_limits<double>::infinity();
  double max_pivot = 0.0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(a.at(col, col));
    double col_max = best;
    for (std::size_t row = col + 1; row < n; ++row) {
      const double mag = std::fabs(a.at(row, col));
      if (mag > col_max) {
        col_max = mag;
        pivot = row;
      }
    }
    // Keep the diagonal whenever it is within the threshold of the
    // column maximum (branch columns have a zero diagonal and always
    // take the incidence entry).
    if (best >= kDiagThreshold * col_max) pivot = col;

    if (!(col_max > kPivotTol)) {
      if (info != nullptr) {
        info->singular = true;
        info->singular_column = col;
        info->pivot_ratio =
            min_pivot > 0.0 ? max_pivot / min_pivot : max_pivot;
      }
      return false;
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a.at(col, k), a.at(pivot, k));
      }
      std::swap(b[col], b[pivot]);
    }

    const double pivot_mag = std::fabs(a.at(col, col));
    min_pivot = std::min(min_pivot, pivot_mag);
    max_pivot = std::max(max_pivot, pivot_mag);

    const double inv_pivot = 1.0 / a.at(col, col);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a.at(row, col) * inv_pivot;
      if (factor == 0.0) continue;
      a.at(row, col) = 0.0;
      for (std::size_t k = col + 1; k < n; ++k) {
        a.at(row, k) -= factor * a.at(col, k);
      }
      b[row] -= factor * b[col];
    }
  }

  x.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a.at(i, k) * x[k];
    x[i] = acc / a.at(i, i);
  }
  // Undo the column scaling (row scaling only rescaled the equations).
  for (std::size_t i = 0; i < n; ++i) x[i] *= col_scale[i];
  if (info != nullptr) {
    info->singular = false;
    info->pivot_ratio = min_pivot > 0.0 ? max_pivot / min_pivot : max_pivot;
  }
  return true;
}

std::vector<double> solve_linear_system(DenseMatrix a, std::vector<double> b) {
  std::vector<double> x;
  LinearSolveInfo info;
  if (!try_solve_linear_system(std::move(a), std::move(b), x, &info)) {
    std::ostringstream os;
    os << "singular MNA matrix at column " << info.singular_column
       << " (floating node or redundant source?)";
    throw SolveError(os.str());
  }
  return x;
}

}  // namespace cwsp::spice
