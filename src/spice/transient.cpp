#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "spice/solver.hpp"

namespace cwsp::spice {
namespace {

/// One Newton solve of the (possibly nonlinear) system at a given time.
/// `v` holds the initial guess on entry and the solution on exit (node
/// voltages followed by branch currents). Returns iterations used.
std::size_t newton_solve(const Circuit& circuit, std::vector<double>& v,
                         const std::vector<double>& v_prev_step,
                         double time_ps, double dt_ps, bool transient,
                         const TransientOptions& options) {
  const std::size_t dim = circuit.dimension();
  const int num_nodes = circuit.num_nodes();
  std::vector<double> matrix(dim * dim, 0.0);
  std::vector<double> rhs(dim, 0.0);

  // Newton unknown vector indexed like the MNA system (node k → k-1).
  // `v` is indexed by node for the first num_nodes entries for caller
  // convenience; translate here.
  auto to_unknowns = [&](const std::vector<double>& by_node) {
    std::vector<double> x(dim, 0.0);
    for (int n = 1; n < num_nodes; ++n) {
      x[static_cast<std::size_t>(n - 1)] = by_node[static_cast<std::size_t>(n)];
    }
    for (int b = 0; b < circuit.num_branches(); ++b) {
      x[static_cast<std::size_t>(num_nodes - 1 + b)] =
          by_node[static_cast<std::size_t>(num_nodes + b)];
    }
    return x;
  };
  auto to_by_node = [&](const std::vector<double>& x) {
    std::vector<double> by_node(static_cast<std::size_t>(num_nodes) +
                                    static_cast<std::size_t>(circuit.num_branches()),
                                0.0);
    for (int n = 1; n < num_nodes; ++n) {
      by_node[static_cast<std::size_t>(n)] = x[static_cast<std::size_t>(n - 1)];
    }
    for (int b = 0; b < circuit.num_branches(); ++b) {
      by_node[static_cast<std::size_t>(num_nodes + b)] =
          x[static_cast<std::size_t>(num_nodes - 1 + b)];
    }
    return by_node;
  };

  std::vector<double> x = to_unknowns(v);
  const int max_iter = circuit.has_nonlinear_devices()
                           ? options.max_newton_iterations
                           : 2;  // linear circuits converge in one solve

  std::size_t iterations = 0;
  for (int iter = 0; iter < max_iter; ++iter) {
    ++iterations;
    std::fill(matrix.begin(), matrix.end(), 0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);

    // Devices read candidate voltages via a by-node view.
    const std::vector<double> v_candidate = to_by_node(x);
    StampContext ctx(matrix, rhs, v_candidate, v_prev_step, dim, num_nodes,
                     time_ps, dt_ps, transient);
    for (const auto& device : circuit.devices()) device->stamp(ctx);

    // gmin from every node to ground keeps held nodes well-posed.
    for (int n = 1; n < num_nodes; ++n) {
      matrix[static_cast<std::size_t>(n - 1) * dim +
             static_cast<std::size_t>(n - 1)] += options.gmin;
    }

    DenseMatrix a(dim);
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) a.at(r, c) = matrix[r * dim + c];
    }
    std::vector<double> x_new = solve_linear_system(std::move(a), rhs);

    // Damped update on node voltages; branch currents move freely.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      double delta = x_new[i] - x[i];
      if (i < static_cast<std::size_t>(num_nodes - 1)) {
        delta = std::clamp(delta, -options.v_step_limit, options.v_step_limit);
        max_dv = std::max(max_dv, std::fabs(delta));
      }
      x[i] += delta;
    }

    if (!circuit.has_nonlinear_devices()) {
      // One exact solve suffices; take the full solution.
      x = std::move(x_new);
      break;
    }
    if (max_dv < options.v_tolerance) break;
    CWSP_REQUIRE_MSG(iter + 1 < max_iter,
                     "Newton failed to converge at t=" << time_ps
                         << " ps (max dV=" << max_dv << ")");
  }

  v = to_by_node(x);
  return iterations;
}

std::vector<double> initial_vector(const Circuit& circuit) {
  return std::vector<double>(
      static_cast<std::size_t>(circuit.num_nodes() + circuit.num_branches()),
      0.0);
}

}  // namespace

std::vector<double> solve_dc(const Circuit& circuit,
                             const TransientOptions& options) {
  std::vector<double> v = initial_vector(circuit);
  const std::vector<double> v_prev = v;
  newton_solve(circuit, v, v_prev, /*time_ps=*/0.0, /*dt_ps=*/1.0,
               /*transient=*/false, options);
  return v;
}

TransientResult run_transient(const Circuit& circuit,
                              const TransientOptions& options,
                              const std::vector<int>& probe_nodes) {
  CWSP_REQUIRE(options.dt_ps > 0.0);
  CWSP_REQUIRE(options.t_stop_ps > 0.0);

  TransientResult result;
  for (int node : probe_nodes) result.probes.emplace(node, Waveform{});

  // DC operating point seeds the transient.
  std::vector<double> v = solve_dc(circuit, options);

  auto record = [&](double t) {
    for (auto& [node, wave] : result.probes) {
      wave.append(t, v[static_cast<std::size_t>(node)]);
    }
  };
  record(0.0);

  double t = 0.0;
  while (t < options.t_stop_ps - 1e-12) {
    const double dt = std::min(options.dt_ps, options.t_stop_ps - t);
    t += dt;
    const std::vector<double> v_prev = v;
    result.total_newton_iterations +=
        newton_solve(circuit, v, v_prev, t, dt, /*transient=*/true, options);
    ++result.steps;
    record(t);
  }

  result.final_voltages = v;
  return result;
}

}  // namespace cwsp::spice
