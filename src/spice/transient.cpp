#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "spice/solver.hpp"

namespace cwsp::spice {
namespace {

/// Per-attempt Newton configuration. The recovery ladder varies these
/// between rungs; the direct path uses the TransientOptions values
/// verbatim so its arithmetic is bit-identical to the legacy engine.
struct NewtonSettings {
  double gmin = 1e-7;
  double v_step_limit = 0.4;
  int max_iterations = 200;
  double source_scale = 1.0;
  double v_tolerance = 1e-6;
};

struct NewtonOutcome {
  bool converged = false;
  bool singular = false;
  bool non_finite = false;
  std::size_t iterations = 0;
  double max_dv = 0.0;

  [[nodiscard]] const char* reason() const {
    if (singular) return "singular MNA matrix";
    if (non_finite) return "NaN/Inf in the solution vector";
    return "Newton failed to converge";
  }
};

bool all_finite(const std::vector<double>& values) {
  for (double value : values) {
    if (!std::isfinite(value)) return false;
  }
  return true;
}

/// One Newton solve of the (possibly nonlinear) system at a given time.
/// `v` holds the initial guess on entry; it is updated to the solution
/// only when the outcome reports convergence (node voltages followed by
/// branch currents). Any failure — non-convergence, singular
/// factorization, NaN/Inf anywhere — is reported in the outcome instead
/// of thrown, so the caller can escalate through the recovery ladder.
NewtonOutcome newton_solve(const Circuit& circuit, std::vector<double>& v,
                           const std::vector<double>& v_prev_step,
                           double time_ps, double dt_ps, bool transient,
                           const NewtonSettings& settings) {
  const std::size_t dim = circuit.dimension();
  const int num_nodes = circuit.num_nodes();
  std::vector<double> matrix(dim * dim, 0.0);
  std::vector<double> rhs(dim, 0.0);

  // Newton unknown vector indexed like the MNA system (node k → k-1).
  // `v` is indexed by node for the first num_nodes entries for caller
  // convenience; translate here.
  auto to_unknowns = [&](const std::vector<double>& by_node) {
    std::vector<double> x(dim, 0.0);
    for (int n = 1; n < num_nodes; ++n) {
      x[static_cast<std::size_t>(n - 1)] = by_node[static_cast<std::size_t>(n)];
    }
    for (int b = 0; b < circuit.num_branches(); ++b) {
      x[static_cast<std::size_t>(num_nodes - 1 + b)] =
          by_node[static_cast<std::size_t>(num_nodes + b)];
    }
    return x;
  };
  auto to_by_node = [&](const std::vector<double>& x) {
    std::vector<double> by_node(static_cast<std::size_t>(num_nodes) +
                                    static_cast<std::size_t>(circuit.num_branches()),
                                0.0);
    for (int n = 1; n < num_nodes; ++n) {
      by_node[static_cast<std::size_t>(n)] = x[static_cast<std::size_t>(n - 1)];
    }
    for (int b = 0; b < circuit.num_branches(); ++b) {
      by_node[static_cast<std::size_t>(num_nodes + b)] =
          x[static_cast<std::size_t>(num_nodes - 1 + b)];
    }
    return by_node;
  };

  std::vector<double> x = to_unknowns(v);
  const int max_iter = circuit.has_nonlinear_devices()
                           ? settings.max_iterations
                           : 2;  // linear circuits converge in one solve

  NewtonOutcome outcome;
  for (int iter = 0; iter < max_iter; ++iter) {
    ++outcome.iterations;
    std::fill(matrix.begin(), matrix.end(), 0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);

    // Devices read candidate voltages via a by-node view.
    const std::vector<double> v_candidate = to_by_node(x);
    StampContext ctx(matrix, rhs, v_candidate, v_prev_step, dim, num_nodes,
                     time_ps, dt_ps, transient, settings.source_scale);
    for (const auto& device : circuit.devices()) device->stamp(ctx);

    // gmin from every node to ground keeps held nodes well-posed.
    for (int n = 1; n < num_nodes; ++n) {
      matrix[static_cast<std::size_t>(n - 1) * dim +
             static_cast<std::size_t>(n - 1)] += settings.gmin;
    }

    // A device model evaluated far outside its valid range (e.g. a diode
    // exponential overflowing) poisons the stamps; catch it here so the
    // ladder can retry from a gentler point instead of propagating NaNs.
    if (!all_finite(matrix) || !all_finite(rhs)) {
      outcome.non_finite = true;
      return outcome;
    }

    DenseMatrix a(dim);
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) a.at(r, c) = matrix[r * dim + c];
    }
    std::vector<double> x_new;
    if (!try_solve_linear_system(std::move(a), rhs, x_new)) {
      outcome.singular = true;
      return outcome;
    }
    if (!all_finite(x_new)) {
      outcome.non_finite = true;
      return outcome;
    }

    // Damped update on node voltages; branch currents move freely.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      double delta = x_new[i] - x[i];
      if (i < static_cast<std::size_t>(num_nodes - 1)) {
        delta = std::clamp(delta, -settings.v_step_limit,
                           settings.v_step_limit);
        max_dv = std::max(max_dv, std::fabs(delta));
      }
      x[i] += delta;
    }
    outcome.max_dv = max_dv;

    if (!circuit.has_nonlinear_devices()) {
      // One exact solve suffices; take the full solution.
      x = std::move(x_new);
      outcome.converged = true;
      break;
    }
    if (max_dv < settings.v_tolerance) {
      outcome.converged = true;
      break;
    }
  }

  if (outcome.converged) v = to_by_node(x);
  return outcome;
}

std::vector<double> initial_vector(const Circuit& circuit) {
  return std::vector<double>(
      static_cast<std::size_t>(circuit.num_nodes() + circuit.num_branches()),
      0.0);
}

NewtonSettings direct_settings(const TransientOptions& options) {
  NewtonSettings s;
  s.gmin = options.gmin;
  s.v_step_limit = options.v_step_limit;
  s.max_iterations = options.max_newton_iterations;
  s.v_tolerance = options.v_tolerance;
  return s;
}

/// DC operating point via the recovery ladder. Returns true and fills `v`
/// on success; every attempt is recorded in `diag`. When the gmin rung
/// accepts its residual-leak floor (the target gmin itself is singular,
/// e.g. a zero-capacitance loop with gmin = 0), `carried_gmin` — if
/// non-null — receives that leak so the transient stepper stays
/// well-posed; otherwise it is left at the caller's target.
bool solve_dc_ladder(const Circuit& circuit, const TransientOptions& options,
                     std::vector<double>& v, SolverDiagnostics& diag,
                     double* carried_gmin = nullptr) {
  auto attempt = [&](std::vector<double>& guess, const NewtonSettings& s,
                     RecoveryRung rung) {
    ++diag.rung_attempts[static_cast<std::size_t>(rung)];
    const std::vector<double> v_prev = guess;
    const NewtonOutcome out = newton_solve(circuit, guess, v_prev,
                                           /*time_ps=*/0.0, /*dt_ps=*/1.0,
                                           /*transient=*/false, s);
    diag.newton_iterations += out.iterations;
    diag.final_residual_v = out.max_dv;
    return out;
  };
  auto succeed = [&](RecoveryRung rung, std::vector<double>& solution) {
    if (rung != RecoveryRung::kDirect) diag.exact = false;
    diag.deepest_rung = std::max(diag.deepest_rung, rung);
    v = solution;
    return true;
  };

  // Rung 0: the direct solve, bit-identical to the legacy engine.
  std::vector<double> guess = initial_vector(circuit);
  NewtonOutcome direct = attempt(guess, direct_settings(options),
                                 RecoveryRung::kDirect);
  if (direct.converged) return succeed(RecoveryRung::kDirect, guess);
  if (!options.enable_recovery) {
    diag.converged = false;
    std::ostringstream os;
    os << direct.reason() << " in the DC operating point (max dV="
       << direct.max_dv << ", recovery disabled)";
    diag.failure = os.str();
    return false;
  }

  // Rung 1: tighter step clamp with a larger iteration budget — rescues
  // overshoot-driven oscillation around sharp nonlinearities.
  {
    NewtonSettings s = direct_settings(options);
    s.v_step_limit = options.v_step_limit / 8.0;
    s.max_iterations = options.max_newton_iterations * 4;
    guess = initial_vector(circuit);
    if (attempt(guess, s, RecoveryRung::kTightClamp).converged) {
      return succeed(RecoveryRung::kTightClamp, guess);
    }
  }

  // Rung 2: gmin stepping. A large leak conductance makes every node
  // strongly anchored (and the system nearly linear); ramp it down over
  // decades re-using each converged point as the next guess. If the exact
  // target gmin still fails, a residual leak of ≤1e-12 mS is accepted as
  // a (flagged, inexact) solution — it is far below any device
  // conductance in the V/kΩ/fF system.
  {
    constexpr double kGminFloor = 1e-12;
    NewtonSettings s = direct_settings(options);
    s.max_iterations = options.max_newton_iterations * 2;
    guess = initial_vector(circuit);
    bool tracking = true;
    double reached = -1.0;  // largest-to-smallest gmin that converged
    for (double g = 1e-1; g >= std::max(options.gmin, kGminFloor) * 0.99;
         g /= 10.0) {
      s.gmin = g;
      if (!attempt(guess, s, RecoveryRung::kGminStep).converged) {
        tracking = false;
        break;
      }
      reached = g;
    }
    if (tracking && reached > 0.0) {
      // Final solve at the exact target gmin.
      std::vector<double> exact_guess = guess;
      s.gmin = options.gmin;
      if (attempt(exact_guess, s, RecoveryRung::kGminStep).converged) {
        return succeed(RecoveryRung::kGminStep, exact_guess);
      }
      if (options.gmin < reached) {
        // The target itself is singular (e.g. gmin = 0 with a genuinely
        // floating node); keep the smallest-leak solution, flagged.
        if (carried_gmin != nullptr) *carried_gmin = reached;
        return succeed(RecoveryRung::kGminStep, guess);
      }
    }
  }

  // Rung 3: source stepping. Ramp every supply and stimulus from 0 to
  // 100%, following the solution branch by continuation; halve the ramp
  // increment on failure, with a bounded total attempt count.
  {
    NewtonSettings s = direct_settings(options);
    s.v_step_limit = options.v_step_limit / 8.0;
    s.max_iterations = options.max_newton_iterations * 4;
    guess = initial_vector(circuit);
    double reached = 0.0;
    double step = 0.25;
    int attempts = 0;
    constexpr int kMaxSourceAttempts = 64;
    constexpr double kMinSourceStep = 1.0 / 1024.0;
    while (reached < 1.0 && ++attempts <= kMaxSourceAttempts) {
      const double scale = std::min(1.0, reached + step);
      s.source_scale = scale;
      std::vector<double> trial = guess;
      if (attempt(trial, s, RecoveryRung::kSourceStep).converged) {
        guess = std::move(trial);
        reached = scale;
        step = std::min(step * 2.0, 0.25);
      } else {
        step /= 2.0;
        if (step < kMinSourceStep) break;
      }
    }
    if (reached >= 1.0) return succeed(RecoveryRung::kSourceStep, guess);
  }

  diag.converged = false;
  diag.exact = false;  // ladder ran (and failed): nothing exact about this
  std::ostringstream os;
  os << direct.reason()
     << " in the DC operating point; recovery ladder exhausted "
        "(tight-clamp, gmin-step, source-step all failed)";
  diag.failure = os.str();
  return false;
}

[[nodiscard]] TransientResult run_transient_impl(
    const Circuit& circuit, const TransientOptions& options,
    const std::vector<int>& probe_nodes, bool throw_on_failure) {
  CWSP_REQUIRE(options.dt_ps > 0.0);
  CWSP_REQUIRE(options.t_stop_ps > 0.0);

  TransientResult result;
  SolverDiagnostics& diag = result.diagnostics;
  for (int node : probe_nodes) result.probes.emplace(node, Waveform{});

  auto fail = [&](const std::string& why) -> TransientResult& {
    diag.converged = false;
    diag.failure = why;
    if (throw_on_failure) throw SolveError("transient analysis: " + why);
    return result;
  };

  // DC operating point seeds the transient. When the ladder had to keep
  // its residual-leak gmin, the stepper inherits it (the circuit is
  // singular without it at any dt, so subdivision alone cannot help).
  std::vector<double> v(initial_vector(circuit));
  double carried_gmin = options.gmin;
  if (!solve_dc_ladder(circuit, options, v, diag, &carried_gmin)) {
    result.final_voltages = v;
    result.total_newton_iterations = diag.newton_iterations;
    if (throw_on_failure) throw SolveError("transient analysis: " + diag.failure);
    return result;
  }

  auto record = [&](double t) {
    for (auto& [node, wave] : result.probes) {
      wave.append(t, v[static_cast<std::size_t>(node)]);
    }
  };
  record(0.0);

  NewtonSettings settings = direct_settings(options);
  settings.gmin = carried_gmin;  // == options.gmin unless the ladder kept a leak
  // Forward-Euler derivative estimate from the last accepted step; the
  // LTE-style accept test compares its prediction against the next
  // backward-Euler solution.
  std::vector<double> dvdt(v.size(), 0.0);
  bool have_derivative = false;

  double t = 0.0;
  while (t < options.t_stop_ps - 1e-12) {
    const double dt = std::min(options.dt_ps, options.t_stop_ps - t);
    const double target = t + dt;
    const std::vector<double> v_prev = v;

    // Direct attempt at the nominal step — the only path taken (and the
    // exact legacy arithmetic) when the circuit is well-behaved.
    NewtonOutcome out =
        newton_solve(circuit, v, v_prev, target, dt, /*transient=*/true,
                     settings);
    diag.newton_iterations += out.iterations;
    diag.final_residual_v = out.max_dv;
    if (out.converged) {
      ++diag.steps;
      diag.min_dt_ps = diag.min_dt_ps == 0.0 ? dt : std::min(diag.min_dt_ps, dt);
      for (std::size_t i = 0; i < v.size(); ++i) {
        dvdt[i] = (v[i] - v_prev[i]) / dt;
      }
      have_derivative = true;
      t = target;
      ++result.steps;
      record(t);
      continue;
    }

    ++diag.rejected_steps;
    if (!options.enable_recovery) {
      std::ostringstream os;
      os << out.reason() << " at t=" << target << " ps (max dV=" << out.max_dv
         << ", recovery disabled)";
      fail(os.str());
      break;
    }

    // Adaptive stepping: subdivide the nominal interval with halved dt,
    // exponential backoff down to the dt floor, and an LTE-style
    // accept/reject test on every converged substep. The waveform still
    // records at nominal grid points only.
    diag.exact = false;
    ++diag.subdivided_steps;
    std::vector<double> v_sub = v_prev;
    std::vector<double> dvdt_sub = dvdt;
    bool have_deriv_sub = have_derivative;
    double sub_t = t;
    double sub_dt = dt / 2.0;
    int attempts = 1;  // the rejected nominal attempt counts
    bool recovered = true;
    std::string sub_failure;
    while (sub_t < target - 1e-12) {
      const double step_dt = std::min(sub_dt, target - sub_t);
      if (step_dt < options.dt_floor_ps) {
        std::ostringstream os;
        os << out.reason() << " at t=" << target
           << " ps; dt floor reached (dt=" << step_dt << " ps < "
           << options.dt_floor_ps << " ps)";
        sub_failure = os.str();
        recovered = false;
        break;
      }
      if (++attempts > options.max_step_retries) {
        std::ostringstream os;
        os << "step retry budget exhausted at t=" << target << " ps ("
           << options.max_step_retries << " attempts)";
        sub_failure = os.str();
        recovered = false;
        break;
      }
      std::vector<double> v_try = v_sub;
      out = newton_solve(circuit, v_try, v_sub, sub_t + step_dt, step_dt,
                         /*transient=*/true, settings);
      diag.newton_iterations += out.iterations;
      diag.final_residual_v = out.max_dv;
      if (!out.converged) {
        ++diag.rejected_steps;
        sub_dt = step_dt / 2.0;
        continue;
      }
      if (have_deriv_sub) {
        double lte = 0.0;
        for (int n = 1; n < circuit.num_nodes(); ++n) {
          const auto i = static_cast<std::size_t>(n);
          lte = std::max(lte, std::fabs(v_try[i] -
                                        (v_sub[i] + step_dt * dvdt_sub[i])));
        }
        if (lte > options.lte_tolerance_v &&
            step_dt / 2.0 >= options.dt_floor_ps) {
          ++diag.rejected_steps;
          sub_dt = step_dt / 2.0;
          continue;
        }
      }
      // Accept the substep; regrow dt exponentially toward the nominal.
      for (std::size_t i = 0; i < v_try.size(); ++i) {
        dvdt_sub[i] = (v_try[i] - v_sub[i]) / step_dt;
      }
      have_deriv_sub = true;
      v_sub = std::move(v_try);
      sub_t += step_dt;
      ++diag.steps;
      ++result.steps;
      diag.min_dt_ps =
          diag.min_dt_ps == 0.0 ? step_dt : std::min(diag.min_dt_ps, step_dt);
      sub_dt = step_dt * 2.0;
    }
    if (!recovered) {
      result.final_voltages = v_sub;
      result.total_newton_iterations = diag.newton_iterations;
      fail(sub_failure);
      return result;
    }
    v = std::move(v_sub);
    dvdt = std::move(dvdt_sub);
    have_derivative = have_deriv_sub;
    t = target;
    record(t);
  }

  result.final_voltages = v;
  result.total_newton_iterations = diag.newton_iterations;
  return result;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void json_number(std::ostringstream& os, double value) {
  if (std::isfinite(value)) {
    os << value;
  } else {
    os << "null";
  }
}

}  // namespace

const char* to_string(RecoveryRung rung) {
  switch (rung) {
    case RecoveryRung::kDirect: return "direct";
    case RecoveryRung::kTightClamp: return "tight-clamp";
    case RecoveryRung::kGminStep: return "gmin-step";
    case RecoveryRung::kSourceStep: return "source-step";
  }
  return "?";
}

void SolverDiagnostics::merge(const SolverDiagnostics& other) {
  converged = converged && other.converged;
  exact = exact && other.exact;
  newton_iterations += other.newton_iterations;
  steps += other.steps;
  rejected_steps += other.rejected_steps;
  subdivided_steps += other.subdivided_steps;
  for (std::size_t i = 0; i < rung_attempts.size(); ++i) {
    rung_attempts[i] += other.rung_attempts[i];
  }
  deepest_rung = std::max(deepest_rung, other.deepest_rung);
  if (other.min_dt_ps > 0.0) {
    min_dt_ps = min_dt_ps == 0.0 ? other.min_dt_ps
                                 : std::min(min_dt_ps, other.min_dt_ps);
  }
  final_residual_v = other.final_residual_v;
  if (!other.failure.empty()) {
    failure = failure.empty() ? other.failure : failure + "; " + other.failure;
  }
}

std::string SolverDiagnostics::to_json() const {
  std::ostringstream os;
  os << "{\"converged\": " << (converged ? "true" : "false")
     << ", \"exact\": " << (exact ? "true" : "false")
     << ", \"newton_iterations\": " << newton_iterations
     << ", \"steps\": " << steps
     << ", \"rejected_steps\": " << rejected_steps
     << ", \"subdivided_steps\": " << subdivided_steps
     << ", \"rung_attempts\": {";
  for (std::size_t i = 0; i < rung_attempts.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << to_string(static_cast<RecoveryRung>(i))
       << "\": " << rung_attempts[i];
  }
  os << "}, \"deepest_rung\": \"" << to_string(deepest_rung) << '"'
     << ", \"min_dt_ps\": ";
  json_number(os, min_dt_ps);
  os << ", \"final_residual_v\": ";
  json_number(os, final_residual_v);
  os << ", \"failure\": \"" << json_escape(failure) << "\"}";
  return os.str();
}

std::vector<double> solve_dc(const Circuit& circuit,
                             const TransientOptions& options) {
  SolverDiagnostics diag;
  std::vector<double> v = try_solve_dc(circuit, options, diag);
  if (!diag.converged) {
    throw SolveError("DC operating point: " + diag.failure);
  }
  return v;
}

std::vector<double> try_solve_dc(const Circuit& circuit,
                                 const TransientOptions& options,
                                 SolverDiagnostics& diagnostics) {
  std::vector<double> v = initial_vector(circuit);
  solve_dc_ladder(circuit, options, v, diagnostics);
  return v;
}

TransientResult run_transient(const Circuit& circuit,
                              const TransientOptions& options,
                              const std::vector<int>& probe_nodes) {
  return run_transient_impl(circuit, options, probe_nodes,
                            /*throw_on_failure=*/true);
}

TransientResult try_run_transient(const Circuit& circuit,
                                  const TransientOptions& options,
                                  const std::vector<int>& probe_nodes) {
  return run_transient_impl(circuit, options, probe_nodes,
                            /*throw_on_failure=*/false);
}

}  // namespace cwsp::spice
