#pragma once
// Transient analysis: DC operating point followed by fixed-step
// backward-Euler integration with Newton–Raphson per step.

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/waveform.hpp"

namespace cwsp::spice {

struct TransientOptions {
  double t_stop_ps = 1000.0;
  double dt_ps = 1.0;
  int max_newton_iterations = 200;
  /// Convergence: max |Δv| below this (V).
  double v_tolerance = 1e-6;
  /// Per-iteration voltage step clamp (V) for Newton damping.
  double v_step_limit = 0.4;
  /// Leak conductance from every node to ground (mS); keeps otherwise
  /// floating nodes (e.g. a CWSP output in its hold state) well-posed.
  double gmin = 1e-7;
};

struct TransientResult {
  /// Probed node waveforms keyed by node index.
  std::map<int, Waveform> probes;
  /// Final converged node voltages (index = node).
  std::vector<double> final_voltages;
  std::size_t total_newton_iterations = 0;
  std::size_t steps = 0;

  [[nodiscard]] const Waveform& probe(int node) const {
    const auto it = probes.find(node);
    CWSP_REQUIRE_MSG(it != probes.end(), "node " << node << " not probed");
    return it->second;
  }
};

/// Runs the transient analysis recording the given nodes. Throws
/// cwsp::Error if Newton fails to converge or the MNA matrix is singular.
[[nodiscard]] TransientResult run_transient(const Circuit& circuit,
                                            const TransientOptions& options,
                                            const std::vector<int>& probe_nodes);

/// DC operating point only (capacitors open, t = 0).
[[nodiscard]] std::vector<double> solve_dc(const Circuit& circuit,
                                           const TransientOptions& options = {});

}  // namespace cwsp::spice
