#pragma once
// Transient analysis: DC operating point followed by backward-Euler
// integration with Newton–Raphson per step.
//
// Convergence hardening (docs/minispice.md § "Recovery ladder"): when the
// direct solve fails, the engine escalates through bounded retries —
// tighter Newton step clamp → gmin stepping → source stepping for the
// operating point, and rejected-step dt halving with an LTE-style
// accept/reject test for the transient — recording every attempt in a
// SolverDiagnostics that callers thread up to JSON reports. The recovery
// path only engages after a direct failure, so circuits that converge
// without it produce byte-identical waveforms.

#include <array>
#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/waveform.hpp"

namespace cwsp::spice {

struct TransientOptions {
  double t_stop_ps = 1000.0;
  double dt_ps = 1.0;
  int max_newton_iterations = 200;
  /// Convergence: max |Δv| below this (V).
  double v_tolerance = 1e-6;
  /// Per-iteration voltage step clamp (V) for Newton damping.
  double v_step_limit = 0.4;
  /// Leak conductance from every node to ground (mS); keeps otherwise
  /// floating nodes (e.g. a CWSP output in its hold state) well-posed.
  double gmin = 1e-7;

  // ------------------------------------------------- recovery ladder
  /// Master switch. Off, the solver behaves like the historical
  /// single-shot engine: any failure surfaces immediately. (Differential
  /// tests use this to prove recovery never perturbs converging runs.)
  bool enable_recovery = true;
  /// Adaptive-stepping floor: a rejected step is retried with halved dt
  /// until dt falls below this, at which point the run is abandoned.
  double dt_floor_ps = 1e-3;
  /// LTE-style accept threshold (V) applied to substeps while recovering:
  /// a converged substep whose forward-Euler predictor misses by more
  /// than this is rejected anyway and retried with halved dt.
  double lte_tolerance_v = 0.2;
  /// Bound on solve attempts (accepted + rejected) while subdividing one
  /// nominal step.
  int max_step_retries = 64;
};

/// Rungs of the DC recovery ladder, in escalation order.
enum class RecoveryRung : std::uint8_t {
  kDirect = 0,
  kTightClamp = 1,
  kGminStep = 2,
  kSourceStep = 3,
};

[[nodiscard]] const char* to_string(RecoveryRung rung);

/// Structured outcome of one analysis run (DC or transient): what it
/// cost, which recovery rungs fired, and — when `converged` is false —
/// why the ladder gave up. Threaded through every measurement helper and
/// serialized by cwsp_tool (docs/minispice.md § "Diagnostics schema").
struct SolverDiagnostics {
  /// False when the ladder was exhausted without a converged solution.
  bool converged = true;
  /// True while the result came from the direct path alone; false once
  /// any ladder rung or step subdivision produced it. Exact results are
  /// bit-identical to the pre-recovery engine's.
  bool exact = true;
  std::size_t newton_iterations = 0;
  /// Accepted integration steps, including recovery substeps.
  std::size_t steps = 0;
  /// Solve attempts rejected during adaptive stepping (non-convergence,
  /// NaN/Inf, or LTE test failure).
  std::size_t rejected_steps = 0;
  /// Nominal steps that needed subdivision to complete.
  std::size_t subdivided_steps = 0;
  /// Solve attempts per DC ladder rung (index = RecoveryRung).
  std::array<std::size_t, 4> rung_attempts{};
  RecoveryRung deepest_rung = RecoveryRung::kDirect;
  /// Smallest accepted dt (ps); equals the nominal dt when no step was
  /// ever subdivided. Zero for DC-only runs.
  double min_dt_ps = 0.0;
  /// Max |Δv| of the last Newton iteration (V).
  double final_residual_v = 0.0;
  /// Human-readable reason when `converged` is false; empty otherwise.
  std::string failure;

  /// Folds another run's counters in (measurement sweeps aggregate the
  /// diagnostics of every transient they launch).
  void merge(const SolverDiagnostics& other);

  /// JSON object on one line, docs/minispice.md schema.
  [[nodiscard]] std::string to_json() const;
};

struct TransientResult {
  /// Probed node waveforms keyed by node index.
  std::map<int, Waveform> probes;
  /// Final converged node voltages (index = node). When the run did not
  /// converge these hold the last accepted step's solution.
  std::vector<double> final_voltages;
  std::size_t total_newton_iterations = 0;
  std::size_t steps = 0;
  SolverDiagnostics diagnostics;

  [[nodiscard]] const Waveform& probe(int node) const {
    const auto it = probes.find(node);
    CWSP_REQUIRE_MSG(it != probes.end(), "node " << node << " not probed");
    return it->second;
  }
};

/// Runs the transient analysis recording the given nodes. Throws
/// cwsp::SolveError if the run still fails after the recovery ladder.
[[nodiscard]] TransientResult run_transient(const Circuit& circuit,
                                            const TransientOptions& options,
                                            const std::vector<int>& probe_nodes);

/// As run_transient, but convergence failure is reported in
/// result.diagnostics (converged = false, failure set) instead of thrown;
/// waveforms hold every step accepted before the ladder gave up. Callers
/// that can degrade gracefully (characterization fallback) use this.
[[nodiscard]] TransientResult try_run_transient(
    const Circuit& circuit, const TransientOptions& options,
    const std::vector<int>& probe_nodes);

/// DC operating point only (capacitors open, t = 0). Throws
/// cwsp::SolveError when the ladder is exhausted.
[[nodiscard]] std::vector<double> solve_dc(const Circuit& circuit,
                                           const TransientOptions& options = {});

/// Non-throwing DC solve; reports failure through `diagnostics`
/// (never null) and returns the best available voltages.
[[nodiscard]] std::vector<double> try_solve_dc(const Circuit& circuit,
                                               const TransientOptions& options,
                                               SolverDiagnostics& diagnostics);

}  // namespace cwsp::spice
