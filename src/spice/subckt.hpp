#pragma once
// Subcircuit builders for the structures the paper simulates in SPICE:
// static CMOS inverters, the inverter-type CWSP element of [15] (two
// series PMOS / two series NMOS gated by a and a*), and the Figure-6
// strike harness (radiation strike on the output of a min-sized inverter,
// with junction clamp diodes).

#include <string>

#include "cell/calibration.hpp"
#include "spice/circuit.hpp"
#include "spice/transient.hpp"

namespace cwsp::spice {

/// 65 nm device parameters calibrated so that a Q=100 fC / 150 fC strike
/// (τα=200 ps, τβ=50 ps) on a min-sized inverter output produces 500 /
/// 600 ps glitches, as the paper measures (§4, Fig. 6).
struct SpiceTech {
  double vdd = 1.0;
  double vt = 0.22;
  /// KP·W/L of a minimum NMOS / PMOS, mA/V².
  double kp_n_min = 0.225;
  double kp_p_min = 0.1125;
  double lambda = 0.05;
  /// Lumped diffusion + wire capacitance at a min inverter output, fF.
  double c_node_ff = 0.8;
  /// Junction clamp diode (drain-bulk); clamps strikes ~0.6 V past the
  /// rails, reproducing the 1.6 V plateau of Fig. 6.
  DiodeParams clamp{/*is_ma=*/1e-8, /*n_vt=*/0.033, /*v_linear=*/0.8};
};

/// Adds a VDD rail voltage source if not present and returns its node.
int add_vdd(Circuit& circuit, const SpiceTech& tech);

/// Static CMOS inverter. Width multipliers scale the min-device KP.
void add_inverter(Circuit& circuit, const std::string& prefix, int in,
                  int out, int vdd, double wp_mult, double wn_mult,
                  const SpiceTech& tech);

/// Junction clamp diodes on a node: to VDD (conducts when v > vdd + ~0.6)
/// and from ground (conducts when v < −0.6).
void add_node_clamps(Circuit& circuit, const std::string& prefix, int node,
                     int vdd, const SpiceTech& tech);

/// Inverter-type CWSP element (paper Fig. 2 / [15]): pull-up of two series
/// PMOS gated by a and a*, pull-down of two series NMOS gated by a and a*.
/// When a == a* it inverts; when a != a* both networks are off and the
/// output holds its last value on its node capacitance.
void add_cwsp_element(Circuit& circuit, const std::string& prefix, int a,
                      int a_star, int out, int vdd, double wp_mult,
                      double wn_mult, const SpiceTech& tech);

/// Figure-6 harness: a min-sized inverter with input held high (output
/// low, NMOS on); a double-exponential strike of charge q injects into the
/// output at t0. Clamp diodes bound the excursion near vdd + 0.6 V.
struct StrikeHarness {
  Circuit circuit;
  int out = 0;
  int vdd = 0;
};
[[nodiscard]] StrikeHarness make_struck_inverter(Femtocoulombs q,
                                                 Picoseconds tau_alpha,
                                                 Picoseconds tau_beta,
                                                 Picoseconds t0,
                                                 const SpiceTech& tech = {});

/// Runs the Fig-6 experiment and returns the glitch width: the time the
/// struck output (nominal 0 V) spends above VDD/2. Every measurement
/// helper below takes an optional diagnostics sink: when non-null, the
/// SolverDiagnostics of every analysis the measurement launches is
/// merge()d into it (a bisection sweep aggregates dozens of transients).
[[nodiscard]] Picoseconds measure_strike_glitch_width(
    Femtocoulombs q, const SpiceTech& tech = {},
    Picoseconds tau_alpha = cal::kTauAlpha,
    Picoseconds tau_beta = cal::kTauBeta,
    SolverDiagnostics* diagnostics = nullptr);

/// Full waveform of the Fig-6 experiment (for the bench binary).
[[nodiscard]] Waveform strike_waveform(Femtocoulombs q,
                                       const SpiceTech& tech = {},
                                       double t_stop_ps = 1500.0,
                                       SolverDiagnostics* diagnostics = nullptr);

/// Propagation delay of a CWSP element (both inputs stepping together,
/// 50%→50%) at the given device sizing, driving `load_ff`. Used to
/// cross-check the calibrated D_CWSP constants.
[[nodiscard]] Picoseconds measure_cwsp_delay(double wp_mult, double wn_mult,
                                             Femtofarads load_ff,
                                             const SpiceTech& tech = {},
                                             SolverDiagnostics* diagnostics = nullptr);

/// Critical charge of a min-sized inverter output: the smallest Q whose
/// strike crosses VDD/2 (bisection against the strike harness).
[[nodiscard]] Femtocoulombs measure_critical_charge(
    const SpiceTech& tech = {}, SolverDiagnostics* diagnostics = nullptr);

struct NoiseMargins {
  /// Input-low / input-high noise margins from the VTC unity-gain points.
  Volts nm_low{0.0};
  Volts nm_high{0.0};
  /// Switching threshold (Vout = Vin crossing).
  Volts switch_point{0.0};
};

/// Static noise margins of an inverter at the given P/N width multipliers
/// (DC sweep of the voltage transfer curve). The paper notes a 66 mV NM
/// reduction from the protection logic's equal-width sizing (§3.3).
[[nodiscard]] NoiseMargins measure_noise_margins(
    double wp_mult, double wn_mult, const SpiceTech& tech = {},
    SolverDiagnostics* diagnostics = nullptr);

}  // namespace cwsp::spice
