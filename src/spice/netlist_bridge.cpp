#include "spice/netlist_bridge.hpp"

namespace cwsp::spice {
namespace {

MosParams nmos(const SpiceTech& tech, double mult = 1.0) {
  MosParams p;
  p.type = MosType::kNmos;
  p.kp_ma = tech.kp_n_min * mult;
  p.vt = tech.vt;
  p.lambda = tech.lambda;
  return p;
}

MosParams pmos(const SpiceTech& tech, double mult = 1.0) {
  MosParams p;
  p.type = MosType::kPmos;
  p.kp_ma = tech.kp_p_min * mult;
  p.vt = tech.vt;
  p.lambda = tech.lambda;
  return p;
}

/// Two-input NAND: parallel PMOS pull-up, series NMOS pull-down.
void add_nand2(Circuit& c, const std::string& prefix, int a, int b, int out,
               int vdd, const SpiceTech& tech) {
  c.add_mosfet(prefix + ".mpa", out, a, vdd, pmos(tech));
  c.add_mosfet(prefix + ".mpb", out, b, vdd, pmos(tech));
  const int mid = c.node(prefix + ".n1");
  // Series stack sized 2x to balance drive.
  c.add_mosfet(prefix + ".mna", out, a, mid, nmos(tech, 2.0));
  c.add_mosfet(prefix + ".mnb", mid, b, kGround, nmos(tech, 2.0));
  c.add_capacitor(prefix + ".cout", out, kGround,
                  Femtofarads(tech.c_node_ff));
}

/// Two-input NOR: series PMOS pull-up, parallel NMOS pull-down.
void add_nor2(Circuit& c, const std::string& prefix, int a, int b, int out,
              int vdd, const SpiceTech& tech) {
  const int mid = c.node(prefix + ".p1");
  c.add_mosfet(prefix + ".mpa", mid, a, vdd, pmos(tech, 2.0));
  c.add_mosfet(prefix + ".mpb", out, b, mid, pmos(tech, 2.0));
  c.add_mosfet(prefix + ".mna", out, a, kGround, nmos(tech));
  c.add_mosfet(prefix + ".mnb", out, b, kGround, nmos(tech));
  c.add_capacitor(prefix + ".cout", out, kGround,
                  Femtofarads(tech.c_node_ff));
}

}  // namespace

SpiceElaboration elaborate_to_spice(
    const Netlist& netlist,
    const std::map<std::string, SourceFunction>& pi_drives,
    const SpiceTech& tech) {
  CWSP_REQUIRE_MSG(netlist.num_flip_flops() == 0,
                   "electrical elaboration supports combinational cones");
  SpiceElaboration result;
  Circuit& c = result.circuit;
  result.vdd = add_vdd(c, tech);

  auto node_for = [&](NetId id) {
    const auto it = result.node_of_net.find(id.value());
    if (it != result.node_of_net.end()) return it->second;
    const int node = c.node("n_" + netlist.net(id).name);
    result.node_of_net.emplace(id.value(), node);
    return node;
  };

  // Primary inputs and constants become voltage sources.
  for (NetId pi : netlist.primary_inputs()) {
    const int node = node_for(pi);
    const auto drive = pi_drives.find(netlist.net(pi).name);
    const SourceFunction fn = drive != pi_drives.end()
                                  ? drive->second
                                  : SourceFunction::dc(0.0);
    c.add_voltage_source("V_" + netlist.net(pi).name, node, kGround, fn);
  }
  for (std::size_t i = 0; i < netlist.num_nets(); ++i) {
    const Net& net = netlist.net(NetId{i});
    if (net.driver_kind == DriverKind::kConstant) {
      const int node = node_for(NetId{i});
      c.add_voltage_source("V_" + net.name, node, kGround,
                           SourceFunction::dc(net.constant_value ? tech.vdd
                                                                 : 0.0));
    }
  }

  for (GateId g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    const Cell& cell = netlist.cell_of(g);
    const std::string prefix = "x_" + netlist.net(gate.output).name;
    const int out = node_for(gate.output);
    switch (cell.kind()) {
      case CellKind::kInv:
        add_inverter(c, prefix, node_for(gate.inputs[0]), out, result.vdd,
                     1.0, 1.0, tech);
        break;
      case CellKind::kBuf: {
        const int mid = c.node(prefix + ".b");
        add_inverter(c, prefix + ".i0", node_for(gate.inputs[0]), mid,
                     result.vdd, 1.0, 1.0, tech);
        add_inverter(c, prefix + ".i1", mid, out, result.vdd, 1.0, 1.0,
                     tech);
        break;
      }
      case CellKind::kNand2:
        add_nand2(c, prefix, node_for(gate.inputs[0]),
                  node_for(gate.inputs[1]), out, result.vdd, tech);
        break;
      case CellKind::kNor2:
        add_nor2(c, prefix, node_for(gate.inputs[0]),
                 node_for(gate.inputs[1]), out, result.vdd, tech);
        break;
      case CellKind::kAnd2: {
        const int mid = c.node(prefix + ".nand");
        add_nand2(c, prefix + ".g0", node_for(gate.inputs[0]),
                  node_for(gate.inputs[1]), mid, result.vdd, tech);
        add_inverter(c, prefix + ".g1", mid, out, result.vdd, 1.0, 1.0,
                     tech);
        break;
      }
      case CellKind::kOr2: {
        const int mid = c.node(prefix + ".nor");
        add_nor2(c, prefix + ".g0", node_for(gate.inputs[0]),
                 node_for(gate.inputs[1]), mid, result.vdd, tech);
        add_inverter(c, prefix + ".g1", mid, out, result.vdd, 1.0, 1.0,
                     tech);
        break;
      }
      default:
        throw Error(std::string("electrical elaboration: unsupported cell ") +
                    cell.name());
    }
  }
  return result;
}

NetlistTransient run_netlist_transient(
    const Netlist& netlist,
    const std::map<std::string, SourceFunction>& pi_drives,
    const std::vector<std::string>& probe_nets,
    const TransientOptions& options, const SpiceTech& tech) {
  NetlistTransient out;
  out.elaboration = elaborate_to_spice(netlist, pi_drives, tech);
  std::vector<int> probes;
  probes.reserve(probe_nets.size());
  for (const std::string& name : probe_nets) {
    const auto net = netlist.find_net(name);
    CWSP_REQUIRE_MSG(net.has_value(), "probe net '" << name << "' not found");
    probes.push_back(out.elaboration.node(*net));
  }
  out.result = try_run_transient(out.elaboration.circuit, options, probes);
  return out;
}

}  // namespace cwsp::spice
