#pragma once
// Dense linear algebra for the MiniSpice MNA system. Circuits here are
// tiny (tens of nodes), so dense LU with partial pivoting is both simplest
// and fastest.

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cwsp::spice {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] double& at(std::size_t row, std::size_t col) {
    CWSP_ASSERT(row < n_ && col < n_);
    return data_[row * n_ + col];
  }
  [[nodiscard]] double at(std::size_t row, std::size_t col) const {
    CWSP_ASSERT(row < n_ && col < n_);
    return data_[row * n_ + col];
  }

  void clear() { std::fill(data_.begin(), data_.end(), 0.0); }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Outcome of one factorisation, for the recovery ladder's diagnostics:
/// whether (and where) a pivot broke down, plus a cheap conditioning
/// proxy (max/min |pivot| of the equilibrated factors).
struct LinearSolveInfo {
  bool singular = false;
  std::size_t singular_column = 0;
  double pivot_ratio = 0.0;
};

/// Solves A·x = b in place via LU with partial pivoting. Returns false
/// (leaving x untouched) instead of throwing when A is singular, so the
/// Newton loop can escalate through its recovery ladder. A and b are
/// destroyed.
[[nodiscard]] bool try_solve_linear_system(DenseMatrix a,
                                           std::vector<double> b,
                                           std::vector<double>& x,
                                           LinearSolveInfo* info = nullptr);

/// Throwing wrapper: raises cwsp::SolveError if A is singular (pivot
/// below tolerance). A and b are destroyed; the solution is returned.
[[nodiscard]] std::vector<double> solve_linear_system(DenseMatrix a,
                                                      std::vector<double> b);

}  // namespace cwsp::spice
