#pragma once
// Cross-layer bridge: elaborates a (small) gate-level netlist into a
// transistor-level MiniSpice circuit, so the event-driven simulator's
// glitch propagation can be validated against the electrical ground
// truth on the same structure.
//
// Supported cells: INV, BUF, NAND2, NOR2, AND2, OR2 (static CMOS
// topologies). Sequential elements are out of scope — validate
// combinational cones.

#include <map>
#include <string>

#include "netlist/netlist.hpp"
#include "spice/circuit.hpp"
#include "spice/subckt.hpp"

namespace cwsp::spice {

struct SpiceElaboration {
  Circuit circuit;
  int vdd = 0;
  /// Gate-level net → electrical node.
  std::map<std::uint32_t, int> node_of_net;

  [[nodiscard]] int node(NetId net) const {
    const auto it = node_of_net.find(net.value());
    CWSP_REQUIRE_MSG(it != node_of_net.end(), "net not elaborated");
    return it->second;
  }
};

/// Elaborates `netlist`. Each primary input must have a drive waveform in
/// `pi_drives` (keyed by PI net name); missing PIs default to DC 0.
[[nodiscard]] SpiceElaboration elaborate_to_spice(
    const Netlist& netlist,
    const std::map<std::string, SourceFunction>& pi_drives,
    const SpiceTech& tech = {});

/// Elaborates and runs a transient in one call, probing the named nets.
/// Never throws on convergence failure: the ladder's verdict is in
/// result.diagnostics (waveforms hold whatever was accepted before it
/// gave up). Probe names must be elaborated nets.
struct NetlistTransient {
  SpiceElaboration elaboration;
  TransientResult result;

  [[nodiscard]] const Waveform& probe(NetId net) const {
    return result.probe(elaboration.node(net));
  }
};
[[nodiscard]] NetlistTransient run_netlist_transient(
    const Netlist& netlist,
    const std::map<std::string, SourceFunction>& pi_drives,
    const std::vector<std::string>& probe_nets,
    const TransientOptions& options = {}, const SpiceTech& tech = {});

}  // namespace cwsp::spice
