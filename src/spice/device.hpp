#pragma once
// Device interface for MiniSpice.
//
// Unit system (self-consistent, no conversion factors in stamps):
//   voltage V, resistance kΩ, capacitance fF, time ps
//   ⇒ conductance mS, current mA, charge fC (mA·ps = fC, mS·V = mA,
//     fF/ps = mS).

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/ids.hpp"

namespace cwsp::spice {

/// Ground is node index 0; matrix rows cover nodes 1..n-1 plus one row per
/// voltage-source branch current.
inline constexpr int kGround = 0;

class StampContext {
 public:
  StampContext(std::vector<double>& matrix, std::vector<double>& rhs,
               const std::vector<double>& v_iter,
               const std::vector<double>& v_prev, std::size_t dim,
               int num_nodes, double time_ps, double dt_ps, bool transient,
               double source_scale = 1.0)
      : matrix_(matrix),
        rhs_(rhs),
        v_iter_(v_iter),
        v_prev_(v_prev),
        dim_(dim),
        num_nodes_(num_nodes),
        time_ps_(time_ps),
        dt_ps_(dt_ps),
        transient_(transient),
        source_scale_(source_scale) {}

  /// Candidate node voltages for this Newton iteration (index = node).
  [[nodiscard]] double v(int node) const {
    return node == kGround ? 0.0 : v_iter_[static_cast<std::size_t>(node)];
  }
  /// Converged node voltages of the previous timestep.
  [[nodiscard]] double v_prev(int node) const {
    return node == kGround ? 0.0 : v_prev_[static_cast<std::size_t>(node)];
  }

  [[nodiscard]] double time_ps() const { return time_ps_; }
  [[nodiscard]] double dt_ps() const { return dt_ps_; }
  /// False during the DC operating-point solve (capacitors open).
  [[nodiscard]] bool transient() const { return transient_; }
  /// Multiplier on every independent source value (1.0 except during the
  /// recovery ladder's source-stepping rung, which ramps supplies and
  /// stimuli from 0 to 100%).
  [[nodiscard]] double source_scale() const { return source_scale_; }

  /// Adds conductance g between matrix rows of nodes i and j (ground rows
  /// are dropped).
  void stamp_conductance(int node_a, int node_b, double g_ms) {
    add_matrix(row(node_a), row(node_a), g_ms);
    add_matrix(row(node_b), row(node_b), g_ms);
    add_matrix(row(node_a), row(node_b), -g_ms);
    add_matrix(row(node_b), row(node_a), -g_ms);
  }

  /// Adds a current i_ma flowing *into* node `into` and out of node `from`.
  void stamp_current(int from, int into, double i_ma) {
    add_rhs(row(into), i_ma);
    add_rhs(row(from), -i_ma);
  }

  /// Adds a voltage-controlled current source: current g·(v(cp)−v(cn))
  /// flows from node `from` into node `into`.
  void stamp_vccs(int from, int into, int cp, int cn, double g_ms) {
    add_matrix(row(into), row(cp), -g_ms);
    add_matrix(row(into), row(cn), g_ms);
    add_matrix(row(from), row(cp), g_ms);
    add_matrix(row(from), row(cn), -g_ms);
  }

  // Raw access for voltage-source branch stamping.
  void add_matrix(int row_idx, int col_idx, double value) {
    if (row_idx < 0 || col_idx < 0) return;
    matrix_[static_cast<std::size_t>(row_idx) * dim_ +
            static_cast<std::size_t>(col_idx)] += value;
  }
  void add_rhs(int row_idx, double value) {
    if (row_idx < 0) return;
    rhs_[static_cast<std::size_t>(row_idx)] += value;
  }

  /// Matrix row of a node (-1 for ground).
  [[nodiscard]] static int row(int node) { return node - 1; }
  /// Matrix row of voltage-source branch `branch_index`. Uses the final
  /// node count of the circuit, so sources may be added in any order.
  [[nodiscard]] int branch_row(int branch_index) const {
    return num_nodes_ - 1 + branch_index;
  }
  /// Branch current of a voltage source (read back from the solution).
  [[nodiscard]] double branch_current(int branch_index) const {
    return v_iter_[static_cast<std::size_t>(num_nodes_ - 1 + branch_index)];
  }

 private:
  std::vector<double>& matrix_;
  std::vector<double>& rhs_;
  const std::vector<double>& v_iter_;
  const std::vector<double>& v_prev_;
  std::size_t dim_;
  int num_nodes_;
  double time_ps_;
  double dt_ps_;
  bool transient_;
  double source_scale_;
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Contributes the device's linearised companion model to the MNA
  /// system for the current Newton iteration.
  virtual void stamp(StampContext& ctx) const = 0;

  /// Nonlinear devices force Newton iteration to continue until
  /// convergence of their terminal voltages.
  [[nodiscard]] virtual bool nonlinear() const { return false; }

 private:
  std::string name_;
};

}  // namespace cwsp::spice
