#include "spice/delay_line.hpp"

namespace cwsp::spice {

void add_delay_line(Circuit& circuit, const std::string& prefix, int in,
                    int out, int vdd, int segments, Kiloohms r_poly,
                    const SpiceTech& tech) {
  CWSP_REQUIRE(segments >= 1);
  CWSP_REQUIRE(r_poly.value() > 0.0);
  int node = in;
  for (int s = 0; s < segments; ++s) {
    const std::string seg = prefix + ".s" + std::to_string(s);
    const int mid = circuit.node(seg + ".r");
    const int stage_out =
        s + 1 == segments ? out : circuit.node(seg + ".o");
    circuit.add_resistor(seg + ".rpoly", node, mid, r_poly);
    // POLY2 wire capacitance at the resistor output dominates the RC.
    circuit.add_capacitor(seg + ".cpoly", mid, kGround, Femtofarads(1.0));
    // Min inverter with equal P/N widths (paper §4).
    add_inverter(circuit, seg + ".inv", mid, stage_out, vdd, 1.0, 1.0,
                 tech);
    node = stage_out;
  }
}

Picoseconds measure_delay_line(int segments, Kiloohms r_poly,
                               const SpiceTech& tech,
                               SolverDiagnostics* diagnostics) {
  Circuit c;
  const int vdd = add_vdd(c, tech);
  const int in = c.node("in");
  const int out = c.node("out");
  c.add_voltage_source(
      "Vin", in, kGround,
      SourceFunction::pulse(0.0, tech.vdd, 200.0, 5.0, 1e6, 5.0));
  add_delay_line(c, "dl", in, out, vdd, segments, r_poly, tech);

  TransientOptions options;
  options.t_stop_ps = 200.0 + 400.0 * segments * (1.0 + r_poly.value());
  options.dt_ps = 1.0;
  const auto result = run_transient(c, options, {in, out});
  if (diagnostics != nullptr) diagnostics->merge(result.diagnostics);

  const auto t_in =
      result.probe(in).first_crossing(tech.vdd / 2.0, /*rising=*/true);
  CWSP_REQUIRE(t_in.has_value());
  // The output polarity depends on segment parity; take whichever edge
  // responds to the input step.
  const auto& w = result.probe(out);
  const bool out_rises = segments % 2 == 0;
  const auto t_out =
      w.first_crossing(tech.vdd / 2.0, /*rising=*/out_rises, *t_in);
  CWSP_REQUIRE_MSG(t_out.has_value(),
                   "delay line output never switched — POLY2 resistance "
                   "too large for the simulated window");
  return Picoseconds(*t_out - *t_in);
}

DelayLineDesign calibrate_delay_line(int segments, Picoseconds target,
                                     const SpiceTech& tech,
                                     SolverDiagnostics* diagnostics) {
  CWSP_REQUIRE(target.value() > 0.0);
  double lo = 0.1;     // kΩ
  double hi = 400.0;   // kΩ — beyond this the segment no longer swings
  const double d_lo =
      measure_delay_line(segments, Kiloohms(lo), tech, diagnostics).value();
  const double d_hi =
      measure_delay_line(segments, Kiloohms(hi), tech, diagnostics).value();
  CWSP_REQUIRE_MSG(target.value() >= d_lo && target.value() <= d_hi,
                   "target delay " << target.value()
                       << " ps outside the tunable range [" << d_lo << ", "
                       << d_hi << "] for " << segments << " segments");
  for (int iter = 0; iter < 30; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double d =
        measure_delay_line(segments, Kiloohms(mid), tech, diagnostics).value();
    if (d < target.value()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  DelayLineDesign design;
  design.segments = segments;
  design.r_poly = Kiloohms(0.5 * (lo + hi));
  design.achieved =
      measure_delay_line(segments, design.r_poly, tech, diagnostics);
  return design;
}

}  // namespace cwsp::spice
