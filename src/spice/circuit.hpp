#pragma once
// MiniSpice circuit container: named nodes (ground = "0"), owned devices,
// and helpers for the common device types.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/devices.hpp"

namespace cwsp::spice {

class Circuit {
 public:
  Circuit();

  /// Returns the node's index, creating it on first use. "0", "gnd" and
  /// "GND" all alias ground (index 0).
  int node(const std::string& name);
  [[nodiscard]] int num_nodes() const { return static_cast<int>(node_names_.size()); }
  [[nodiscard]] int num_branches() const { return num_branches_; }
  [[nodiscard]] const std::string& node_name(int index) const;
  /// MNA dimension: (nodes − ground) + voltage-source branches.
  [[nodiscard]] std::size_t dimension() const {
    return static_cast<std::size_t>(num_nodes() - 1 + num_branches_);
  }

  // ------------------------------------------------------- add devices
  void add_resistor(const std::string& name, int a, int b, Kiloohms r);
  void add_capacitor(const std::string& name, int a, int b, Femtofarads c);
  void add_voltage_source(const std::string& name, int p, int n,
                          SourceFunction fn);
  void add_current_source(const std::string& name, int from, int into,
                          SourceFunction fn);
  void add_diode(const std::string& name, int anode, int cathode,
                 DiodeParams params = {});
  void add_mosfet(const std::string& name, int drain, int gate, int source,
                  MosParams params);

  [[nodiscard]] const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }
  [[nodiscard]] bool has_nonlinear_devices() const { return nonlinear_count_ > 0; }

 private:
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, int> node_by_name_;
  std::vector<std::unique_ptr<Device>> devices_;
  int num_branches_ = 0;
  int nonlinear_count_ = 0;
};

}  // namespace cwsp::spice
