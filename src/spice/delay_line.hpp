#pragma once
// The paper's delay element (§4): a chain of segments, each a
// high-resistivity POLY2 resistor in series with a minimum-sized inverter
// (PMOS width = NMOS width). Four segments realise δ; eight or ten
// realise the CLK_DEL delay. The delay is tuned via the POLY2 resistance,
// bounded by the requirement that the resistor output still swings rail
// to rail within the segment delay.

#include "spice/circuit.hpp"
#include "spice/subckt.hpp"
#include "spice/transient.hpp"

namespace cwsp::spice {

/// Appends `segments` POLY2+inverter stages between `in` and `out`.
void add_delay_line(Circuit& circuit, const std::string& prefix, int in,
                    int out, int vdd, int segments, Kiloohms r_poly,
                    const SpiceTech& tech);

/// Measures the propagation delay (rising-input 50% → final-output 50%)
/// of a delay line with the given segment count and POLY2 resistance.
/// When `diagnostics` is non-null the transient's SolverDiagnostics is
/// merge()d into it.
[[nodiscard]] Picoseconds measure_delay_line(
    int segments, Kiloohms r_poly, const SpiceTech& tech = {},
    SolverDiagnostics* diagnostics = nullptr);

struct DelayLineDesign {
  int segments = 0;
  Kiloohms r_poly{0.0};
  Picoseconds achieved{0.0};
};

/// Finds the POLY2 resistance that makes `segments` stages delay by
/// `target` (bisection against MiniSpice). Throws if the target is
/// outside the line's tunable range.
[[nodiscard]] DelayLineDesign calibrate_delay_line(
    int segments, Picoseconds target, const SpiceTech& tech = {},
    SolverDiagnostics* diagnostics = nullptr);

}  // namespace cwsp::spice
