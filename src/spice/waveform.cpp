#include "spice/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cwsp::spice {
namespace {

/// Interpolated crossing time between two samples.
double interp_cross(const Sample& a, const Sample& b, double level) {
  if (b.v == a.v) return a.t_ps;
  const double frac = (level - a.v) / (b.v - a.v);
  return a.t_ps + frac * (b.t_ps - a.t_ps);
}

/// Measurement arguments (levels, time bounds) must be finite; a NaN
/// level silently fails every comparison and reads as "no crossing".
void require_finite_arg(double value, const char* what) {
  if (!std::isfinite(value)) {
    std::ostringstream os;
    os << "waveform measurement: non-finite " << what << " (" << value << ")";
    throw SolveError(os.str());
  }
}

}  // namespace

void Waveform::append(double t_ps, double v) {
  if (!std::isfinite(t_ps) || !std::isfinite(v)) {
    std::ostringstream os;
    os << "waveform sample " << samples_.size() << " is non-finite (t="
       << t_ps << " ps, v=" << v << " V)";
    throw SolveError(os.str());
  }
  if (!samples_.empty() && t_ps < samples_.back().t_ps) {
    std::ostringstream os;
    os << "waveform time axis not monotone: sample " << samples_.size()
       << " at t=" << t_ps << " ps after t=" << samples_.back().t_ps << " ps";
    throw SolveError(os.str());
  }
  samples_.push_back({t_ps, v});
}

double Waveform::value_at(double t_ps) const {
  CWSP_REQUIRE(!samples_.empty());
  require_finite_arg(t_ps, "query time");
  if (t_ps <= samples_.front().t_ps) return samples_.front().v;
  if (t_ps >= samples_.back().t_ps) return samples_.back().v;
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t_ps,
      [](const Sample& s, double t) { return s.t_ps < t; });
  const Sample& hi = *it;
  const Sample& lo = *(it - 1);
  if (hi.t_ps == lo.t_ps) return hi.v;
  const double frac = (t_ps - lo.t_ps) / (hi.t_ps - lo.t_ps);
  return lo.v + frac * (hi.v - lo.v);
}

double Waveform::peak() const {
  CWSP_REQUIRE(!samples_.empty());
  return std::max_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.v < b.v;
                          })
      ->v;
}

double Waveform::trough() const {
  CWSP_REQUIRE(!samples_.empty());
  return std::min_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.v < b.v;
                          })
      ->v;
}

std::optional<double> Waveform::first_crossing(double level, bool rising,
                                               double after_ps) const {
  require_finite_arg(level, "crossing level");
  require_finite_arg(after_ps, "start time");
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Sample& a = samples_[i - 1];
    const Sample& b = samples_[i];
    if (b.t_ps < after_ps) continue;
    const bool crossed = rising ? (a.v < level && b.v >= level)
                                : (a.v > level && b.v <= level);
    if (!crossed) continue;
    const double t = interp_cross(a, b, level);
    if (t >= after_ps) return t;
  }
  return std::nullopt;
}

double Waveform::time_above(double level) const {
  require_finite_arg(level, "threshold level");
  double total = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Sample& a = samples_[i - 1];
    const Sample& b = samples_[i];
    const bool a_above = a.v > level;
    const bool b_above = b.v > level;
    if (a_above && b_above) {
      total += b.t_ps - a.t_ps;
    } else if (a_above != b_above) {
      const double t = interp_cross(a, b, level);
      total += a_above ? (t - a.t_ps) : (b.t_ps - t);
    }
  }
  return total;
}

std::optional<double> Waveform::pulse_width_above(double level,
                                                  double after_ps) const {
  const auto rise = first_crossing(level, /*rising=*/true, after_ps);
  if (!rise.has_value()) return std::nullopt;
  const auto fall = first_crossing(level, /*rising=*/false, *rise);
  const double end = fall.value_or(samples_.back().t_ps);
  return end - *rise;
}

std::optional<double> Waveform::pulse_width_below(double level,
                                                  double after_ps) const {
  const auto fall = first_crossing(level, /*rising=*/false, after_ps);
  if (!fall.has_value()) return std::nullopt;
  const auto rise = first_crossing(level, /*rising=*/true, *fall);
  const double end = rise.value_or(samples_.back().t_ps);
  return end - *fall;
}

}  // namespace cwsp::spice
