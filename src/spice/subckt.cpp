#include "spice/subckt.hpp"

namespace cwsp::spice {
namespace {

void merge_into(SolverDiagnostics* sink, const SolverDiagnostics& run) {
  if (sink != nullptr) sink->merge(run);
}

}  // namespace

int add_vdd(Circuit& circuit, const SpiceTech& tech) {
  const int vdd = circuit.node("vdd");
  circuit.add_voltage_source("Vdd", vdd, kGround,
                             SourceFunction::dc(tech.vdd));
  return vdd;
}

void add_inverter(Circuit& circuit, const std::string& prefix, int in,
                  int out, int vdd, double wp_mult, double wn_mult,
                  const SpiceTech& tech) {
  MosParams pmos;
  pmos.type = MosType::kPmos;
  pmos.kp_ma = tech.kp_p_min * wp_mult;
  pmos.vt = tech.vt;
  pmos.lambda = tech.lambda;
  circuit.add_mosfet(prefix + ".mp", out, in, vdd, pmos);

  MosParams nmos;
  nmos.type = MosType::kNmos;
  nmos.kp_ma = tech.kp_n_min * wn_mult;
  nmos.vt = tech.vt;
  nmos.lambda = tech.lambda;
  circuit.add_mosfet(prefix + ".mn", out, in, kGround, nmos);

  circuit.add_capacitor(prefix + ".cout", out, kGround,
                        Femtofarads(tech.c_node_ff * 0.5 * (wp_mult + wn_mult)));
}

void add_node_clamps(Circuit& circuit, const std::string& prefix, int node,
                     int vdd, const SpiceTech& tech) {
  circuit.add_diode(prefix + ".dclamp_hi", node, vdd, tech.clamp);
  circuit.add_diode(prefix + ".dclamp_lo", kGround, node, tech.clamp);
}

void add_cwsp_element(Circuit& circuit, const std::string& prefix, int a,
                      int a_star, int out, int vdd, double wp_mult,
                      double wn_mult, const SpiceTech& tech) {
  const int mid_p = circuit.node(prefix + ".midp");
  const int mid_n = circuit.node(prefix + ".midn");

  MosParams pmos;
  pmos.type = MosType::kPmos;
  pmos.kp_ma = tech.kp_p_min * wp_mult;
  pmos.vt = tech.vt;
  pmos.lambda = tech.lambda;
  circuit.add_mosfet(prefix + ".mp1", mid_p, a, vdd, pmos);
  circuit.add_mosfet(prefix + ".mp2", out, a_star, mid_p, pmos);

  MosParams nmos;
  nmos.type = MosType::kNmos;
  nmos.kp_ma = tech.kp_n_min * wn_mult;
  nmos.vt = tech.vt;
  nmos.lambda = tech.lambda;
  circuit.add_mosfet(prefix + ".mn1", out, a, mid_n, nmos);
  circuit.add_mosfet(prefix + ".mn2", mid_n, a_star, kGround, nmos);

  // The upsized devices give the output node the capacitance that lets it
  // hold state through an input glitch (paper §3.1 last paragraph).
  circuit.add_capacitor(prefix + ".cout", out, kGround,
                        Femtofarads(tech.c_node_ff * 0.5 * (wp_mult + wn_mult)));
  circuit.add_capacitor(prefix + ".cmidp", mid_p, kGround,
                        Femtofarads(tech.c_node_ff * 0.25 * wp_mult));
  circuit.add_capacitor(prefix + ".cmidn", mid_n, kGround,
                        Femtofarads(tech.c_node_ff * 0.25 * wn_mult));
}

StrikeHarness make_struck_inverter(Femtocoulombs q, Picoseconds tau_alpha,
                                   Picoseconds tau_beta, Picoseconds t0,
                                   const SpiceTech& tech) {
  StrikeHarness harness;
  Circuit& c = harness.circuit;
  harness.vdd = add_vdd(c, tech);

  const int in = c.node("in");
  harness.out = c.node("out");
  // Input held at VDD → NMOS on, output nominally 0 V. The strike then
  // deposits positive charge (PMOS-drain hit), lifting the output.
  c.add_voltage_source("Vin", in, kGround, SourceFunction::dc(tech.vdd));
  add_inverter(c, "x0", in, harness.out, harness.vdd, 1.0, 1.0, tech);
  add_node_clamps(c, "x0", harness.out, harness.vdd, tech);
  c.add_current_source(
      "Istrike", kGround, harness.out,
      SourceFunction::double_exponential(q, tau_alpha, tau_beta, t0));
  return harness;
}

Picoseconds measure_strike_glitch_width(Femtocoulombs q,
                                        const SpiceTech& tech,
                                        Picoseconds tau_alpha,
                                        Picoseconds tau_beta,
                                        SolverDiagnostics* diagnostics) {
  auto harness =
      make_struck_inverter(q, tau_alpha, tau_beta, Picoseconds(100.0), tech);
  TransientOptions options;
  options.t_stop_ps = 2000.0;
  options.dt_ps = 1.0;
  const auto result =
      run_transient(harness.circuit, options, {harness.out});
  merge_into(diagnostics, result.diagnostics);
  const auto width =
      result.probe(harness.out).pulse_width_above(tech.vdd / 2.0);
  return Picoseconds(width.value_or(0.0));
}

Picoseconds measure_cwsp_delay(double wp_mult, double wn_mult,
                               Femtofarads load_ff, const SpiceTech& tech,
                               SolverDiagnostics* diagnostics) {
  Circuit c;
  const int vdd = add_vdd(c, tech);
  const int a = c.node("a");
  const int out = c.node("cw");
  // Both inputs step together (a = a*, normal operation) — the element
  // behaves as an inverter with doubled series stacks.
  c.add_voltage_source(
      "Va", a, kGround,
      SourceFunction::pulse(0.0, tech.vdd, 200.0, 5.0, 1e6, 5.0));
  add_cwsp_element(c, "cwsp", a, a, out, vdd, wp_mult, wn_mult, tech);
  c.add_capacitor("Cload", out, kGround, load_ff);

  TransientOptions options;
  options.t_stop_ps = 1500.0;
  const auto result = run_transient(c, options, {a, out});
  merge_into(diagnostics, result.diagnostics);
  const auto t_in =
      result.probe(a).first_crossing(tech.vdd / 2.0, /*rising=*/true);
  const auto t_out = result.probe(out).first_crossing(
      tech.vdd / 2.0, /*rising=*/false, t_in.value_or(0.0));
  CWSP_REQUIRE(t_in.has_value() && t_out.has_value());
  return Picoseconds(*t_out - *t_in);
}

Femtocoulombs measure_critical_charge(const SpiceTech& tech,
                                      SolverDiagnostics* diagnostics) {
  double lo = 0.0;
  double hi = 200.0;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const auto harness =
        make_struck_inverter(Femtocoulombs(mid), cal::kTauAlpha,
                             cal::kTauBeta, Picoseconds(100.0), tech);
    TransientOptions options;
    options.t_stop_ps = 1500.0;
    const auto result =
        run_transient(harness.circuit, options, {harness.out});
    merge_into(diagnostics, result.diagnostics);
    if (result.probe(harness.out).peak() >= tech.vdd / 2.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return Femtocoulombs(0.5 * (lo + hi));
}

NoiseMargins measure_noise_margins(double wp_mult, double wn_mult,
                                   const SpiceTech& tech,
                                   SolverDiagnostics* diagnostics) {
  // DC sweep of the VTC; NM_L = V_IL − 0, NM_H = VDD − V_IH where
  // V_IL/V_IH are the unity-gain (|dVout/dVin| = 1) points.
  auto vtc = [&](double vin) {
    Circuit c;
    const int vdd = add_vdd(c, tech);
    const int in = c.node("in");
    const int out = c.node("out");
    c.add_voltage_source("Vin", in, kGround, SourceFunction::dc(vin));
    add_inverter(c, "x", in, out, vdd, wp_mult, wn_mult, tech);
    SolverDiagnostics run;
    const auto v = try_solve_dc(c, TransientOptions{}, run);
    merge_into(diagnostics, run);
    if (!run.converged) throw SolveError("noise-margin VTC: " + run.failure);
    return v[static_cast<std::size_t>(out)];
  };

  const double step = 0.002;
  NoiseMargins nm;
  double v_il = 0.0;
  double v_ih = tech.vdd;
  bool have_il = false;
  bool have_ih = false;
  bool have_sp = false;
  double prev_out = vtc(0.0);
  for (double vin = step; vin <= tech.vdd + 1e-9; vin += step) {
    const double out = vtc(vin);
    const double gain = (out - prev_out) / step;
    if (!have_il && gain <= -1.0) {
      v_il = vin - step;  // last point before the high-gain region
      have_il = true;
    } else if (have_il && !have_ih && gain > -1.0) {
      v_ih = vin;
      have_ih = true;
    }
    if (!have_sp && out <= vin) {
      nm.switch_point = Volts(vin);
      have_sp = true;
    }
    prev_out = out;
  }
  nm.nm_low = Volts(v_il);
  nm.nm_high = Volts(tech.vdd - v_ih);
  return nm;
}

Waveform strike_waveform(Femtocoulombs q, const SpiceTech& tech,
                         double t_stop_ps, SolverDiagnostics* diagnostics) {
  auto harness = make_struck_inverter(q, cal::kTauAlpha, cal::kTauBeta,
                                      Picoseconds(100.0), tech);
  TransientOptions options;
  options.t_stop_ps = t_stop_ps;
  options.dt_ps = 1.0;
  const auto result =
      run_transient(harness.circuit, options, {harness.out});
  merge_into(diagnostics, result.diagnostics);
  return result.probe(harness.out);
}

}  // namespace cwsp::spice
