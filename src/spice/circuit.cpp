#include "spice/circuit.hpp"

namespace cwsp::spice {

Circuit::Circuit() {
  node_names_.push_back("0");
  node_by_name_.emplace("0", kGround);
  node_by_name_.emplace("gnd", kGround);
  node_by_name_.emplace("GND", kGround);
}

int Circuit::node(const std::string& name) {
  const auto it = node_by_name_.find(name);
  if (it != node_by_name_.end()) return it->second;
  const int index = static_cast<int>(node_names_.size());
  node_names_.push_back(name);
  node_by_name_.emplace(name, index);
  return index;
}

const std::string& Circuit::node_name(int index) const {
  CWSP_REQUIRE(index >= 0 &&
               index < static_cast<int>(node_names_.size()));
  return node_names_[static_cast<std::size_t>(index)];
}

void Circuit::add_resistor(const std::string& name, int a, int b, Kiloohms r) {
  devices_.push_back(std::make_unique<Resistor>(name, a, b, r));
}

void Circuit::add_capacitor(const std::string& name, int a, int b,
                            Femtofarads c) {
  devices_.push_back(std::make_unique<Capacitor>(name, a, b, c));
}

void Circuit::add_voltage_source(const std::string& name, int p, int n,
                                 SourceFunction fn) {
  devices_.push_back(
      std::make_unique<VoltageSource>(name, p, n, fn, num_branches_));
  ++num_branches_;
}

void Circuit::add_current_source(const std::string& name, int from, int into,
                                 SourceFunction fn) {
  devices_.push_back(std::make_unique<CurrentSource>(name, from, into, fn));
}

void Circuit::add_diode(const std::string& name, int anode, int cathode,
                        DiodeParams params) {
  devices_.push_back(std::make_unique<Diode>(name, anode, cathode, params));
  ++nonlinear_count_;
}

void Circuit::add_mosfet(const std::string& name, int drain, int gate,
                         int source, MosParams params) {
  devices_.push_back(std::make_unique<Mosfet>(name, drain, gate, source, params));
  ++nonlinear_count_;
}

}  // namespace cwsp::spice
