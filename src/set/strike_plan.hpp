#pragma once
// Strike-site and strike-time planning for fault-injection campaigns over
// gate-level netlists.

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::set {

/// One SET event at gate level: the logical value of `node` is inverted
/// during [start, start + width).
struct Strike {
  NetId node;
  Picoseconds start{0.0};
  Picoseconds width{0.0};
};

/// Nets eligible for strikes: gate outputs and flip-flop Q nets (diffusion
/// nodes exist there). Primary inputs are driven from outside the die.
[[nodiscard]] std::vector<NetId> strike_sites(const Netlist& netlist);

/// Uniformly random strikes across sites and a time window.
[[nodiscard]] std::vector<Strike> random_strikes(const Netlist& netlist,
                                                 std::size_t count,
                                                 Picoseconds width,
                                                 Picoseconds window_start,
                                                 Picoseconds window_end,
                                                 Rng& rng);

/// One strike per site at each of `time_points` — the exhaustive sweep the
/// paper's §3.2 case analysis calls for.
[[nodiscard]] std::vector<Strike> exhaustive_strikes(
    const Netlist& netlist, Picoseconds width,
    const std::vector<Picoseconds>& time_points);

/// Random strikes with per-site probability proportional to the driving
/// cell's active (diffusion) area — the physically correct weighting: a
/// particle is more likely to hit a larger device (paper §1, Q = f(LET,
/// collection volume)).
[[nodiscard]] std::vector<Strike> area_weighted_strikes(
    const Netlist& netlist, std::size_t count, Picoseconds width,
    Picoseconds window_start, Picoseconds window_end, Rng& rng);

}  // namespace cwsp::set
