#pragma once
// Strike-site and strike-time planning for fault-injection campaigns over
// gate-level netlists.

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::set {

/// One SET event at gate level: the logical value of `node` is inverted
/// during [start, start + width).
struct Strike {
  NetId node;
  Picoseconds start{0.0};
  Picoseconds width{0.0};
};

/// Nets eligible for strikes: gate outputs and flip-flop Q nets (diffusion
/// nodes exist there). Primary inputs are driven from outside the die.
[[nodiscard]] std::vector<NetId> strike_sites(const Netlist& netlist);

/// Uniformly random strikes across sites and a time window.
[[nodiscard]] std::vector<Strike> random_strikes(const Netlist& netlist,
                                                 std::size_t count,
                                                 Picoseconds width,
                                                 Picoseconds window_start,
                                                 Picoseconds window_end,
                                                 Rng& rng);

/// One strike per site at each of `time_points` — the exhaustive sweep the
/// paper's §3.2 case analysis calls for.
[[nodiscard]] std::vector<Strike> exhaustive_strikes(
    const Netlist& netlist, Picoseconds width,
    const std::vector<Picoseconds>& time_points);

/// Random strikes with per-site probability proportional to the driving
/// cell's active (diffusion) area — the physically correct weighting: a
/// particle is more likely to hit a larger device (paper §1, Q = f(LET,
/// collection volume)).
[[nodiscard]] std::vector<Strike> area_weighted_strikes(
    const Netlist& netlist, std::size_t count, Picoseconds width,
    Picoseconds window_start, Picoseconds window_end, Rng& rng);

// ------------------------------------------------------------------ plans
// Materialised campaign plans: every strike of a campaign is enumerated
// up front with a stable index, so execution order (thread count, shard
// assignment, resume) cannot change what gets injected.

/// Adversarial strike classes a campaign plan draws from.
enum class StrikeClass : std::uint8_t {
  /// Random site/time inside the functional logic, width within the
  /// protection envelope (the paper's headline 100%-coverage claim).
  kFunctional,
  /// Strike inside the protection circuitry itself (§3.2 case analysis).
  kProtectionPath,
  /// Functional strike whose pulse spans the capture edge — the
  /// latching-window corner where detection/recovery must engage.
  kClockEdge,
  /// Functional strike wider than the designed δ: outside the guarantee,
  /// escapes are expected and validate that the harness has teeth.
  kOutOfEnvelope,
};

[[nodiscard]] const char* to_string(StrikeClass klass);

/// Which protection-circuit structure a kProtectionPath strike hits;
/// mirrors the paper's §3.2 bullets.
enum class ProtectionSite : std::uint8_t {
  kEqChecker,
  kEqglbfDff,
  kCwStarDff,
  kCwspOutput,
};

struct PlannedStrike {
  /// Stable identity within the plan; journal entries, RNG streams and
  /// repro artifacts are all keyed by it.
  std::size_t index = 0;
  StrikeClass klass = StrikeClass::kFunctional;
  /// Only meaningful for kProtectionPath.
  ProtectionSite site = ProtectionSite::kEqChecker;
  /// Cycle (within the run's input sequence) the strike lands in.
  std::size_t cycle = 0;
  /// Protected FF whose circuitry is hit (kProtectionPath only).
  std::size_t ff_index = 0;
  Strike strike;
  /// Second simultaneous strike node of a charge-sharing double SET
  /// (multi-node fault models); shares `strike`'s start/width. Invalid
  /// for single-node strikes, which keeps single-node plan fingerprints
  /// unchanged.
  NetId node2;
};

struct StrikePlan {
  std::vector<PlannedStrike> strikes;
  [[nodiscard]] std::size_t size() const { return strikes.size(); }
  [[nodiscard]] bool empty() const { return strikes.empty(); }
};

struct StrikePlanOptions {
  std::size_t functional_strikes = 50;
  std::size_t protection_path_strikes = 0;
  std::size_t clock_edge_strikes = 0;
  std::size_t out_of_envelope_strikes = 0;
  /// Length of the input sequence each strike is injected into.
  std::size_t cycles_per_run = 20;
  /// Width for in-envelope classes.
  Picoseconds glitch_width{400.0};
  /// Width for kOutOfEnvelope (must exceed the design's δ to be "out").
  Picoseconds out_of_envelope_width{900.0};
  Picoseconds clock_period{2000.0};
  bool area_weighted_sites = false;
};

/// Deterministically materialises a campaign plan: same (netlist, options,
/// seed) → identical plan, independent of thread count or sharding.
/// Functional-class strikes require a non-empty strike-site set;
/// protection-path strikes require at least one flip-flop.
[[nodiscard]] StrikePlan build_strike_plan(const Netlist& netlist,
                                           const StrikePlanOptions& options,
                                           std::uint64_t seed);

/// Splits a plan into `num_shards` contiguous sub-plans whose
/// concatenation reproduces the input exactly (no duplication, no loss;
/// original indices preserved). Shard sizes differ by at most one.
[[nodiscard]] std::vector<StrikePlan> shard_plan(const StrikePlan& plan,
                                                 std::size_t num_shards);

/// Order-sensitive FNV-1a digest of every field of every planned strike.
/// Two plans with equal fingerprints inject the same strikes — this is
/// what the distributed fabric uses to validate that a worker executed
/// exactly the shard the coordinator asked for.
[[nodiscard]] std::uint64_t plan_fingerprint(const StrikePlan& plan);

}  // namespace cwsp::set
