#include "set/strike_plan.hpp"
#include <algorithm>

namespace cwsp::set {

std::vector<NetId> strike_sites(const Netlist& netlist) {
  std::vector<NetId> sites;
  for (std::size_t i = 0; i < netlist.num_nets(); ++i) {
    const NetId id{i};
    const auto kind = netlist.net(id).driver_kind;
    if (kind == DriverKind::kGate || kind == DriverKind::kFlipFlop) {
      sites.push_back(id);
    }
  }
  return sites;
}

std::vector<Strike> random_strikes(const Netlist& netlist, std::size_t count,
                                   Picoseconds width, Picoseconds window_start,
                                   Picoseconds window_end, Rng& rng) {
  CWSP_REQUIRE(window_end > window_start);
  const auto sites = strike_sites(netlist);
  CWSP_REQUIRE_MSG(!sites.empty(), "netlist has no strikeable nodes");
  std::vector<Strike> strikes;
  strikes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Strike s;
    s.node = sites[rng.next_below(sites.size())];
    s.start = Picoseconds(
        rng.next_double_in(window_start.value(), window_end.value()));
    s.width = width;
    strikes.push_back(s);
  }
  return strikes;
}

std::vector<Strike> area_weighted_strikes(const Netlist& netlist,
                                          std::size_t count,
                                          Picoseconds width,
                                          Picoseconds window_start,
                                          Picoseconds window_end, Rng& rng) {
  CWSP_REQUIRE(window_end > window_start);
  const auto sites = strike_sites(netlist);
  CWSP_REQUIRE_MSG(!sites.empty(), "netlist has no strikeable nodes");

  // Cumulative area distribution over the sites' driving cells.
  std::vector<double> cumulative(sites.size());
  double total = 0.0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const Net& net = netlist.net(sites[i]);
    double area = 0.0;
    if (net.driver_kind == DriverKind::kGate) {
      area = netlist.cell_of(GateId{net.driver_index}).active_area().value();
    } else {
      area = netlist.library().regular_ff().area.value();
    }
    total += area;
    cumulative[i] = total;
  }
  CWSP_REQUIRE(total > 0.0);

  std::vector<Strike> strikes;
  strikes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double pick = rng.next_double_in(0.0, total);
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), pick);
    const std::size_t index =
        static_cast<std::size_t>(it - cumulative.begin());
    Strike s;
    s.node = sites[std::min(index, sites.size() - 1)];
    s.start = Picoseconds(
        rng.next_double_in(window_start.value(), window_end.value()));
    s.width = width;
    strikes.push_back(s);
  }
  return strikes;
}

std::vector<Strike> exhaustive_strikes(
    const Netlist& netlist, Picoseconds width,
    const std::vector<Picoseconds>& time_points) {
  const auto sites = strike_sites(netlist);
  std::vector<Strike> strikes;
  strikes.reserve(sites.size() * time_points.size());
  for (NetId site : sites) {
    for (Picoseconds t : time_points) {
      strikes.push_back(Strike{site, t, width});
    }
  }
  return strikes;
}

}  // namespace cwsp::set
