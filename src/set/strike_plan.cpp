#include "set/strike_plan.hpp"
#include <algorithm>
#include <bit>

namespace cwsp::set {

std::vector<NetId> strike_sites(const Netlist& netlist) {
  std::vector<NetId> sites;
  for (std::size_t i = 0; i < netlist.num_nets(); ++i) {
    const NetId id{i};
    const auto kind = netlist.net(id).driver_kind;
    if (kind == DriverKind::kGate || kind == DriverKind::kFlipFlop) {
      sites.push_back(id);
    }
  }
  return sites;
}

std::vector<Strike> random_strikes(const Netlist& netlist, std::size_t count,
                                   Picoseconds width, Picoseconds window_start,
                                   Picoseconds window_end, Rng& rng) {
  CWSP_REQUIRE(window_end > window_start);
  const auto sites = strike_sites(netlist);
  CWSP_REQUIRE_MSG(!sites.empty(), "netlist has no strikeable nodes");
  std::vector<Strike> strikes;
  strikes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Strike s;
    s.node = sites[rng.next_below(sites.size())];
    s.start = Picoseconds(
        rng.next_double_in(window_start.value(), window_end.value()));
    s.width = width;
    strikes.push_back(s);
  }
  return strikes;
}

std::vector<Strike> area_weighted_strikes(const Netlist& netlist,
                                          std::size_t count,
                                          Picoseconds width,
                                          Picoseconds window_start,
                                          Picoseconds window_end, Rng& rng) {
  CWSP_REQUIRE(window_end > window_start);
  const auto sites = strike_sites(netlist);
  CWSP_REQUIRE_MSG(!sites.empty(), "netlist has no strikeable nodes");

  // Cumulative area distribution over the sites' driving cells.
  std::vector<double> cumulative(sites.size());
  double total = 0.0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const Net& net = netlist.net(sites[i]);
    double area = 0.0;
    if (net.driver_kind == DriverKind::kGate) {
      area = netlist.cell_of(GateId{net.driver_index}).active_area().value();
    } else {
      area = netlist.library().regular_ff().area.value();
    }
    total += area;
    cumulative[i] = total;
  }
  CWSP_REQUIRE(total > 0.0);

  std::vector<Strike> strikes;
  strikes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double pick = rng.next_double_in(0.0, total);
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), pick);
    const std::size_t index =
        static_cast<std::size_t>(it - cumulative.begin());
    Strike s;
    s.node = sites[std::min(index, sites.size() - 1)];
    s.start = Picoseconds(
        rng.next_double_in(window_start.value(), window_end.value()));
    s.width = width;
    strikes.push_back(s);
  }
  return strikes;
}

const char* to_string(StrikeClass klass) {
  switch (klass) {
    case StrikeClass::kFunctional:
      return "functional";
    case StrikeClass::kProtectionPath:
      return "protection-path";
    case StrikeClass::kClockEdge:
      return "clock-edge";
    case StrikeClass::kOutOfEnvelope:
      return "out-of-envelope";
  }
  return "unknown";
}

StrikePlan build_strike_plan(const Netlist& netlist,
                             const StrikePlanOptions& options,
                             std::uint64_t seed) {
  CWSP_REQUIRE(options.cycles_per_run > 0);
  CWSP_REQUIRE(options.clock_period.value() > 1.0);
  const auto sites = strike_sites(netlist);
  const std::size_t functional_classes = options.functional_strikes +
                                         options.clock_edge_strikes +
                                         options.out_of_envelope_strikes;
  CWSP_REQUIRE_MSG(functional_classes == 0 || !sites.empty(),
                   "netlist has no strikeable nodes");
  CWSP_REQUIRE_MSG(
      options.protection_path_strikes == 0 || netlist.num_flip_flops() > 0,
      "protection-path strikes require a sequential design");

  Rng rng(seed);
  StrikePlan plan;
  plan.strikes.reserve(functional_classes + options.protection_path_strikes);

  auto pick_site = [&](Rng& r) -> NetId {
    if (options.area_weighted_sites) {
      return area_weighted_strikes(netlist, 1, Picoseconds(0.0),
                                   Picoseconds(0.0), Picoseconds(1.0), r)[0]
          .node;
    }
    return sites[r.next_below(sites.size())];
  };

  auto add = [&](StrikeClass klass, std::size_t count,
                 auto&& fill) {
    for (std::size_t i = 0; i < count; ++i) {
      PlannedStrike p;
      p.index = plan.strikes.size();
      p.klass = klass;
      p.cycle = rng.next_below(options.cycles_per_run);
      fill(p);
      plan.strikes.push_back(p);
    }
  };

  const double period = options.clock_period.value();
  add(StrikeClass::kFunctional, options.functional_strikes,
      [&](PlannedStrike& p) {
        p.strike.node = pick_site(rng);
        p.strike.width = options.glitch_width;
        p.strike.start = Picoseconds(rng.next_double_in(0.0, period - 1.0));
      });
  add(StrikeClass::kProtectionPath, options.protection_path_strikes,
      [&](PlannedStrike& p) {
        constexpr ProtectionSite kSites[] = {
            ProtectionSite::kEqChecker, ProtectionSite::kEqglbfDff,
            ProtectionSite::kCwStarDff, ProtectionSite::kCwspOutput};
        p.site = kSites[rng.next_below(4)];
        p.ff_index = rng.next_below(netlist.num_flip_flops());
        p.strike.width = options.glitch_width;
        p.strike.start = Picoseconds(rng.next_double_in(0.0, period));
      });
  add(StrikeClass::kClockEdge, options.clock_edge_strikes,
      [&](PlannedStrike& p) {
        // Start so the pulse is in flight across the capture edge.
        const double w = options.glitch_width.value();
        p.strike.node = pick_site(rng);
        p.strike.width = options.glitch_width;
        p.strike.start = Picoseconds(
            rng.next_double_in(std::max(0.0, period - w), period - 1.0));
      });
  add(StrikeClass::kOutOfEnvelope, options.out_of_envelope_strikes,
      [&](PlannedStrike& p) {
        p.strike.node = pick_site(rng);
        p.strike.width = options.out_of_envelope_width;
        p.strike.start = Picoseconds(rng.next_double_in(0.0, period - 1.0));
      });
  return plan;
}

std::vector<StrikePlan> shard_plan(const StrikePlan& plan,
                                   std::size_t num_shards) {
  CWSP_REQUIRE(num_shards > 0);
  std::vector<StrikePlan> shards(num_shards);
  const std::size_t n = plan.strikes.size();
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t begin = n * s / num_shards;
    const std::size_t end = n * (s + 1) / num_shards;
    shards[s].strikes.assign(plan.strikes.begin() + begin,
                             plan.strikes.begin() + end);
  }
  return shards;
}

std::uint64_t plan_fingerprint(const StrikePlan& plan) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  mix(plan.size());
  for (const PlannedStrike& p : plan.strikes) {
    mix(p.index);
    mix(static_cast<std::uint64_t>(p.klass));
    mix(static_cast<std::uint64_t>(p.site));
    mix(p.cycle);
    mix(p.ff_index);
    mix(p.strike.node.valid() ? p.strike.node.index()
                              : static_cast<std::size_t>(-1));
    mix(std::bit_cast<std::uint64_t>(p.strike.start.value()));
    mix(std::bit_cast<std::uint64_t>(p.strike.width.value()));
    if (p.node2.valid()) {
      // Multi-node extension, mixed only when present: single-node plans
      // keep their pre-registry fingerprints (journals stay resumable).
      mix(0x2e7a);
      mix(p.node2.index());
    }
  }
  return h;
}

std::vector<Strike> exhaustive_strikes(
    const Netlist& netlist, Picoseconds width,
    const std::vector<Picoseconds>& time_points) {
  const auto sites = strike_sites(netlist);
  std::vector<Strike> strikes;
  strikes.reserve(sites.size() * time_points.size());
  for (NetId site : sites) {
    for (Picoseconds t : time_points) {
      strikes.push_back(Strike{site, t, width});
    }
  }
  return strikes;
}

}  // namespace cwsp::set
