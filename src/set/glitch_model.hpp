#pragma once
// Charge ↔ glitch-width mapping. Forward widths come from MiniSpice
// strikes on a min-sized inverter (memoised on a charge grid with linear
// interpolation); the inverse (critical charge for a target width) is a
// bisection over the forward map.

#include <map>

#include "common/units.hpp"
#include "spice/subckt.hpp"

namespace cwsp::set {

class GlitchModel {
 public:
  explicit GlitchModel(spice::SpiceTech tech = {});

  /// Width of the voltage glitch (time above VDD/2) caused by a strike of
  /// charge q on a min-sized inverter output. Exact MiniSpice runs at grid
  /// points, linear interpolation between them.
  [[nodiscard]] Picoseconds glitch_width(Femtocoulombs q) const;

  /// Smallest charge producing a glitch at least `width` wide; nullopt is
  /// never returned — charges are searched up to `max charge`.
  [[nodiscard]] Femtocoulombs charge_for_width(Picoseconds width) const;

  /// Charge below which no logic-level glitch appears at all (width < 1 ps).
  [[nodiscard]] Femtocoulombs critical_charge() const;

  [[nodiscard]] const spice::SpiceTech& tech() const { return tech_; }

  /// Upper edge of the modelled charge grid; charge_for_width targets
  /// wider than glitch_width(kMaxChargeFc) are outside the model.
  static constexpr double kMaxChargeFc = 400.0;

 private:
  [[nodiscard]] double exact_width(double q_fc) const;
  [[nodiscard]] double cached_width(double q_fc) const;

  spice::SpiceTech tech_;
  /// Memoised exact widths keyed by grid charge (fC).
  mutable std::map<double, double> cache_;

  static constexpr double kGridFc = 10.0;
};

}  // namespace cwsp::set
