#include "set/glitch_model.hpp"

#include <cmath>

namespace cwsp::set {

GlitchModel::GlitchModel(spice::SpiceTech tech) : tech_(tech) {}

double GlitchModel::exact_width(double q_fc) const {
  return spice::measure_strike_glitch_width(Femtocoulombs(q_fc), tech_)
      .value();
}

double GlitchModel::cached_width(double q_fc) const {
  const auto it = cache_.find(q_fc);
  if (it != cache_.end()) return it->second;
  const double width = exact_width(q_fc);
  cache_.emplace(q_fc, width);
  return width;
}

Picoseconds GlitchModel::glitch_width(Femtocoulombs q) const {
  CWSP_REQUIRE(q.value() >= 0.0);
  if (q.value() <= 0.0) return Picoseconds(0.0);
  const double lo_grid = std::floor(q.value() / kGridFc) * kGridFc;
  const double hi_grid = lo_grid + kGridFc;
  const double w_lo = lo_grid > 0.0 ? cached_width(lo_grid) : 0.0;
  const double w_hi = cached_width(hi_grid);
  const double frac = (q.value() - lo_grid) / kGridFc;
  return Picoseconds(w_lo + frac * (w_hi - w_lo));
}

Femtocoulombs GlitchModel::charge_for_width(Picoseconds width) const {
  CWSP_REQUIRE(width.value() >= 0.0);
  double lo = 0.0;
  double hi = kMaxChargeFc;
  CWSP_REQUIRE_MSG(glitch_width(Femtocoulombs(hi)) >= width,
                   "target width " << width.value()
                                   << " ps exceeds the modelled range");
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (glitch_width(Femtocoulombs(mid)) >= width) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return Femtocoulombs(hi);
}

Femtocoulombs GlitchModel::critical_charge() const {
  return charge_for_width(Picoseconds(1.0));
}

}  // namespace cwsp::set
