#pragma once
// Soft-error-rate analysis tying the paper's radiation environment
// together: the JPL-1991 solar proton fluence (footnote 2), an
// exponentially falling LET spectrum ("the largest population of
// particles have an LET of 20 MeV·cm²/mg or less, and particles with an
// LET greater than 30 are exceedingly rare", §1), the LET → charge →
// glitch-width chain, and the resulting error rates for unprotected vs
// CWSP-hardened designs.

#include "common/units.hpp"
#include "set/glitch_model.hpp"

namespace cwsp::set {

struct RadiationEnvironment {
  /// Maximum solar proton fluence for E > 1 MeV, JPL-1991 model at 99%
  /// confidence (paper footnote 2).
  double fluence_per_cm2_year = 2.91e11;
  /// Exponential LET spectrum scale L0 (MeV·cm²/mg): P(LET > L) = e^{−L/L0}.
  /// L0 = 2 reflects a spectrum dominated by low-LET particles (the
  /// paper's 5 MeV alpha reference has LET 1) while satisfying both of
  /// its qualitative statements: P(LET > 20) ≈ 5e-5 ("the largest
  /// population ... 20 or less") and P(LET > 30) ≈ 3e-7 ("exceedingly
  /// rare").
  double let_scale = 2.0;
  /// Charge-collection depth, µm (paper's Q = 0.01036·L·t).
  double collection_depth_um = 2.0;
};

inline constexpr double kSecondsPerYear = 3.156e7;
inline constexpr double kCm2PerUm2 = 1e-8;

class SerAnalyzer {
 public:
  explicit SerAnalyzer(RadiationEnvironment environment = {},
                       spice::SpiceTech tech = {});

  [[nodiscard]] const RadiationEnvironment& environment() const {
    return environment_;
  }

  /// Expected particle strikes on `active_area` per year / per second.
  [[nodiscard]] double strikes_per_year(SquareMicrons active_area) const;
  [[nodiscard]] double strikes_per_second(SquareMicrons active_area) const;

  /// Probability that a given clock cycle sees a strike.
  [[nodiscard]] double strike_probability_per_cycle(
      SquareMicrons active_area, Picoseconds clock_period) const;

  /// Paper footnote 2: probability that a strike is followed by another
  /// within a two-cycle window (the recovery protocol's vulnerability).
  /// With the paper's numbers (473.4e-8 cm², 5.5 ns) this is 4.78e-10.
  [[nodiscard]] double consecutive_cycle_strike_probability(
      SquareMicrons active_area, Picoseconds clock_period) const;

  /// Complementary LET distribution: P(LET > let).
  [[nodiscard]] double fraction_let_above(double let) const;

  /// Fraction of strikes depositing more than `charge` (via the paper's
  /// Q = 0.01036·L·t relation inverted against the LET spectrum).
  [[nodiscard]] double fraction_charge_above(Femtocoulombs charge) const;

  /// Fraction of strikes producing glitches wider than `width` on a
  /// min-sized gate (LET spectrum folded through the MiniSpice-calibrated
  /// charge → width map).
  [[nodiscard]] double fraction_glitch_wider_than(Picoseconds width) const;

  struct SerReport {
    double strikes_per_year = 0.0;
    /// Errors/year of the unprotected design: strikes weighted by the
    /// measured probability that a strike corrupts an output.
    double unprotected_errors_per_year = 0.0;
    /// Errors/year of the CWSP-hardened design: only strikes whose glitch
    /// exceeds the protected width can slip through.
    double hardened_errors_per_year = 0.0;
    double unprotected_mtbf_years = 0.0;
    double hardened_mtbf_years = 0.0;
    double improvement_factor = 0.0;
  };

  /// `unprotected_failure_fraction` is the measured fraction of strikes
  /// that corrupt the unprotected design (e.g. from a fault campaign).
  [[nodiscard]] SerReport analyze(SquareMicrons active_area,
                                  Picoseconds protected_glitch_width,
                                  double unprotected_failure_fraction) const;

 private:
  RadiationEnvironment environment_;
  GlitchModel glitch_model_;
};

}  // namespace cwsp::set
