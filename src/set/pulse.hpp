#pragma once
// Radiation-strike current model (paper Eq. 1) and the LET → charge
// relation from the introduction: Q = 0.01036 · L · t.

#include <cmath>

#include "cell/calibration.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace cwsp::set {

/// I(t) = Q/(τα−τβ)·(e^{−t/τα} − e^{−t/τβ}). With Q in fC and τ in ps the
/// current is in mA; the pulse integrates to exactly Q.
class DoubleExponentialPulse {
 public:
  DoubleExponentialPulse(Femtocoulombs q, Picoseconds tau_alpha = cal::kTauAlpha,
                         Picoseconds tau_beta = cal::kTauBeta)
      : q_(q), tau_alpha_(tau_alpha), tau_beta_(tau_beta) {
    CWSP_REQUIRE(q.value() >= 0.0);
    CWSP_REQUIRE(tau_alpha.value() > tau_beta.value());
    CWSP_REQUIRE(tau_beta.value() > 0.0);
  }

  [[nodiscard]] Femtocoulombs charge() const { return q_; }
  [[nodiscard]] Picoseconds tau_alpha() const { return tau_alpha_; }
  [[nodiscard]] Picoseconds tau_beta() const { return tau_beta_; }

  /// Current in mA at time t after the strike (0 for t < 0).
  [[nodiscard]] double current_ma(Picoseconds t) const {
    const double tv = t.value();
    if (tv <= 0.0) return 0.0;
    return q_.value() / (tau_alpha_.value() - tau_beta_.value()) *
           (std::exp(-tv / tau_alpha_.value()) -
            std::exp(-tv / tau_beta_.value()));
  }

  /// Time of the current peak: t* = ln(τα/τβ)·τατβ/(τα−τβ).
  [[nodiscard]] Picoseconds peak_time() const {
    const double ta = tau_alpha_.value();
    const double tb = tau_beta_.value();
    return Picoseconds(std::log(ta / tb) * ta * tb / (ta - tb));
  }

  [[nodiscard]] double peak_current_ma() const {
    return current_ma(peak_time());
  }

  /// Charge delivered in [0, t]: Q/(τα−τβ)·(τα(1−e^{−t/τα}) − τβ(1−e^{−t/τβ})).
  [[nodiscard]] Femtocoulombs charge_delivered(Picoseconds t) const {
    const double tv = t.value();
    if (tv <= 0.0) return Femtocoulombs(0.0);
    const double ta = tau_alpha_.value();
    const double tb = tau_beta_.value();
    return Femtocoulombs(q_.value() / (ta - tb) *
                         (ta * (1.0 - std::exp(-tv / ta)) -
                          tb * (1.0 - std::exp(-tv / tb))));
  }

 private:
  Femtocoulombs q_;
  Picoseconds tau_alpha_;
  Picoseconds tau_beta_;
};

/// Q[pC] = 0.01036 · LET[MeV·cm²/mg] · depth[µm] (paper intro). Returned
/// in fC (1 pC = 1000 fC).
[[nodiscard]] inline Femtocoulombs charge_from_let(double let_mev_cm2_mg,
                                                   double collection_depth_um) {
  CWSP_REQUIRE(let_mev_cm2_mg >= 0.0);
  CWSP_REQUIRE(collection_depth_um > 0.0);
  return Femtocoulombs(0.01036 * let_mev_cm2_mg * collection_depth_um *
                       1000.0);
}

}  // namespace cwsp::set
