#include "set/ser.hpp"

#include <cmath>

#include <limits>
#include "set/pulse.hpp"

namespace cwsp::set {

SerAnalyzer::SerAnalyzer(RadiationEnvironment environment,
                         spice::SpiceTech tech)
    : environment_(environment), glitch_model_(tech) {
  CWSP_REQUIRE(environment_.fluence_per_cm2_year > 0.0);
  CWSP_REQUIRE(environment_.let_scale > 0.0);
  CWSP_REQUIRE(environment_.collection_depth_um > 0.0);
}

double SerAnalyzer::strikes_per_year(SquareMicrons active_area) const {
  CWSP_REQUIRE(active_area.value() >= 0.0);
  return environment_.fluence_per_cm2_year * active_area.value() *
         kCm2PerUm2;
}

double SerAnalyzer::strikes_per_second(SquareMicrons active_area) const {
  return strikes_per_year(active_area) / kSecondsPerYear;
}

double SerAnalyzer::strike_probability_per_cycle(
    SquareMicrons active_area, Picoseconds clock_period) const {
  CWSP_REQUIRE(clock_period.value() > 0.0);
  const double period_s = clock_period.value() * 1e-12;
  return strikes_per_second(active_area) * period_s;
}

double SerAnalyzer::consecutive_cycle_strike_probability(
    SquareMicrons active_area, Picoseconds clock_period) const {
  // Given a strike, a second one within the surrounding two-cycle window
  // (rate × 2T) would defeat the single-strike recovery assumption.
  return 2.0 * strike_probability_per_cycle(active_area, clock_period);
}

double SerAnalyzer::fraction_let_above(double let) const {
  CWSP_REQUIRE(let >= 0.0);
  return std::exp(-let / environment_.let_scale);
}

double SerAnalyzer::fraction_charge_above(Femtocoulombs charge) const {
  CWSP_REQUIRE(charge.value() >= 0.0);
  // Q[fC] = 0.01036·L·t·1000 ⇒ L = Q / (10.36·t).
  const double let =
      charge.value() / (10.36 * environment_.collection_depth_um);
  return fraction_let_above(let);
}

double SerAnalyzer::fraction_glitch_wider_than(Picoseconds width) const {
  if (width.value() <= 0.0) return 1.0;
  // Invert the MiniSpice-calibrated charge → width map, then apply the
  // LET spectrum.
  const Femtocoulombs q = glitch_model_.charge_for_width(width);
  return fraction_charge_above(q);
}

SerAnalyzer::SerReport SerAnalyzer::analyze(
    SquareMicrons active_area, Picoseconds protected_glitch_width,
    double unprotected_failure_fraction) const {
  CWSP_REQUIRE(unprotected_failure_fraction >= 0.0 &&
               unprotected_failure_fraction <= 1.0);
  SerReport report;
  report.strikes_per_year = strikes_per_year(active_area);
  report.unprotected_errors_per_year =
      report.strikes_per_year * unprotected_failure_fraction;
  // The hardened design only fails on strikes outside the protected
  // envelope; within the envelope recovery is total (100% coverage).
  const double escape =
      fraction_glitch_wider_than(protected_glitch_width);
  report.hardened_errors_per_year = report.strikes_per_year * escape *
                                    unprotected_failure_fraction;
  report.unprotected_mtbf_years =
      report.unprotected_errors_per_year > 0.0
          ? 1.0 / report.unprotected_errors_per_year
          : std::numeric_limits<double>::infinity();
  report.hardened_mtbf_years =
      report.hardened_errors_per_year > 0.0
          ? 1.0 / report.hardened_errors_per_year
          : std::numeric_limits<double>::infinity();
  report.improvement_factor =
      report.hardened_errors_per_year > 0.0
          ? report.unprotected_errors_per_year /
                report.hardened_errors_per_year
          : std::numeric_limits<double>::infinity();
  return report;
}

}  // namespace cwsp::set
