#include "sim/event_sim.hpp"

#include <algorithm>

namespace cwsp::sim {

EventSim::EventSim(const Netlist& netlist)
    : netlist_(&netlist), topo_order_(netlist.topological_order()) {
  const auto sta = run_sta(netlist);
  gate_delay_ps_ = sta.gate_delay_ps;
}

std::vector<DigitalWaveform> EventSim::propagate(
    const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
    const std::optional<set::Strike>& strike) const {
  const Netlist& nl = *netlist_;
  CWSP_REQUIRE(pi_values.size() == nl.primary_inputs().size());
  CWSP_REQUIRE(ff_q_values.size() == nl.num_flip_flops());

  std::vector<DigitalWaveform> waves(nl.num_nets());

  // Seed source nets with static values.
  for (std::size_t i = 0; i < nl.num_nets(); ++i) {
    const Net& net = nl.net(NetId{i});
    switch (net.driver_kind) {
      case DriverKind::kPrimaryInput:
        waves[i] = DigitalWaveform(pi_values[net.driver_index]);
        break;
      case DriverKind::kFlipFlop:
        waves[i] = DigitalWaveform(ff_q_values[net.driver_index]);
        break;
      case DriverKind::kConstant:
        waves[i] = DigitalWaveform(net.constant_value);
        break;
      default:
        break;
    }
  }

  auto apply_strike_if_here = [&](NetId net) {
    if (strike.has_value() && strike->node == net) {
      waves[net.index()].xor_pulse(strike->start.value(),
                                   strike->start.value() +
                                       strike->width.value());
    }
  };

  // Strike on a source (FF Q) net applies before propagation.
  if (strike.has_value()) {
    const Net& struck = nl.net(strike->node);
    if (struck.driver_kind != DriverKind::kGate) {
      apply_strike_if_here(strike->node);
    }
  }

  for (GateId g : topo_order_) {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      throw CancelledError("event simulation cancelled");
    }
    const Gate& gate = nl.gate(g);
    const Cell& cell = nl.cell_of(g);
    const double delay = gate_delay_ps_[g.index()];

    // Union of input event times.
    std::vector<double> times;
    for (NetId in : gate.inputs) {
      const auto& t = waves[in.index()].transitions();
      times.insert(times.end(), t.begin(), t.end());
    }
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());

    auto eval_at = [&](double t) {
      unsigned bits = 0;
      for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
        if (waves[gate.inputs[i].index()].value_at(t)) bits |= 1u << i;
      }
      return cell.evaluate(bits);
    };

    // Initial output value from values just before any event.
    unsigned init_bits = 0;
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      if (waves[gate.inputs[i].index()].initial()) init_bits |= 1u << i;
    }
    DigitalWaveform out(cell.evaluate(init_bits));

    bool current = out.initial();
    std::vector<double> out_transitions;
    for (double t : times) {
      const bool v = eval_at(t);
      if (v != current) {
        out_transitions.push_back(t + delay);
        current = v;
      }
    }
    out.set_transitions(std::move(out_transitions));
    out.inertial_filter(cell.inertial_delay().value());

    waves[gate.output.index()] = std::move(out);
    apply_strike_if_here(gate.output);
  }

  return waves;
}

CycleResult EventSim::simulate_cycle(
    const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
    Picoseconds capture_time, const std::optional<set::Strike>& strike) const {
  const Netlist& nl = *netlist_;
  const auto struck = propagate(pi_values, ff_q_values, strike);
  const auto golden = propagate(pi_values, ff_q_values, std::nullopt);

  CycleResult result;
  const double t_capture = capture_time.value();
  const double setup = nl.library().regular_ff().setup.value();
  const double hold = nl.library().regular_ff().hold.value();

  result.golden_d.reserve(nl.num_flip_flops());
  result.latched_d.reserve(nl.num_flip_flops());
  result.aperture_violation.reserve(nl.num_flip_flops());
  for (std::size_t f = 0; f < nl.num_flip_flops(); ++f) {
    const NetId d = nl.flip_flop(FlipFlopId{f}).d;
    result.golden_d.push_back(golden[d.index()].final_value());
    result.latched_d.push_back(struck[d.index()].value_at(t_capture));
    result.aperture_violation.push_back(
        struck[d.index()].has_transition_in(t_capture - setup,
                                            t_capture + hold));
    // All sources are static within a cycle, so any endpoint transition
    // was caused by the strike.
    if (!struck[d.index()].is_constant()) {
      result.glitch_reached_endpoint = true;
    }
  }

  for (NetId po : nl.primary_outputs()) {
    result.golden_po.push_back(golden[po.index()].final_value());
    result.struck_po.push_back(struck[po.index()].value_at(t_capture));
    if (!struck[po.index()].is_constant()) {
      result.glitch_reached_endpoint = true;
    }
  }
  return result;
}

DigitalWaveform EventSim::net_waveform(
    const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
    const std::optional<set::Strike>& strike, NetId net) const {
  const auto waves = propagate(pi_values, ff_q_values, strike);
  return waves[net.index()];
}

}  // namespace cwsp::sim
