// AVX-512F instantiation of the K=8 (512-lane) sweep bodies. This TU is
// the only code compiled with -mavx512f; the dispatcher calls in here
// only after CPUID reports avx512f.
#include "sim/strike_lanes_impl.hpp"

namespace cwsp::sim::detail {

const LaneOps* lane_ops_avx512() {
  static const LaneOps kOps{"avx512-512", 8, &LaneKernelCore<8>::evaluate,
                            &LaneKernelCore<8>::evaluate_with_flip};
  return &kOps;
}

}  // namespace cwsp::sim::detail
