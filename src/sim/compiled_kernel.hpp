#pragma once
// Compiled simulation kernel: the allocation-free fast path the campaign,
// coverage and protection-protocol layers run on.
//
// Three cooperating pieces, all built over a shared FlatNetlistView:
//
//   * CompiledEventSim — drop-in replacement for sim::EventSim with the
//     same cycle semantics, byte-identical results, and three structural
//     optimisations: (1) golden (no-strike) cycles collapse to a single
//     table-driven logic pass whose result is memoized per (PI, FF-state)
//     stimulus; (2) struck cycles only event-simulate the gates inside
//     the struck net's fanout cone, reading golden constants everywhere
//     else; (3) all per-cycle state lives in reusable scratch buffers —
//     steady-state simulation performs no heap allocation.
//
//   * LogicSim64 — 64-way bit-parallel zero-delay logic simulator: packs
//     64 stimulus patterns into one machine word per net and evaluates
//     all of them in a single topological pass (used by equivalence
//     sweeps and differential tests).
//
//   * CompiledKernelContext — the shareable immutable part (flat view +
//     STA gate delays), built once per netlist and handed to every
//     worker thread of a campaign.
//
// A CompiledEventSim instance is NOT thread-safe (it owns mutable scratch
// and the golden cache); create one per worker and share the context.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netlist/flat_view.hpp"
#include "sim/event_sim.hpp"

namespace cwsp::sim {

/// Immutable per-netlist data shared by compiled kernels across threads:
/// the flattened topology and the STA-derived per-gate delays.
struct CompiledKernelContext {
  std::shared_ptr<const FlatNetlistView> view;
  std::shared_ptr<const std::vector<double>> gate_delay_ps;

  /// Builds the view and runs STA once. The netlist must outlive the
  /// returned context.
  [[nodiscard]] static std::shared_ptr<const CompiledKernelContext> build(
      const Netlist& netlist);
};

/// One memoized golden (no-strike) cycle: the settled value of every net
/// plus the endpoint samples derived from them.
struct GoldenCycle {
  std::vector<unsigned char> net_values;
  std::vector<bool> ff_d;
  std::vector<bool> po;
};

class CompiledEventSim {
 public:
  /// Builds a private context (flat view + STA).
  explicit CompiledEventSim(const Netlist& netlist);
  /// Shares a prebuilt context (the campaign worker path).
  CompiledEventSim(const Netlist& netlist,
                   std::shared_ptr<const CompiledKernelContext> context);
  /// Flushes this instance's golden-cache hit/miss totals into the global
  /// metrics registry (kernel.golden_cache_*) — zero hot-path overhead.
  ~CompiledEventSim();

  /// Same contract as EventSim::simulate_cycle, same results to the bit.
  [[nodiscard]] CycleResult simulate_cycle(
      const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
      Picoseconds capture_time,
      const std::optional<set::Strike>& strike) const;

  /// Timed strike resolution against a caller-provided golden cycle —
  /// the strike-lane kernel's entry: the lane planes already settled the
  /// cycle, so this skips the golden cache and goes straight to the
  /// cone-restricted event propagation + endpoint sampling. Bit-identical
  /// to simulate_cycle() on the stimulus that produced `golden`.
  [[nodiscard]] CycleResult resolve_strike(const GoldenCycle& golden,
                                           Picoseconds capture_time,
                                           const set::Strike& strike) const;

  /// Same contract as EventSim::net_waveform.
  [[nodiscard]] DigitalWaveform net_waveform(
      const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
      const std::optional<set::Strike>& strike, NetId net) const;

  [[nodiscard]] const Netlist& netlist() const {
    return context_->view->netlist();
  }

  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

  /// Clean-run step: settled PO values and next FF state for one stimulus,
  /// served from the golden cache. Semantically identical to one scalar
  /// LogicSim evaluate()/clock() step. The reference is valid until the
  /// next call into this simulator.
  [[nodiscard]] const GoldenCycle& golden_eval(
      const std::vector<bool>& pi_values,
      const std::vector<bool>& ff_q_values) const {
    return golden_cycle(pi_values, ff_q_values);
  }

  /// Golden-cache telemetry (for benchmarks and tests).
  [[nodiscard]] std::size_t golden_cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::size_t golden_cache_misses() const {
    return cache_misses_;
  }
  /// Entries kept before the cache is wholesale-evicted (bounds memory on
  /// pathological stimulus diversity). Clears the cache when shrunk below
  /// the current population.
  void set_golden_cache_capacity(std::size_t entries);

 private:
  struct StimulusKey {
    std::vector<std::uint64_t> words;
    bool operator==(const StimulusKey& other) const {
      return words == other.words;
    }
  };
  struct StimulusKeyHash {
    std::size_t operator()(const StimulusKey& key) const {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (std::uint64_t w : key.words) {
        h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return static_cast<std::size_t>(h);
    }
  };

  /// Cached golden evaluation of one stimulus (single logic pass on miss).
  const GoldenCycle& golden_cycle(const std::vector<bool>& pi_values,
                                  const std::vector<bool>& ff_q_values) const;

  /// Event-simulates the struck net's cone against `golden`, filling the
  /// scratch waveform pool. Returns the cone (topo-sorted gate indices).
  void propagate_cone(const GoldenCycle& golden,
                      const set::Strike& strike) const;

  std::shared_ptr<const CompiledKernelContext> context_;
  const CancelToken* cancel_ = nullptr;

  // Golden-waveform cache.
  mutable std::unordered_map<StimulusKey, GoldenCycle, StimulusKeyHash>
      golden_cache_;
  std::size_t golden_cache_capacity_ = 4096;
  mutable std::size_t cache_hits_ = 0;
  mutable std::size_t cache_misses_ = 0;

  // Reusable scratch (valid between propagate_cone and endpoint
  // sampling; wiped lazily at the start of the next propagation).
  mutable std::vector<DigitalWaveform> wave_;
  mutable std::vector<char> touched_;
  mutable std::vector<std::uint32_t> touched_list_;
  mutable std::vector<double> times_;
};

/// 64-way bit-parallel zero-delay logic simulator. Lane `l` of every word
/// is an independent simulation: 64 stimulus patterns settle per
/// topological pass. Mirrors LogicSim's API with words instead of bools.
class LogicSim64 {
 public:
  explicit LogicSim64(const Netlist& netlist);
  explicit LogicSim64(std::shared_ptr<const FlatNetlistView> view);

  [[nodiscard]] std::size_t num_lanes() const { return 64; }

  void set_input_word(std::size_t pi, std::uint64_t bits);
  void set_input_lane(std::size_t pi, std::size_t lane, bool value);
  void set_ff_word(std::size_t ff, std::uint64_t bits);
  void set_ff_lane(std::size_t ff, std::size_t lane, bool value);

  /// Settles combinational logic for all 64 lanes in one topo pass.
  void evaluate();
  /// Latches every flip-flop in every lane (Q ← D).
  void clock();

  /// Re-evaluates only `site`'s fanout cone with the site word inverted
  /// in every lane, against the values of the last evaluate(). The base
  /// words are untouched; compare via flip_diff. O(|cone|), so sweeping
  /// many sites against one stimulus batch costs one full pass plus one
  /// cone pass per site instead of a full pass per site.
  void evaluate_with_flip(NetId site);
  /// Per-lane XOR between the flipped overlay and the base evaluation of
  /// `net` (zero for nets outside the flipped site's cone). Only valid
  /// after evaluate_with_flip; cleared by the next evaluate().
  [[nodiscard]] std::uint64_t flip_diff(NetId net) const;

  [[nodiscard]] std::uint64_t value_word(NetId net) const;
  [[nodiscard]] bool value(NetId net, std::size_t lane) const;
  [[nodiscard]] std::uint64_t output_word(std::size_t po_index) const;
  [[nodiscard]] std::uint64_t ff_word(std::size_t ff) const;

  [[nodiscard]] const Netlist& netlist() const { return view_->netlist(); }

 private:
  std::shared_ptr<const FlatNetlistView> view_;
  std::vector<std::uint64_t> net_words_;
  std::vector<std::uint64_t> pi_words_;
  std::vector<std::uint64_t> ff_words_;

  // Flip-overlay scratch (evaluate_with_flip / flip_diff). Sparse: only
  // the nets in overlay_nets_ carry overlay values; reset is O(touched).
  std::vector<std::uint64_t> overlay_words_;
  std::vector<char> overlay_valid_;
  std::vector<std::uint32_t> overlay_nets_;
};

}  // namespace cwsp::sim
