// AVX2 instantiation of the K=4 (256-lane) sweep bodies. This TU is the
// only code compiled with -mavx2, so the binary stays runnable on older
// CPUs: the dispatcher calls in here only after CPUID reports avx2.
#include "sim/strike_lanes_impl.hpp"

namespace cwsp::sim::detail {

const LaneOps* lane_ops_avx2() {
  static const LaneOps kOps{"avx2-256", 4, &LaneKernelCore<4>::evaluate,
                            &LaneKernelCore<4>::evaluate_with_flip};
  return &kOps;
}

}  // namespace cwsp::sim::detail
