#pragma once
// Templated sweep bodies of WideLogicSim, instantiated once per lane
// width K (words per net) and per ISA translation unit. The code is
// plain word-parallel C++ — no intrinsics — so the portable and
// vectorized instantiations share one definition and differ only in the
// compiler flags of the including TU (-mavx2 / -mavx512f let the
// auto-vectorizer turn the constexpr-length word loops into one or two
// vector ops per gate input). Identical scalar semantics at every width
// is therefore structural, not something tests merely hope for.

#include "netlist/flat_view.hpp"
#include "sim/strike_lanes.hpp"

namespace cwsp::sim {

template <std::size_t K>
struct LaneKernelCore {
  static void evaluate(WideLogicSim& s) {
    const FlatNetlistView& view = *s.view_;
    std::uint64_t* net = s.net_words_.data();
    const std::uint64_t* pi = s.pi_words_.data();
    const std::uint64_t* ff = s.ff_words_.data();

    for (std::size_t n = 0; n < view.num_nets(); ++n) {
      std::uint64_t* dst = net + n * K;
      switch (view.source_kind(n)) {
        case FlatNetlistView::SourceKind::kPrimaryInput: {
          const std::uint64_t* src = pi + view.source_index(n) * K;
          for (std::size_t w = 0; w < K; ++w) dst[w] = src[w];
          break;
        }
        case FlatNetlistView::SourceKind::kFlipFlop: {
          const std::uint64_t* src = ff + view.source_index(n) * K;
          for (std::size_t w = 0; w < K; ++w) dst[w] = src[w];
          break;
        }
        case FlatNetlistView::SourceKind::kConstant: {
          const std::uint64_t fill = view.source_index(n) != 0 ? ~0ull : 0ull;
          for (std::size_t w = 0; w < K; ++w) dst[w] = fill;
          break;
        }
        default:
          break;
      }
    }
    for (std::uint32_t g : view.topo_order()) {
      const std::uint32_t* in = view.gate_inputs_begin(g);
      const std::uint32_t arity = view.gate_num_inputs(g);
      const std::uint16_t truth = view.gate_truth(g);
      // Sum-of-products over the truth table, lane-parallel per word.
      std::uint64_t out[K] = {};
      const unsigned combos = 1u << arity;
      for (unsigned a = 0; a < combos; ++a) {
        if (((truth >> a) & 1u) == 0) continue;
        std::uint64_t term[K];
        for (std::size_t w = 0; w < K; ++w) term[w] = ~0ull;
        for (std::uint32_t i = 0; i < arity; ++i) {
          const std::uint64_t* iw = net + in[i] * K;
          if (((a >> i) & 1u) != 0) {
            for (std::size_t w = 0; w < K; ++w) term[w] &= iw[w];
          } else {
            for (std::size_t w = 0; w < K; ++w) term[w] &= ~iw[w];
          }
        }
        for (std::size_t w = 0; w < K; ++w) out[w] |= term[w];
      }
      std::uint64_t* dst = net + view.gate_output(g) * K;
      for (std::size_t w = 0; w < K; ++w) dst[w] = out[w];
    }
    for (std::uint32_t n : s.overlay_nets_) s.overlay_valid_[n] = 0;
    s.overlay_nets_.clear();
  }

  static void evaluate_with_flip(WideLogicSim& s, std::uint32_t site) {
    const FlatNetlistView& view = *s.view_;
    const std::uint64_t* net = s.net_words_.data();
    if (s.overlay_words_.size() != s.net_words_.size()) {
      s.overlay_words_.assign(s.net_words_.size(), 0);
      s.overlay_valid_.assign(view.num_nets(), 0);
    }
    std::uint64_t* overlay = s.overlay_words_.data();
    for (std::uint32_t n : s.overlay_nets_) s.overlay_valid_[n] = 0;
    s.overlay_nets_.clear();

    for (std::size_t w = 0; w < K; ++w) {
      overlay[site * K + w] = ~net[site * K + w];
    }
    s.overlay_valid_[site] = 1;
    s.overlay_nets_.push_back(site);

    for (std::uint32_t g : view.cone_of(NetId{site})) {
      const std::uint32_t* in = view.gate_inputs_begin(g);
      const std::uint32_t arity = view.gate_num_inputs(g);
      const std::uint16_t truth = view.gate_truth(g);
      std::uint64_t out[K] = {};
      const unsigned combos = 1u << arity;
      for (unsigned a = 0; a < combos; ++a) {
        if (((truth >> a) & 1u) == 0) continue;
        std::uint64_t term[K];
        for (std::size_t w = 0; w < K; ++w) term[w] = ~0ull;
        for (std::uint32_t i = 0; i < arity; ++i) {
          const std::uint32_t n = in[i];
          const std::uint64_t* iw =
              (s.overlay_valid_[n] != 0 ? overlay : net) + n * K;
          if (((a >> i) & 1u) != 0) {
            for (std::size_t w = 0; w < K; ++w) term[w] &= iw[w];
          } else {
            for (std::size_t w = 0; w < K; ++w) term[w] &= ~iw[w];
          }
        }
        for (std::size_t w = 0; w < K; ++w) out[w] |= term[w];
      }
      const std::uint32_t out_net = view.gate_output(g);
      for (std::size_t w = 0; w < K; ++w) overlay[out_net * K + w] = out[w];
      s.overlay_valid_[out_net] = 1;
      s.overlay_nets_.push_back(out_net);
    }
  }
};

}  // namespace cwsp::sim
