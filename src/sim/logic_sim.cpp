#include "sim/logic_sim.hpp"

namespace cwsp::sim {

LogicSim::LogicSim(const Netlist& netlist)
    : netlist_(&netlist),
      topo_order_(netlist.topological_order()),
      net_values_(netlist.num_nets(), 0),
      ff_q_(netlist.num_flip_flops(), 0),
      pi_values_(netlist.primary_inputs().size(), 0) {}

void LogicSim::set_inputs(const std::vector<bool>& values) {
  CWSP_REQUIRE_MSG(values.size() == pi_values_.size(),
                   "expected " << pi_values_.size() << " inputs, got "
                               << values.size());
  for (std::size_t i = 0; i < values.size(); ++i) pi_values_[i] = values[i];
}

void LogicSim::evaluate() {
  const Netlist& nl = *netlist_;
  // Seed source nets.
  for (std::size_t i = 0; i < nl.num_nets(); ++i) {
    const Net& net = nl.net(NetId{i});
    switch (net.driver_kind) {
      case DriverKind::kPrimaryInput:
        net_values_[i] = pi_values_[net.driver_index];
        break;
      case DriverKind::kFlipFlop:
        net_values_[i] = ff_q_[net.driver_index];
        break;
      case DriverKind::kConstant:
        net_values_[i] = net.constant_value;
        break;
      default:
        break;
    }
  }
  // Propagate.
  for (GateId g : topo_order_) {
    const Gate& gate = nl.gate(g);
    const Cell& cell = nl.cell_of(g);
    unsigned bits = 0;
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      if (net_values_[gate.inputs[i].index()]) bits |= 1u << i;
    }
    net_values_[gate.output.index()] = cell.evaluate(bits);
  }
}

void LogicSim::clock() {
  const Netlist& nl = *netlist_;
  for (std::size_t f = 0; f < nl.num_flip_flops(); ++f) {
    ff_q_[f] = net_values_[nl.flip_flop(FlipFlopId{f}).d.index()];
  }
}

void LogicSim::step(const std::vector<bool>& inputs) {
  set_inputs(inputs);
  evaluate();
  clock();
}

bool LogicSim::value(NetId net) const {
  CWSP_REQUIRE(net.valid() && net.index() < net_values_.size());
  return net_values_[net.index()] != 0;
}

std::vector<bool> LogicSim::output_values() const {
  std::vector<bool> out;
  out.reserve(netlist_->primary_outputs().size());
  for (NetId po : netlist_->primary_outputs()) {
    out.push_back(net_values_[po.index()] != 0);
  }
  return out;
}

std::vector<bool> LogicSim::ff_state() const {
  return {ff_q_.begin(), ff_q_.end()};
}

void LogicSim::set_ff_state(const std::vector<bool>& state) {
  CWSP_REQUIRE(state.size() == ff_q_.size());
  for (std::size_t i = 0; i < state.size(); ++i) ff_q_[i] = state[i];
}

}  // namespace cwsp::sim
