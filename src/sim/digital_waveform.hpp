#pragma once
// Binary waveform over one clock cycle: an initial value plus a sorted
// list of toggle times. This is the representation the event-driven
// simulator uses to propagate SET glitches with electrical (inertial)
// masking.

#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cwsp::sim {

class DigitalWaveform {
 public:
  DigitalWaveform() = default;
  explicit DigitalWaveform(bool initial) : initial_(initial) {}

  [[nodiscard]] bool initial() const { return initial_; }
  [[nodiscard]] const std::vector<double>& transitions() const {
    return transitions_;
  }
  [[nodiscard]] bool is_constant() const { return transitions_.empty(); }

  /// Value at time t (transitions take effect *at* their timestamp).
  [[nodiscard]] bool value_at(double t_ps) const;

  /// Final settled value.
  [[nodiscard]] bool final_value() const {
    return (transitions_.size() % 2 == 0) ? initial_ : !initial_;
  }

  /// Inverts the waveform during [t0, t1). Coincident toggles cancel; a
  /// degenerate zero-width pulse (t0 == t1) is a no-op.
  void xor_pulse(double t0_ps, double t1_ps);

  /// Replaces the transition list; must be sorted ascending.
  void set_transitions(std::vector<double> transitions);

  /// Re-initialises to a constant waveform, keeping the transition
  /// buffer's capacity (for allocation-free reuse in scratch pools).
  void reset(bool initial) {
    initial_ = initial;
    transitions_.clear();
  }

  /// Appends one toggle; must not precede the current last transition.
  void push_transition(double t_ps) {
    CWSP_REQUIRE(transitions_.empty() || t_ps >= transitions_.back());
    transitions_.push_back(t_ps);
  }

  /// Removes pulses narrower than min_width (inertial / electrical
  /// masking): repeatedly collapses adjacent toggle pairs closer than
  /// min_width until stable.
  void inertial_filter(double min_width_ps);

  /// True if any transition falls inside [from, to].
  [[nodiscard]] bool has_transition_in(double from_ps, double to_ps) const;

 private:
  bool initial_ = false;
  std::vector<double> transitions_;
};

}  // namespace cwsp::sim
