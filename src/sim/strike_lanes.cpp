#include "sim/strike_lanes.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "sim/strike_lanes_impl.hpp"

namespace cwsp::sim {
namespace detail {
// Defined in strike_lanes_avx2.cpp / strike_lanes_avx512.cpp when the
// compiler supports the matching flags (CMake gates the sources and the
// CWSP_LANES_HAVE_* defines together, so unguarded references below
// never dangle).
const LaneOps* lane_ops_avx2();
const LaneOps* lane_ops_avx512();
}  // namespace detail

namespace {

bool cpu_has_avx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512f() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

// Portable bodies — always compiled, so every width runs on every
// machine (the vectorized bodies are bit-identical accelerations).
const LaneOps kScalar64{"scalar-64", 1, &LaneKernelCore<1>::evaluate,
                        &LaneKernelCore<1>::evaluate_with_flip};
const LaneOps kPortable256{"portable-256", 4, &LaneKernelCore<4>::evaluate,
                           &LaneKernelCore<4>::evaluate_with_flip};
const LaneOps kPortable512{"portable-512", 8, &LaneKernelCore<8>::evaluate,
                           &LaneKernelCore<8>::evaluate_with_flip};

const LaneOps* resolve_ops(std::size_t lane_width) {
  if (lane_width == 0) {
#if defined(CWSP_LANES_HAVE_AVX512)
    if (cpu_has_avx512f()) return detail::lane_ops_avx512();
#endif
#if defined(CWSP_LANES_HAVE_AVX2)
    if (cpu_has_avx2()) return detail::lane_ops_avx2();
#endif
    return &kScalar64;
  }
  switch (lane_width) {
    case 64:
      return &kScalar64;
    case 256:
#if defined(CWSP_LANES_HAVE_AVX2)
      if (cpu_has_avx2()) return detail::lane_ops_avx2();
#endif
      return &kPortable256;
    case 512:
#if defined(CWSP_LANES_HAVE_AVX512)
      if (cpu_has_avx512f()) return detail::lane_ops_avx512();
#endif
      return &kPortable512;
    default:
      break;
  }
  CWSP_REQUIRE_MSG(false, "unsupported lane width " << lane_width
                                                    << " (supported: 64, "
                                                       "256, 512)");
  return &kScalar64;  // unreachable
}

}  // namespace

// ------------------------------------------------------------------
// WideLogicSim

WideLogicSim::WideLogicSim(std::shared_ptr<const FlatNetlistView> view,
                           std::size_t lane_width)
    : view_(std::move(view)), ops_(resolve_ops(lane_width)) {
  CWSP_REQUIRE(view_ != nullptr);
  words_ = ops_->words;
  net_words_.assign(view_->num_nets() * words_, 0);
  pi_words_.assign(view_->num_primary_inputs() * words_, 0);
  ff_words_.assign(view_->num_flip_flops() * words_, 0);
  // Self-describing benchmark artifacts: record the width actually
  // dispatched. Observability only — never read back by any report.
  metrics::Registry::global()
      .gauge("sim.kernel.width")
      .set(static_cast<std::int64_t>(lanes()));
}

const std::vector<std::size_t>& WideLogicSim::supported_lane_widths() {
  static const std::vector<std::size_t> kWidths{64, 256, 512};
  return kWidths;
}

LaneIsa WideLogicSim::dispatched_isa() {
  const LaneOps* ops = resolve_ops(0);
  return LaneIsa{ops->words * 64, ops->name};
}

LaneIsa WideLogicSim::isa_for(std::size_t lane_width) {
  const LaneOps* ops = resolve_ops(lane_width);
  return LaneIsa{ops->words * 64, ops->name};
}

std::vector<std::size_t> WideLogicSim::accelerated_lane_widths() {
  std::vector<std::size_t> out;
#if defined(CWSP_LANES_HAVE_AVX2)
  if (cpu_has_avx2()) out.push_back(256);
#endif
#if defined(CWSP_LANES_HAVE_AVX512)
  if (cpu_has_avx512f()) out.push_back(512);
#endif
  return out;
}

void WideLogicSim::set_input_lane(std::size_t pi, std::size_t lane,
                                  bool value) {
  CWSP_REQUIRE(pi < view_->num_primary_inputs() && lane < lanes());
  std::uint64_t& w = pi_words_[pi * words_ + lane / 64];
  if (value) {
    w |= 1ull << (lane % 64);
  } else {
    w &= ~(1ull << (lane % 64));
  }
}

void WideLogicSim::set_ff_lane(std::size_t ff, std::size_t lane, bool value) {
  CWSP_REQUIRE(ff < view_->num_flip_flops() && lane < lanes());
  std::uint64_t& w = ff_words_[ff * words_ + lane / 64];
  if (value) {
    w |= 1ull << (lane % 64);
  } else {
    w &= ~(1ull << (lane % 64));
  }
}

void WideLogicSim::set_input_word(std::size_t pi, std::size_t w,
                                  std::uint64_t bits) {
  CWSP_REQUIRE(pi < view_->num_primary_inputs() && w < words_);
  pi_words_[pi * words_ + w] = bits;
}

void WideLogicSim::set_ff_word(std::size_t ff, std::size_t w,
                               std::uint64_t bits) {
  CWSP_REQUIRE(ff < view_->num_flip_flops() && w < words_);
  ff_words_[ff * words_ + w] = bits;
}

void WideLogicSim::fill_ff(std::size_t ff, bool value) {
  CWSP_REQUIRE(ff < view_->num_flip_flops());
  const std::uint64_t fill = value ? ~0ull : 0ull;
  for (std::size_t w = 0; w < words_; ++w) {
    ff_words_[ff * words_ + w] = fill;
  }
}

void WideLogicSim::evaluate() { ops_->evaluate(*this); }

void WideLogicSim::evaluate_with_flip(NetId site) {
  CWSP_REQUIRE(site.valid() && site.index() < view_->num_nets());
  ops_->evaluate_with_flip(*this,
                           static_cast<std::uint32_t>(site.index()));
}

void WideLogicSim::clock() {
  for (std::size_t f = 0; f < view_->num_flip_flops(); ++f) {
    const std::uint64_t* d = net_words_.data() + view_->ff_d_net(f) * words_;
    std::uint64_t* q = ff_words_.data() + f * words_;
    for (std::size_t w = 0; w < words_; ++w) q[w] = d[w];
  }
}

std::uint64_t WideLogicSim::flip_diff_word(NetId net, std::size_t w) const {
  CWSP_REQUIRE(net.valid() && net.index() < view_->num_nets() && w < words_);
  const std::size_t n = net.index();
  if (overlay_valid_.empty() || overlay_valid_[n] == 0) return 0;
  return overlay_words_[n * words_ + w] ^ net_words_[n * words_ + w];
}

std::uint64_t WideLogicSim::value_word(NetId net, std::size_t w) const {
  CWSP_REQUIRE(net.valid() && net.index() < view_->num_nets() && w < words_);
  return net_words_[net.index() * words_ + w];
}

bool WideLogicSim::value(NetId net, std::size_t lane) const {
  CWSP_REQUIRE(lane < lanes());
  return ((value_word(net, lane / 64) >> (lane % 64)) & 1u) != 0;
}

std::uint64_t WideLogicSim::ff_word(std::size_t ff, std::size_t w) const {
  CWSP_REQUIRE(ff < view_->num_flip_flops() && w < words_);
  return ff_words_[ff * words_ + w];
}

// ------------------------------------------------------------------
// StrikeLaneSim

StrikeLaneSim::StrikeLaneSim(
    std::shared_ptr<const CompiledKernelContext> context,
    Picoseconds clock_period, Picoseconds delta, std::size_t lane_width)
    : context_(std::move(context)),
      clock_period_(clock_period),
      delta_(delta),
      golden_(context_ != nullptr ? context_->view : nullptr, lane_width),
      faulty_(context_->view, lane_width),
      event_(context_->view->netlist(), context_) {
  CWSP_REQUIRE(context_ != nullptr);
}

void StrikeLaneSim::run_batch(const std::vector<LaneScenario>& batch,
                              std::vector<LaneOutcome>& out) {
  // Chaos: an injected batch failure must degrade the campaign's lane
  // path to its scalar fallback without changing the report.
  CWSP_FAILPOINT("sim.lane.run_batch");
  const FlatNetlistView& view = *context_->view;
  const std::size_t B = batch.size();
  out.assign(B, LaneOutcome{});
  if (B == 0) return;
  CWSP_REQUIRE_MSG(B <= lanes(), "batch of " << B << " scenarios exceeds "
                                             << lanes() << " lanes");
  const std::size_t T = batch[0].inputs->size();
  for (const LaneScenario& s : batch) {
    CWSP_REQUIRE_MSG(s.inputs != nullptr && s.inputs->size() == T,
                     "every scenario of a lane batch needs the same run "
                     "length");
  }

  const std::size_t npi = view.num_primary_inputs();
  const std::size_t nff = view.num_flip_flops();
  const std::size_t nets = view.num_nets();
  const std::size_t words = golden_.words_per_net();

  ++batches_;
  lanes_filled_ += B;
  lane_slots_ += lanes();

  // Reset both planes to the all-zero state (ProtectionSim's reset).
  for (std::size_t f = 0; f < nff; ++f) golden_.fill_ff(f, false);
  bool divergent = false;

  // Lanes whose capture escaped the envelope this cycle: the faulty
  // plane picks up their corrupted latch at the clock edge below.
  struct PendingDivergence {
    std::size_t lane = 0;
    std::vector<std::pair<std::size_t, bool>> flipped_ffs;
  };
  std::vector<PendingDivergence> pending;
  std::vector<std::size_t> diverged_lanes;

  for (std::size_t t = 0; t < T; ++t) {
    // Pack this cycle's stimulus, lane-major within each 64-lane word.
    for (std::size_t p = 0; p < npi; ++p) {
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = 0;
        const std::size_t hi = std::min<std::size_t>(B, (w + 1) * 64);
        for (std::size_t l = w * 64; l < hi; ++l) {
          if ((*batch[l].inputs)[t][p]) bits |= 1ull << (l % 64);
        }
        golden_.set_input_word(p, w, bits);
        if (divergent) faulty_.set_input_word(p, w, bits);
      }
    }
    golden_.evaluate();

    // Timed resolution for lanes striking this cycle: extract the
    // lane's settled golden values and hand them to the event-driven
    // resolver — latching-window and aperture questions are decided in
    // continuous time exactly as the scalar kernel decides them.
    for (std::size_t l = 0; l < B; ++l) {
      if (batch[l].cycle != t) continue;
      out[l].fired = true;
      ++timed_resolutions_;

      lane_golden_.net_values.assign(nets, 0);
      const std::size_t wl = l / 64;
      const std::uint64_t bit = 1ull << (l % 64);
      for (std::size_t n = 0; n < nets; ++n) {
        lane_golden_.net_values[n] =
            (golden_.net_words(n)[wl] & bit) != 0 ? 1 : 0;
      }
      lane_golden_.ff_d.clear();
      for (std::size_t f = 0; f < nff; ++f) {
        lane_golden_.ff_d.push_back(
            lane_golden_.net_values[view.ff_d_net(f)] != 0);
      }
      lane_golden_.po.clear();
      for (std::uint32_t po : view.po_nets()) {
        lane_golden_.po.push_back(lane_golden_.net_values[po] != 0);
      }

      const CycleResult cr =
          event_.resolve_strike(lane_golden_, clock_period_, batch[l].strike);
      PendingDivergence div;
      div.lane = l;
      if (!batch[l].node2.valid()) {
        for (std::size_t f = 0; f < nff; ++f) {
          if (cr.latched_d[f] != cr.golden_d[f]) {
            div.flipped_ffs.emplace_back(f, cr.latched_d[f]);
          }
          if (cr.aperture_violation[f]) out[l].aperture = true;
        }
      } else {
        // Charge-sharing double strike: resolve each node's SET against
        // the same settled cycle and superpose — a capture both strikes
        // flip re-latches the golden value (symmetric difference), and
        // aperture violations accumulate.
        ++timed_resolutions_;
        const set::Strike second{batch[l].node2, batch[l].strike.start,
                                 batch[l].strike.width};
        const CycleResult cr2 =
            event_.resolve_strike(lane_golden_, clock_period_, second);
        for (std::size_t f = 0; f < nff; ++f) {
          const bool flip1 = cr.latched_d[f] != cr.golden_d[f];
          const bool flip2 = cr2.latched_d[f] != cr2.golden_d[f];
          if (flip1 != flip2) {
            div.flipped_ffs.emplace_back(f, !static_cast<bool>(cr.golden_d[f]));
          }
          if (cr.aperture_violation[f] || cr2.aperture_violation[f]) {
            out[l].aperture = true;
          }
        }
      }
      out[l].latched_diff = !div.flipped_ffs.empty();
      // Only a non-squashed capture beyond the CWSP envelope survives
      // into the architecture's state (width <= δ is repaired by the
      // check word; a squashed cycle discards its capture entirely).
      if (out[l].latched_diff && !batch[l].squash_at_strike &&
          batch[l].strike.width > delta_) {
        pending.push_back(std::move(div));
      }
    }

    // Silent-corruption accounting: one count per committed cycle whose
    // outputs differ from golden, for every already-diverged lane.
    if (divergent) {
      faulty_.evaluate();
      for (std::size_t l : diverged_lanes) {
        const std::size_t wl = l / 64;
        const std::uint64_t bit = 1ull << (l % 64);
        for (std::uint32_t po : view.po_nets()) {
          const std::uint64_t diff =
              golden_.net_words(po)[wl] ^ faulty_.net_words(po)[wl];
          if ((diff & bit) != 0) {
            ++out[l].silent_corruptions;
            break;
          }
        }
      }
    }

    golden_.clock();
    if (divergent) faulty_.clock();

    if (!pending.empty()) {
      if (!divergent) {
        // First divergence of the batch: fork the faulty plane from the
        // (post-clock) golden state; every still-clean lane keeps
        // tracking golden exactly, so its diff words stay zero.
        for (std::size_t f = 0; f < nff; ++f) {
          for (std::size_t w = 0; w < words; ++w) {
            faulty_.set_ff_word(f, w, golden_.ff_word(f, w));
          }
        }
        divergent = true;
      }
      for (const PendingDivergence& div : pending) {
        for (const auto& [f, v] : div.flipped_ffs) {
          faulty_.set_ff_lane(f, div.lane, v);
        }
        diverged_lanes.push_back(div.lane);
      }
      pending.clear();
    }
  }
}

}  // namespace cwsp::sim
