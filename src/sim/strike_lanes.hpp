#pragma once
// Fault-parallel strike-lane kernel: pack N strike scenarios into SIMD
// lanes and advance them all with one structure-of-arrays topo sweep per
// cycle.
//
// Two cooperating pieces:
//
//   * WideLogicSim — the width-generic generalization of LogicSim64:
//     every net carries K consecutive 64-bit words (K = 1/4/8 → 64/256/
//     512 lanes), and the topological sweep is instantiated once per K
//     in separate translation units compiled for the matching ISA
//     (portable baseline always; AVX2 for K=4 and AVX-512 for K=8 when
//     the compiler supports the flags). Dispatch is resolved at runtime
//     from CPUID, with an explicit width override for differential
//     tests, so every width is runnable on every machine and results
//     are bit-identical between the portable and vectorized bodies by
//     construction (same scalar semantics, word-parallel).
//
//   * StrikeLaneSim — the campaign batch engine built on two
//     WideLogicSim planes. Lane l of a batch carries one functional
//     strike scenario: the golden plane advances the clean trajectory
//     of every lane's stimulus; on each lane's strike cycle the settled
//     golden values of that lane are extracted and handed to the timed
//     CompiledEventSim for exact glitch-window resolution (latching /
//     aperture masking are analog-time questions the boolean planes
//     cannot answer); lanes whose capture escapes the CWSP envelope
//     seed the faulty plane, whose lane-diff against the golden plane
//     then counts silently-corrupted commits cycle by cycle. Everything
//     else about the §3.2 protocol (bubbles, detected errors, spurious
//     recomputes) is a deterministic function of these per-lane facts
//     and is reconstructed analytically by the campaign layer — which
//     is what keeps lane-kernel reports byte-identical to the scalar
//     ProtectionSim at any lane width and any job count.
//
// A WideLogicSim / StrikeLaneSim instance is NOT thread-safe; create one
// per worker and share the immutable context.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/compiled_kernel.hpp"

namespace cwsp::sim {

class WideLogicSim;

/// One compiled sweep body: the function-pointer vtable the runtime
/// dispatcher selects from. `words` is the per-net word count K.
struct LaneOps {
  const char* name = "";
  std::size_t words = 1;
  void (*evaluate)(WideLogicSim&) = nullptr;
  void (*evaluate_with_flip)(WideLogicSim&, std::uint32_t site) = nullptr;
};

/// What the dispatcher resolved: lane count plus the sweep body's name
/// ("scalar-64", "portable-256", "avx2-256", "avx512-512").
struct LaneIsa {
  std::size_t lanes = 64;
  const char* name = "scalar-64";
};

/// Width-generic bit-parallel zero-delay logic simulator. Net n's lane
/// words live at net_words()[n * words_per_net() .. +words_per_net()).
class WideLogicSim {
 public:
  /// lane_width 0 picks the widest ISA-accelerated width this CPU
  /// supports; otherwise it must be one of supported_lane_widths().
  explicit WideLogicSim(std::shared_ptr<const FlatNetlistView> view,
                        std::size_t lane_width = 0);

  /// The widths every build can run (vectorized when the ISA allows,
  /// portable otherwise): {64, 256, 512}.
  [[nodiscard]] static const std::vector<std::size_t>& supported_lane_widths();
  /// What lane_width == 0 resolves to on this machine.
  [[nodiscard]] static LaneIsa dispatched_isa();
  /// The body a specific width resolves to on this machine.
  [[nodiscard]] static LaneIsa isa_for(std::size_t lane_width);
  /// ISA-accelerated widths compiled into this binary (subset of
  /// supported widths; informational, for `cwsp_tool version`).
  [[nodiscard]] static std::vector<std::size_t> accelerated_lane_widths();

  [[nodiscard]] std::size_t lanes() const { return words_ * 64; }
  [[nodiscard]] std::size_t words_per_net() const { return words_; }
  [[nodiscard]] const char* isa_name() const { return ops_->name; }

  void set_input_lane(std::size_t pi, std::size_t lane, bool value);
  void set_ff_lane(std::size_t ff, std::size_t lane, bool value);
  /// Word `w` (64 lanes) of one primary input / flip-flop.
  void set_input_word(std::size_t pi, std::size_t w, std::uint64_t bits);
  void set_ff_word(std::size_t ff, std::size_t w, std::uint64_t bits);
  /// Same value in every lane.
  void fill_ff(std::size_t ff, bool value);

  /// Settles combinational logic for all lanes in one topo pass.
  void evaluate();
  /// Latches every flip-flop in every lane (Q ← D).
  void clock();
  /// Re-evaluates only `site`'s fanout cone with the site inverted in
  /// every lane (see LogicSim64::evaluate_with_flip).
  void evaluate_with_flip(NetId site);
  /// Word `w` of the per-lane XOR between the flip overlay and the base
  /// evaluation of `net` (zero outside the flipped cone).
  [[nodiscard]] std::uint64_t flip_diff_word(NetId net, std::size_t w) const;

  [[nodiscard]] std::uint64_t value_word(NetId net, std::size_t w) const;
  [[nodiscard]] bool value(NetId net, std::size_t lane) const;
  [[nodiscard]] std::uint64_t ff_word(std::size_t ff, std::size_t w) const;

  /// Raw lane words of one net (words_per_net() consecutive words) —
  /// the extraction fast path for StrikeLaneSim.
  [[nodiscard]] const std::uint64_t* net_words(std::size_t net) const {
    return net_words_.data() + net * words_;
  }

  [[nodiscard]] const FlatNetlistView& view() const { return *view_; }
  [[nodiscard]] const Netlist& netlist() const { return view_->netlist(); }

 private:
  template <std::size_t K>
  friend struct LaneKernelCore;

  std::shared_ptr<const FlatNetlistView> view_;
  const LaneOps* ops_;
  std::size_t words_;
  // SoA lane state: element i*words_ + w is word w of entity i.
  std::vector<std::uint64_t> net_words_;
  std::vector<std::uint64_t> pi_words_;
  std::vector<std::uint64_t> ff_words_;

  // Flip-overlay scratch (sparse; see LogicSim64).
  std::vector<std::uint64_t> overlay_words_;
  std::vector<char> overlay_valid_;
  std::vector<std::uint32_t> overlay_nets_;
};

/// One functional-strike scenario occupying one lane of a batch.
struct LaneScenario {
  set::Strike strike;
  /// Second simultaneous strike node (charge-sharing double-SET fault
  /// models); shares `strike`'s start/width. Invalid = single-node.
  NetId node2;
  /// Cycle (within `inputs`) the strike fires on; >= inputs->size()
  /// means the strike never fires.
  std::size_t cycle = 0;
  /// The equivalence check of the strike cycle reads EQ low spuriously
  /// (a FF Q-net glitch spanning the CLK_DEL sample — computed
  /// statically by the caller), so the protocol squashes the cycle and
  /// discards its capture.
  bool squash_at_strike = false;
  /// Per-cycle primary-input stimulus; every scenario of a batch must
  /// have the same length. Must outlive run_batch.
  const std::vector<std::vector<bool>>* inputs = nullptr;
};

/// The per-lane facts a batch resolves to. The protocol verdict
/// (covered/escape, bubbles, detected errors, spurious recomputes) is a
/// pure function of these — see campaign::CampaignEngine's lane path.
struct LaneOutcome {
  /// strike cycle < run length (a never-firing strike is a clean run).
  bool fired = false;
  /// Timed resolution latched a non-golden value into some flip-flop.
  bool latched_diff = false;
  /// Some flip-flop saw a transition inside its setup/hold aperture.
  bool aperture = false;
  /// Commits after an undetected (width > δ, non-squashed) capture whose
  /// outputs differ from golden — the protocol's silent corruptions.
  std::uint64_t silent_corruptions = 0;
};

/// Batch engine: resolves up to lanes() strike scenarios per pass. See
/// the file comment for the golden/faulty two-plane algorithm.
class StrikeLaneSim {
 public:
  /// `delta` is the CWSP protection envelope (ProtectionParams::delta);
  /// `clock_period` is both the cycle length and the capture time the
  /// timed resolver samples at (matching ProtectionSim).
  StrikeLaneSim(std::shared_ptr<const CompiledKernelContext> context,
                Picoseconds clock_period, Picoseconds delta,
                std::size_t lane_width = 0);

  [[nodiscard]] std::size_t lanes() const { return golden_.lanes(); }
  [[nodiscard]] const char* isa_name() const { return golden_.isa_name(); }

  /// Resolves batch.size() <= lanes() scenarios. `out` is resized to the
  /// batch size. Outcomes are independent of batch composition and lane
  /// width: each lane computes exactly what a scalar run would.
  void run_batch(const std::vector<LaneScenario>& batch,
                 std::vector<LaneOutcome>& out);

  /// Occupancy telemetry (for the campaign's metrics and benchmarks).
  [[nodiscard]] std::uint64_t batches_run() const { return batches_; }
  [[nodiscard]] std::uint64_t lanes_filled() const { return lanes_filled_; }
  [[nodiscard]] std::uint64_t lane_slots() const { return lane_slots_; }
  [[nodiscard]] std::uint64_t timed_resolutions() const {
    return timed_resolutions_;
  }

 private:
  std::shared_ptr<const CompiledKernelContext> context_;
  Picoseconds clock_period_;
  Picoseconds delta_;
  WideLogicSim golden_;
  WideLogicSim faulty_;
  /// Timed strike-cycle resolver (golden cache unused on this path: the
  /// golden plane already settled the cycle; see resolve_strike).
  CompiledEventSim event_;
  /// Scratch for per-lane golden extraction.
  GoldenCycle lane_golden_;

  std::uint64_t batches_ = 0;
  std::uint64_t lanes_filled_ = 0;
  std::uint64_t lane_slots_ = 0;
  std::uint64_t timed_resolutions_ = 0;
};

}  // namespace cwsp::sim
