#pragma once
// Cooperative cancellation for long-running simulations.
//
// A campaign watchdog flips a CancelToken from another thread; the
// simulators poll it at cheap, frequent checkpoints (per gate in the
// event simulator, per cycle in the protection protocol) and abort by
// throwing CancelledError. The campaign engine catches the exception and
// degrades the strike to `inconclusive` instead of killing the run.

#include <atomic>

#include "common/error.hpp"

namespace cwsp::sim {

class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Thrown from a simulator checkpoint once its token is cancelled.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

}  // namespace cwsp::sim
