#pragma once
// Cooperative cancellation for long-running simulations.
//
// A campaign watchdog flips a CancelToken from another thread; the
// simulators poll it at cheap, frequent checkpoints (per gate in the
// event simulator, per cycle in the protection protocol) and abort by
// throwing CancelledError. The campaign engine catches the exception and
// degrades the strike to `inconclusive` instead of killing the run.
//
// A token can also carry an absolute deadline (steady-clock). Once the
// deadline passes, cancelled() reports true without anyone calling
// cancel() — this is how a `deadline_ms` admitted at the service
// boundary propagates coordinator → worker → EngineOptions::cancel
// without a reaper thread. The clock is only read when a deadline is
// armed, so deadline-free polling stays a single relaxed load.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/error.hpp"

namespace cwsp::sim {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  void reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return deadline_expired();
  }

  /// Arms an absolute deadline; Clock::time_point::max() (or re-arming
  /// with 0 ns) disarms it.
  void set_deadline(Clock::time_point deadline) {
    if (deadline == Clock::time_point::max()) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// True when a deadline is armed and has passed — lets callers tell a
  /// blown deadline apart from an explicit cancel().
  [[nodiscard]] bool deadline_expired() const {
    const auto ns = deadline_ns_.load(std::memory_order_relaxed);
    if (ns == 0) return false;
    return Clock::now().time_since_epoch().count() >= ns;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<Clock::rep> deadline_ns_{0};
};

/// Thrown from a simulator checkpoint once its token is cancelled.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

}  // namespace cwsp::sim
