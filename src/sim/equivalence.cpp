#include "sim/equivalence.hpp"

#include "common/rng.hpp"
#include "sim/compiled_kernel.hpp"

namespace cwsp {
namespace {

/// a's FF index for each of b's FFs, matched by Q-net name. B's state
/// must be a subset of A's (optimisation may drop dead flip-flops, whose
/// state by construction cannot influence outputs).
std::vector<std::size_t> match_ffs(const Netlist& a, const Netlist& b) {
  std::vector<std::size_t> map(b.num_flip_flops());
  for (std::size_t j = 0; j < b.num_flip_flops(); ++j) {
    const std::string& name = b.net(b.flip_flop(FlipFlopId{j}).q).name;
    bool found = false;
    for (std::size_t i = 0; i < a.num_flip_flops(); ++i) {
      if (a.net(a.flip_flop(FlipFlopId{i}).q).name == name) {
        map[j] = i;
        found = true;
        break;
      }
    }
    CWSP_REQUIRE_MSG(found, "equivalence: no matching flip-flop for " << name);
  }
  return map;
}

}  // namespace

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceOptions& options) {
  CWSP_REQUIRE_MSG(a.primary_inputs().size() == b.primary_inputs().size(),
                   "equivalence: input count mismatch");
  CWSP_REQUIRE_MSG(a.primary_outputs().size() == b.primary_outputs().size(),
                   "equivalence: output count mismatch");
  CWSP_REQUIRE_MSG(b.num_flip_flops() <= a.num_flip_flops(),
                   "equivalence: b has flip-flops a lacks");

  const std::size_t n_in = a.primary_inputs().size();
  const std::size_t n_ff = a.num_flip_flops();
  const std::size_t n_out = a.primary_outputs().size();
  const std::size_t space_bits = n_in + n_ff;
  const auto ff_map = match_ffs(a, b);

  // Bit-parallel sweep: 64 (input, state) vectors settle per topological
  // pass. Lanes are filled in enumeration order, so the counterexample —
  // lowest lane of the first failing batch, lowest output index — is the
  // same vector the scalar reference implementation would report.
  sim::LogicSim64 sim_a(a);
  sim::LogicSim64 sim_b(b);

  EquivalenceResult result;
  result.exhaustive =
      space_bits < 63 && (1ull << space_bits) <= options.exhaustive_limit;

  // Per-lane copies of the current batch (for counterexample reporting).
  std::vector<std::vector<bool>> lane_inputs(64);
  std::vector<std::vector<bool>> lane_states(64);

  auto run_batch = [&](std::size_t lanes) -> bool {
    for (std::size_t l = 0; l < lanes; ++l) {
      for (std::size_t i = 0; i < n_in; ++i) {
        sim_a.set_input_lane(i, l, lane_inputs[l][i]);
        sim_b.set_input_lane(i, l, lane_inputs[l][i]);
      }
      for (std::size_t i = 0; i < n_ff; ++i) {
        sim_a.set_ff_lane(i, l, lane_states[l][i]);
      }
      for (std::size_t j = 0; j < b.num_flip_flops(); ++j) {
        sim_b.set_ff_lane(j, l, lane_states[l][ff_map[j]]);
      }
    }
    sim_a.evaluate();
    sim_b.evaluate();
    const std::uint64_t lane_mask =
        lanes == 64 ? ~0ull : (1ull << lanes) - 1;
    std::uint64_t any_diff = 0;
    for (std::size_t k = 0; k < n_out; ++k) {
      any_diff |= (sim_a.output_word(k) ^ sim_b.output_word(k)) & lane_mask;
      if (any_diff != 0) break;
    }
    if (any_diff == 0) {
      result.vectors_checked += lanes;
      return true;
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      for (std::size_t k = 0; k < n_out; ++k) {
        const bool va = (sim_a.output_word(k) >> l) & 1u;
        const bool vb = (sim_b.output_word(k) >> l) & 1u;
        if (va != vb) {
          result.vectors_checked += l + 1;
          result.counterexample =
              Counterexample{lane_inputs[l], lane_states[l], k, va, vb};
          return false;
        }
      }
    }
    // Unreachable: any_diff != 0 implies some lane/output differs.
    result.vectors_checked += lanes;
    return true;
  };

  if (result.exhaustive) {
    const std::uint64_t combos = 1ull << space_bits;
    for (std::uint64_t base = 0; base < combos; base += 64) {
      const std::size_t lanes =
          static_cast<std::size_t>(std::min<std::uint64_t>(64, combos - base));
      for (std::size_t l = 0; l < lanes; ++l) {
        const std::uint64_t v = base + l;
        lane_inputs[l].assign(n_in, false);
        lane_states[l].assign(n_ff, false);
        for (std::size_t i = 0; i < n_in; ++i) {
          lane_inputs[l][i] = (v >> i) & 1u;
        }
        for (std::size_t i = 0; i < n_ff; ++i) {
          lane_states[l][i] = (v >> (n_in + i)) & 1u;
        }
      }
      if (!run_batch(lanes)) return result;
    }
  } else {
    Rng rng(options.seed);
    std::size_t remaining = options.random_vectors;
    while (remaining > 0) {
      const std::size_t lanes = std::min<std::size_t>(64, remaining);
      for (std::size_t l = 0; l < lanes; ++l) {
        lane_inputs[l].assign(n_in, false);
        lane_states[l].assign(n_ff, false);
        for (std::size_t i = 0; i < n_in; ++i) {
          lane_inputs[l][i] = rng.next_bool();
        }
        for (std::size_t i = 0; i < n_ff; ++i) {
          lane_states[l][i] = rng.next_bool();
        }
      }
      if (!run_batch(lanes)) return result;
      remaining -= lanes;
    }
  }
  result.equivalent = true;
  return result;
}

}  // namespace cwsp
