#include "sim/equivalence.hpp"

#include "common/rng.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp {
namespace {

/// a's FF index for each of b's FFs, matched by Q-net name. B's state
/// must be a subset of A's (optimisation may drop dead flip-flops, whose
/// state by construction cannot influence outputs).
std::vector<std::size_t> match_ffs(const Netlist& a, const Netlist& b) {
  std::vector<std::size_t> map(b.num_flip_flops());
  for (std::size_t j = 0; j < b.num_flip_flops(); ++j) {
    const std::string& name = b.net(b.flip_flop(FlipFlopId{j}).q).name;
    bool found = false;
    for (std::size_t i = 0; i < a.num_flip_flops(); ++i) {
      if (a.net(a.flip_flop(FlipFlopId{i}).q).name == name) {
        map[j] = i;
        found = true;
        break;
      }
    }
    CWSP_REQUIRE_MSG(found, "equivalence: no matching flip-flop for " << name);
  }
  return map;
}

}  // namespace

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceOptions& options) {
  CWSP_REQUIRE_MSG(a.primary_inputs().size() == b.primary_inputs().size(),
                   "equivalence: input count mismatch");
  CWSP_REQUIRE_MSG(a.primary_outputs().size() == b.primary_outputs().size(),
                   "equivalence: output count mismatch");
  CWSP_REQUIRE_MSG(b.num_flip_flops() <= a.num_flip_flops(),
                   "equivalence: b has flip-flops a lacks");

  const std::size_t n_in = a.primary_inputs().size();
  const std::size_t n_ff = a.num_flip_flops();
  const std::size_t space_bits = n_in + n_ff;
  const auto ff_map = match_ffs(a, b);

  sim::LogicSim sim_a(a);
  sim::LogicSim sim_b(b);

  EquivalenceResult result;
  result.exhaustive =
      space_bits < 63 && (1ull << space_bits) <= options.exhaustive_limit;

  auto run_vector = [&](const std::vector<bool>& inputs,
                        const std::vector<bool>& state) -> bool {
    std::vector<bool> state_b(b.num_flip_flops());
    for (std::size_t j = 0; j < state_b.size(); ++j) {
      state_b[j] = state[ff_map[j]];
    }
    sim_a.set_ff_state(state);
    sim_b.set_ff_state(state_b);
    sim_a.set_inputs(inputs);
    sim_b.set_inputs(inputs);
    sim_a.evaluate();
    sim_b.evaluate();
    ++result.vectors_checked;
    const auto out_a = sim_a.output_values();
    const auto out_b = sim_b.output_values();
    for (std::size_t k = 0; k < out_a.size(); ++k) {
      if (out_a[k] != out_b[k]) {
        result.counterexample =
            Counterexample{inputs, state, k, out_a[k], out_b[k]};
        return false;
      }
    }
    return true;
  };

  if (result.exhaustive) {
    const std::uint64_t combos = 1ull << space_bits;
    for (std::uint64_t v = 0; v < combos; ++v) {
      std::vector<bool> inputs(n_in);
      std::vector<bool> state(n_ff);
      for (std::size_t i = 0; i < n_in; ++i) inputs[i] = (v >> i) & 1u;
      for (std::size_t i = 0; i < n_ff; ++i) {
        state[i] = (v >> (n_in + i)) & 1u;
      }
      if (!run_vector(inputs, state)) return result;
    }
  } else {
    Rng rng(options.seed);
    for (std::size_t v = 0; v < options.random_vectors; ++v) {
      std::vector<bool> inputs(n_in);
      std::vector<bool> state(n_ff);
      for (auto&& bit : inputs) bit = rng.next_bool();
      for (auto&& bit : state) bit = rng.next_bool();
      if (!run_vector(inputs, state)) return result;
    }
  }
  result.equivalent = true;
  return result;
}

}  // namespace cwsp
