#pragma once
// Multi-cycle trace recording and VCD export.
//
// TraceRecorder captures selected nets of a LogicSim run cycle by cycle;
// write_vcd emits the standard Value Change Dump format any waveform
// viewer (GTKWave etc.) opens. EventSim's intra-cycle glitch waveforms
// can be overlaid via add_waveform (timestamps in ps within a cycle).

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/digital_waveform.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp::sim {

class TraceRecorder {
 public:
  /// Records the given nets (by name, resolved against the netlist).
  TraceRecorder(const Netlist& netlist, std::vector<std::string> net_names);

  /// Samples the current values from the simulator (call once per cycle,
  /// after evaluate()).
  void sample(const LogicSim& sim);

  [[nodiscard]] std::size_t num_cycles() const { return cycles_; }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }
  /// Value of signal `s` at cycle `c`.
  [[nodiscard]] bool value(std::size_t signal, std::size_t cycle) const;

  /// Emits a VCD with one timestamp per cycle (timescale 1 ns/cycle).
  void write_vcd(std::ostream& os, const std::string& module_name) const;

  /// Renders an ASCII timing diagram (one row per signal).
  [[nodiscard]] std::string ascii_waves() const;

 private:
  const Netlist* netlist_;
  std::vector<std::string> names_;
  std::vector<NetId> nets_;
  std::vector<std::vector<bool>> samples_;  // per signal
  std::size_t cycles_ = 0;
};

/// Emits a single intra-cycle DigitalWaveform as a VCD (1 ps timescale).
void write_waveform_vcd(const DigitalWaveform& waveform,
                        const std::string& signal_name, double t_end_ps,
                        std::ostream& os);

}  // namespace cwsp::sim
