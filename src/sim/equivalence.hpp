#pragma once
// Simulation-based equivalence checking between two netlists with
// matching interfaces: exhaustive for small input/state spaces, seeded
// random vectors otherwise. Used to validate optimisation passes and
// round-trips; not a formal prover — a pass result is "no mismatch
// found", a fail result carries a concrete counterexample.

#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace cwsp {

struct EquivalenceOptions {
  /// Exhaustive when 2^(PIs + FFs) is at most this; random otherwise.
  std::size_t exhaustive_limit = 1u << 16;
  std::size_t random_vectors = 1024;
  std::uint64_t seed = 1;
};

struct Counterexample {
  std::vector<bool> inputs;
  std::vector<bool> state_a;  // FF state applied to both designs
  std::size_t output_index = 0;
  bool value_a = false;
  bool value_b = false;
};

struct EquivalenceResult {
  bool equivalent = false;
  bool exhaustive = false;
  std::size_t vectors_checked = 0;
  std::optional<Counterexample> counterexample;
};

/// Compares combinational behaviour per (input, FF-state) vector: both
/// netlists must have the same PI/PO counts; b's flip-flops must be a
/// (name-matched) subset of a's — optimisation may legitimately drop dead
/// state, which cannot influence outputs. Throws cwsp::Error on interface
/// mismatch.
[[nodiscard]] EquivalenceResult check_equivalence(
    const Netlist& a, const Netlist& b, const EquivalenceOptions& options = {});

}  // namespace cwsp
