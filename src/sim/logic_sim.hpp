#pragma once
// Cycle-accurate zero-delay logic simulator: the golden reference for all
// fault-injection experiments.

#include <vector>

#include "netlist/netlist.hpp"

namespace cwsp::sim {

class LogicSim {
 public:
  explicit LogicSim(const Netlist& netlist);

  /// Sets primary-input values in PI declaration order.
  void set_inputs(const std::vector<bool>& values);

  /// Settles combinational logic from the current PI values and FF state.
  void evaluate();

  /// Latches every flip-flop (Q ← D). Call evaluate() first.
  void clock();

  /// Convenience: set_inputs + evaluate + clock.
  void step(const std::vector<bool>& inputs);

  [[nodiscard]] bool value(NetId net) const;
  [[nodiscard]] std::vector<bool> output_values() const;
  [[nodiscard]] std::vector<bool> ff_state() const;
  void set_ff_state(const std::vector<bool>& state);

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }

 private:
  const Netlist* netlist_;
  std::vector<GateId> topo_order_;
  std::vector<char> net_values_;
  std::vector<char> ff_q_;
  std::vector<char> pi_values_;
};

}  // namespace cwsp::sim
