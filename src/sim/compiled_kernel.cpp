#include "sim/compiled_kernel.hpp"

#include <algorithm>

#include "common/metrics.hpp"
#include "sta/sta.hpp"

namespace cwsp::sim {

std::shared_ptr<const CompiledKernelContext> CompiledKernelContext::build(
    const Netlist& netlist) {
  auto context = std::make_shared<CompiledKernelContext>();
  context->view = FlatNetlistView::build(netlist);
  context->gate_delay_ps = std::make_shared<const std::vector<double>>(
      run_sta(netlist).gate_delay_ps);
  metrics::Registry::global().counter("kernel.context_builds").add();
  return context;
}

CompiledEventSim::~CompiledEventSim() {
  if (cache_hits_ == 0 && cache_misses_ == 0) return;
  auto& registry = metrics::Registry::global();
  registry.counter("kernel.golden_cache_hits").add(cache_hits_);
  registry.counter("kernel.golden_cache_misses").add(cache_misses_);
}

CompiledEventSim::CompiledEventSim(const Netlist& netlist)
    : context_(CompiledKernelContext::build(netlist)) {}

CompiledEventSim::CompiledEventSim(
    const Netlist& netlist,
    std::shared_ptr<const CompiledKernelContext> context)
    : context_(std::move(context)) {
  CWSP_REQUIRE(context_ != nullptr);
  CWSP_REQUIRE_MSG(&context_->view->netlist() == &netlist,
                   "compiled-kernel context built for a different netlist");
}

void CompiledEventSim::set_golden_cache_capacity(std::size_t entries) {
  golden_cache_capacity_ = entries;
  if (golden_cache_.size() > golden_cache_capacity_) golden_cache_.clear();
}

const GoldenCycle& CompiledEventSim::golden_cycle(
    const std::vector<bool>& pi_values,
    const std::vector<bool>& ff_q_values) const {
  const FlatNetlistView& view = *context_->view;
  CWSP_REQUIRE(pi_values.size() == view.num_primary_inputs());
  CWSP_REQUIRE(ff_q_values.size() == view.num_flip_flops());

  StimulusKey key;
  const std::size_t bits = pi_values.size() + ff_q_values.size();
  key.words.assign((bits + 63) / 64, 0);
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    if (pi_values[i]) key.words[i / 64] |= 1ull << (i % 64);
  }
  for (std::size_t j = 0; j < ff_q_values.size(); ++j) {
    const std::size_t bit = pi_values.size() + j;
    if (ff_q_values[j]) key.words[bit / 64] |= 1ull << (bit % 64);
  }

  const auto it = golden_cache_.find(key);
  if (it != golden_cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  if (golden_cache_.size() >= golden_cache_capacity_) golden_cache_.clear();

  // Single table-driven logic pass over the flat arrays.
  GoldenCycle golden;
  golden.net_values.assign(view.num_nets(), 0);
  for (std::size_t n = 0; n < view.num_nets(); ++n) {
    switch (view.source_kind(n)) {
      case FlatNetlistView::SourceKind::kPrimaryInput:
        golden.net_values[n] = pi_values[view.source_index(n)] ? 1 : 0;
        break;
      case FlatNetlistView::SourceKind::kFlipFlop:
        golden.net_values[n] = ff_q_values[view.source_index(n)] ? 1 : 0;
        break;
      case FlatNetlistView::SourceKind::kConstant:
        golden.net_values[n] = static_cast<unsigned char>(view.source_index(n));
        break;
      default:
        break;
    }
  }
  for (std::uint32_t g : view.topo_order()) {
    const std::uint32_t* in = view.gate_inputs_begin(g);
    const std::uint32_t arity = view.gate_num_inputs(g);
    unsigned bits_in = 0;
    for (std::uint32_t i = 0; i < arity; ++i) {
      if (golden.net_values[in[i]] != 0) bits_in |= 1u << i;
    }
    golden.net_values[view.gate_output(g)] =
        (view.gate_truth(g) >> bits_in) & 1u;
  }
  golden.ff_d.reserve(view.num_flip_flops());
  for (std::size_t f = 0; f < view.num_flip_flops(); ++f) {
    golden.ff_d.push_back(golden.net_values[view.ff_d_net(f)] != 0);
  }
  golden.po.reserve(view.po_nets().size());
  for (std::uint32_t po : view.po_nets()) {
    golden.po.push_back(golden.net_values[po] != 0);
  }
  return golden_cache_.emplace(std::move(key), std::move(golden))
      .first->second;
}

void CompiledEventSim::propagate_cone(const GoldenCycle& golden,
                                      const set::Strike& strike) const {
  const FlatNetlistView& view = *context_->view;
  const std::vector<double>& delays = *context_->gate_delay_ps;
  CWSP_REQUIRE(strike.node.valid() && strike.node.index() < view.num_nets());

  if (wave_.size() != view.num_nets()) {
    wave_.resize(view.num_nets());
    touched_.assign(view.num_nets(), 0);
    touched_list_.clear();
  }
  // Wipe the previous propagation lazily (keeps buffer capacity, and
  // leaves the scratch consistent even if the last run threw).
  for (std::uint32_t n : touched_list_) touched_[n] = 0;
  touched_list_.clear();

  auto touch = [&](std::uint32_t n) {
    touched_[n] = 1;
    touched_list_.push_back(n);
  };

  // Seed the struck net: its golden constant with the strike pulse
  // XOR-ed in. (The struck net's own driver can never sit inside the
  // cone — that would be a combinational cycle — so this is the only
  // place the pulse enters.)
  const std::uint32_t struck = strike.node.value();
  wave_[struck].reset(golden.net_values[struck] != 0);
  wave_[struck].xor_pulse(strike.start.value(),
                          strike.start.value() + strike.width.value());
  touch(struck);

  for (std::uint32_t g : view.cone_of(strike.node)) {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      throw CancelledError("event simulation cancelled");
    }
    const std::uint32_t* in = view.gate_inputs_begin(g);
    const std::uint32_t arity = view.gate_num_inputs(g);
    const std::uint16_t truth = view.gate_truth(g);

    // Union of input event times (untouched inputs are golden constants
    // and contribute none).
    times_.clear();
    for (std::uint32_t i = 0; i < arity; ++i) {
      if (touched_[in[i]] != 0) {
        const auto& t = wave_[in[i]].transitions();
        times_.insert(times_.end(), t.begin(), t.end());
      }
    }
    std::sort(times_.begin(), times_.end());
    times_.erase(std::unique(times_.begin(), times_.end()), times_.end());

    auto input_bit_at = [&](std::uint32_t i, double t) {
      return touched_[in[i]] != 0 ? wave_[in[i]].value_at(t)
                                  : golden.net_values[in[i]] != 0;
    };

    unsigned init_bits = 0;
    for (std::uint32_t i = 0; i < arity; ++i) {
      const bool v = touched_[in[i]] != 0 ? wave_[in[i]].initial()
                                          : golden.net_values[in[i]] != 0;
      if (v) init_bits |= 1u << i;
    }

    const std::uint32_t out_net = view.gate_output(g);
    DigitalWaveform& out = wave_[out_net];
    out.reset(((truth >> init_bits) & 1u) != 0);
    const double delay = delays[g];
    bool current = out.initial();
    for (double t : times_) {
      unsigned bits_in = 0;
      for (std::uint32_t i = 0; i < arity; ++i) {
        if (input_bit_at(i, t)) bits_in |= 1u << i;
      }
      const bool v = ((truth >> bits_in) & 1u) != 0;
      if (v != current) {
        out.push_transition(t + delay);
        current = v;
      }
    }
    out.inertial_filter(view.gate_inertial_delay_ps(g));
    touch(out_net);
  }
}

CycleResult CompiledEventSim::simulate_cycle(
    const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
    Picoseconds capture_time, const std::optional<set::Strike>& strike) const {
  const FlatNetlistView& view = *context_->view;
  const GoldenCycle& golden = golden_cycle(pi_values, ff_q_values);

  if (!strike.has_value()) {
    // All sources are static, so the struck run degenerates to golden:
    // every waveform is constant, nothing toggles, nothing reaches an
    // endpoint.
    CycleResult result;
    result.golden_d = golden.ff_d;
    result.golden_po = golden.po;
    result.latched_d = golden.ff_d;
    result.aperture_violation.assign(view.num_flip_flops(), false);
    result.struck_po = golden.po;
    return result;
  }

  return resolve_strike(golden, capture_time, *strike);
}

CycleResult CompiledEventSim::resolve_strike(const GoldenCycle& golden,
                                             Picoseconds capture_time,
                                             const set::Strike& strike) const {
  const FlatNetlistView& view = *context_->view;
  CWSP_REQUIRE(golden.net_values.size() == view.num_nets());

  CycleResult result;
  result.golden_d = golden.ff_d;
  result.golden_po = golden.po;

  propagate_cone(golden, strike);

  const Netlist& nl = view.netlist();
  const double t_capture = capture_time.value();
  const double setup = nl.library().regular_ff().setup.value();
  const double hold = nl.library().regular_ff().hold.value();

  result.latched_d.reserve(view.num_flip_flops());
  result.aperture_violation.reserve(view.num_flip_flops());
  for (std::size_t f = 0; f < view.num_flip_flops(); ++f) {
    const std::uint32_t d = view.ff_d_net(f);
    if (touched_[d] != 0) {
      const DigitalWaveform& w = wave_[d];
      result.latched_d.push_back(w.value_at(t_capture));
      result.aperture_violation.push_back(
          w.has_transition_in(t_capture - setup, t_capture + hold));
      if (!w.is_constant()) result.glitch_reached_endpoint = true;
    } else {
      result.latched_d.push_back(golden.ff_d[f]);
      result.aperture_violation.push_back(false);
    }
  }
  result.struck_po.reserve(view.po_nets().size());
  for (std::size_t p = 0; p < view.po_nets().size(); ++p) {
    const std::uint32_t po = view.po_nets()[p];
    if (touched_[po] != 0) {
      result.struck_po.push_back(wave_[po].value_at(t_capture));
      if (!wave_[po].is_constant()) result.glitch_reached_endpoint = true;
    } else {
      result.struck_po.push_back(golden.po[p]);
    }
  }
  return result;
}

DigitalWaveform CompiledEventSim::net_waveform(
    const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
    const std::optional<set::Strike>& strike, NetId net) const {
  const FlatNetlistView& view = *context_->view;
  CWSP_REQUIRE(net.valid() && net.index() < view.num_nets());
  const GoldenCycle& golden = golden_cycle(pi_values, ff_q_values);
  if (strike.has_value()) {
    propagate_cone(golden, *strike);
    if (touched_[net.index()] != 0) return wave_[net.index()];
  }
  return DigitalWaveform(golden.net_values[net.index()] != 0);
}

// --------------------------------------------------------------------
// LogicSim64

LogicSim64::LogicSim64(const Netlist& netlist)
    : LogicSim64(FlatNetlistView::build(netlist)) {}

LogicSim64::LogicSim64(std::shared_ptr<const FlatNetlistView> view)
    : view_(std::move(view)) {
  CWSP_REQUIRE(view_ != nullptr);
  net_words_.assign(view_->num_nets(), 0);
  pi_words_.assign(view_->num_primary_inputs(), 0);
  ff_words_.assign(view_->num_flip_flops(), 0);
}

void LogicSim64::set_input_word(std::size_t pi, std::uint64_t bits) {
  CWSP_REQUIRE(pi < pi_words_.size());
  pi_words_[pi] = bits;
}

void LogicSim64::set_input_lane(std::size_t pi, std::size_t lane, bool value) {
  CWSP_REQUIRE(pi < pi_words_.size() && lane < 64);
  if (value) {
    pi_words_[pi] |= 1ull << lane;
  } else {
    pi_words_[pi] &= ~(1ull << lane);
  }
}

void LogicSim64::set_ff_word(std::size_t ff, std::uint64_t bits) {
  CWSP_REQUIRE(ff < ff_words_.size());
  ff_words_[ff] = bits;
}

void LogicSim64::set_ff_lane(std::size_t ff, std::size_t lane, bool value) {
  CWSP_REQUIRE(ff < ff_words_.size() && lane < 64);
  if (value) {
    ff_words_[ff] |= 1ull << lane;
  } else {
    ff_words_[ff] &= ~(1ull << lane);
  }
}

void LogicSim64::evaluate() {
  const FlatNetlistView& view = *view_;
  for (std::size_t n = 0; n < view.num_nets(); ++n) {
    switch (view.source_kind(n)) {
      case FlatNetlistView::SourceKind::kPrimaryInput:
        net_words_[n] = pi_words_[view.source_index(n)];
        break;
      case FlatNetlistView::SourceKind::kFlipFlop:
        net_words_[n] = ff_words_[view.source_index(n)];
        break;
      case FlatNetlistView::SourceKind::kConstant:
        net_words_[n] = view.source_index(n) != 0 ? ~0ull : 0ull;
        break;
      default:
        break;
    }
  }
  for (std::uint32_t g : view.topo_order()) {
    const std::uint32_t* in = view.gate_inputs_begin(g);
    const std::uint32_t arity = view.gate_num_inputs(g);
    const std::uint16_t truth = view.gate_truth(g);
    // Sum-of-products over the truth table: each satisfied input
    // assignment contributes the AND of the (possibly complemented)
    // input words. At most 2^arity terms; cells here are 1–4 inputs.
    std::uint64_t out = 0;
    const unsigned combos = 1u << arity;
    for (unsigned a = 0; a < combos; ++a) {
      if (((truth >> a) & 1u) == 0) continue;
      std::uint64_t term = ~0ull;
      for (std::uint32_t i = 0; i < arity; ++i) {
        const std::uint64_t w = net_words_[in[i]];
        term &= ((a >> i) & 1u) != 0 ? w : ~w;
      }
      out |= term;
    }
    net_words_[view.gate_output(g)] = out;
  }
  for (std::uint32_t n : overlay_nets_) overlay_valid_[n] = 0;
  overlay_nets_.clear();
}

void LogicSim64::evaluate_with_flip(NetId site) {
  const FlatNetlistView& view = *view_;
  CWSP_REQUIRE(site.valid() && site.index() < net_words_.size());
  if (overlay_words_.size() != net_words_.size()) {
    overlay_words_.assign(net_words_.size(), 0);
    overlay_valid_.assign(net_words_.size(), 0);
  }
  for (std::uint32_t n : overlay_nets_) overlay_valid_[n] = 0;
  overlay_nets_.clear();

  const std::uint32_t s = static_cast<std::uint32_t>(site.index());
  overlay_words_[s] = ~net_words_[s];
  overlay_valid_[s] = 1;
  overlay_nets_.push_back(s);

  for (std::uint32_t g : view.cone_of(site)) {
    const std::uint32_t* in = view.gate_inputs_begin(g);
    const std::uint32_t arity = view.gate_num_inputs(g);
    const std::uint16_t truth = view.gate_truth(g);
    std::uint64_t out = 0;
    const unsigned combos = 1u << arity;
    for (unsigned a = 0; a < combos; ++a) {
      if (((truth >> a) & 1u) == 0) continue;
      std::uint64_t term = ~0ull;
      for (std::uint32_t i = 0; i < arity; ++i) {
        const std::uint32_t n = in[i];
        const std::uint64_t w =
            overlay_valid_[n] != 0 ? overlay_words_[n] : net_words_[n];
        term &= ((a >> i) & 1u) != 0 ? w : ~w;
      }
      out |= term;
    }
    const std::uint32_t out_net = view.gate_output(g);
    overlay_words_[out_net] = out;
    overlay_valid_[out_net] = 1;
    overlay_nets_.push_back(out_net);
  }
}

std::uint64_t LogicSim64::flip_diff(NetId net) const {
  CWSP_REQUIRE(net.valid() && net.index() < net_words_.size());
  const std::size_t n = net.index();
  if (n >= overlay_valid_.size() || overlay_valid_[n] == 0) return 0;
  return overlay_words_[n] ^ net_words_[n];
}

void LogicSim64::clock() {
  for (std::size_t f = 0; f < ff_words_.size(); ++f) {
    ff_words_[f] = net_words_[view_->ff_d_net(f)];
  }
}

std::uint64_t LogicSim64::value_word(NetId net) const {
  CWSP_REQUIRE(net.valid() && net.index() < net_words_.size());
  return net_words_[net.index()];
}

bool LogicSim64::value(NetId net, std::size_t lane) const {
  CWSP_REQUIRE(lane < 64);
  return (value_word(net) >> lane) & 1u;
}

std::uint64_t LogicSim64::output_word(std::size_t po_index) const {
  CWSP_REQUIRE(po_index < view_->po_nets().size());
  return net_words_[view_->po_nets()[po_index]];
}

std::uint64_t LogicSim64::ff_word(std::size_t ff) const {
  CWSP_REQUIRE(ff < ff_words_.size());
  return ff_words_[ff];
}

}  // namespace cwsp::sim
