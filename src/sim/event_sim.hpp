#pragma once
// Event-driven glitch-propagation simulator for a single clock cycle.
//
// Model: at cycle start all sources (PIs, FF Q outputs, constants) hold
// static values; an optional SET strike inverts one net for a window.
// The resulting pulse propagates through the combinational logic with
// per-gate propagation delays (from STA loads) subject to:
//   * logical masking  — a glitch dies at a gate whose side inputs are
//     controlling,
//   * electrical masking — pulses narrower than a gate's inertial delay
//     are filtered,
//   * latching-window masking — a flip-flop is only corrupted if the
//     pulse is present at (or toggling across) the capture aperture.

#include <optional>
#include <vector>

#include "set/strike_plan.hpp"
#include "sim/cancel.hpp"
#include "sim/digital_waveform.hpp"
#include "sta/sta.hpp"

namespace cwsp::sim {

struct CycleResult {
  /// Per-FF D value with no strike (golden) and with the strike, sampled
  /// at the capture edge.
  std::vector<bool> golden_d;
  std::vector<bool> latched_d;
  /// True where the glitch toggles inside the setup/hold aperture (the
  /// latch may capture either value; pessimistically treated as corrupt
  /// by unprotected-design analyses).
  std::vector<bool> aperture_violation;

  /// Primary-output values at the capture edge (golden / struck).
  std::vector<bool> golden_po;
  std::vector<bool> struck_po;

  /// True if the strike's pulse reached any timing endpoint (FF D pin or
  /// primary output) at all — the pessimistic criterion gate-resizing
  /// approaches use, ignoring latching-window masking.
  bool glitch_reached_endpoint = false;

  [[nodiscard]] bool any_ff_corrupted() const {
    for (std::size_t i = 0; i < latched_d.size(); ++i) {
      if (latched_d[i] != golden_d[i] || aperture_violation[i]) return true;
    }
    return false;
  }
};

class EventSim {
 public:
  /// Precomputes topological order and per-gate delays.
  explicit EventSim(const Netlist& netlist);

  /// Simulates one cycle: sources take `pi_values` / `ff_q_values` at t=0,
  /// flip-flops capture at `capture_time`. The optional strike inverts its
  /// net during [start, start+width).
  [[nodiscard]] CycleResult simulate_cycle(
      const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
      Picoseconds capture_time,
      const std::optional<set::Strike>& strike) const;

  /// The waveform on a given net for the same scenario (for inspection
  /// and tests).
  [[nodiscard]] DigitalWaveform net_waveform(
      const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
      const std::optional<set::Strike>& strike, NetId net) const;

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }

  /// Installs a cooperative cancellation token (nullptr detaches). While
  /// set, propagate() polls it per gate and throws CancelledError once it
  /// is cancelled — the hook campaign timeouts use to interrupt a run.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

 private:
  [[nodiscard]] std::vector<DigitalWaveform> propagate(
      const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
      const std::optional<set::Strike>& strike) const;

  const Netlist* netlist_;
  std::vector<GateId> topo_order_;
  std::vector<double> gate_delay_ps_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace cwsp::sim
