#include "sim/digital_waveform.hpp"

#include <algorithm>

namespace cwsp::sim {

bool DigitalWaveform::value_at(double t_ps) const {
  // Number of toggles at or before t.
  const auto it =
      std::upper_bound(transitions_.begin(), transitions_.end(), t_ps);
  const auto toggles = static_cast<std::size_t>(it - transitions_.begin());
  return (toggles % 2 == 0) ? initial_ : !initial_;
}

void DigitalWaveform::xor_pulse(double t0_ps, double t1_ps) {
  CWSP_REQUIRE(t0_ps <= t1_ps);
  if (t0_ps == t1_ps) return;
  auto toggle_at = [&](double t) {
    const auto it =
        std::lower_bound(transitions_.begin(), transitions_.end(), t);
    if (it != transitions_.end() && *it == t) {
      transitions_.erase(it);  // coincident toggles cancel
    } else {
      transitions_.insert(it, t);
    }
  };
  toggle_at(t0_ps);
  toggle_at(t1_ps);
}

void DigitalWaveform::set_transitions(std::vector<double> transitions) {
  CWSP_REQUIRE(std::is_sorted(transitions.begin(), transitions.end()));
  transitions_ = std::move(transitions);
}

void DigitalWaveform::inertial_filter(double min_width_ps) {
  CWSP_REQUIRE(min_width_ps >= 0.0);
  if (min_width_ps == 0.0) return;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i + 1 < transitions_.size(); ++i) {
      if (transitions_[i + 1] - transitions_[i] < min_width_ps) {
        // The level between these two toggles is too short to propagate.
        transitions_.erase(transitions_.begin() + static_cast<long>(i),
                           transitions_.begin() + static_cast<long>(i + 2));
        changed = true;
        break;
      }
    }
  }
}

bool DigitalWaveform::has_transition_in(double from_ps, double to_ps) const {
  const auto lo =
      std::lower_bound(transitions_.begin(), transitions_.end(), from_ps);
  return lo != transitions_.end() && *lo <= to_ps;
}

}  // namespace cwsp::sim
