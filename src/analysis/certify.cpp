#include "analysis/certify.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "campaign/minimize.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "cwsp/protection_sim.hpp"
#include "cwsp/timing.hpp"
#include "lint/report.hpp"
#include "set/strike_plan.hpp"
#include "sim/strike_lanes.hpp"
#include "sta/sta.hpp"

namespace cwsp::analysis {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-9;
constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
/// Witness-candidate caps: per site overall, and per stimulus batch (so
/// one lucky batch cannot crowd out stimulus diversity).
constexpr std::size_t kMaxCandidatesPerSite = 8;
constexpr std::size_t kMaxCandidatesPerBatch = 2;
/// Visited-pair cap for the post-strike distinguishing search.
constexpr std::size_t kMaxDistinguishPairs = 128;

std::string num(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

/// A flip-flop whose D pin a wide-enough pulse from the site can reach.
struct DangerFF {
  std::size_t ff = 0;
  /// max(δ, electrical threshold): pulses narrower than this are proved
  /// harmless for this endpoint.
  double guard_ps = 0.0;
};

/// A statically sensitized (state, vector, endpoint) triple to try to
/// grow into a confirmed timed escape.
struct Candidate {
  std::size_t state = 0;
  std::vector<bool> vec;
  std::size_t ff = 0;
};

struct DangerSite {
  std::size_t cert_index = 0;
  NetId site;
  SiteWindows windows;
  std::vector<DangerFF> ffs;
  bool ambiguous = false;
  std::uint32_t blocking_gate = GlitchWindow::kNone;
  bool any_sensitized = false;
  std::vector<Candidate> candidates;

  [[nodiscard]] bool candidates_full() const {
    return candidates.size() >= kMaxCandidatesPerSite;
  }
};

/// Reachable flip-flop states from the all-zero reset (ProtectionSim's
/// reset), with parent pointers so any state yields a driving prefix.
struct StateSpace {
  std::vector<std::vector<bool>> states;  // BFS discovery order; [0]=reset
  std::vector<std::size_t> parent;        // kNoIndex for the root
  std::vector<std::vector<bool>> via;     // input vector taken from parent
  bool overflowed = false;
};

/// Deterministic stimulus list for one state (or one distinguish node):
/// all 2^npi vectors when exhaustive, else `count` vectors drawn from a
/// splittable stream so results are independent of evaluation order.
std::vector<std::vector<bool>> stimulus_vectors(std::size_t npi,
                                                bool exhaustive,
                                                std::size_t count,
                                                std::uint64_t seed,
                                                std::uint64_t stream_id) {
  std::vector<std::vector<bool>> out;
  if (exhaustive) {
    const std::size_t total = std::size_t{1} << npi;
    out.reserve(total);
    for (std::size_t v = 0; v < total; ++v) {
      std::vector<bool> vec(npi);
      for (std::size_t p = 0; p < npi; ++p) vec[p] = ((v >> p) & 1u) != 0;
      out.push_back(std::move(vec));
    }
  } else {
    Rng rng = Rng::stream(seed, stream_id);
    out.reserve(count);
    for (std::size_t v = 0; v < count; ++v) {
      std::vector<bool> vec(npi);
      for (std::size_t p = 0; p < npi; ++p) {
        vec[p] = (rng.next_u64() & 1u) != 0;
      }
      out.push_back(std::move(vec));
    }
  }
  return out;
}

/// Loads one FF state (same in every lane) and up to lanes() input
/// vectors into a wide batch.
void load_batch(sim::WideLogicSim& sim, const FlatNetlistView& view,
                const std::vector<bool>& state,
                const std::vector<std::vector<bool>>& vecs, std::size_t base,
                std::size_t count) {
  for (std::size_t f = 0; f < view.num_flip_flops(); ++f) {
    sim.fill_ff(f, state[f]);
  }
  const std::size_t words = sim.words_per_net();
  for (std::size_t p = 0; p < view.num_primary_inputs(); ++p) {
    for (std::size_t w = 0; w < words; ++w) {
      const std::size_t lo = w * 64;
      const std::size_t n =
          count > lo ? std::min<std::size_t>(64, count - lo) : 0;
      std::uint64_t bits = 0;
      for (std::size_t l = 0; l < n; ++l) {
        if (vecs[base + lo + l][p]) bits |= 1ull << l;
      }
      sim.set_input_word(p, w, bits);
    }
  }
}

StateSpace enumerate_states(sim::WideLogicSim& sim,
                            const FlatNetlistView& view,
                            const CertifyOptions& options, std::size_t npi,
                            bool exhaustive, std::size_t vectors_per_state) {
  StateSpace space;
  const std::size_t nff = view.num_flip_flops();
  const std::size_t lanes = sim.lanes();
  const std::size_t words = sim.words_per_net();
  space.states.emplace_back(nff, false);
  space.parent.push_back(kNoIndex);
  space.via.emplace_back();
  std::map<std::vector<bool>, std::size_t> seen;
  seen.emplace(space.states[0], 0);

  for (std::size_t i = 0; i < space.states.size(); ++i) {
    const auto vecs = stimulus_vectors(npi, exhaustive, vectors_per_state,
                                       options.seed, i);
    for (std::size_t base = 0; base < vecs.size(); base += lanes) {
      const std::size_t count =
          std::min<std::size_t>(lanes, vecs.size() - base);
      load_batch(sim, view, space.states[i], vecs, base, count);
      sim.evaluate();
      std::vector<std::uint64_t> d_words(nff * words);
      for (std::size_t f = 0; f < nff; ++f) {
        for (std::size_t w = 0; w < words; ++w) {
          d_words[f * words + w] =
              sim.value_word(NetId{view.ff_d_net(f)}, w);
        }
      }
      // Lane order == vector order, so discovery order (and therefore
      // state indices, parents and the overflow point) is identical at
      // every lane width.
      for (std::size_t l = 0; l < count; ++l) {
        std::vector<bool> next(nff);
        for (std::size_t f = 0; f < nff; ++f) {
          next[f] =
              ((d_words[f * words + l / 64] >> (l % 64)) & 1u) != 0;
        }
        if (seen.find(next) != seen.end()) continue;
        if (space.states.size() >= options.max_states) {
          space.overflowed = true;
          continue;
        }
        seen.emplace(next, space.states.size());
        space.states.push_back(std::move(next));
        space.parent.push_back(i);
        space.via.push_back(vecs[base + l]);
      }
    }
  }
  return space;
}

/// Input prefix that drives the design from reset into `state`.
std::vector<std::vector<bool>> prefix_to(const StateSpace& space,
                                         std::size_t state) {
  std::vector<std::vector<bool>> inputs;
  std::size_t s = state;
  while (space.parent[s] != kNoIndex) {
    inputs.push_back(space.via[s]);
    s = space.parent[s];
  }
  std::reverse(inputs.begin(), inputs.end());
  return inputs;
}

/// Post-capture distinguishing search. After a width>δ capture the check
/// word tracks the corrupted trajectory, so the corruption stays silent
/// until some later input makes the corrupt and golden states commit
/// different primary outputs. BFS over (golden, corrupt) state pairs up
/// to the confirm horizon; returns the input vectors to append after the
/// strike cycle, or nullopt if the pair space never splits at a PO.
std::optional<std::vector<std::vector<bool>>> distinguish(
    sim::WideLogicSim& sim, const FlatNetlistView& view,
    const std::vector<bool>& golden, const std::vector<bool>& corrupt,
    const CertifyOptions& options, std::size_t npi, bool exhaustive,
    std::size_t vectors_per_state) {
  if (golden == corrupt) return std::nullopt;
  const std::size_t nff = view.num_flip_flops();
  const std::size_t lanes = sim.lanes();
  const std::size_t words = sim.words_per_net();
  const auto& po_nets = view.po_nets();

  struct PairNode {
    std::vector<bool> g;
    std::vector<bool> c;
    std::size_t depth = 0;
    std::size_t parent = kNoIndex;
    std::vector<bool> via;
  };
  auto key_of = [nff](const std::vector<bool>& g, const std::vector<bool>& c) {
    std::vector<bool> k;
    k.reserve(2 * nff);
    k.insert(k.end(), g.begin(), g.end());
    k.insert(k.end(), c.begin(), c.end());
    return k;
  };

  std::vector<PairNode> nodes;
  std::set<std::vector<bool>> visited;
  nodes.push_back(PairNode{golden, corrupt, 0, kNoIndex, {}});
  visited.insert(key_of(golden, corrupt));

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    // Stream ids are decorrelated from the reachable-state sweep streams.
    const auto vecs =
        stimulus_vectors(npi, exhaustive, vectors_per_state,
                         options.seed ^ 0xd15717c400000000ull, i);
    for (std::size_t base = 0; base < vecs.size(); base += lanes) {
      const std::size_t count =
          std::min<std::size_t>(lanes, vecs.size() - base);

      load_batch(sim, view, nodes[i].g, vecs, base, count);
      sim.evaluate();
      std::vector<std::uint64_t> g_po(po_nets.size() * words);
      for (std::size_t o = 0; o < po_nets.size(); ++o) {
        for (std::size_t w = 0; w < words; ++w) {
          g_po[o * words + w] = sim.value_word(NetId{po_nets[o]}, w);
        }
      }
      std::vector<std::uint64_t> g_d(nff * words);
      for (std::size_t f = 0; f < nff; ++f) {
        for (std::size_t w = 0; w < words; ++w) {
          g_d[f * words + w] = sim.value_word(NetId{view.ff_d_net(f)}, w);
        }
      }

      load_batch(sim, view, nodes[i].c, vecs, base, count);
      sim.evaluate();
      std::vector<std::uint64_t> c_po(po_nets.size() * words);
      for (std::size_t o = 0; o < po_nets.size(); ++o) {
        for (std::size_t w = 0; w < words; ++w) {
          c_po[o * words + w] = sim.value_word(NetId{po_nets[o]}, w);
        }
      }
      std::vector<std::uint64_t> c_d(nff * words);
      for (std::size_t f = 0; f < nff; ++f) {
        for (std::size_t w = 0; w < words; ++w) {
          c_d[f * words + w] = sim.value_word(NetId{view.ff_d_net(f)}, w);
        }
      }

      // Consume the wide batch per 64-lane subword in ascending order:
      // the split point and the expansion sequence reproduce the
      // 64-wide search exactly, so the returned chain is byte-identical
      // at every lane width.
      for (std::size_t w = 0; w * 64 < count; ++w) {
        const std::size_t sub = std::min<std::size_t>(64, count - w * 64);
        const std::uint64_t mask =
            sub == 64 ? ~0ull : ((1ull << sub) - 1ull);
        std::uint64_t po_diff = 0;
        for (std::size_t o = 0; o < po_nets.size(); ++o) {
          po_diff |= c_po[o * words + w] ^ g_po[o * words + w];
        }
        po_diff &= mask;
        if (po_diff != 0) {
          const auto lane =
              w * 64 + static_cast<std::size_t>(std::countr_zero(po_diff));
          std::vector<std::vector<bool>> chain;
          chain.push_back(vecs[base + lane]);
          std::size_t n = i;
          while (nodes[n].parent != kNoIndex) {
            chain.push_back(nodes[n].via);
            n = nodes[n].parent;
          }
          std::reverse(chain.begin(), chain.end());
          return chain;
        }

        if (nodes[i].depth + 1 >= options.confirm_horizon) continue;
        for (std::size_t l = 0;
             l < sub && nodes.size() < kMaxDistinguishPairs; ++l) {
          std::vector<bool> ng(nff);
          std::vector<bool> nc(nff);
          for (std::size_t f = 0; f < nff; ++f) {
            ng[f] = ((g_d[f * words + w] >> l) & 1u) != 0;
            nc[f] = ((c_d[f * words + w] >> l) & 1u) != 0;
          }
          if (ng == nc) continue;  // converged: permanently silent
          if (!visited.insert(key_of(ng, nc)).second) continue;
          nodes.push_back(PairNode{std::move(ng), std::move(nc),
                                   nodes[i].depth + 1, i,
                                   vecs[base + w * 64 + l]});
        }
      }
    }
  }
  return std::nullopt;
}

/// Strike-start candidates that land the pulse across the capture edge at
/// `period` for some path delay inside the endpoint's arrival window.
std::vector<double> start_candidates(const GlitchWindow& wnd, double width,
                                     double period) {
  const double e = wnd.earliest_ps;
  const double l = wnd.latest_ps;
  const double raw[] = {
      period - e - 0.5 * width,        // pulse centred via the fastest path
      period - l - 0.5 * width,        // ... via the slowest path
      period - 0.5 * (e + l) - 0.5 * width,
      period - e - width + 1.0,        // trailing edge just after capture
      period - e - 1.0,                // leading edge just before capture
  };
  std::vector<double> out;
  for (double s : raw) {
    s = std::min(s, period - 1.0);
    s = std::max(s, 0.0);
    bool dup = false;
    for (double t : out) {
      if (std::abs(t - s) < 0.25) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(s);
  }
  return out;
}

}  // namespace

const char* to_string(SiteVerdict verdict) {
  switch (verdict) {
    case SiteVerdict::kProvedCovered:
      return "proved-covered";
    case SiteVerdict::kProvedEscape:
      return "proved-escape";
    case SiteVerdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

const char* to_string(CoveredReason reason) {
  switch (reason) {
    case CoveredReason::kNoPath:
      return "no-path";
    case CoveredReason::kCwspEnvelope:
      return "cwsp-envelope";
    case CoveredReason::kElectricalMasking:
      return "electrical-masking";
    case CoveredReason::kLogicalMasking:
      return "logical-masking";
  }
  return "no-path";
}

std::size_t CertifyResult::covered_count() const {
  std::size_t n = 0;
  for (const auto& s : sites) {
    if (s.verdict == SiteVerdict::kProvedCovered) ++n;
  }
  return n;
}

std::size_t CertifyResult::escape_count() const {
  std::size_t n = 0;
  for (const auto& s : sites) {
    if (s.verdict == SiteVerdict::kProvedEscape) ++n;
  }
  return n;
}

std::size_t CertifyResult::unknown_count() const {
  std::size_t n = 0;
  for (const auto& s : sites) {
    if (s.verdict == SiteVerdict::kUnknown) ++n;
  }
  return n;
}

std::size_t CertifyResult::fallback_count() const {
  std::size_t n = 0;
  for (const auto& s : sites) {
    if (s.used_fallback) ++n;
  }
  return n;
}

double CertifyResult::min_margin_ps() const {
  double best = kInf;
  for (const auto& s : sites) {
    if (s.verdict != SiteVerdict::kProvedCovered) continue;
    if (s.margin_unbounded) continue;
    best = std::min(best, s.margin_ps);
  }
  return best == kInf ? -1.0 : best;
}

CertifyResult certify_design(
    const Netlist& netlist, const core::ProtectionParams& params,
    Picoseconds clock_period, const CertifyOptions& options,
    std::shared_ptr<const sim::CompiledKernelContext> context) {
  if (context == nullptr) context = sim::CompiledKernelContext::build(netlist);
  const FlatNetlistView& view = *context->view;
  const std::vector<double>& delays = *context->gate_delay_ps;

  CertifyResult result;
  result.design = netlist.name();
  result.params = params;
  result.clock_period = clock_period;
  result.seed = options.seed;
  const double delta = params.delta.value();
  const double envelope =
      options.envelope_ps > 0.0 ? options.envelope_ps : delta;
  result.envelope_ps = envelope;

  const TimingResult sta = run_sta(netlist);
  result.physical_envelope_ps =
      core::effective_protected_glitch(
          core::DesignTiming{sta.dmax, sta.dmin}, params,
          Picoseconds(options.clock_skew_ps))
          .value();

  const std::vector<NetId> sites = set::strike_sites(netlist);
  result.sites.resize(sites.size());
  const std::size_t nff = view.num_flip_flops();

  // ---------------------------------------------------- Phase A: windows
  std::vector<DangerSite> danger;
  for (std::size_t si = 0; si < sites.size(); ++si) {
    SiteCertificate& cert = result.sites[si];
    cert.site = sites[si];
    SiteWindows wnd = propagate_windows(view, delays, sites[si]);

    bool any_reach = false;
    double guard_min = kInf;
    std::size_t guard_min_ff = 0;
    std::vector<DangerFF> dangerous;
    for (std::size_t f = 0; f < nff; ++f) {
      const GlitchWindow& w = wnd.at(NetId{view.ff_d_net(f)});
      if (!w.reachable) continue;
      any_reach = true;
      const double guard = std::max(delta, w.width_threshold_ps);
      if (guard < guard_min) {
        guard_min = guard;
        guard_min_ff = f;
      }
      if (guard + kTimeEps < envelope) dangerous.push_back({f, guard});
    }

    if (!any_reach) {
      cert.verdict = SiteVerdict::kProvedCovered;
      cert.reason = CoveredReason::kNoPath;
      cert.margin_unbounded = true;
      cert.note = "no flip-flop D pin is reachable from this site";
      continue;
    }
    if (dangerous.empty()) {
      cert.verdict = SiteVerdict::kProvedCovered;
      cert.reason = delta + kTimeEps >= envelope
                        ? CoveredReason::kCwspEnvelope
                        : CoveredReason::kElectricalMasking;
      cert.margin_ps = guard_min - envelope;
      cert.limiting_ff = static_cast<std::int64_t>(guard_min_ff);
      cert.path = witness_path(wnd, NetId{view.ff_d_net(guard_min_ff)});
      cert.note = cert.reason == CoveredReason::kCwspEnvelope
                      ? "the protocol repairs every pulse in the envelope"
                      : "every reaching path filters the envelope out";
      continue;
    }

    std::sort(dangerous.begin(), dangerous.end(),
              [](const DangerFF& a, const DangerFF& b) {
                if (a.guard_ps != b.guard_ps) return a.guard_ps < b.guard_ps;
                return a.ff < b.ff;
              });
    DangerSite ds;
    ds.cert_index = si;
    ds.site = sites[si];
    ds.ffs = std::move(dangerous);
    for (const DangerFF& df : ds.ffs) {
      const GlitchWindow& w = wnd.at(NetId{view.ff_d_net(df.ff)});
      if (w.ambiguous) {
        ds.ambiguous = true;
        if (ds.blocking_gate == GlitchWindow::kNone) {
          ds.blocking_gate = w.merge_gate;
        }
      }
    }
    ds.windows = std::move(wnd);
    danger.push_back(std::move(ds));
  }

  if (danger.empty()) return result;

  // The protocol simulator requires Eq. 6; a period below it means the
  // architecture cannot even be instantiated for these params, so the
  // fallback has no oracle to confirm against.
  const bool can_sim =
      clock_period.value() + kTimeEps >=
      core::min_clock_period_for_delta(params).value();
  if (!can_sim) {
    for (const DangerSite& ds : danger) {
      SiteCertificate& cert = result.sites[ds.cert_index];
      cert.verdict = SiteVerdict::kUnknown;
      cert.blocking_gate = ds.blocking_gate;
      cert.note =
          "clock period is below the Eq. 6 minimum for this delta; "
          "simulation fallback skipped";
    }
    return result;
  }

  // ------------------------------------------- Phase B: targeted sweeps
  const std::size_t npi = view.num_primary_inputs();
  const bool exhaustive = npi <= options.exhaustive_pi_limit;
  const std::size_t vectors_per_state =
      exhaustive ? (std::size_t{1} << npi) : options.vectors_per_state;

  // Lane width of the sweep kernel. Auto (0) caps the dispatched width
  // at the per-state vector count: lanes the stimulus cannot fill only
  // widen every topo sweep without resolving more vectors.
  std::size_t lane_width = options.lane_width;
  if (lane_width == 0) {
    const std::size_t dispatched = sim::WideLogicSim::dispatched_isa().lanes;
    lane_width = 64;
    for (std::size_t w : sim::WideLogicSim::supported_lane_widths()) {
      if (w <= dispatched && w <= vectors_per_state) {
        lane_width = std::max(lane_width, w);
      }
    }
  }

  sim::WideLogicSim logic(context->view, lane_width);
  StateSpace space = enumerate_states(logic, view, options, npi, exhaustive,
                                      vectors_per_state);
  result.swept_states = space.states.size();
  result.vectors_exhaustive = exhaustive;
  result.states_complete = exhaustive && !space.overflowed;

  const std::size_t lanes = logic.lanes();
  const std::size_t words = logic.words_per_net();
  std::vector<DangerSite*> active;
  active.reserve(danger.size());
  for (DangerSite& ds : danger) active.push_back(&ds);
  for (std::size_t i = 0; i < space.states.size() && !active.empty(); ++i) {
    const auto vecs = stimulus_vectors(npi, exhaustive, vectors_per_state,
                                       options.seed, i);
    for (std::size_t base = 0; base < vecs.size() && !active.empty();
         base += lanes) {
      const std::size_t count =
          std::min<std::size_t>(lanes, vecs.size() - base);
      load_batch(logic, view, space.states[i], vecs, base, count);
      logic.evaluate();
      for (auto it = active.begin(); it != active.end();) {
        DangerSite& ds = **it;
        logic.evaluate_with_flip(ds.site);
        // One wide evaluation, consumed per 64-lane subword with the
        // per-batch caps of the 64-wide sweep: candidate identity and
        // order are byte-identical at every lane width.
        for (std::size_t w = 0; w * 64 < count && !ds.candidates_full();
             ++w) {
          const std::size_t sub = std::min<std::size_t>(64, count - w * 64);
          const std::uint64_t mask =
              sub == 64 ? ~0ull : ((1ull << sub) - 1ull);
          std::size_t added = 0;
          for (const DangerFF& df : ds.ffs) {
            std::uint64_t diff =
                logic.flip_diff_word(NetId{view.ff_d_net(df.ff)}, w) & mask;
            if (diff == 0) continue;
            ds.any_sensitized = true;
            while (diff != 0 && !ds.candidates_full() &&
                   added < kMaxCandidatesPerBatch) {
              const auto l = static_cast<std::size_t>(std::countr_zero(diff));
              diff &= diff - 1;
              ds.candidates.push_back(
                  Candidate{i, vecs[base + w * 64 + l], df.ff});
              ++added;
            }
            if (ds.candidates_full() || added >= kMaxCandidatesPerBatch) {
              break;
            }
          }
        }
        if (ds.candidates_full()) {
          it = active.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // -------------------------------------- Phase C: confirm or conclude
  const core::ProtectionSim psim(netlist, params, clock_period, {}, context);
  sim::CompiledEventSim event_sim(netlist, context);

  for (DangerSite& ds : danger) {
    SiteCertificate& cert = result.sites[ds.cert_index];
    cert.used_fallback = true;

    if (!ds.any_sensitized) {
      if (!ds.ambiguous && result.states_complete &&
          result.vectors_exhaustive) {
        // Reconvergence-free endpoints: static sensitization coincides
        // with dynamic disturbance, so an exhaustive miss is a proof.
        cert.verdict = SiteVerdict::kProvedCovered;
        cert.reason = CoveredReason::kLogicalMasking;
        cert.margin_unbounded = true;
        cert.note =
            "exhaustive reachable-state sweep: no stimulus sensitizes "
            "the site into any flip-flop";
      } else {
        cert.verdict = SiteVerdict::kUnknown;
        cert.blocking_gate = ds.blocking_gate;
        cert.note =
            ds.ambiguous
                ? "reconvergent fanout: static sensitization is "
                  "inconclusive and no escape was found"
                : "state/vector budget exhausted before the sweep "
                  "covered the reachable space";
      }
      continue;
    }

    bool confirmed = false;
    bool budget_out = false;
    std::size_t attempts = 0;
    for (const Candidate& cand : ds.candidates) {
      if (confirmed || budget_out) break;
      const GlitchWindow& wnd = ds.windows.at(NetId{view.ff_d_net(cand.ff)});
      for (double start :
           start_candidates(wnd, envelope, clock_period.value())) {
        if (attempts >= options.max_confirm_attempts) {
          budget_out = true;
          break;
        }
        ++attempts;
        set::Strike strike;
        strike.node = ds.site;
        strike.start = Picoseconds(start);
        strike.width = Picoseconds(envelope);

        const sim::CycleResult cr = event_sim.simulate_cycle(
            cand.vec, space.states[cand.state], clock_period, strike);
        std::size_t corrupted_ff = nff;
        for (std::size_t f = 0; f < nff; ++f) {
          if (cr.latched_d[f] != cr.golden_d[f]) {
            corrupted_ff = f;
            break;
          }
        }
        if (corrupted_ff == nff) continue;

        const auto follow =
            distinguish(logic, view, cr.golden_d, cr.latched_d, options, npi,
                        exhaustive, vectors_per_state);
        if (!follow.has_value()) continue;

        std::vector<std::vector<bool>> inputs = prefix_to(space, cand.state);
        const std::size_t strike_cycle = inputs.size();
        inputs.push_back(cand.vec);
        inputs.insert(inputs.end(), follow->begin(), follow->end());

        core::ScheduledStrike scheduled;
        scheduled.cycle = strike_cycle;
        scheduled.target = core::StrikeTarget::kFunctional;
        scheduled.strike = strike;
        if (attempts >= options.max_confirm_attempts) {
          budget_out = true;
          break;
        }
        ++attempts;
        if (psim.run(inputs, {scheduled}).recovered()) continue;

        cert.verdict = SiteVerdict::kProvedEscape;
        cert.limiting_ff = static_cast<std::int64_t>(corrupted_ff);
        cert.path =
            witness_path(ds.windows, NetId{view.ff_d_net(corrupted_ff)});
        cert.witness_cycle = strike_cycle;
        cert.witness_start_ps = start;
        cert.witness_width_ps = envelope;
        cert.witness_inputs = inputs;
        cert.note = "confirmed by protection-protocol replay";

        if (options.minimize_witnesses || !options.artifact_dir.empty()) {
          set::PlannedStrike planned;
          planned.index = ds.site.index();
          planned.klass = envelope > delta + kTimeEps
                              ? set::StrikeClass::kOutOfEnvelope
                              : set::StrikeClass::kFunctional;
          planned.cycle = strike_cycle;
          planned.strike = strike;

          campaign::EscapeRepro repro;
          if (options.minimize_witnesses) {
            repro = campaign::minimize_escape(psim, planned, inputs);
            cert.witness_cycle = repro.minimized.cycle;
            cert.witness_start_ps = repro.minimized.strike.start.value();
            cert.witness_width_ps = repro.minimized.strike.width.value();
            cert.witness_inputs = repro.inputs;
          } else {
            repro.strike_index = planned.index;
            repro.minimized = planned;
            repro.original_width = planned.strike.width;
            repro.original_start = planned.strike.start;
            repro.inputs = inputs;
            repro.params = params;
            repro.clock_period = clock_period;
          }
          if (!options.artifact_dir.empty()) {
            campaign::write_repro(repro, netlist, options.artifact_dir);
            cert.repro_spec_path = repro.spec_path;
          }
        }
        confirmed = true;
        break;
      }
    }

    if (!confirmed) {
      cert.verdict = SiteVerdict::kUnknown;
      cert.blocking_gate = ds.blocking_gate;
      cert.note = budget_out
                      ? "confirmation budget exhausted: statically "
                        "sensitizable, but no timed escape was confirmed"
                      : "statically sensitizable, but no timed escape was "
                        "confirmed within the search windows";
    }
  }
  return result;
}

namespace {

std::string net_name(const Netlist& netlist, NetId net) {
  return net.valid() ? netlist.net(net).name : std::string("?");
}

std::string path_text(const Netlist& netlist, const std::vector<NetId>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out += " > ";
    out += net_name(netlist, path[i]);
  }
  return out;
}

}  // namespace

std::string format_certify_text(const CertifyResult& result,
                                const Netlist& netlist) {
  std::ostringstream os;
  os << "certify " << result.design << "\n";
  os << "  delta_ps " << num(result.params.delta.value()) << "  envelope_ps "
     << num(result.envelope_ps) << "  physical_envelope_ps "
     << num(result.physical_envelope_ps) << "\n";
  os << "  clock_period_ps " << num(result.clock_period.value()) << "  seed "
     << result.seed << "\n";
  os << "  sites " << result.sites.size() << ": covered "
     << result.covered_count() << ", escapes " << result.escape_count()
     << ", unknown " << result.unknown_count() << " (fallback "
     << result.fallback_count() << ")\n";
  if (result.swept_states > 0) {
    os << "  sweep: states " << result.swept_states << " ("
       << (result.states_complete ? "complete" : "capped") << "), vectors "
       << (result.vectors_exhaustive ? "exhaustive" : "sampled") << "\n";
  }
  const double min_margin = result.min_margin_ps();
  if (min_margin >= 0.0) {
    os << "  min_finite_margin_ps " << num(min_margin) << "\n";
  }
  for (const SiteCertificate& cert : result.sites) {
    os << "  " << net_name(netlist, cert.site) << ": "
       << to_string(cert.verdict);
    if (cert.verdict == SiteVerdict::kProvedCovered) {
      os << " " << to_string(cert.reason);
      if (cert.margin_unbounded) {
        os << " margin unbounded";
      } else {
        os << " margin " << num(cert.margin_ps);
      }
      if (cert.limiting_ff >= 0) {
        os << " ff "
           << netlist
                  .flip_flop(FlipFlopId{
                      static_cast<std::uint64_t>(cert.limiting_ff)})
                  .name;
      }
    } else if (cert.verdict == SiteVerdict::kProvedEscape) {
      os << " ff "
         << netlist
                .flip_flop(
                    FlipFlopId{static_cast<std::uint64_t>(cert.limiting_ff)})
                .name
         << " cycle " << cert.witness_cycle << " start "
         << num(cert.witness_start_ps) << " width "
         << num(cert.witness_width_ps);
      if (!cert.repro_spec_path.empty()) {
        os << " repro " << cert.repro_spec_path;
      }
    } else {
      if (cert.blocking_gate != GlitchWindow::kNone) {
        os << " blocking-gate "
           << netlist.gate(GateId{cert.blocking_gate}).name;
      }
    }
    if (!cert.path.empty() &&
        cert.verdict != SiteVerdict::kProvedCovered) {
      os << " path " << path_text(netlist, cert.path);
    }
    if (!cert.note.empty()) os << " -- " << cert.note;
    os << "\n";
  }
  return os.str();
}

std::string format_certify_json(const CertifyResult& result,
                                const Netlist& netlist) {
  using lint::json_escape;
  std::ostringstream os;
  os << "{\"schema\":\"cwsp-certify-report-v1\",";
  os << "\"design\":\"" << json_escape(result.design) << "\",";
  os << "\"delta_ps\":" << num(result.params.delta.value()) << ",";
  os << "\"envelope_ps\":" << num(result.envelope_ps) << ",";
  os << "\"physical_envelope_ps\":" << num(result.physical_envelope_ps)
     << ",";
  os << "\"clock_period_ps\":" << num(result.clock_period.value()) << ",";
  os << "\"seed\":" << result.seed << ",";
  os << "\"counts\":{\"sites\":" << result.sites.size()
     << ",\"covered\":" << result.covered_count()
     << ",\"escapes\":" << result.escape_count()
     << ",\"unknown\":" << result.unknown_count()
     << ",\"fallback\":" << result.fallback_count() << "},";
  os << "\"sweep\":{\"states\":" << result.swept_states
     << ",\"states_complete\":"
     << (result.states_complete ? "true" : "false")
     << ",\"vectors_exhaustive\":"
     << (result.vectors_exhaustive ? "true" : "false") << "},";
  os << "\"sites\":[";
  for (std::size_t i = 0; i < result.sites.size(); ++i) {
    const SiteCertificate& cert = result.sites[i];
    if (i != 0) os << ",";
    os << "{\"site\":\"" << json_escape(net_name(netlist, cert.site))
       << "\",";
    os << "\"verdict\":\"" << to_string(cert.verdict) << "\"";
    if (cert.verdict == SiteVerdict::kProvedCovered) {
      os << ",\"reason\":\"" << to_string(cert.reason) << "\"";
      if (cert.margin_unbounded) {
        os << ",\"margin_unbounded\":true";
      } else {
        os << ",\"margin_ps\":" << num(cert.margin_ps);
      }
    }
    if (cert.limiting_ff >= 0) {
      os << ",\"limiting_ff\":\""
         << json_escape(
                netlist
                    .flip_flop(FlipFlopId{
                        static_cast<std::uint64_t>(cert.limiting_ff)})
                    .name)
         << "\"";
    }
    if (!cert.path.empty()) {
      os << ",\"path\":[";
      for (std::size_t p = 0; p < cert.path.size(); ++p) {
        if (p != 0) os << ",";
        os << "\"" << json_escape(net_name(netlist, cert.path[p])) << "\"";
      }
      os << "]";
    }
    if (cert.verdict == SiteVerdict::kUnknown &&
        cert.blocking_gate != GlitchWindow::kNone) {
      os << ",\"blocking_gate\":\""
         << json_escape(netlist.gate(GateId{cert.blocking_gate}).name)
         << "\"";
    }
    if (cert.verdict == SiteVerdict::kProvedEscape) {
      os << ",\"witness\":{\"cycle\":" << cert.witness_cycle
         << ",\"start_ps\":" << num(cert.witness_start_ps)
         << ",\"width_ps\":" << num(cert.witness_width_ps);
      if (!cert.repro_spec_path.empty()) {
        os << ",\"repro\":\"" << json_escape(cert.repro_spec_path) << "\"";
      }
      os << "}";
    }
    os << ",\"used_fallback\":" << (cert.used_fallback ? "true" : "false");
    if (!cert.note.empty()) {
      os << ",\"note\":\"" << json_escape(cert.note) << "\"";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace cwsp::analysis
