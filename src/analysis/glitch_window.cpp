#include "analysis/glitch_window.hpp"

#include <algorithm>

namespace cwsp::analysis {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

bool pin_sensitizable(std::uint16_t truth, unsigned arity, unsigned pin,
                      unsigned const_mask, unsigned const_vals) {
  const unsigned combos = 1u << arity;
  const unsigned pin_bit = 1u << pin;
  const unsigned fixed = const_mask & ~pin_bit;
  for (unsigned a = 0; a < combos; ++a) {
    if ((a & pin_bit) != 0) continue;
    if ((a & fixed) != (const_vals & fixed)) continue;
    const bool out0 = ((truth >> a) & 1u) != 0;
    const bool out1 = ((truth >> (a | pin_bit)) & 1u) != 0;
    if (out0 != out1) return true;
  }
  return false;
}

SiteWindows propagate_windows(const FlatNetlistView& view,
                              const std::vector<double>& gate_delay_ps,
                              NetId site) {
  SiteWindows result;
  result.site = site;
  result.windows.assign(view.num_nets(), GlitchWindow{});

  GlitchWindow& base = result.windows[site.index()];
  base.reachable = true;

  for (std::uint32_t g : view.cone_of(site)) {
    const std::uint32_t* inputs = view.gate_inputs_begin(g);
    const std::uint32_t arity = view.gate_num_inputs(g);
    const std::uint16_t truth = view.gate_truth(g);

    // Constant side inputs restrict the sensitization check; everything
    // else (static-but-unknown side inputs, co-disturbed inputs) is free.
    unsigned const_mask = 0;
    unsigned const_vals = 0;
    for (std::uint32_t i = 0; i < arity; ++i) {
      if (view.source_kind(inputs[i]) ==
          FlatNetlistView::SourceKind::kConstant) {
        const_mask |= 1u << i;
        if (view.source_index(inputs[i]) != 0) const_vals |= 1u << i;
      }
    }

    // Reachable inputs whose pin can actually steer the output.
    std::uint32_t reach_pins[4];
    std::uint32_t reach_count = 0;
    for (std::uint32_t i = 0; i < arity; ++i) {
      const GlitchWindow& in = result.windows[inputs[i]];
      if (!in.reachable) continue;
      if (!pin_sensitizable(truth, arity, i, const_mask, const_vals)) {
        continue;
      }
      reach_pins[reach_count++] = i;
    }
    if (reach_count == 0) continue;

    const double delay = gate_delay_ps[g];
    const double inertial = view.gate_inertial_delay_ps(g);

    GlitchWindow out;
    out.reachable = true;
    out.earliest_ps = kInf;
    out.latest_ps = -kInf;
    for (std::uint32_t k = 0; k < reach_count; ++k) {
      const GlitchWindow& in = result.windows[inputs[reach_pins[k]]];
      out.earliest_ps = std::min(out.earliest_ps, in.earliest_ps + delay);
      out.latest_ps = std::max(out.latest_ps, in.latest_ps + delay);
      if (in.ambiguous && out.merge_gate == GlitchWindow::kNone) {
        out.merge_gate = in.merge_gate;
      }
      out.ambiguous = out.ambiguous || in.ambiguous;
    }
    if (reach_count >= 2) {
      out.ambiguous = true;
      out.merge_gate = g;
    }

    // Electrical-masking threshold: a disturbance reaches the output only
    // if some nonempty subset S of the reachable inputs is disturbed
    // (each needs width >= its own threshold) and the merged pulse train
    // of S — at most width + slack(S) wide — survives this gate's
    // inertial filter. Minimize over subsets for the tightest sound
    // bound; arity is at most 4, so at most 15 subsets.
    double best = kInf;
    for (std::uint32_t s = 1; s < (1u << reach_count); ++s) {
      double th = 0.0;
      double lo = kInf;
      double hi = -kInf;
      for (std::uint32_t k = 0; k < reach_count; ++k) {
        if (((s >> k) & 1u) == 0) continue;
        const GlitchWindow& in = result.windows[inputs[reach_pins[k]]];
        th = std::max(th, in.width_threshold_ps);
        lo = std::min(lo, in.earliest_ps);
        hi = std::max(hi, in.latest_ps);
      }
      best = std::min(best, std::max(th, inertial - (hi - lo)));
    }
    out.width_threshold_ps = best;

    // Witness-path predecessor: the reachable input with the smallest own
    // threshold (ties break towards the lowest pin for determinism).
    std::uint32_t pred = inputs[reach_pins[0]];
    double pred_th = result.windows[pred].width_threshold_ps;
    for (std::uint32_t k = 1; k < reach_count; ++k) {
      const std::uint32_t net = inputs[reach_pins[k]];
      if (result.windows[net].width_threshold_ps < pred_th) {
        pred = net;
        pred_th = result.windows[net].width_threshold_ps;
      }
    }
    out.pred_net = pred;

    result.windows[view.gate_output(g)] = out;
  }
  return result;
}

std::vector<NetId> witness_path(const SiteWindows& site_windows,
                                NetId endpoint) {
  std::vector<NetId> path;
  if (!site_windows.windows[endpoint.index()].reachable) return path;
  std::uint32_t net = endpoint.index();
  while (true) {
    path.push_back(NetId{net});
    if (NetId{net} == site_windows.site) break;
    const std::uint32_t pred = site_windows.windows[net].pred_net;
    if (pred == GlitchWindow::kNone) break;  // defensive: broken chain
    net = pred;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace cwsp::analysis
