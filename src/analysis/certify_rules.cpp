#include "analysis/certify_rules.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "analysis/certify.hpp"
#include "cwsp/timing.hpp"

namespace cwsp::analysis {
namespace {

std::string ps(double value) {
  std::ostringstream os;
  os << value << " ps";
  return os.str();
}

/// Same period selection as the timing rules: the explicit period when
/// given, otherwise the design's own hardened period floored at Eq. 6.
Picoseconds effective_period(const lint::LintContext& ctx) {
  if (ctx.options.clock_period.has_value()) return *ctx.options.clock_period;
  const core::ProtectionParams& params = *ctx.options.params;
  return std::max(
      core::hardened_clock_period(ctx.sta->dmax, ctx.netlist->library()),
      core::min_clock_period_for_delta(params));
}

struct CertifyCacheKey {
  const Netlist* netlist = nullptr;
  double delta = 0.0;
  double d_cwsp = 0.0;
  double envelope = 0.0;
  double period = 0.0;
  double skew = 0.0;
  std::uint64_t seed = 0;

  bool operator==(const CertifyCacheKey& other) const {
    return netlist == other.netlist && delta == other.delta &&
           d_cwsp == other.d_cwsp && envelope == other.envelope &&
           period == other.period && skew == other.skew &&
           seed == other.seed;
  }
};

/// The three rules run back-to-back inside one run_lint pass; memoizing
/// the last result keeps that pass at one certification. Thread-local so
/// concurrent service workers never share (or race on) an entry.
const CertifyResult& cached_certify(const lint::LintContext& ctx) {
  thread_local CertifyCacheKey t_key;
  thread_local std::unique_ptr<CertifyResult> t_result;

  const Picoseconds period = effective_period(ctx);
  CertifyCacheKey key;
  key.netlist = ctx.netlist;
  key.delta = ctx.options.params->delta.value();
  key.d_cwsp = ctx.options.params->d_cwsp.value();
  key.envelope = ctx.options.certify_envelope_ps;
  key.period = period.value();
  key.skew = ctx.options.clock_skew.value();
  key.seed = ctx.options.certify_seed;

  if (t_result == nullptr || !(t_key == key)) {
    CertifyOptions options;
    options.envelope_ps = ctx.options.certify_envelope_ps;
    options.clock_skew_ps = ctx.options.clock_skew.value();
    options.seed = ctx.options.certify_seed;
    t_result = std::make_unique<CertifyResult>(
        certify_design(*ctx.netlist, *ctx.options.params, period, options));
    t_key = key;
  }
  return *t_result;
}

void rule_certify_escape(const lint::LintContext& ctx,
                         lint::LintReport& report) {
  const CertifyResult& result = cached_certify(ctx);
  for (const SiteCertificate& cert : result.sites) {
    if (cert.verdict != SiteVerdict::kProvedEscape) continue;
    lint::Diagnostic d;
    d.rule_id = "certify-escape";
    d.severity = lint::Severity::kError;
    d.nets.push_back(cert.site);
    if (cert.limiting_ff >= 0) {
      d.ffs.push_back(
          FlipFlopId{static_cast<std::uint64_t>(cert.limiting_ff)});
    }
    std::ostringstream os;
    os << "confirmed SET escape: a " << ps(cert.witness_width_ps)
       << " pulse at cycle " << cert.witness_cycle << ", start "
       << ps(cert.witness_start_ps)
       << " silently corrupts committed outputs";
    if (!cert.repro_spec_path.empty()) {
      os << " (repro " << cert.repro_spec_path << ")";
    }
    d.message = os.str();
    report.add(std::move(d));
  }
}

void rule_certify_unknown(const lint::LintContext& ctx,
                          lint::LintReport& report) {
  const CertifyResult& result = cached_certify(ctx);
  for (const SiteCertificate& cert : result.sites) {
    if (cert.verdict != SiteVerdict::kUnknown) continue;
    lint::Diagnostic d;
    d.rule_id = "certify-unknown";
    d.severity = lint::Severity::kWarning;
    d.nets.push_back(cert.site);
    if (cert.blocking_gate != GlitchWindow::kNone) {
      d.gates.push_back(GateId{cert.blocking_gate});
    }
    d.message = "coverage not proved: " + cert.note;
    report.add(std::move(d));
  }
}

void rule_certify_summary(const lint::LintContext& ctx,
                          lint::LintReport& report) {
  const CertifyResult& result = cached_certify(ctx);
  lint::Diagnostic d;
  d.rule_id = "certify-summary";
  d.severity = lint::Severity::kInfo;
  std::ostringstream os;
  os << result.sites.size() << " strike sites: " << result.covered_count()
     << " proved-covered, " << result.escape_count() << " proved-escape, "
     << result.unknown_count() << " unknown; envelope "
     << ps(result.envelope_ps) << ", physical envelope "
     << ps(result.physical_envelope_ps);
  if (result.physical_envelope_ps + 1e-9 <
      result.params.delta.value()) {
    os << " (below the designed delta: Eq. 2/5 caps the guarantee)";
  }
  d.message = os.str();
  report.add(std::move(d));
}

}  // namespace

void register_certify_rules(lint::RuleRegistry& registry) {
  registry.add({"certify-escape", lint::RuleCategory::kCertify,
                lint::Severity::kError,
                "a confirmed, replayable SET escape exists at this site",
                rule_certify_escape});
  registry.add({"certify-unknown", lint::RuleCategory::kCertify,
                lint::Severity::kWarning,
                "static coverage proof left this site open",
                rule_certify_unknown});
  registry.add({"certify-summary", lint::RuleCategory::kCertify,
                lint::Severity::kInfo,
                "per-design certification verdict counts",
                rule_certify_summary});
}

const lint::RuleRegistry& certify_registry() {
  static const lint::RuleRegistry registry = [] {
    lint::RuleRegistry r;
    lint::register_structure_rules(r);
    lint::register_timing_rules(r);
    lint::register_hardening_rules(r);
    register_certify_rules(r);
    return r;
  }();
  return registry;
}

}  // namespace cwsp::analysis
