#pragma once
// Per-site glitch-survival window dataflow over the flat netlist.
//
// For one strike site (a gate output or flip-flop Q net), propagate a
// conservative abstraction of every SET pulse the site can emit through
// the site's fanout cone, in one topological pass over
// FlatNetlistView::cone_of — a meet-over-paths fixpoint (the cone is
// acyclic, so a single pass in topological order reaches it).
//
// The abstract value per net is a GlitchWindow:
//
//   * reachable            — some disturbance can arrive here at all
//     (logical masking refutes it when no gate input along the way is
//     statically sensitizable given its constant side inputs);
//   * earliest/latest      — every strike-induced toggle on this net lies
//     inside [strike_start + earliest, strike_start + width + latest];
//     latest - earliest is the path-delay slack, which bounds how much a
//     pulse can widen through multi-path merging;
//   * width_threshold      — a lower bound on the original strike width
//     required for any disturbance to arrive (electrical masking: a gate
//     whose inertial delay exceeds the widest pulse that can reach it
//     filters the disturbance out);
//   * ambiguous/merge_gate — reconvergent fanout merged paths of
//     different delay into this net. The window stays sound, but the
//     *absence* of static sensitization no longer implies the absence of
//     a dynamic pulse, so proofs for ambiguous endpoints must fall back
//     to simulation (docs/certify.md, "fallback policy").
//
// Soundness direction: windows over-approximate. Everything the timed
// event simulator (sim::EventSim and the compiled kernel) can produce is
// inside the window; the certifier only derives "proved-covered" from
// window facts, never "proved-escape" (escapes are always confirmed by
// replay).

#include <cstdint>
#include <limits>
#include <vector>

#include "netlist/flat_view.hpp"

namespace cwsp::analysis {

struct GlitchWindow {
  static constexpr std::uint32_t kNone = 0xffffffffu;

  bool reachable = false;
  /// Paths of differing delay merged into this net (reconvergent fanout).
  bool ambiguous = false;
  /// Earliest strike-induced toggle, ps after the strike start.
  double earliest_ps = 0.0;
  /// Latest toggle is bounded by strike_start + strike_width + latest_ps.
  double latest_ps = 0.0;
  /// No disturbance arrives here from strikes narrower than this, ps.
  double width_threshold_ps = 0.0;
  /// Predecessor net on the minimal-threshold chain (witness paths).
  std::uint32_t pred_net = kNone;
  /// First reconvergent gate responsible for `ambiguous`.
  std::uint32_t merge_gate = kNone;

  /// Path-delay spread: how much wider than the original strike a merged
  /// pulse train on this net can be.
  [[nodiscard]] double slack_ps() const { return latest_ps - earliest_ps; }
};

struct SiteWindows {
  NetId site;
  /// Indexed by NetId; only the site and its cone are reachable.
  std::vector<GlitchWindow> windows;

  [[nodiscard]] const GlitchWindow& at(NetId net) const {
    return windows[net.index()];
  }
};

/// Runs the window dataflow for one site. `gate_delay_ps` is the STA
/// per-gate delay vector (TimingResult::gate_delay_ps).
[[nodiscard]] SiteWindows propagate_windows(
    const FlatNetlistView& view, const std::vector<double>& gate_delay_ps,
    NetId site);

/// True when flipping input `pin` of a gate with the given truth table
/// can flip the output for some assignment of the other inputs, where
/// inputs in `const_mask` are fixed to the corresponding `const_vals`
/// bits and all other inputs are free (static side inputs hold unknown
/// but arbitrary values; co-reachable inputs can transiently be either).
[[nodiscard]] bool pin_sensitizable(std::uint16_t truth, unsigned arity,
                                    unsigned pin, unsigned const_mask,
                                    unsigned const_vals);

/// Backtracks the minimal-threshold chain from `endpoint` to the site,
/// returning nets source-first (site, ..., endpoint). Empty when the
/// endpoint is unreachable.
[[nodiscard]] std::vector<NetId> witness_path(const SiteWindows& site_windows,
                                              NetId endpoint);

}  // namespace cwsp::analysis
