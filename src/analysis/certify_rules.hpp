#pragma once
// The `certify` lint rule family: surfaces static SET-coverage verdicts
// through the existing diagnostic/severity/reporter machinery.
//
// The rules live here (not in src/lint) because they drive the full
// certifier — which needs the protection-protocol simulator — and core
// depends on lint, so lint cannot link back. Instead the lint registry is
// extensible: callers that want certification build a registry with
// register_certify_rules and set LintOptions::certify.
//
// Rules (all category kCertify; docs/lint.md has the catalogue entry):
//   * certify-escape  (error)   — one diagnostic per confirmed escape
//   * certify-unknown (warning) — one per site the proof left open
//   * certify-summary (info)    — one per design with the verdict counts
//
// The three rules share one certifier run per (netlist, configuration):
// the result is memoized thread-locally so a run_lint pass costs a single
// certification.

#include "lint/rules.hpp"

namespace cwsp::analysis {

void register_certify_rules(lint::RuleRegistry& registry);

/// The built-in lint rules plus the certify family — what `cwsp_tool
/// certify` and the service certify handler run with.
[[nodiscard]] const lint::RuleRegistry& certify_registry();

}  // namespace cwsp::analysis
