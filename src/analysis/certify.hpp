#pragma once
// Static SET-coverage certifier.
//
// For every strike site of a design, decide — without sampling — whether
// any single-event transient within the SET envelope can silently corrupt
// the protected architecture, and prove it one of three ways:
//
//   * proved-covered  — a window-dataflow fact over the site's fanout
//     cone rules the escape out for every pulse in the envelope: the
//     site reaches no flip-flop D pin (no-path), the envelope does not
//     exceed the CWSP tolerated width δ (cwsp-envelope), every path is
//     electrically filtered below the envelope (electrical-masking), or
//     an exhaustive reachable-state sensitization sweep shows no stimulus
//     propagates the site into any flip-flop (logical-masking; only
//     claimed for reconvergence-free endpoints, where static and dynamic
//     sensitization coincide). Reported with the limiting margin.
//   * proved-escape   — a concrete witness was found AND confirmed by
//     replaying it through core::ProtectionSim; the witness is shrunk via
//     the campaign minimizer and can be persisted in the campaign
//     `--minimize` repro format, so the claim is independently checkable
//     with `cwsp_tool replay`.
//   * unknown         — reconvergent-fanout ambiguity (the blocking node
//     is identified) or an exhausted search budget. Unknown sites are
//     exactly the ones a sampling campaign still has to cover.
//
// The analysis mirrors the protection-protocol semantics: a functional
// strike no wider than δ is always repaired (CWSP reconstruction +
// equivalence check), so an escape additionally needs width > δ, a pulse
// alive at a D pin across the capture edge, and a later committed output
// that exposes the corrupted state.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/glitch_window.hpp"
#include "cwsp/protection_params.hpp"
#include "sim/compiled_kernel.hpp"

namespace cwsp::analysis {

enum class SiteVerdict : std::uint8_t {
  kProvedCovered,
  kProvedEscape,
  kUnknown,
};

[[nodiscard]] const char* to_string(SiteVerdict verdict);

enum class CoveredReason : std::uint8_t {
  /// No flip-flop D pin is reachable from the site.
  kNoPath,
  /// The envelope does not exceed the protocol-repaired width δ.
  kCwspEnvelope,
  /// Every reaching path filters pulses up to the envelope width.
  kElectricalMasking,
  /// Exhaustive sensitization sweep: no reachable stimulus propagates
  /// the site into any flip-flop (reconvergence-free endpoints only).
  kLogicalMasking,
};

[[nodiscard]] const char* to_string(CoveredReason reason);

struct CertifyOptions {
  /// Widest SET pulse to certify against, ps; 0 selects the designed δ
  /// (the paper's envelope — certifies the 100%-coverage claim).
  double envelope_ps = 0.0;
  /// Clock-skew derating applied to the physical envelope check (§3.4).
  double clock_skew_ps = 0.0;
  /// Seed for sampled stimulus in the fallback sweep and witness search.
  std::uint64_t seed = 1;
  /// Reachable-state enumeration cap for the fallback sweep.
  std::size_t max_states = 64;
  /// Input vectors are enumerated exhaustively when the design has at
  /// most this many primary inputs; sampled otherwise.
  std::size_t exhaustive_pi_limit = 10;
  /// Sampled vectors per state when not exhaustive.
  std::size_t vectors_per_state = 64;
  /// Lookahead cycles to expose a corrupted state at a primary output.
  std::size_t confirm_horizon = 4;
  /// Timed-simulation budget per dangerous site during confirmation.
  std::size_t max_confirm_attempts = 24;
  /// Lane width of the bit-parallel sweep kernel (64, 256 or 512).
  /// 0 auto-selects: the widest ISA-dispatched width that the per-state
  /// vector count can actually fill (a sweep never pays for lanes its
  /// stimulus cannot occupy). Certificates are byte-identical at every
  /// width — wide batches are consumed in ascending 64-lane subwords
  /// with the same candidate caps, so the discovery order is exactly
  /// the 64-wide order.
  std::size_t lane_width = 0;
  /// Shrink confirmed witnesses with the campaign minimizer.
  bool minimize_witnesses = true;
  /// When non-empty, write each confirmed escape as a replayable repro
  /// artifact (campaign `--minimize` format) into this directory.
  std::string artifact_dir;
};

struct SiteCertificate {
  NetId site;
  SiteVerdict verdict = SiteVerdict::kUnknown;
  CoveredReason reason = CoveredReason::kNoPath;

  /// Covered: extra pulse width beyond the envelope that is still
  /// provably tolerated. Unbounded for width-independent proofs
  /// (no-path, logical-masking).
  bool margin_unbounded = false;
  double margin_ps = 0.0;
  /// Covered (electrical-masking): the flip-flop with the least margin.
  /// Escape: the corrupted flip-flop of the confirmed witness.
  std::int64_t limiting_ff = -1;
  /// Site → endpoint net chain: the limiting path (finite-margin covered)
  /// or the witness path (escape).
  std::vector<NetId> path;
  /// Unknown: the reconvergent gate blocking the proof (kNone when the
  /// cause is an exhausted budget instead).
  std::uint32_t blocking_gate = GlitchWindow::kNone;
  /// The LogicSim64 bit-parallel sweep ran for this site.
  bool used_fallback = false;
  /// Deterministic one-line detail for reports.
  std::string note;

  // Confirmed witness (escape verdicts only).
  std::size_t witness_cycle = 0;
  double witness_start_ps = 0.0;
  double witness_width_ps = 0.0;
  std::vector<std::vector<bool>> witness_inputs;
  /// Repro spec path when CertifyOptions::artifact_dir was set.
  std::string repro_spec_path;
};

struct CertifyResult {
  std::string design;
  core::ProtectionParams params;
  Picoseconds clock_period{0.0};
  /// Envelope actually certified against, ps.
  double envelope_ps = 0.0;
  /// Physical guarantee of the design: min(δ, Eq. 2/5 envelope), ps.
  double physical_envelope_ps = 0.0;
  std::uint64_t seed = 1;

  std::vector<SiteCertificate> sites;

  /// Fallback-sweep telemetry.
  std::size_t swept_states = 0;
  bool states_complete = true;
  bool vectors_exhaustive = true;

  [[nodiscard]] std::size_t covered_count() const;
  [[nodiscard]] std::size_t escape_count() const;
  [[nodiscard]] std::size_t unknown_count() const;
  [[nodiscard]] std::size_t fallback_count() const;
  /// Smallest finite covered margin; negative when no site has one.
  [[nodiscard]] double min_margin_ps() const;
};

/// Certifies every strike site of `netlist` (set::strike_sites order).
/// `clock_period` must satisfy Eq. 6 for the params' δ or the escape
/// confirmation stage degrades dangerous sites to `unknown` (noted).
/// `context` optionally shares a prebuilt flat view + STA (the service's
/// warm path); pass nullptr to build privately. Deterministic: identical
/// inputs produce an identical result, independent of thread count.
[[nodiscard]] CertifyResult certify_design(
    const Netlist& netlist, const core::ProtectionParams& params,
    Picoseconds clock_period, const CertifyOptions& options = {},
    std::shared_ptr<const sim::CompiledKernelContext> context = nullptr);

/// Reporters (schema documented in docs/certify.md).
[[nodiscard]] std::string format_certify_text(const CertifyResult& result,
                                              const Netlist& netlist);
[[nodiscard]] std::string format_certify_json(const CertifyResult& result,
                                              const Netlist& netlist);

}  // namespace cwsp::analysis
