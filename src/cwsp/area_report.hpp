#pragma once
// Component-level area breakdown of the protection circuitry — the
// transistor-budget view behind the calibrated per-FF area (DESIGN.md §5
// / docs/calibration.md).

#include <string>
#include <vector>

#include "cwsp/harden.hpp"

namespace cwsp::core {

struct AreaComponent {
  std::string name;
  /// W·L units per protected flip-flop (0 for global components).
  double units_per_ff = 0.0;
  /// Total contribution across the design, µm².
  SquareMicrons total{0.0};
};

struct AreaReport {
  std::vector<AreaComponent> components;
  SquareMicrons functional{0.0};
  SquareMicrons protection_total{0.0};
  /// The calibrated per-FF figure the components must sum to (plus the
  /// global terms).
  SquareMicrons per_ff_calibrated{0.0};
  /// Residual between the itemised devices and the calibrated figure —
  /// the custom sizing the paper does not publish (clock buffering,
  /// upsized checker devices).
  SquareMicrons per_ff_unattributed{0.0};
};

/// Itemises the protection area of a hardened design.
[[nodiscard]] AreaReport build_area_report(const HardenedDesign& design);

/// Renders the report as an aligned text table.
[[nodiscard]] std::string format_area_report(const AreaReport& report);

}  // namespace cwsp::core
