#include "cwsp/harden.hpp"

#include <sstream>

#include "lint/rules.hpp"
#include "sta/sta.hpp"

namespace cwsp::core {
namespace {

HardenedDesign harden_with_timing(const Netlist& netlist,
                                  const ProtectionParams& params,
                                  const DesignTiming& timing) {
  params.validate();
  HardenedDesign design;
  design.original = &netlist;
  design.params = params;
  design.timing = timing;

  const int num_ffs = protected_ff_count(netlist);
  design.tree = build_eqglb_tree(num_ffs);

  design.regular_area = netlist.total_area();
  design.protection_area = protection_area_for(num_ffs, params);
  design.hardened_area = design.regular_area + design.protection_area;

  const CellLibrary& lib = netlist.library();
  design.regular_period = regular_clock_period(timing.dmax, lib);
  design.hardened_period = hardened_clock_period(timing.dmax, lib);

  design.max_glitch = max_protected_glitch(timing, params);
  design.full_designed_protection =
      supports_full_protection(timing, params);
  return design;
}

}  // namespace

int protected_ff_count(const Netlist& netlist) {
  // The paper's benchmarks are combinational circuits whose outputs feed
  // (protected) flip-flops; sequential designs protect their own FFs.
  if (netlist.num_flip_flops() > 0) {
    return static_cast<int>(netlist.num_flip_flops());
  }
  return static_cast<int>(netlist.primary_outputs().size());
}

SquareMicrons protection_area_for(int num_ffs, const ProtectionParams& params) {
  CWSP_REQUIRE(num_ffs >= 1);
  const EqglbTree tree = build_eqglb_tree(num_ffs);
  return params.per_ff_area * static_cast<double>(num_ffs) +
         cal::kGlobalProtectionArea + tree.extra_area;
}

HardenedDesign harden(const Netlist& netlist, const ProtectionParams& params) {
  // Reject malformed inputs with per-net/per-gate diagnostics up front;
  // STA and the protection model both assume a well-formed netlist.
  lint::require_clean_structure(netlist);
  const auto sta = run_sta(netlist);
  return harden_with_timing(netlist, params,
                            DesignTiming{sta.dmax, sta.dmin});
}

HardenedDesign harden_assuming_balanced_paths(const Netlist& netlist,
                                              const ProtectionParams& params) {
  lint::require_clean_structure(netlist);
  const auto sta = run_sta(netlist);
  return harden_with_timing(netlist, params,
                            timing_with_assumed_dmin(sta.dmax));
}

std::string describe(const HardenedDesign& design) {
  const Netlist& nl = *design.original;
  const int num_ffs = protected_ff_count(nl);
  std::ostringstream os;
  os << "Hardened design '" << nl.name() << "'\n";
  os << "  protected flip-flops : " << num_ffs << "\n";
  os << "  per-FF protection    : tap INV + CWSP("
     << design.params.cwsp_pmos_mult << "/" << design.params.cwsp_nmos_mult
     << ") + " << design.params.segments_delta << "-segment delta line + "
     << design.params.segments_clk_del
     << "-segment CLK_DEL line + XNOR/MUX/EQ-DFF + DFF2\n";
  os << "  EQGLB tree           : " << design.tree.first_level_gates
     << " first-level NOR(<=30) gate(s), " << design.tree.levels
     << " level(s), delay " << design.tree.delay.value() << " ps\n";
  os << "  delta (delay element): " << design.params.delta.value() << " ps\n";
  os << "  CLK_DEL lag          : " << design.params.clk_del_delay().value()
     << " ps\n";
  os << "  Delta (Eq. 5)        : "
     << design.params.protection_path_delta().value() << " ps\n";
  os << "  Dmax / Dmin          : " << design.timing.dmax.value() << " / "
     << design.timing.dmin.value() << " ps\n";
  os << "  max protected glitch : " << design.max_glitch.value() << " ps"
     << (design.full_designed_protection ? " (full designed protection)"
                                         : " (below designed delta)")
     << "\n";
  os << "  area regular/hardened: " << design.regular_area.value() << " / "
     << design.hardened_area.value() << " um^2  (+"
     << design.area_overhead_pct() << "%)\n";
  os << "  period regular/hard. : " << design.regular_period.value() << " / "
     << design.hardened_period.value() << " ps  (+"
     << design.delay_overhead_pct() << "%)\n";
  return os.str();
}

}  // namespace cwsp::core
