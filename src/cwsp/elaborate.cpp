#include "cwsp/elaborate.hpp"

#include "netlist/decompose.hpp"

namespace cwsp::core {

ElaboratedProtection elaborate_protection(int num_ffs,
                                          const CellLibrary& library) {
  CWSP_REQUIRE(num_ffs >= 1);
  ElaboratedProtection result{Netlist(library, "protection"), num_ffs,
                              build_eqglb_tree(num_ffs), 0, 0, 0};
  Netlist& nl = result.netlist;

  const NetId one = nl.add_constant(true, "tie1");

  // EQGLBF is defined before its driver exists (sequential feedback);
  // declare the net first.
  const NetId eqglbf = nl.add_net("eqglbf");

  std::vector<NetId> eq_inverted;
  eq_inverted.reserve(static_cast<std::size_t>(num_ffs));
  for (int i = 0; i < num_ffs; ++i) {
    const std::string n = std::to_string(i);
    const NetId q = nl.add_primary_input("q" + n);
    const NetId cw = nl.add_primary_input("cw" + n);

    // Equivalence checker: XNOR compares Q with CW; the MUX forces EQ
    // high while EQGLBF is low (select = EQGLBF; d0 = 1, d1 = XNOR out).
    const GateId xnor =
        nl.add_gate(library.cell_for(CellKind::kXnor2), {q, cw}, "xn" + n);
    ++result.xnor_count;
    const GateId mux = nl.add_gate(library.cell_for(CellKind::kMux2),
                                   {one, nl.gate(xnor).output, eqglbf},
                                   "eqmux" + n);
    ++result.mux_count;
    // EQ flip-flop (clocked by CLK_DEL in the real circuit).
    const FlipFlopId eq_ff =
        nl.add_flip_flop(nl.gate(mux).output, "eq" + n);
    ++result.dff_count;

    // Inverted EQ feeds the NOR-based reduction (paper §3.3: NOR of
    // inverted EQ is the area-efficient AND).
    const GateId inv = nl.add_gate(library.cell_for(CellKind::kInv),
                                   {nl.flip_flop(eq_ff).q}, "neq" + n);
    eq_inverted.push_back(nl.gate(inv).output);

    // DFF2: latches CW into CW*.
    const FlipFlopId dff2 = nl.add_flip_flop(cw, "cw_star" + n);
    ++result.dff_count;
    nl.mark_primary_output(nl.flip_flop(dff2).q);
  }

  // EQGLB reduction: single NOR up to the single-level limit, otherwise
  // ≤30-wide NOR chunks ANDed at a second level.
  const NetId eqglb = nl.add_net("eqglb");
  if (num_ffs <= cal::kTreeSingleLevelMax) {
    build_function(nl, GateFunction::kNor, eq_inverted, eqglb);
  } else {
    std::vector<NetId> chunk_outs;
    for (std::size_t base = 0; base < eq_inverted.size();
         base += cal::kTreeChunk) {
      const std::size_t n =
          std::min<std::size_t>(cal::kTreeChunk, eq_inverted.size() - base);
      std::vector<NetId> chunk(
          eq_inverted.begin() + static_cast<long>(base),
          eq_inverted.begin() + static_cast<long>(base + n));
      const NetId chunk_out =
          nl.add_net("eqglb_chunk" + std::to_string(base / cal::kTreeChunk));
      build_function(nl, GateFunction::kNor, chunk, chunk_out);
      chunk_outs.push_back(chunk_out);
    }
    build_function(nl, GateFunction::kAnd, chunk_outs, eqglb);
  }
  nl.mark_primary_output(eqglb);

  // DFF1: EQGLBF, sampled at the positive edge of CLK.
  nl.add_flip_flop_onto(eqglb, eqglbf);
  ++result.dff_count;
  nl.mark_primary_output(eqglbf);

  nl.validate();
  return result;
}

}  // namespace cwsp::core
