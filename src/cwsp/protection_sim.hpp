#pragma once
// Executable semantics of the paper's recovery protocol (§3.2/§3.3):
// CWSP watchdog per flip-flop, equivalence check at CLK_DEL, EQGLB
// reduction, CW* repair latch, EQGLBF suppression flip-flop, and the
// architectural bubble (input replay) on EQGLB low at a clock edge.
//
// Strikes inside the functional logic propagate through the event-driven
// timing simulator (logical/electrical/latching-window masking); strikes
// inside the protection circuitry itself are modelled behaviourally,
// one scenario class per bullet of the paper's §3.2 case analysis.

#include <memory>
#include <optional>
#include <vector>

#include "cwsp/protection_params.hpp"
#include "cwsp/timing.hpp"
#include "sim/compiled_kernel.hpp"
#include "sim/event_sim.hpp"
#include "sim/logic_sim.hpp"

namespace cwsp::core {

enum class StrikeTarget {
  /// Gate output or FF Q net inside the functional logic (strike.node).
  kFunctional,
  /// Equivalence checker XNOR/MUX or the AND1 (NOR) gate.
  kEqChecker,
  /// DFF1, the EQGLBF suppression flip-flop.
  kEqglbfDff,
  /// DFF2, the CW* repair latch.
  kCwStarDff,
  /// CWSP element output (protected by device upsizing).
  kCwspOutput,
};

struct ScheduledStrike {
  /// Global cycle index (squashed cycles count).
  std::size_t cycle = 0;
  StrikeTarget target = StrikeTarget::kFunctional;
  set::Strike strike;
  /// For kCwStarDff / protection-FF scenarios: which protected FF's
  /// circuitry is hit.
  std::size_t ff_index = 0;
};

struct ProtectionSimOptions {
  /// Model DFF1/EQGLBF (ignore the equivalence check for one cycle after
  /// a recomputation). Disabling it reproduces the failure mode the paper
  /// explains in §3.2: EQ stays low forever and the pipeline livelocks.
  bool eqglbf_suppression = true;
  /// Run functional-logic cycles on the compiled kernel (cone-restricted
  /// event propagation + golden-waveform caching). The legacy EventSim
  /// path produces bit-identical results and is kept as the differential
  /// reference for tests and benchmarks.
  bool use_compiled_kernel = true;
};

struct ProtectionRunResult {
  /// Outputs committed by the architecture, in program order (one entry
  /// per consumed input vector).
  std::vector<std::vector<bool>> committed_outputs;
  /// Golden outputs of the same input sequence.
  std::vector<std::vector<bool>> golden_outputs;
  std::size_t total_cycles = 0;
  std::size_t bubbles = 0;
  std::size_t detected_errors = 0;
  std::size_t spurious_recomputes = 0;
  /// Committed outputs that differ from golden — must be zero whenever the
  /// strike widths respect the design's protected glitch width.
  std::size_t silent_corruptions = 0;
  /// True if the protocol stopped making forward progress (only possible
  /// with eqglbf_suppression disabled).
  bool livelocked = false;

  [[nodiscard]] bool recovered() const {
    return silent_corruptions == 0 && !livelocked;
  }
};

struct UnprotectedRunResult {
  std::vector<std::vector<bool>> outputs;
  std::vector<std::vector<bool>> golden_outputs;
  /// Cycles whose outputs or captured state differ from golden.
  std::size_t corrupted_cycles = 0;
};

class ProtectionSim {
 public:
  /// The clock period must satisfy both the functional constraint
  /// (hardened period for the design's D_max) and Eq. 6 for the params' δ.
  /// `context` optionally shares a prebuilt compiled-kernel context (flat
  /// view + STA) so campaign workers skip the per-instance rebuild; pass
  /// nullptr to build privately.
  ProtectionSim(const Netlist& netlist, const ProtectionParams& params,
                Picoseconds clock_period, ProtectionSimOptions options = {},
                std::shared_ptr<const sim::CompiledKernelContext> context =
                    nullptr);

  [[nodiscard]] ProtectionRunResult run(
      const std::vector<std::vector<bool>>& inputs,
      const std::vector<ScheduledStrike>& strikes) const;

  /// Reference: the same strikes against the unhardened design.
  [[nodiscard]] UnprotectedRunResult run_unprotected(
      const std::vector<std::vector<bool>>& inputs,
      const std::vector<ScheduledStrike>& strikes) const;

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
  [[nodiscard]] const ProtectionParams& params() const { return params_; }
  [[nodiscard]] Picoseconds clock_period() const { return clock_period_; }

  /// Cooperative cancellation (nullptr detaches): run()/run_unprotected()
  /// poll the token once per cycle (and per gate inside the event
  /// simulator) and throw sim::CancelledError once cancelled.
  void set_cancel_token(const sim::CancelToken* token) {
    cancel_ = token;
    if (legacy_sim_ != nullptr) legacy_sim_->set_cancel_token(token);
    if (compiled_sim_ != nullptr) compiled_sim_->set_cancel_token(token);
  }

 private:
  void check_cancelled() const {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      throw sim::CancelledError("protection simulation cancelled");
    }
  }

  /// Dispatches one functional cycle to the active kernel.
  [[nodiscard]] sim::CycleResult simulate_cycle(
      const std::vector<bool>& pi_values, const std::vector<bool>& ff_q_values,
      const std::optional<set::Strike>& strike) const {
    return compiled_sim_ != nullptr
               ? compiled_sim_->simulate_cycle(pi_values, ff_q_values,
                                               clock_period_, strike)
               : legacy_sim_->simulate_cycle(pi_values, ff_q_values,
                                             clock_period_, strike);
  }

  [[nodiscard]] std::vector<std::vector<bool>> golden_run(
      const std::vector<std::vector<bool>>& inputs) const;

  const Netlist* netlist_;
  ProtectionParams params_;
  Picoseconds clock_period_;
  ProtectionSimOptions options_;
  /// Exactly one of the two kernels is instantiated (options_ selects).
  std::unique_ptr<sim::EventSim> legacy_sim_;
  std::unique_ptr<sim::CompiledEventSim> compiled_sim_;
  const sim::CancelToken* cancel_ = nullptr;
};

}  // namespace cwsp::core
