#include "cwsp/elaborate_system.hpp"

#include "netlist/decompose.hpp"

namespace cwsp::core {

ElaboratedSystem elaborate_hardened_system(const Netlist& source) {
  CWSP_REQUIRE_MSG(source.num_flip_flops() > 0,
                   "system elaboration needs flip-flops to protect");
  const CellLibrary& lib = source.library();
  ElaboratedSystem result{Netlist(lib, source.name() + "_hardened"),
                          NetId{},
                          {}};
  Netlist& out = result.netlist;

  std::vector<NetId> map(source.num_nets());
  for (NetId pi : source.primary_inputs()) {
    map[pi.index()] = out.add_primary_input(source.net(pi).name);
  }
  for (std::size_t i = 0; i < source.num_nets(); ++i) {
    const Net& net = source.net(NetId{i});
    if (net.driver_kind == DriverKind::kConstant) {
      map[i] = out.add_constant(net.constant_value, net.name);
    } else if (net.driver_kind != DriverKind::kPrimaryInput) {
      map[i] = out.add_net(net.name);
    }
  }

  // Functional gates, untouched (the paper's central property).
  for (GateId g : source.topological_order()) {
    const Gate& gate = source.gate(g);
    std::vector<NetId> ins;
    ins.reserve(gate.inputs.size());
    for (NetId in : gate.inputs) ins.push_back(map[in.index()]);
    out.add_gate_onto(gate.cell, ins, map[gate.output.index()]);
  }

  const NetId one = out.add_constant(true, "tie1__prot");
  // EQGLBF feedback is declared before its driver.
  const NetId eqglbf = out.add_net("eqglbf");
  const NetId eqglb = out.add_net("eqglb");
  // Repair select: take CW* when the previous check failed.
  const GateId eqglb_low_gate =
      out.add_gate(lib.cell_for(CellKind::kInv), {eqglb}, "eqglb_n");
  const NetId eqglb_low = out.gate(eqglb_low_gate).output;

  std::vector<NetId> eq_inverted;
  for (FlipFlopId f : source.flip_flop_ids()) {
    const std::string n = std::to_string(f.value());
    const FlipFlop& ff = source.flip_flop(f);
    const NetId d = map[ff.d.index()];
    const NetId q = map[ff.q.index()];

    // The CWSP/DFF2 pair digitally reduces to a shadow flip-flop of D:
    // during cycle k it holds the settled D of cycle k-1 — exactly the
    // value Q_k should have captured.
    const FlipFlopId shadow = out.add_flip_flop(d, "cw" + n);
    const NetId cw = out.flip_flop(shadow).q;

    // Repair MUX folded into the master latch: on a pending
    // recomputation the system FF takes CW instead of D.
    const GateId mux = out.add_gate(lib.cell_for(CellKind::kMux2),
                                    {d, cw, eqglb_low}, "din" + n);
    const FlipFlopId system_ff =
        out.add_flip_flop_onto(out.gate(mux).output, q);
    result.system_ffs.push_back(system_ff);

    // Equivalence check (the CLK_DEL phase folds away digitally: the
    // comparison of Q against CW happens within the cycle).
    const GateId xnor =
        out.add_gate(lib.cell_for(CellKind::kXnor2), {q, cw}, "xn" + n);
    const GateId eq_mux = out.add_gate(
        lib.cell_for(CellKind::kMux2),
        {one, out.gate(xnor).output, eqglbf}, "eq" + n);
    const GateId inv = out.add_gate(lib.cell_for(CellKind::kInv),
                                    {out.gate(eq_mux).output}, "neq" + n);
    eq_inverted.push_back(out.gate(inv).output);
  }

  // EQGLB reduction and the EQGLBF suppression flip-flop.
  if (static_cast<int>(eq_inverted.size()) <= cal::kTreeSingleLevelMax) {
    build_function(out, GateFunction::kNor, eq_inverted, eqglb);
  } else {
    std::vector<NetId> chunk_outs;
    for (std::size_t base = 0; base < eq_inverted.size();
         base += cal::kTreeChunk) {
      const std::size_t n =
          std::min<std::size_t>(cal::kTreeChunk, eq_inverted.size() - base);
      std::vector<NetId> chunk(
          eq_inverted.begin() + static_cast<long>(base),
          eq_inverted.begin() + static_cast<long>(base + n));
      const NetId chunk_out = out.add_net(
          "eqglb_chunk" + std::to_string(base / cal::kTreeChunk));
      build_function(out, GateFunction::kNor, chunk, chunk_out);
      chunk_outs.push_back(chunk_out);
    }
    build_function(out, GateFunction::kAnd, chunk_outs, eqglb);
  }
  out.add_flip_flop_onto(eqglb, eqglbf);

  for (NetId po : source.primary_outputs()) {
    out.mark_primary_output(map[po.index()]);
  }
  out.mark_primary_output(eqglb);
  result.eqglb = eqglb;

  out.validate();
  return result;
}

}  // namespace cwsp::core
