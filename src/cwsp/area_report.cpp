#include "cwsp/area_report.hpp"

#include <sstream>

#include "common/table.hpp"

namespace cwsp::core {

AreaReport build_area_report(const HardenedDesign& design) {
  const ProtectionParams& p = design.params;
  const int n_ffs = protected_ff_count(*design.original);
  const double a0 = cal::kUnitActiveArea.value();

  AreaReport report;
  report.functional = design.regular_area;
  report.protection_total = design.protection_area;
  report.per_ff_calibrated = p.per_ff_area;

  auto add = [&](std::string name, double units_per_ff) {
    AreaComponent c;
    c.name = std::move(name);
    c.units_per_ff = units_per_ff;
    c.total = SquareMicrons(units_per_ff * a0 * n_ffs);
    report.components.push_back(std::move(c));
  };

  // Itemised per-FF devices (W·L units; see docs/calibration.md).
  add("D-tap inverter (min)", 2.0);
  add("CWSP element (" + TextTable::num(p.cwsp_pmos_mult, 0) + "/" +
          TextTable::num(p.cwsp_nmos_mult, 0) + ")",
      2.0 * (p.cwsp_pmos_mult + p.cwsp_nmos_mult));
  add("delta delay line (" + std::to_string(p.segments_delta) + " seg)",
      2.0 * p.segments_delta);
  add("CLK_DEL delay line (" + std::to_string(p.segments_clk_del) + " seg)",
      2.0 * p.segments_clk_del);
  add("equivalence XNOR", 10.0);
  add("EQGLBF MUX", 6.0);
  add("EQ flip-flop", 24.0);
  add("DFF2 (CW* latch)", 24.0);
  add("EQ inverter + NOR input share", 4.0);

  double itemised_units = 0.0;
  for (const auto& c : report.components) itemised_units += c.units_per_ff;
  report.per_ff_unattributed =
      p.per_ff_area - SquareMicrons(itemised_units * a0);

  // Global components.
  AreaComponent global;
  global.name = "EQGLBF flip-flop + final EQGLB stage (global)";
  global.total = cal::kGlobalProtectionArea;
  report.components.push_back(global);
  if (design.tree.extra_area.value() > 0.0) {
    AreaComponent tree;
    tree.name = "EQGLB second-level tree (" +
                std::to_string(design.tree.first_level_gates) + " chunks)";
    tree.total = design.tree.extra_area;
    report.components.push_back(tree);
  }
  AreaComponent residual;
  residual.name = "custom sizing residual (clock buffers, upsizing)";
  residual.units_per_ff = report.per_ff_unattributed.value() / a0;
  residual.total =
      SquareMicrons(report.per_ff_unattributed.value() * n_ffs);
  report.components.push_back(residual);

  return report;
}

std::string format_area_report(const AreaReport& report) {
  TextTable table;
  table.set_header({"component", "units/FF", "total um^2"});
  for (const auto& c : report.components) {
    table.add_row({c.name,
                   c.units_per_ff > 0.0 ? TextTable::num(c.units_per_ff, 1)
                                        : std::string("-"),
                   TextTable::num(c.total.value(), 4)});
  }
  std::ostringstream os;
  table.print(os);
  os << "functional area     : " << report.functional.value() << " um^2\n";
  os << "protection total    : " << report.protection_total.value()
     << " um^2\n";
  os << "per-FF (calibrated) : " << report.per_ff_calibrated.value()
     << " um^2\n";
  return os.str();
}

}  // namespace cwsp::core
