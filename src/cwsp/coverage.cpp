#include "cwsp/coverage.hpp"

#include "common/rng.hpp"
#include "set/strike_plan.hpp"

namespace cwsp::core {
namespace {

std::vector<std::vector<bool>> random_inputs(const Netlist& netlist,
                                             std::size_t cycles, Rng& rng) {
  std::vector<std::vector<bool>> inputs(cycles);
  for (auto& vec : inputs) {
    vec.resize(netlist.primary_inputs().size());
    for (std::size_t i = 0; i < vec.size(); ++i) vec[i] = rng.next_bool();
  }
  return inputs;
}

void accumulate(CoverageReport& report, const ProtectionRunResult& protected_r,
                const UnprotectedRunResult& unprotected_r, std::size_t strikes,
                const std::string& scenario) {
  ++report.runs;
  report.strikes_injected += strikes;
  if (!protected_r.recovered()) ++report.protected_failures;
  if (unprotected_r.corrupted_cycles > 0) ++report.unprotected_failures;
  report.bubbles += protected_r.bubbles;
  report.detected_errors += protected_r.detected_errors;
  report.spurious_recomputes += protected_r.spurious_recomputes;

  ScenarioStats& slice = report.scenario(scenario);
  slice.strikes += strikes;
  if (!protected_r.recovered()) ++slice.escapes;
  if (unprotected_r.corrupted_cycles > 0) ++slice.unprotected_failures;
}

}  // namespace

CoverageReport run_functional_campaign(const Netlist& netlist,
                                       const ProtectionParams& params,
                                       Picoseconds clock_period,
                                       const CampaignOptions& options) {
  CoverageReport report;
  Rng rng(options.seed);
  const auto sites = set::strike_sites(netlist);
  CWSP_REQUIRE(!sites.empty());
  // Runs on the compiled kernel (ProtectionSimOptions default); golden
  // cycles are cached per stimulus across the protected/unprotected pair.
  ProtectionSim sim(netlist, params, clock_period);

  for (std::size_t run = 0; run < options.runs; ++run) {
    const auto inputs = random_inputs(netlist, options.cycles_per_run, rng);

    // One strike per run, randomly placed. Strike times cover the whole
    // cycle including the capture edge neighbourhood.
    ScheduledStrike strike;
    strike.cycle = rng.next_below(options.cycles_per_run);
    strike.target = StrikeTarget::kFunctional;
    if (options.area_weighted_sites) {
      strike.strike = set::area_weighted_strikes(
          netlist, 1, options.glitch_width, Picoseconds(0.0),
          Picoseconds(clock_period.value() - 1.0), rng)[0];
    } else {
      strike.strike.node = sites[rng.next_below(sites.size())];
      strike.strike.width = options.glitch_width;
      strike.strike.start = Picoseconds(
          rng.next_double_in(0.0, clock_period.value() - 1.0));
    }

    const auto protected_r = sim.run(inputs, {strike});
    const auto unprotected_r = sim.run_unprotected(inputs, {strike});
    accumulate(report, protected_r, unprotected_r, 1, "functional");
  }
  return report;
}

CoverageReport run_scenario_sweep(const Netlist& netlist,
                                  const ProtectionParams& params,
                                  Picoseconds clock_period,
                                  const CampaignOptions& options) {
  CoverageReport report;
  Rng rng(options.seed);
  ProtectionSim sim(netlist, params, clock_period);

  struct Scenario {
    StrikeTarget target;
    const char* name;
  };
  const Scenario scenarios[] = {
      {StrikeTarget::kEqChecker, "eq-checker"},
      {StrikeTarget::kEqglbfDff, "eqglbf-dff"},
      {StrikeTarget::kCwStarDff, "cwstar-dff"},
      {StrikeTarget::kCwspOutput, "cwsp-output"},
  };

  for (const auto& [target, name] : scenarios) {
    for (std::size_t run = 0; run < options.runs; ++run) {
      const auto inputs = random_inputs(netlist, options.cycles_per_run, rng);
      ScheduledStrike strike;
      strike.cycle = rng.next_below(options.cycles_per_run);
      strike.target = target;
      strike.ff_index = rng.next_below(
          std::max<std::size_t>(1, netlist.num_flip_flops()));
      strike.strike.width = options.glitch_width;
      strike.strike.start =
          Picoseconds(rng.next_double_in(0.0, clock_period.value()));

      const auto protected_r = sim.run(inputs, {strike});
      // Protection-circuit strikes don't exist in the unprotected design;
      // only the protected run matters here.
      UnprotectedRunResult no_ref;
      no_ref.corrupted_cycles = 0;
      accumulate(report, protected_r, no_ref, 1, name);
    }
  }
  return report;
}

}  // namespace cwsp::core
