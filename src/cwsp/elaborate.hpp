#pragma once
// Gate-level elaboration of the protection circuitry of Figure 5: per
// protected flip-flop an equivalence checker (XNOR + EQGLBF-controlled
// MUX + EQ flip-flop clocked by CLK_DEL) and the CW* repair latch (DFF2);
// globally the EQGLB reduction (NOR of inverted EQ signals, chunked above
// the single-level limit) and the EQGLBF suppression flip-flop (DFF1).
//
// The CWSP element and its POLY2 delay lines are analog structures; in
// the elaborated netlist their outputs (the per-FF CW signals) appear as
// primary inputs, mirroring how Figure 5 itself omits them. The two clock
// domains (CLK, CLK_DEL) are not represented structurally — the netlist
// is single-clock, with the CLK_DEL timing handled by ProtectionParams.

#include "cwsp/eqglb_tree.hpp"
#include "cwsp/protection_params.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::core {

struct ElaboratedProtection {
  Netlist netlist;
  int num_protected_ffs = 0;
  EqglbTree tree;
  /// Gate-count sanity figures.
  std::size_t xnor_count = 0;
  std::size_t mux_count = 0;
  std::size_t dff_count = 0;  // EQ FFs + DFF2s + DFF1
};

/// Builds the standalone checker netlist for `num_ffs` protected
/// flip-flops. Primary inputs: q<i> (system FF outputs) and cw<i> (CWSP
/// outputs); primary outputs: eqglb, eqglbf and cw_star<i>.
[[nodiscard]] ElaboratedProtection elaborate_protection(
    int num_ffs, const CellLibrary& library);

}  // namespace cwsp::core
