#pragma once
// Parameters of the per-flip-flop SET protection circuit (Figure 4/5 of
// the paper): the delay element δ, the CWSP element sizing/delay, the
// delay-line segment counts and the calibrated per-FF active area.

#include "cell/calibration.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace cwsp::core {

struct ProtectionParams {
  /// Designed maximum tolerated glitch width; also the delay-element value.
  Picoseconds delta{0.0};
  /// Delay of the (upsized) CWSP element.
  Picoseconds d_cwsp{0.0};
  /// CWSP device sizing, multiples of minimum width (paper: 30/12, 40/16).
  double cwsp_pmos_mult = 0.0;
  double cwsp_nmos_mult = 0.0;
  /// POLY2-resistor + inverter segments realising δ and the CLK_DEL delay.
  int segments_delta = 0;
  int segments_clk_del = 0;
  /// Calibrated protection area added per flip-flop.
  SquareMicrons per_ff_area{0.0};

  /// Configuration tolerating Q = 100 fC strikes (500 ps glitches).
  [[nodiscard]] static ProtectionParams q100();
  /// Configuration tolerating Q = 150 fC strikes (600 ps glitches).
  [[nodiscard]] static ProtectionParams q150();
  /// Table-3 mode: a custom (smaller) δ for fast circuits with
  /// D_max < 1415 ps. Per the paper, area is upper-bounded by the Q=100 fC
  /// protection circuit and Δ keeps its Q=100 fC value.
  [[nodiscard]] static ProtectionParams for_glitch_width(Picoseconds delta);

  /// Continuous tuning knob (paper §2: "the circuit can easily be tuned
  /// to tolerate glitch widths of different magnitudes"): interpolates /
  /// extrapolates the CWSP sizing, delay-line segments, element delay and
  /// per-FF area between the two published design points (Q = 100 and
  /// 150 fC), with δ taken from the calibrated charge → glitch-width map.
  /// Valid for charges in [50 fC, 250 fC].
  [[nodiscard]] static ProtectionParams for_charge(Femtocoulombs q,
                                                   Picoseconds glitch_width);

  /// Δ of Eq. 5: T_CLKQ_EQ + T_CLKQ_DFF2 + D_CWSP − T_CLKQ_SYS + D_MUX +
  /// T_SETUP_EQ + delay(AND1).
  [[nodiscard]] Picoseconds protection_path_delta() const {
    return cal::kClkQEq + cal::kClkQDff2 + d_cwsp - cal::kClkQModified +
           cal::kDelayMux + cal::kSetupEq + cal::kDelayAnd1;
  }

  /// Eq. 3: CLK_DEL lags CLK by 2δ + D_CWSP + D_MUX + T_SETUP_EQ.
  [[nodiscard]] Picoseconds clk_del_delay() const {
    return delta * 2.0 + d_cwsp + cal::kDelayMux + cal::kSetupEq;
  }

  /// Minimum D_max for which the full designed δ is protected (Eq. 4/5):
  /// D_max ≥ 2δ + Δ.
  [[nodiscard]] Picoseconds min_dmax() const {
    return delta * 2.0 + protection_path_delta();
  }

  void validate() const {
    CWSP_REQUIRE(delta.value() > 0.0);
    CWSP_REQUIRE(d_cwsp.value() > 0.0);
    CWSP_REQUIRE(cwsp_pmos_mult > 0.0 && cwsp_nmos_mult > 0.0);
    CWSP_REQUIRE(segments_delta > 0 && segments_clk_del > 0);
    CWSP_REQUIRE(per_ff_area.value() > 0.0);
  }
};

}  // namespace cwsp::core
