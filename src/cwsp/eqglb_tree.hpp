#pragma once
// The EQGLB reduction: a logical AND of all per-FF EQ signals, realised
// area-efficiently as a NOR of the inverted EQ signals (paper §3.3). A
// single NOR serves up to kTreeSingleLevelMax inputs; wider designs use a
// multilevel structure of 30-input chunks.
//
// Inline so the lint design-rule checker can recompute the reference
// shape of a claimed tree without linking the core library.

#include "cell/calibration.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace cwsp::core {

struct EqglbTree {
  int num_inputs = 0;
  int levels = 1;
  /// First-level NOR gates (chunks of ≤ 30 EQ inputs).
  int first_level_gates = 1;
  /// Area beyond the per-input share already counted in the per-FF
  /// protection area (second-level gate inputs).
  SquareMicrons extra_area{0.0};
  /// Delay through the reduction (the paper measured ~80 ps for a
  /// 30-input NOR; extra levels add a buffered stage each).
  Picoseconds delay{0.0};
};

[[nodiscard]] inline EqglbTree build_eqglb_tree(int num_ffs) {
  CWSP_REQUIRE(num_ffs >= 1);
  EqglbTree tree;
  tree.num_inputs = num_ffs;

  if (num_ffs <= cal::kTreeSingleLevelMax) {
    tree.levels = 1;
    tree.first_level_gates = 1;
    tree.extra_area = SquareMicrons(0.0);
    tree.delay = cal::kDelayAnd1;
    return tree;
  }

  // Chunks of ≤ 30 EQ inputs into first-level NORs, then a second-level
  // gate combining the chunk outputs. The per-input area of the first
  // level is already part of the calibrated per-FF protection area; the
  // extra area is the second-level gate's inputs (fitted constant).
  tree.levels = 2;
  tree.first_level_gates =
      (num_ffs + cal::kTreeChunk - 1) / cal::kTreeChunk;
  tree.extra_area =
      cal::kTreeSecondLevelPerInput * static_cast<double>(tree.first_level_gates);
  // Second level adds roughly an inverter+NAND stage on top of the 80 ps
  // first level.
  tree.delay = cal::kDelayAnd1 + Picoseconds(30.0);
  return tree;
}

}  // namespace cwsp::core
