#pragma once
// The EQGLB reduction: a logical AND of all per-FF EQ signals, realised
// area-efficiently as a NOR of the inverted EQ signals (paper §3.3). A
// single NOR serves up to kTreeSingleLevelMax inputs; wider designs use a
// multilevel structure of 30-input chunks.

#include "cell/calibration.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace cwsp::core {

struct EqglbTree {
  int num_inputs = 0;
  int levels = 1;
  /// First-level NOR gates (chunks of ≤ 30 EQ inputs).
  int first_level_gates = 1;
  /// Area beyond the per-input share already counted in the per-FF
  /// protection area (second-level gate inputs).
  SquareMicrons extra_area{0.0};
  /// Delay through the reduction (the paper measured ~80 ps for a
  /// 30-input NOR; extra levels add a buffered stage each).
  Picoseconds delay{0.0};
};

[[nodiscard]] EqglbTree build_eqglb_tree(int num_ffs);

}  // namespace cwsp::core
