#include "cwsp/eqglb_tree.hpp"

namespace cwsp::core {

EqglbTree build_eqglb_tree(int num_ffs) {
  CWSP_REQUIRE(num_ffs >= 1);
  EqglbTree tree;
  tree.num_inputs = num_ffs;

  if (num_ffs <= cal::kTreeSingleLevelMax) {
    tree.levels = 1;
    tree.first_level_gates = 1;
    tree.extra_area = SquareMicrons(0.0);
    tree.delay = cal::kDelayAnd1;
    return tree;
  }

  // Chunks of ≤ 30 EQ inputs into first-level NORs, then a second-level
  // gate combining the chunk outputs. The per-input area of the first
  // level is already part of the calibrated per-FF protection area; the
  // extra area is the second-level gate's inputs (fitted constant).
  tree.levels = 2;
  tree.first_level_gates =
      (num_ffs + cal::kTreeChunk - 1) / cal::kTreeChunk;
  tree.extra_area =
      cal::kTreeSecondLevelPerInput * static_cast<double>(tree.first_level_gates);
  // Second level adds roughly an inverter+NAND stage on top of the 80 ps
  // first level.
  tree.delay = cal::kDelayAnd1 + Picoseconds(30.0);
  return tree;
}

}  // namespace cwsp::core
