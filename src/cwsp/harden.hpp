#pragma once
// The hardening transform: attaches the paper's per-flip-flop SET
// protection (CWSP watchdog + equivalence checker + recompute plumbing) to
// a design and reports the resulting area/delay/protection figures.
//
// The functional netlist is left untouched (that is the paper's central
// point — the protection sits on a secondary path); the protection
// circuitry is represented by its calibrated area/timing model plus the
// executable protocol semantics in ProtectionSim.

#include <string>

#include "cwsp/eqglb_tree.hpp"
#include "cwsp/protection_params.hpp"
#include "cwsp/timing.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::core {

struct HardenedDesign {
  const Netlist* original = nullptr;
  ProtectionParams params;
  EqglbTree tree;
  DesignTiming timing;

  SquareMicrons regular_area{0.0};
  SquareMicrons protection_area{0.0};
  SquareMicrons hardened_area{0.0};

  Picoseconds regular_period{0.0};
  Picoseconds hardened_period{0.0};

  /// min{D_min/2, (D_max − Δ)/2} for this design.
  Picoseconds max_glitch{0.0};
  /// True if max_glitch ≥ the params' designed δ.
  bool full_designed_protection = false;

  [[nodiscard]] double area_overhead_pct() const {
    return (hardened_area / regular_area - 1.0) * 100.0;
  }
  [[nodiscard]] double delay_overhead_pct() const {
    return (hardened_period / regular_period - 1.0) * 100.0;
  }
};

/// Hardens `netlist` with the given protection parameters. D_max/D_min
/// come from STA on the netlist; every primary output is assumed to feed a
/// protected flip-flop of the enclosing system (as the paper's
/// combinational benchmarks do), so the protected-FF count is
/// num_flip_flops + num_primary_outputs when the netlist is combinational,
/// and num_flip_flops otherwise.
[[nodiscard]] HardenedDesign harden(const Netlist& netlist,
                                    const ProtectionParams& params);

/// As harden(), but D_min is assumed to be 0.8·D_max (the paper's
/// assumption for mapped circuits [33]) instead of taken from STA.
[[nodiscard]] HardenedDesign harden_assuming_balanced_paths(
    const Netlist& netlist, const ProtectionParams& params);

/// Number of flip-flops that receive protection circuitry.
[[nodiscard]] int protected_ff_count(const Netlist& netlist);

/// Protection area for a given protected-FF count (per-FF circuits +
/// EQGLBF/global logic + EQGLB-tree second level).
[[nodiscard]] SquareMicrons protection_area_for(int num_ffs,
                                                const ProtectionParams& params);

/// Human-readable structural summary of the protection instances.
[[nodiscard]] std::string describe(const HardenedDesign& design);

}  // namespace cwsp::core
