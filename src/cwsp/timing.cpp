#include "cwsp/timing.hpp"

#include <algorithm>

namespace cwsp::core {

Picoseconds max_protected_glitch(const DesignTiming& timing,
                                 const ProtectionParams& params,
                                 Picoseconds clock_skew) {
  const Picoseconds effective_dmin = timing.dmin - clock_skew;  // §3.4
  const Picoseconds by_dmin = effective_dmin / 2.0;             // Eq. 2
  const Picoseconds by_dmax =
      (timing.dmax - params.protection_path_delta()) / 2.0;     // Eq. 5
  const Picoseconds glitch = std::min(by_dmin, by_dmax);
  return std::max(glitch, Picoseconds(0.0));
}

bool supports_full_protection(const DesignTiming& timing,
                              const ProtectionParams& params,
                              Picoseconds clock_skew) {
  return max_protected_glitch(timing, params, clock_skew) >= params.delta;
}

Picoseconds regular_clock_period(Picoseconds dmax,
                                 const CellLibrary& library) {
  return dmax + library.regular_ff().setup + library.regular_ff().clk_to_q;
}

Picoseconds hardened_clock_period(Picoseconds dmax,
                                  const CellLibrary& library) {
  return dmax + cal::kExtraDLoadDelay + library.modified_ff().setup +
         library.modified_ff().clk_to_q;
}

Picoseconds min_clock_period_for_delta(const ProtectionParams& params) {
  return params.delta * 2.0 + cal::kClkQEq + cal::kClkQDff2 +
         cal::kDelayMux + cal::kSetupModified + params.d_cwsp +
         cal::kSetupEq + cal::kDelayAnd1;
}

Picoseconds max_delta_for_period(Picoseconds period,
                                 const ProtectionParams& params) {
  const Picoseconds fixed = cal::kClkQEq + cal::kClkQDff2 + cal::kDelayMux +
                            cal::kSetupModified + params.d_cwsp +
                            cal::kSetupEq + cal::kDelayAnd1;
  const Picoseconds delta = (period - fixed) / 2.0;
  return std::max(delta, Picoseconds(0.0));
}

}  // namespace cwsp::core
