#include "cwsp/protection_sim.hpp"

#include <algorithm>

namespace cwsp::core {
namespace {

const ScheduledStrike* strike_at(const std::vector<ScheduledStrike>& strikes,
                                 std::size_t cycle) {
  for (const auto& s : strikes) {
    if (s.cycle == cycle) return &s;
  }
  return nullptr;
}

}  // namespace

ProtectionSim::ProtectionSim(
    const Netlist& netlist, const ProtectionParams& params,
    Picoseconds clock_period, ProtectionSimOptions options,
    std::shared_ptr<const sim::CompiledKernelContext> context)
    : netlist_(&netlist),
      params_(params),
      clock_period_(clock_period),
      options_(options) {
  if (options_.use_compiled_kernel) {
    compiled_sim_ = context != nullptr
                        ? std::make_unique<sim::CompiledEventSim>(
                              netlist, std::move(context))
                        : std::make_unique<sim::CompiledEventSim>(netlist);
  } else {
    legacy_sim_ = std::make_unique<sim::EventSim>(netlist);
  }
  params_.validate();
  CWSP_REQUIRE_MSG(netlist.num_flip_flops() > 0,
                   "protection protocol requires flip-flops");
  CWSP_REQUIRE_MSG(clock_period >= min_clock_period_for_delta(params_),
                   "clock period " << clock_period.value()
                       << " ps violates Eq. 6 minimum "
                       << min_clock_period_for_delta(params_).value()
                       << " ps for delta " << params_.delta.value() << " ps");
}

std::vector<std::vector<bool>> ProtectionSim::golden_run(
    const std::vector<std::vector<bool>>& inputs) const {
  std::vector<std::vector<bool>> outputs;
  outputs.reserve(inputs.size());
  if (compiled_sim_ != nullptr) {
    // Clean runs are pure boolean steps — serve them from the kernel's
    // golden cache (one table-driven pass per distinct stimulus). The
    // protected/unprotected run pair then shares every cycle's entry.
    std::vector<bool> q(netlist_->num_flip_flops(), false);
    for (const auto& x : inputs) {
      const sim::GoldenCycle& g = compiled_sim_->golden_eval(x, q);
      outputs.push_back(g.po);
      q = g.ff_d;
    }
    return outputs;
  }
  sim::LogicSim golden(*netlist_);
  for (const auto& x : inputs) {
    golden.set_inputs(x);
    golden.evaluate();
    outputs.push_back(golden.output_values());
    golden.clock();
  }
  return outputs;
}

ProtectionRunResult ProtectionSim::run(
    const std::vector<std::vector<bool>>& inputs,
    const std::vector<ScheduledStrike>& strikes) const {
  const Netlist& nl = *netlist_;
  const std::size_t num_ffs = nl.num_flip_flops();

  ProtectionRunResult result;
  result.golden_outputs = golden_run(inputs);

  std::vector<bool> q(num_ffs, false);        // actual FF state
  std::vector<bool> cw_prev(num_ffs, false);  // CW during the current cycle
  std::vector<bool> cw_star(num_ffs, false);  // DFF2 contents
  bool suppress = false;                      // EQGLBF low → EQ forced high

  std::size_t pi = 0;
  std::size_t global_cycle = 0;
  const std::size_t cycle_budget = inputs.size() * 4 + 100;

  while (pi < inputs.size()) {
    check_cancelled();
    if (global_cycle >= cycle_budget) {
      // Forward progress lost. With EQGLBF modelled this is a library bug;
      // without it, it is the §3.2 failure mode the flip-flop prevents.
      CWSP_REQUIRE_MSG(!options_.eqglbf_suppression,
                       "protocol failed to make progress (livelock) with "
                       "EQGLBF suppression enabled — library bug");
      result.livelocked = true;
      break;
    }
    const std::vector<bool>& x = inputs[pi];
    const ScheduledStrike* scheduled = strike_at(strikes, global_cycle);

    // ---- equivalence check during this cycle (at CLK_DEL) -------------
    // EQ_i = (Q_i == CW_i), forced high while EQGLBF is low.
    bool mismatch = false;
    for (std::size_t f = 0; f < num_ffs; ++f) {
      if (q[f] != cw_prev[f]) {
        mismatch = true;
        break;
      }
    }

    // Scenario strikes that perturb the check itself.
    bool spurious_eq = false;
    bool force_suppress_next = false;
    if (scheduled != nullptr) {
      const double t0 = scheduled->strike.start.value();
      const double t1 = t0 + scheduled->strike.width.value();
      switch (scheduled->target) {
        case StrikeTarget::kEqChecker:
          // Only a glitch present at the next positive CLK edge triggers
          // a (needless) recomputation; any other timing is ignored
          // (paper §3.2).
          if (t1 >= clock_period_.value()) spurious_eq = true;
          break;
        case StrikeTarget::kEqglbfDff:
          // EQGLBF corrupted low → checks suppressed for one cycle.
          force_suppress_next = true;
          break;
        case StrikeTarget::kCwspOutput:
          // Neutralised by CWSP device upsizing (paper §3.2 last bullet).
          break;
        case StrikeTarget::kFunctional: {
          // A glitch on a FF Q net that spans the CLK_DEL sampling moment
          // can flip the comparison spuriously.
          const Net& net = nl.net(scheduled->strike.node);
          const double t_sample = params_.clk_del_delay().value();
          if (net.driver_kind == DriverKind::kFlipFlop && t0 <= t_sample &&
              t1 >= t_sample) {
            spurious_eq = true;
          }
          break;
        }
        case StrikeTarget::kCwStarDff:
          break;  // handled below
      }
    }

    const bool eq_low = !suppress && (mismatch || spurious_eq);
    if (eq_low) {
      cw_star = cw_prev;  // DFF2 latches the guaranteed-correct value
      ++result.bubbles;
      if (mismatch) {
        ++result.detected_errors;
      } else {
        ++result.spurious_recomputes;
      }
    }
    // A hit on DFF2 flips one stored CW* bit. Benign unless a real error
    // needs CW* in this very cycle (excluded by the one-strike-per-two-
    // cycles assumption, footnote 2).
    if (scheduled != nullptr &&
        scheduled->target == StrikeTarget::kCwStarDff && !cw_star.empty()) {
      const std::size_t f = scheduled->ff_index % num_ffs;
      if (!eq_low) cw_star[f] = !cw_star[f];
    }

    // ---- cycle body: combinational evaluation with optional strike ----
    std::optional<set::Strike> functional_strike;
    if (scheduled != nullptr &&
        scheduled->target == StrikeTarget::kFunctional) {
      functional_strike = scheduled->strike;
    }
    const sim::CycleResult cr = simulate_cycle(x, q, functional_strike);

    // CW for the next cycle: the CWSP element reconstructs the settled D
    // whenever the glitch is no wider than the delay element δ; beyond δ
    // the guarantee is void and CW may carry the corrupted sample (used by
    // the ablation experiments).
    std::vector<bool> cw_next = cr.golden_d;
    if (functional_strike.has_value() &&
        functional_strike->width > params_.delta) {
      cw_next = cr.latched_d;
    }

    // ---- edge at the end of this cycle --------------------------------
    if (eq_low) {
      // Squash: repair the state from CW*, replay the same input vector,
      // suppress the (now meaningless) check of the next cycle. Without
      // EQGLBF the next check compares the repaired Q against the stale D
      // of the squashed cycle and re-triggers forever (§3.2).
      q = cw_star;
      suppress = options_.eqglbf_suppression;
    } else {
      // Commit this cycle's outputs; capture the (possibly corrupted) D.
      result.committed_outputs.push_back(cr.golden_po);
      if (cr.golden_po != result.golden_outputs[pi]) {
        ++result.silent_corruptions;
      }
      q = cr.latched_d;
      suppress = force_suppress_next;
      ++pi;
    }
    cw_prev = std::move(cw_next);
    ++global_cycle;
  }

  result.total_cycles = global_cycle;
  return result;
}

UnprotectedRunResult ProtectionSim::run_unprotected(
    const std::vector<std::vector<bool>>& inputs,
    const std::vector<ScheduledStrike>& strikes) const {
  const Netlist& nl = *netlist_;
  UnprotectedRunResult result;
  result.golden_outputs = golden_run(inputs);

  std::vector<bool> q(nl.num_flip_flops(), false);
  for (std::size_t cycle = 0; cycle < inputs.size(); ++cycle) {
    check_cancelled();
    const ScheduledStrike* scheduled = strike_at(strikes, cycle);
    std::optional<set::Strike> functional_strike;
    if (scheduled != nullptr &&
        scheduled->target == StrikeTarget::kFunctional) {
      functional_strike = scheduled->strike;
    }
    const sim::CycleResult cr =
        simulate_cycle(inputs[cycle], q, functional_strike);

    result.outputs.push_back(cr.golden_po);
    bool corrupted = cr.golden_po != result.golden_outputs[cycle];
    // Capture corruption propagates into all later cycles.
    if (cr.any_ff_corrupted()) corrupted = true;
    if (corrupted) ++result.corrupted_cycles;
    q = cr.latched_d;
  }
  return result;
}

}  // namespace cwsp::core
