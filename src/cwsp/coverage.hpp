#pragma once
// Fault-injection campaigns validating the paper's 100%-SET-tolerance
// claim: random strikes over sites/cycles/times against the protected
// design (must never corrupt committed outputs) and against the
// unprotected design (shows the harness has teeth).

#include <cstdint>
#include <string>

#include "cwsp/protection_sim.hpp"

namespace cwsp::core {

/// Per-scenario slice of a campaign (one entry per strike class or §3.2
/// scenario swept), so a report can show where escapes and inconclusive
/// runs concentrate rather than a single blended number.
struct ScenarioStats {
  std::string name;
  /// The (protection scheme, fault model) cell this slice was measured
  /// under. Part of the bucket key: a merged multi-scheme report must
  /// never alias two schemes' counters into one scenario bucket. Empty
  /// for the single-scheme coverage sweeps that predate the registry.
  std::string scheme;
  std::string model;
  std::size_t strikes = 0;
  std::size_t escapes = 0;
  std::size_t unprotected_failures = 0;
  std::size_t timeouts = 0;
  /// Strikes that produced no verdict (timeouts plus isolated simulator
  /// exceptions); never counted as covered.
  std::size_t inconclusive = 0;
};

struct CoverageReport {
  std::size_t runs = 0;
  std::size_t strikes_injected = 0;
  /// Runs whose protected execution committed a wrong output.
  std::size_t protected_failures = 0;
  /// Strikes that corrupted the unprotected design's execution.
  std::size_t unprotected_failures = 0;
  std::size_t bubbles = 0;
  std::size_t detected_errors = 0;
  std::size_t spurious_recomputes = 0;
  /// Strikes without a verdict (exception or timeout). A campaign with
  /// inconclusive strikes cannot certify 100% coverage.
  std::size_t inconclusive = 0;
  /// Subset of `inconclusive` that hit the per-strike wall-clock budget.
  std::size_t timeouts = 0;
  std::vector<ScenarioStats> scenarios;

  /// A campaign that injected nothing proves nothing: zero-strike reports
  /// are invalid (a misconfigured plan), never vacuously 100% covered.
  [[nodiscard]] bool valid() const { return strikes_injected > 0; }

  /// Find-or-append the breakdown slice for the full (name, scheme,
  /// model) bucket key.
  ScenarioStats& scenario(const std::string& name, const std::string& scheme,
                          const std::string& model) {
    for (auto& s : scenarios) {
      if (s.name == name && s.scheme == scheme && s.model == model) return s;
    }
    scenarios.push_back(ScenarioStats{name, scheme, model, 0, 0, 0, 0, 0});
    return scenarios.back();
  }
  ScenarioStats& scenario(const std::string& name) {
    return scenario(name, std::string(), std::string());
  }

  [[nodiscard]] std::size_t conclusive_strikes() const {
    return strikes_injected - inconclusive;
  }

  /// Coverage over conclusive strikes; 0 for invalid (zero-strike)
  /// campaigns — see valid().
  [[nodiscard]] double protected_coverage_pct() const {
    if (conclusive_strikes() == 0) return 0.0;
    return 100.0 * (1.0 - static_cast<double>(protected_failures) /
                              static_cast<double>(conclusive_strikes()));
  }
  [[nodiscard]] double unprotected_failure_pct() const {
    if (conclusive_strikes() == 0) return 0.0;
    return 100.0 * static_cast<double>(unprotected_failures) /
           static_cast<double>(conclusive_strikes());
  }
};

struct CampaignOptions {
  std::size_t runs = 50;
  std::size_t cycles_per_run = 20;
  /// Glitch width injected (≤ the design's protected width for the
  /// coverage claim; larger for the ablation).
  Picoseconds glitch_width{400.0};
  std::uint64_t seed = 1;
  /// At most one strike every `min_strike_gap` cycles (paper footnote 2:
  /// two strikes in consecutive cycles are essentially impossible).
  std::size_t min_strike_gap = 2;
  /// Weight strike-site selection by driving-cell active area (the
  /// physically correct distribution) instead of uniformly.
  bool area_weighted_sites = false;
};

/// Random functional strikes (gate outputs and FF Q nets, random cycle and
/// in-cycle time), protected vs unprotected.
[[nodiscard]] CoverageReport run_functional_campaign(
    const Netlist& netlist, const ProtectionParams& params,
    Picoseconds clock_period, const CampaignOptions& options);

/// One sub-campaign per §3.2 scenario class (equivalence checker, EQGLBF
/// DFF, CW* DFF, CWSP output), each swept across cycles and strike times.
[[nodiscard]] CoverageReport run_scenario_sweep(const Netlist& netlist,
                                                const ProtectionParams& params,
                                                Picoseconds clock_period,
                                                const CampaignOptions& options);

}  // namespace cwsp::core
