#include "cwsp/protection_params.hpp"
#include <algorithm>
#include <cmath>

namespace cwsp::core {

ProtectionParams ProtectionParams::q100() {
  ProtectionParams p;
  p.delta = cal::kGlitchWidthQLow;  // 500 ps
  p.d_cwsp = cal::kDCwspQLow;
  p.cwsp_pmos_mult = cal::kCwspPmosMultQLow;
  p.cwsp_nmos_mult = cal::kCwspNmosMultQLow;
  p.segments_delta = cal::kSegmentsDelta;
  p.segments_clk_del = cal::kSegmentsClkDelQLow;
  p.per_ff_area = cal::kPerFfProtectionAreaQLow;
  p.validate();
  return p;
}

ProtectionParams ProtectionParams::q150() {
  ProtectionParams p;
  p.delta = cal::kGlitchWidthQHigh;  // 600 ps
  p.d_cwsp = cal::kDCwspQHigh;
  p.cwsp_pmos_mult = cal::kCwspPmosMultQHigh;
  p.cwsp_nmos_mult = cal::kCwspNmosMultQHigh;
  p.segments_delta = cal::kSegmentsDelta;
  p.segments_clk_del = cal::kSegmentsClkDelQHigh;
  p.per_ff_area = cal::kPerFfProtectionAreaQHigh;
  p.validate();
  return p;
}

ProtectionParams ProtectionParams::for_charge(Femtocoulombs q,
                                              Picoseconds glitch_width) {
  CWSP_REQUIRE_MSG(q.value() >= 50.0 && q.value() <= 250.0,
                   "for_charge supports 50..250 fC (got " << q.value()
                                                          << ")");
  // Linear interpolation between the two published design points on the
  // charge axis; all quantities are linear in the sizing to first order.
  const double t = (q.value() - 100.0) / 50.0;  // 0 at Q=100, 1 at Q=150
  ProtectionParams p;
  p.delta = glitch_width;
  p.d_cwsp = Picoseconds(cal::kDCwspQLow.value() +
                         t * (cal::kDCwspQHigh.value() -
                              cal::kDCwspQLow.value()));
  p.cwsp_pmos_mult =
      cal::kCwspPmosMultQLow +
      t * (cal::kCwspPmosMultQHigh - cal::kCwspPmosMultQLow);
  p.cwsp_nmos_mult =
      cal::kCwspNmosMultQLow +
      t * (cal::kCwspNmosMultQHigh - cal::kCwspNmosMultQLow);
  p.segments_delta = cal::kSegmentsDelta;
  p.segments_clk_del = std::max(
      cal::kSegmentsDelta,
      static_cast<int>(std::lround(cal::kSegmentsClkDelQLow +
                                   t * (cal::kSegmentsClkDelQHigh -
                                        cal::kSegmentsClkDelQLow))));
  // Per-FF area from the transistor composition: the Q-independent base
  // plus the CWSP devices and delay-line segments at this sizing. By
  // construction this reproduces both calibration points exactly.
  const double base_units =
      2.0 * (cal::kCwspPmosMultQLow + cal::kCwspNmosMultQLow) +
      2.0 * (cal::kSegmentsDelta + cal::kSegmentsClkDelQLow);
  const SquareMicrons q_independent =
      cal::kPerFfProtectionAreaQLow - cal::kUnitActiveArea * base_units;
  const double units =
      2.0 * (p.cwsp_pmos_mult + p.cwsp_nmos_mult) +
      2.0 * (p.segments_delta + p.segments_clk_del);
  p.per_ff_area = q_independent + cal::kUnitActiveArea * units;
  p.validate();
  return p;
}

ProtectionParams ProtectionParams::for_glitch_width(Picoseconds delta) {
  CWSP_REQUIRE(delta.value() > 0.0);
  // The delay element shrinks (fewer/lower-R POLY2 segments) and the CWSP
  // element could shrink too; per the paper the Q=100 fC circuit's area
  // and Δ are used as an upper bound (§4, Table 3 discussion).
  ProtectionParams p = q100();
  p.delta = delta;
  return p;
}

}  // namespace cwsp::core
