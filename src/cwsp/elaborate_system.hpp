#pragma once
// Whole-system structural elaboration: the functional netlist fused with
// its protection circuitry into one gate-level netlist (the complete
// Figure 4, minus the analog CWSP/delay elements).
//
// Representation choices, mirroring the hardware:
//   * The repair MUX folded into each master latch appears as an explicit
//     MUX2 in front of the flip-flop (select = EQGLBF', choosing CW* on a
//     pending recomputation).
//   * The CWSP element reconstructs the settled D value; digitally that
//     value *is* D (the element only matters electrically, for glitches),
//     so CW is wired from the D net. Strike effects on the analog parts
//     are covered by ProtectionSim and MiniSpice.
//   * CLK_DEL is a phase of the same clock; the EQ check therefore sees
//     the D of the *previous* cycle via a shadow flip-flop, matching the
//     timing relationship CW has to Q.
//
// The result is a normal sequential netlist: LogicSim can execute it, and
// its EQGLB output reproduces the detection behaviour of ProtectionSim.

#include "cwsp/protection_params.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::core {

struct ElaboratedSystem {
  Netlist netlist;
  /// Index of the EQGLB primary output within the netlist's PO list.
  NetId eqglb;
  /// Per protected FF: the system flip-flop in the new netlist.
  std::vector<FlipFlopId> system_ffs;
};

/// Fuses `source` (a sequential netlist) with its protection circuitry.
/// Primary outputs are preserved; `eqglb` is added as an extra output.
[[nodiscard]] ElaboratedSystem elaborate_hardened_system(
    const Netlist& source);

}  // namespace cwsp::core
