#pragma once
// Timing analysis of the protection scheme — Equations 2 through 6 of the
// paper, plus the clock-skew derating of §3.4.
//
// Everything here is a small pure function of calibration constants, so
// the implementations live inline in this header; that lets the lint
// design-rule checker evaluate the same equations without linking the
// core library (which itself depends on lint for structural prechecks).

#include <algorithm>

#include "cell/library.hpp"
#include "cwsp/protection_params.hpp"

namespace cwsp::core {

struct DesignTiming {
  Picoseconds dmax{0.0};
  Picoseconds dmin{0.0};
};

/// Assumes the technology-mapper balance Dmin = 0.8·Dmax (paper §4, [33]).
[[nodiscard]] inline DesignTiming timing_with_assumed_dmin(Picoseconds dmax) {
  return DesignTiming{dmax, dmax * cal::kDminToDmaxRatio};
}

/// Maximum protected glitch width: δ ≤ min{D_min/2, (D_max − Δ)/2}
/// (Eqs. 2 and 5). Clock skew `s` reduces the effective D_min (§3.4).
[[nodiscard]] inline Picoseconds max_protected_glitch(
    const DesignTiming& timing, const ProtectionParams& params,
    Picoseconds clock_skew = Picoseconds(0.0)) {
  const Picoseconds effective_dmin = timing.dmin - clock_skew;  // §3.4
  const Picoseconds by_dmin = effective_dmin / 2.0;             // Eq. 2
  const Picoseconds by_dmax =
      (timing.dmax - params.protection_path_delta()) / 2.0;     // Eq. 5
  const Picoseconds glitch = std::min(by_dmin, by_dmax);
  return std::max(glitch, Picoseconds(0.0));
}

/// The glitch width the placed design actually guarantees: the designed δ
/// capped by the Eq. 2/5 envelope the timing admits. This is the physical
/// SET envelope the static certifier reports alongside its verdicts — when
/// it is below δ, the protocol repairs δ-wide pulses but the electrical
/// assumptions behind that repair no longer hold for the widest of them.
[[nodiscard]] inline Picoseconds effective_protected_glitch(
    const DesignTiming& timing, const ProtectionParams& params,
    Picoseconds clock_skew = Picoseconds(0.0)) {
  return std::min(params.delta,
                  max_protected_glitch(timing, params, clock_skew));
}

/// True if the design's D_max and D_min admit the params' full designed δ.
[[nodiscard]] inline bool supports_full_protection(
    const DesignTiming& timing, const ProtectionParams& params,
    Picoseconds clock_skew = Picoseconds(0.0)) {
  return max_protected_glitch(timing, params, clock_skew) >= params.delta;
}

/// Clock period of the unhardened design: D_max + T_SETUP + T_CLK→Q
/// (left-hand side of Eq. 4 with the regular flip-flop).
[[nodiscard]] inline Picoseconds regular_clock_period(
    Picoseconds dmax, const CellLibrary& library) {
  return dmax + library.regular_ff().setup + library.regular_ff().clk_to_q;
}

/// Clock period of the hardened design: D_max + extra-D-load + T_SETUP' +
/// T_CLK→Q' of the modified flip-flop (paper §4: +11.5 ps total).
[[nodiscard]] inline Picoseconds hardened_clock_period(
    Picoseconds dmax, const CellLibrary& library) {
  return dmax + cal::kExtraDLoadDelay + library.modified_ff().setup +
         library.modified_ff().clk_to_q;
}

/// Eq. 6 solved for the minimum clock period protecting glitches of width
/// δ: T ≥ 2δ + T_CLKQ_EQ + T_CLKQ_DFF2 + D_MUX + T_SETUP_SYS + D_CWSP +
/// T_SETUP_EQ + delay(AND1).
[[nodiscard]] inline Picoseconds min_clock_period_for_delta(
    const ProtectionParams& params) {
  return params.delta * 2.0 + cal::kClkQEq + cal::kClkQDff2 +
         cal::kDelayMux + cal::kSetupModified + params.d_cwsp +
         cal::kSetupEq + cal::kDelayAnd1;
}

/// Eq. 6 as stated: the max δ protected at a given clock period T.
[[nodiscard]] inline Picoseconds max_delta_for_period(
    Picoseconds period, const ProtectionParams& params) {
  const Picoseconds fixed = cal::kClkQEq + cal::kClkQDff2 + cal::kDelayMux +
                            cal::kSetupModified + params.d_cwsp +
                            cal::kSetupEq + cal::kDelayAnd1;
  const Picoseconds delta = (period - fixed) / 2.0;
  return std::max(delta, Picoseconds(0.0));
}

}  // namespace cwsp::core
