#pragma once
// Persistent analysis server: a Unix-domain-socket daemon speaking
// newline-delimited JSON (docs/service.md has the protocol schema).
//
// Architecture (one box per thread kind):
//
//   accept loop ──> reader thread per connection ──> JobQueue (bounded,
//        │             (parse + admission)            prioritized)
//        │                                               │
//        │          control ops answered inline          ▼
//        │          (ping/metrics/cancel/shutdown)   worker pool
//        │                                               │
//        └── shutdown pipe                 SessionCache + result cache
//                                                        │
//                                            response on the request's
//                                            connection (id-matched)
//
// Work ops (campaign / lint / sta / coverage) run on the worker pool
// against warm per-design sessions; identical deterministic requests
// coalesce into one execution (JobQueue::pop_batch) and repeat requests
// are answered from a bounded result cache — both are sound because
// reports are byte-identical by contract, and both are observable in the
// metrics registry rather than in the payload.

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "service/handlers.hpp"
#include "service/job_queue.hpp"
#include "service/session.hpp"
#include "service/worker_registry.hpp"
#include "sim/cancel.hpp"

namespace cwsp::service {

struct ServerOptions {
  std::string socket_path;
  /// Worker threads executing queued jobs (campaign jobs may additionally
  /// parallelize internally via their own `jobs` field).
  std::size_t workers = 2;
  /// Queue bound; a full queue answers `queue_full` (backpressure).
  std::size_t queue_capacity = 64;
  SessionCacheOptions cache;
  /// Bound on memoized responses for repeated deterministic requests.
  std::size_t result_cache_entries = 64;
  /// When non-empty, the final metrics registry dump is written here on
  /// shutdown (the `--metrics-json` flag).
  std::string metrics_json_path;
  /// When non-empty, additionally listen on this TCP endpoint
  /// ("host:port"; port 0 picks an ephemeral port, readable via
  /// tcp_port()) — the fabric's worker/coordinator transport.
  std::string tcp_endpoint;
  /// Largest accepted NDJSON request line; a connection that exceeds it
  /// without a newline gets a `bad_request` and is closed instead of
  /// growing the buffer without bound.
  std::size_t max_frame_bytes = 8ull * 1024 * 1024;
  /// Registry eviction deadline: a worker that has not re-registered
  /// within this window is dropped from `live()` snapshots.
  double worker_ttl_ms = 15'000.0;
  /// When non-empty, periodically self-register with the coordinator at
  /// this endpoint (the `serve --register` worker mode).
  std::string register_with;
  double register_interval_ms = 2'000.0;
  /// Endpoint advertised in registrations; defaults to
  /// "127.0.0.1:<tcp_port>" when empty.
  std::string advertise_endpoint;
  /// Shared secret for the TCP listener. When non-empty, every request
  /// arriving over TCP (except `ping`, kept open for liveness probes)
  /// must carry a matching "auth" field or gets a typed `unauthorized`
  /// response. Compared constant-time. Unix-socket clients are local and
  /// exempt. Also sent with outbound registrations (`--register`).
  std::string auth_token;
  /// Shutdown drain budget, ms: after this grace, still-running jobs
  /// have their cancel tokens flipped so a SIGTERM exits in bounded time
  /// with every admitted request answered.
  double drain_grace_ms = 5'000.0;
  /// Distributed-campaign executor, wired by `cwsp_tool serve` to
  /// fabric::run_distributed_campaign. Injected as a hook so the fabric
  /// library can sit on top of the service library without a dependency
  /// cycle. Arguments: session, design text, spec, live worker endpoints.
  std::function<CampaignOutcome(const DesignSession&, const std::string&,
                                const CampaignSpec&,
                                const std::vector<std::string>&)>
      distributed_campaign;
};

class Server {
 public:
  /// The library must outlive the server.
  Server(ServerOptions options, const CellLibrary& library);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and serves until request_shutdown() (or a
  /// `shutdown` request) — then drains, joins every thread, unlinks the
  /// socket and writes the metrics dump. Throws cwsp::Error when the
  /// socket cannot be bound.
  void run();

  /// Thread-safe asynchronous stop (also wired to SIGINT/SIGTERM by the
  /// serve subcommand).
  void request_shutdown();

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

  /// Actual TCP listen port once run() has bound it (0 before, and when
  /// no tcp_endpoint is configured). Thread-safe — tests and the
  /// registration thread poll it.
  [[nodiscard]] std::uint16_t tcp_port() const {
    return tcp_port_.load(std::memory_order_acquire);
  }

  [[nodiscard]] WorkerRegistry& registry() { return registry_; }

 private:
  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
    /// Accepted on the TCP listener — subject to --auth-token.
    bool untrusted = false;
  };

  struct CachedResult {
    std::uint64_t key = 0;
    std::string envelope_tail;  // everything after the "id" field
  };

  /// Cancellation state shared by every member of one executing batch.
  /// A cancel answers only the canceller's own member; the execution is
  /// aborted only once every member has been cancelled, so one client
  /// can never fail another client's coalesced request. Fields are
  /// guarded by inflight_mutex_ (the token itself is atomic).
  struct InflightBatch {
    std::shared_ptr<sim::CancelToken> token;
    std::size_t active = 0;           // members not yet cancelled
    std::set<std::string> cancelled;  // member keys already answered
  };

  struct InflightMember {
    std::shared_ptr<InflightBatch> batch;
    std::string op;  // for the member's `cancelled` error envelope
  };

  void accept_loop(const std::vector<int>& listen_fds);
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  /// Periodically announces this worker to options_.register_with until
  /// shutdown (best effort; unreachable coordinators are retried on the
  /// next tick).
  void registration_loop();

  /// Joins reader threads whose connections have exited (called from the
  /// accept loop so a long-running daemon does not accumulate one
  /// zombie thread per closed connection).
  void reap_finished_readers();

  /// One request line: parse, answer control ops inline, enqueue work
  /// ops (admission errors answered immediately).
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void handle_cancel(const std::shared_ptr<Connection>& conn,
                     const std::string& id, const json::Value& request);

  /// Executes the front job of `batch` and answers every member.
  void execute_batch(std::vector<Job> batch);
  /// Runs one work op; returns the envelope tail (shared by the batch).
  [[nodiscard]] std::string execute_job(const Job& job,
                                        sim::CancelToken* cancel);

  void respond(std::uint64_t conn_id, const std::string& id,
               const std::string& envelope_tail);
  void send_line(const std::shared_ptr<Connection>& conn,
                 const std::string& line);

  [[nodiscard]] std::shared_ptr<Connection> find_connection(
      std::uint64_t conn_id);

  ServerOptions options_;
  const CellLibrary* library_;
  JobQueue queue_;
  SessionCache sessions_;

  std::mutex connections_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, std::thread> reader_threads_;
  std::vector<std::uint64_t> finished_readers_;  // awaiting join

  std::mutex inflight_mutex_;
  std::map<std::string, InflightMember> inflight_;

  std::mutex results_mutex_;
  std::list<CachedResult> results_;  // front = most recent

  int shutdown_pipe_[2] = {-1, -1};
  std::atomic<bool> shutting_down_{false};
  std::atomic<std::uint16_t> tcp_port_{0};
  WorkerRegistry registry_;
};

}  // namespace cwsp::service
