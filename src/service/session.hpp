#pragma once
// Per-design warm state shared across service requests.
//
// A cold `cwsp_tool` invocation spends its first milliseconds re-deriving
// the same amortizable artifacts on every run: the parsed Netlist, its
// FlatNetlistView + STA delays (CompiledKernelContext), and the hardened
// clock period. A DesignSession captures all of that once; the
// SessionCache keeps sessions behind an LRU with a memory bound so a
// server fed many designs degrades to cold-start cost instead of growing
// without limit.
//
// Sessions are immutable after construction and handed out as
// shared_ptr, so an evicted session stays valid for requests already
// executing against it. Hit/miss/eviction counts feed the global metrics
// registry (`service.sessions.*` — docs/service.md has the catalog).

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "cwsp/protection_params.hpp"
#include "netlist/netlist.hpp"
#include "sim/compiled_kernel.hpp"
#include "sta/sta.hpp"

namespace cwsp::service {

/// Everything request execution needs that depends only on the design
/// text: parse + STA + compiled-kernel context, done exactly once.
struct DesignSession {
  /// Cache key: FNV-64 of the design name and source text.
  std::uint64_t key = 0;
  std::string name;
  /// Stable-address netlist (CampaignEngine and the kernel context keep
  /// pointers into it).
  std::unique_ptr<const Netlist> netlist;
  TimingResult sta;
  /// Hardened clock period under the default Q=100 fC envelope — the same
  /// expression the one-shot campaign subcommand computes.
  Picoseconds period_q100{0.0};
  std::shared_ptr<const sim::CompiledKernelContext> kernel_context;
  /// Rough resident size used for the cache's memory bound.
  std::size_t approx_bytes = 0;

  /// Parses `text` (strict mode, same as the CLI's file path) and builds
  /// the warm artifacts. Throws cwsp::ParseError on bad designs.
  [[nodiscard]] static std::shared_ptr<const DesignSession> build(
      const std::string& design_name, const std::string& text,
      const CellLibrary& library);
};

[[nodiscard]] std::uint64_t design_key(const std::string& name,
                                       const std::string& text);

/// The design name the one-shot CLI derives from a file path (basename
/// sans extension) — kept identical so reports name the design the same
/// way regardless of how it reached the tool.
[[nodiscard]] std::string design_name_from_path(const std::string& path);

/// Reads `path` and builds a session (no cache) — the one-shot CLI path.
/// Throws cwsp::ParseError for unreadable or malformed designs.
[[nodiscard]] std::shared_ptr<const DesignSession> load_design_session(
    const std::string& path, const CellLibrary& library);

/// Reads `path` into `text`; throws cwsp::ParseError when unreadable.
[[nodiscard]] std::string read_design_file(const std::string& path);

struct SessionCacheOptions {
  std::size_t max_entries = 8;
  /// Upper bound on the summed approx_bytes of cached sessions. The most
  /// recent session is always retained, even when it alone exceeds the
  /// bound (otherwise a large design would thrash on every request).
  std::size_t max_bytes = 256ull * 1024 * 1024;
};

/// Thread-safe LRU over DesignSessions keyed by design content.
class SessionCache {
 public:
  explicit SessionCache(const SessionCacheOptions& options = {});

  /// Returns the cached session for (name, text), building and inserting
  /// it on miss. Concurrent callers may build the same session twice; the
  /// first insert wins and both get a usable session.
  [[nodiscard]] std::shared_ptr<const DesignSession> get_or_build(
      const std::string& name, const std::string& text,
      const CellLibrary& library);

  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t resident_bytes() const;

 private:
  void evict_locked();

  SessionCacheOptions options_;
  mutable std::mutex mutex_;
  /// Front = most recently used.
  std::list<std::shared_ptr<const DesignSession>> lru_;
  std::size_t resident_bytes_ = 0;
};

}  // namespace cwsp::service
