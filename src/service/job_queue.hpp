#pragma once
// Bounded multi-producer job queue for the analysis server.
//
// Connection reader threads push parsed requests; worker threads pop
// them. Three properties the protocol depends on:
//
//   * backpressure — the queue is bounded; try_push refuses when full and
//     the server answers `queue_full` immediately instead of buffering
//     unbounded work (the client decides whether to retry);
//   * priorities — three bands (high/normal/low), FIFO within a band, so
//     interactive probes overtake bulk sweeps without starving them
//     (bands are only drained top-down, but every accepted job is
//     eventually reached because bands are bounded too);
//   * batch extraction — pop_batch() returns the front job together with
//     every queued job sharing its coalescing key, so identical requests
//     queued behind a busy worker execute once and fan the result back
//     out per request (docs/service.md, "Request batching").
//
// Cancellation of *queued* jobs happens here (cancel() removes the job
// and hands it back so the server can answer `cancelled`); cancellation
// of in-flight jobs is the server's job — see Server::handle_cancel and
// the per-member InflightBatch state in server.hpp.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace cwsp::service {

struct Job {
  /// Client-assigned request id (echoed in the response envelope).
  std::string id;
  /// Identifies the connection the response must go to.
  std::uint64_t conn_id = 0;
  /// 0 = high, 1 = normal, 2 = low.
  int priority = 1;
  /// Jobs with equal nonzero keys are deterministic duplicates: they may
  /// execute once and share the output. 0 = never coalesce.
  std::uint64_t batch_key = 0;
  std::string op;
  json::Value request;
  /// Resolved design payload (admission reads design_path / inline text
  /// up front so workers never touch the filesystem mid-job).
  std::string design_name;
  std::string design_text;
  std::string design_path;  // empty for inline designs
  /// Client deadline budget, ms (0 = none). Deadline-carrying jobs never
  /// coalesce (their outcome is wall-clock dependent).
  double deadline_ms = 0.0;
  /// Absolute deadline derived at admission (max() = none); arms the
  /// executing batch's CancelToken.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Admission timestamp, feeding the service.queue_wait_us histogram.
  std::chrono::steady_clock::time_point enqueued_at =
      std::chrono::steady_clock::time_point::min();
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// False when the queue is at capacity or shut down (caller answers
  /// queue_full / shutdown).
  [[nodiscard]] bool try_push(Job job);

  /// Blocks for work. Returns the front job plus all queued jobs sharing
  /// its nonzero batch key (front first). Returns an empty vector once
  /// the queue is shut down — workers exit; leftover jobs are collected
  /// with drain().
  [[nodiscard]] std::vector<Job> pop_batch();

  /// Removes a queued job (matched by connection + id) and returns it;
  /// nullopt when it is not in the queue (already executing or unknown).
  [[nodiscard]] std::optional<Job> cancel(std::uint64_t conn_id,
                                          const std::string& id);

  /// Discards every queued job owned by a vanished connection.
  void drop_connection(std::uint64_t conn_id);

  void shutdown();
  [[nodiscard]] std::vector<Job> drain();
  [[nodiscard]] std::size_t size() const;

 private:
  static constexpr int kBands = 3;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> bands_[kBands];
  bool shutdown_ = false;
};

}  // namespace cwsp::service
