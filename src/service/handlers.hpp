#pragma once
// Request execution shared by the one-shot CLI and the resident server.
//
// Byte-identical output between `cwsp_tool campaign --json` and a service
// `campaign` request is a hard contract (it is what lets the service
// batch and cache results at all), so there is exactly ONE code path that
// turns a validated request spec into a report: the CLI front end maps
// argv onto these specs and the server maps JSON requests onto them, and
// both call the same run_* functions below. Anything execution-dependent
// (worker counts, cache state, wall-clock) never reaches the output.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "lint/lint.hpp"
#include "scheme/fault_model.hpp"
#include "scheme/scheme.hpp"
#include "service/session.hpp"
#include "set/strike_plan.hpp"
#include "sim/cancel.hpp"

namespace cwsp::service {

// ---- campaign -------------------------------------------------------

struct CampaignSpec {
  std::size_t runs = 50;
  std::size_t cycles = 16;
  double width_ps = 400.0;
  std::uint64_t seed = 1;
  std::size_t jobs = 1;
  double timeout_ms = 0.0;
  bool adversarial = false;
  bool use_legacy_kernel = false;
  /// 1-based shard selection; shard_total == 0 disables sharding.
  std::size_t shard_index = 0;
  std::size_t shard_total = 0;
  /// Machine-readable (docs/campaign.md schema) vs human-readable output.
  bool json = true;
  /// Fan the campaign out across registered fabric workers (server-side
  /// only; ignored — i.e. executed locally — when the serving process has
  /// no fabric hook or no live workers). Deliberately excluded from the
  /// fingerprint: the distributed report is byte-identical to the local
  /// one, so the two coalesce.
  bool distribute = false;
  /// Wall-clock budget admitted at the service boundary, ms (0 = none).
  /// Execution control, not report content: excluded from the
  /// fingerprint (deadline-carrying jobs never coalesce anyway — the
  /// server zeroes their batch key) and forwarded to the fabric so
  /// shard dispatches carry the remaining budget.
  double deadline_ms = 0.0;
  /// Protection schemes / fault models to campaign (registry names).
  /// Empty means the defaults (cwsp, single-set). More than one name in
  /// either list turns the request into a cross-product sweep whose
  /// output wraps one report per (scheme, model) cell.
  std::vector<std::string> schemes;
  std::vector<std::string> fault_models;

  // One-shot-only extras (never set by the server; a request carrying
  // them is rejected because they name local files of the *client*).
  std::string journal_path;
  bool resume = false;
  bool minimize_escapes = false;
  std::string artifact_dir;
  std::size_t stop_after = 0;
};

/// Digest of every spec field that influences the report, plus the design
/// key — the coalescing/result-cache identity of a campaign request.
[[nodiscard]] std::uint64_t campaign_spec_fingerprint(
    const CampaignSpec& spec, std::uint64_t design_key);

/// One (scheme, fault model) combination a campaign spec denotes.
struct CampaignCell {
  const scheme::ProtectionScheme* scheme = nullptr;
  const scheme::FaultModel* model = nullptr;
};

/// Resolves `spec.schemes` × `spec.fault_models` against the registries,
/// in request order (empty lists mean the defaults). Throws cwsp::Error
/// naming the known entries for an unknown name.
[[nodiscard]] std::vector<CampaignCell> campaign_cells(
    const CampaignSpec& spec);

struct CampaignOutcome {
  campaign::CampaignStatus status = campaign::CampaignStatus::kInvalid;
  std::string output;
};

/// Runs the campaign exactly as the one-shot CLI does. `cancel`, when
/// non-null, cooperatively aborts between strikes (the service's job
/// cancellation); an aborted campaign reports status kInterrupted.
/// Throws cwsp::Error for configuration errors (e.g. a combinational
/// design or an out-of-range shard).
[[nodiscard]] CampaignOutcome run_campaign(
    const DesignSession& session, const CampaignSpec& spec,
    const sim::CancelToken* cancel = nullptr);

/// The exact plan configuration a campaign spec denotes. Every execution
/// path — local run, fabric coordinator, remote shard_exec worker — MUST
/// derive its plan through this one function, or sharded results stop
/// matching the single-host report.
[[nodiscard]] set::StrikePlanOptions campaign_plan_options(
    const CampaignSpec& spec, const core::ProtectionParams& params,
    Picoseconds clock_period);

/// A shard_exec request whose rebuilt shard does not match the
/// coordinator's expected fingerprint — configuration divergence between
/// coordinator and worker (different binary, library, or spec mapping).
class ShardMismatchError : public Error {
 public:
  using Error::Error;
};

struct ShardExecOutcome {
  /// campaign_fingerprint over the executed shard sub-plan.
  std::uint64_t shard_fingerprint = 0;
  std::size_t strikes = 0;
  /// One journal-format `strike` line per result, global plan indices,
  /// shard order — the fabric's wire format for shard results.
  std::string payload;
};

/// Executes one shard of a campaign for the fabric: rebuilds the full
/// plan from the spec, cuts shard `spec.shard_index` of
/// `spec.shard_total`, validates it against `expect_fp` when provided
/// (throwing ShardMismatchError on divergence) and runs it. The spec
/// must carry shard fields and no wall-clock-dependent options.
[[nodiscard]] ShardExecOutcome run_shard_exec(
    const DesignSession& session, const CampaignSpec& spec,
    std::optional<std::uint64_t> expect_fp,
    const sim::CancelToken* cancel = nullptr);

// ---- sta ------------------------------------------------------------

/// The `sta` subcommand's stdout: timing report plus the stats line.
[[nodiscard]] std::string run_sta_report(const DesignSession& session);

// ---- coverage -------------------------------------------------------

struct CoverageSpec {
  std::size_t runs = 50;
  std::size_t cycles = 20;
  double width_ps = 400.0;
  std::uint64_t seed = 1;
  /// Sweep the §3.2 scenario classes instead of random functional strikes.
  bool scenarios = false;
  bool json = true;
};

[[nodiscard]] std::uint64_t coverage_spec_fingerprint(
    const CoverageSpec& spec, std::uint64_t design_key);

struct CoverageOutcome {
  bool valid = false;
  std::string output;
};

[[nodiscard]] CoverageOutcome run_coverage(const DesignSession& session,
                                           const CoverageSpec& spec);

// ---- certify --------------------------------------------------------

struct CertifySpec {
  bool q150 = false;
  std::optional<double> delta_ps;
  double skew_ps = 0.0;
  /// Envelope to certify against, ps; 0 selects the params' designed δ.
  double envelope_ps = 0.0;
  std::uint64_t seed = 1;
  bool json = true;
  /// Protection scheme whose predicate the certificate is about (empty =
  /// cwsp). A scheme the static certifier cannot express degrades every
  /// site to `unknown` — never a silent pass.
  std::string scheme;

  // One-shot-only extra (client-local output directory; rejected by the
  // server for the same reason as campaign artifact dirs).
  std::string artifact_dir;
};

[[nodiscard]] std::uint64_t certify_spec_fingerprint(
    const CertifySpec& spec, std::uint64_t design_key);

struct CertifyOutcome {
  std::size_t escapes = 0;
  std::size_t unknowns = 0;
  std::string output;
};

/// Certifies every strike site of the session's design — the single code
/// path behind `cwsp_tool certify` and the service `certify` op, so both
/// produce byte-identical reports.
[[nodiscard]] CertifyOutcome run_certify(const DesignSession& session,
                                         const CertifySpec& spec);

// ---- compare --------------------------------------------------------

struct CompareSpec {
  std::size_t runs = 50;
  std::size_t cycles = 16;
  double width_ps = 400.0;
  std::uint64_t seed = 1;
  std::size_t jobs = 1;
  /// Scheme / fault-model names to compare; empty = every registered one.
  std::vector<std::string> schemes;
  std::vector<std::string> fault_models;
  bool json = true;
};

[[nodiscard]] std::uint64_t compare_spec_fingerprint(
    const CompareSpec& spec, std::uint64_t design_key);

struct CompareOutcome {
  /// Sum of unexpected escapes across every (scheme, model) cell — the
  /// CLI's exit-status signal.
  std::size_t unexpected_escapes = 0;
  std::string output;
};

/// Comparative Tables 1–4 across schemes × fault models — the single
/// code path behind `cwsp_tool compare` and the service `compare` op.
[[nodiscard]] CompareOutcome run_compare(const DesignSession& session,
                                         const CompareSpec& spec);

// ---- lint -----------------------------------------------------------

struct LintSpec {
  /// Exactly one of path/text names the design source. With `path` the
  /// design is read from disk (the CLI case — diagnostics carry the
  /// path); with `text` it is parsed in memory under `name`.
  std::string path;
  std::string text;
  std::string name = "bench";
  bool hardened = false;
  bool q150 = false;
  std::optional<double> delta_ps;
  double skew_ps = 0.0;
  std::optional<double> period_ps;
  std::vector<std::string> fallback_cells;
  bool json = true;
  /// Findings at or above this severity make the outcome "failed".
  lint::Severity fail_threshold = lint::Severity::kError;
  /// Run the certify rule family alongside the standard rules (requires
  /// `hardened` so protection params are configured).
  bool certify = false;
  double certify_envelope_ps = 0.0;
  std::uint64_t certify_seed = 1;
  /// Protection scheme the hardened checks target (empty = cwsp). A
  /// non-CWSP scheme skips the CWSP structural invariants and reports a
  /// warning diagnostic instead — never a silent pass.
  std::string scheme;

  // One-shot-only extra: baseline file (client-local). Absent file →
  // record the current diagnostics; present → suppress matches and fail
  // only on new ones (docs/lint.md).
  std::string baseline_path;
};

struct LintOutcome {
  bool failed = false;
  /// The design failed to parse at all (typed exit code 2 for the CLI).
  bool parse_failed = false;
  std::string output;
  /// Human-readable baseline activity ("recorded N" / "suppressed N"),
  /// empty when no baseline is in play. Printed to stderr by the CLI so
  /// JSON output stays parseable.
  std::string baseline_note;
};

[[nodiscard]] LintOutcome run_lint(const LintSpec& spec,
                                   const CellLibrary& library);

}  // namespace cwsp::service
