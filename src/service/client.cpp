#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace cwsp::service {

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CWSP_REQUIRE_MSG(fd_ >= 0, "cannot create unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CWSP_REQUIRE_MSG(socket_path.size() < sizeof(addr.sun_path),
                   "socket path too long: " << socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot connect to '" + socket_path +
                "': " + std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const std::string& line) {
  std::string payload = line;
  if (payload.empty() || payload.back() != '\n') payload.push_back('\n');
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd_, payload.data() + sent,
                             payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) throw Error("connection to server lost while sending");
    sent += static_cast<std::size_t>(n);
  }
}

bool Client::read_line(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace cwsp::service
