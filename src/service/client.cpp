#include "service/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/backoff.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/stopwatch.hpp"
#include "service/net.hpp"

namespace cwsp::service {
namespace {

int connect_unix_once(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CWSP_REQUIRE_MSG(fd >= 0, "cannot create unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CWSP_REQUIRE_MSG(socket_path.size() < sizeof(addr.sun_path),
                   "socket path too long: " << socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  return fd;
}

/// Runs `attempt` up to dial.attempts times with backoff sleeps between
/// failures; returns the connected fd or throws with the last errno.
int connect_with_retry(const DialOptions& dial, const std::string& label,
                       const std::function<int()>& attempt) {
  const std::size_t attempts = dial.attempts == 0 ? 1 : dial.attempts;
  Backoff backoff(dial.backoff_base_ms, dial.backoff_cap_ms,
                  dial.jitter_seed);
  int last_errno = 0;
  for (std::size_t i = 0; i < attempts; ++i) {
    if (i > 0) {
      const double delay = backoff.next_delay_ms();
      metrics::Registry::global().counter("service.client.connect_retries")
          .add();
      if (dial.on_backoff) dial.on_backoff(delay);
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(delay * 1000.0)));
    }
    const int fd = attempt();
    if (fd >= 0) return fd;
    last_errno = errno;
  }
  throw Error("cannot connect to '" + label + "' after " +
              std::to_string(attempts) +
              " attempt(s): " + std::strerror(last_errno));
}

}  // namespace

Client::Client(const std::string& socket_path, const DialOptions& dial) {
  fd_ = connect_with_retry(dial, socket_path,
                           [&] { return connect_unix_once(socket_path); });
}

Client::Client(const std::string& host, std::uint16_t port,
               const DialOptions& dial) {
  const net::Endpoint endpoint{host, port};
  fd_ = connect_with_retry(dial, net::to_string(endpoint), [&] {
    return net::tcp_connect(endpoint, dial.connect_timeout_ms);
  });
}

std::unique_ptr<Client> Client::dial(const std::string& endpoint,
                                     const DialOptions& options) {
  net::Endpoint tcp;
  if (net::parse_tcp_endpoint(endpoint, tcp)) {
    return std::make_unique<Client>(tcp.host, tcp.port, options);
  }
  return std::make_unique<Client>(endpoint, options);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const std::string& line) {
  std::string payload = line;
  if (payload.empty() || payload.back() != '\n') payload.push_back('\n');
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd_, payload.data() + sent,
                             payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) throw Error("connection to server lost while sending");
    sent += static_cast<std::size_t>(n);
  }
}

bool Client::read_line(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Client::ReadStatus Client::read_line_for(std::string& line,
                                         double timeout_ms) {
  const auto deadline = Stopwatch::deadline_after(timeout_ms);
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return ReadStatus::kLine;
    }
    const auto now = Stopwatch::Clock::now();
    if (now >= deadline) return ReadStatus::kTimeout;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kClosed;
    }
    if (rc == 0) return ReadStatus::kTimeout;
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) return ReadStatus::kClosed;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace cwsp::service
