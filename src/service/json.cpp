#include "service/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cwsp::service::json {
namespace {

[[noreturn]] void fail(const std::string& what, std::size_t at) {
  throw ParseError("json: " + what + " at offset " + std::to_string(at));
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    const Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage", pos_);
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep", pos_);
    skip_ws();
    Value v;
    switch (peek()) {
      case '{':
        v = parse_object();
        break;
      case '[':
        v = parse_array();
        break;
      case '"':
        v = Value::make_string(parse_string());
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        v = Value::make_bool(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        v = Value::make_bool(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        break;
      default:
        v = Value::make_number(parse_number());
    }
    --depth_;
    return v;
  }

  Value parse_object() {
    expect('{');
    Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(object));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value::make_object(std::move(object));
    }
  }

  Value parse_array() {
    expect('[');
    Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value::make_array(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape", pos_);
          }
          // The protocol's payloads are ASCII; encode BMP code points as
          // UTF-8 so escape()/parse() round-trip any payload byte.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape", pos_);
      }
    }
  }

  double parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected a value", pos_);
    const std::string token = text_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number", begin);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

[[noreturn]] void type_error(const char* want) {
  throw ParseError(std::string("json: value is not ") + want);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) type_error("a boolean");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) type_error("a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) type_error("a string");
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) type_error("an array");
  return *array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) type_error("an object");
  return *object_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

std::string Value::text(const std::string& key,
                        const std::string& fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_string();
}

double Value::number(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

bool Value::boolean(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<Array>(std::move(a));
  return v;
}

Value Value::make_object(Object o) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<Object>(std::move(o));
  return v;
}

Value parse(const std::string& text) { return Parser(text).parse_document(); }

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cwsp::service::json
