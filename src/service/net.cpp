#include "service/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace cwsp::service::net {
namespace {

/// Resolves a host string to an IPv4 address. Numeric literals resolve
/// without touching the resolver.
bool resolve_ipv4(const std::string& host, in_addr& out) {
  const std::string effective = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, effective.c_str(), &out) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (::getaddrinfo(effective.c_str(), nullptr, &hints, &result) != 0 ||
      result == nullptr) {
    return false;
  }
  out = reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return true;
}

}  // namespace

bool parse_tcp_endpoint(const std::string& text, Endpoint& out) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string port_text = text.substr(colon + 1);
  if (port_text.empty()) return false;
  std::uint64_t port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') return false;
    port = port * 10 + static_cast<std::uint64_t>(c - '0');
    if (port > 65535) return false;
  }
  out.host = text.substr(0, colon);
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

std::string to_string(const Endpoint& endpoint) {
  return (endpoint.host.empty() ? "127.0.0.1" : endpoint.host) + ":" +
         std::to_string(endpoint.port);
}

int tcp_connect(const Endpoint& endpoint, double timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (!resolve_ipv4(endpoint.host, addr.sin_addr)) {
    errno = EHOSTUNREACH;
    return -1;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;

  if (timeout_ms <= 0.0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      errno = err;
      return -1;
    }
  } else {
    // Non-blocking connect + poll so a black-holed endpoint costs at most
    // `timeout_ms`, then back to blocking mode for the NDJSON exchange.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr));
    if (rc != 0) {
      if (errno != EINPROGRESS) {
        const int err = errno;
        ::close(fd);
        errno = err;
        return -1;
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (ready <= 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        ::close(fd);
        errno = ready <= 0 ? ETIMEDOUT : so_error;
        return -1;
      }
    }
    ::fcntl(fd, F_SETFL, flags);
  }

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int tcp_listen(const Endpoint& endpoint, std::uint16_t* bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  CWSP_REQUIRE_MSG(resolve_ipv4(endpoint.host, addr.sin_addr),
                   "cannot resolve '" << endpoint.host << "'");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CWSP_REQUIRE_MSG(fd >= 0, "cannot create tcp socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw Error("cannot bind tcp " + to_string(endpoint) + ": " +
                std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("tcp listen failed: " + std::string(std::strerror(err)));
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    CWSP_REQUIRE_MSG(
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
        "getsockname failed");
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace cwsp::service::net
