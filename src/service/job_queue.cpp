#include "service/job_queue.hpp"

#include "common/metrics.hpp"

namespace cwsp::service {
namespace {

void set_depth_gauge(std::size_t depth) {
  metrics::Registry::global()
      .gauge("service.queue.depth")
      .set(static_cast<std::int64_t>(depth));
}

}  // namespace

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool JobQueue::try_push(Job job) {
  if (job.priority < 0) job.priority = 0;
  if (job.priority >= kBands) job.priority = kBands - 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return false;
    std::size_t total = 0;
    for (const auto& band : bands_) total += band.size();
    if (total >= capacity_) {
      metrics::Registry::global().counter("service.queue.rejected").add();
      return false;
    }
    bands_[job.priority].push_back(std::move(job));
    set_depth_gauge(total + 1);
  }
  cv_.notify_one();
  return true;
}

std::vector<Job> JobQueue::pop_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto& band : bands_) {
      if (band.empty()) continue;
      std::vector<Job> batch;
      batch.push_back(std::move(band.front()));
      band.pop_front();
      const std::uint64_t key = batch.front().batch_key;
      if (key != 0) {
        // Sweep every band: a duplicate may be queued at any priority.
        for (auto& sweep : bands_) {
          for (auto it = sweep.begin(); it != sweep.end();) {
            if (it->batch_key == key) {
              batch.push_back(std::move(*it));
              it = sweep.erase(it);
            } else {
              ++it;
            }
          }
        }
        if (batch.size() > 1) {
          metrics::Registry::global()
              .counter("service.batch.coalesced")
              .add(batch.size() - 1);
        }
      }
      std::size_t total = 0;
      for (const auto& b : bands_) total += b.size();
      set_depth_gauge(total);
      return batch;
    }
    if (shutdown_) return {};
    cv_.wait(lock);
  }
}

std::optional<Job> JobQueue::cancel(std::uint64_t conn_id,
                                    const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& band : bands_) {
    for (auto it = band.begin(); it != band.end(); ++it) {
      if (it->conn_id == conn_id && it->id == id) {
        Job job = std::move(*it);
        band.erase(it);
        return job;
      }
    }
  }
  return std::nullopt;
}

void JobQueue::drop_connection(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& band : bands_) {
    for (auto it = band.begin(); it != band.end();) {
      it = it->conn_id == conn_id ? band.erase(it) : ++it;
    }
  }
}

void JobQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::vector<Job> JobQueue::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Job> out;
  for (auto& band : bands_) {
    for (auto& job : band) out.push_back(std::move(job));
    band.clear();
  }
  return out;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& band : bands_) total += band.size();
  return total;
}

}  // namespace cwsp::service
