#include "service/handlers.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

#include "analysis/certify.hpp"
#include "analysis/certify_rules.hpp"
#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "cwsp/coverage.hpp"
#include "cwsp/elaborate_system.hpp"
#include "cwsp/eqglb_tree.hpp"
#include "cwsp/harden.hpp"
#include "cwsp/timing.hpp"
#include "lint/baseline.hpp"
#include "netlist/analysis.hpp"
#include "netlist/bench_parser.hpp"
#include "scheme/compare.hpp"
#include "set/strike_plan.hpp"

namespace cwsp::service {
namespace {

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffULL;
    h *= 1099511628211ULL;
  }
}

void fnv_mix_str(std::uint64_t& h, std::string_view s) {
  fnv_mix(h, s.size());
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
}

// A spec whose scheme/model lists denote the registry defaults must
// fingerprint identically to a pre-registry spec (empty lists), so
// cached/coalesced identities survive the upgrade.
bool is_default_schemes(const std::vector<std::string>& names) {
  return names.empty() || (names.size() == 1 && names.front() == "cwsp");
}
bool is_default_models(const std::vector<std::string>& names) {
  return names.empty() ||
         (names.size() == 1 && names.front() == "single-set");
}

std::string num(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

core::ProtectionParams lint_params(const LintSpec& spec) {
  if (spec.delta_ps.has_value()) {
    return core::ProtectionParams::for_glitch_width(
        Picoseconds(*spec.delta_ps));
  }
  return spec.q150 ? core::ProtectionParams::q150()
                   : core::ProtectionParams::q100();
}

}  // namespace

std::uint64_t campaign_spec_fingerprint(const CampaignSpec& spec,
                                        std::uint64_t design_key) {
  std::uint64_t h = 1469598103934665603ULL;
  fnv_mix(h, design_key);
  fnv_mix(h, 0xca3b);  // op tag: campaign
  fnv_mix(h, spec.runs);
  fnv_mix(h, spec.cycles);
  fnv_mix(h, std::bit_cast<std::uint64_t>(spec.width_ps));
  fnv_mix(h, spec.seed);
  fnv_mix(h, std::bit_cast<std::uint64_t>(spec.timeout_ms));
  fnv_mix(h, spec.adversarial ? 1 : 0);
  fnv_mix(h, spec.use_legacy_kernel ? 1 : 0);
  fnv_mix(h, spec.shard_index);
  fnv_mix(h, spec.shard_total);
  fnv_mix(h, spec.json ? 1 : 0);
  if (!is_default_schemes(spec.schemes)) {
    fnv_mix(h, 0x5c4e);  // field tag: non-default scheme list
    fnv_mix(h, spec.schemes.size());
    for (const std::string& name : spec.schemes) fnv_mix_str(h, name);
  }
  if (!is_default_models(spec.fault_models)) {
    fnv_mix(h, 0xfa07);  // field tag: non-default fault-model list
    fnv_mix(h, spec.fault_models.size());
    for (const std::string& name : spec.fault_models) fnv_mix_str(h, name);
  }
  // jobs is deliberately excluded: reports are byte-identical for any
  // worker count, so requests differing only in jobs coalesce.
  return h;
}

std::vector<CampaignCell> campaign_cells(const CampaignSpec& spec) {
  std::vector<const scheme::ProtectionScheme*> schemes;
  if (spec.schemes.empty()) {
    schemes.push_back(&scheme::default_scheme());
  } else {
    for (const std::string& name : spec.schemes) {
      const scheme::ProtectionScheme* s = scheme::find_scheme(name);
      CWSP_REQUIRE_MSG(s != nullptr, "unknown scheme '"
                                         << name << "' (known: "
                                         << scheme::known_scheme_names()
                                         << ")");
      schemes.push_back(s);
    }
  }
  std::vector<const scheme::FaultModel*> models;
  if (spec.fault_models.empty()) {
    models.push_back(&scheme::default_fault_model());
  } else {
    for (const std::string& name : spec.fault_models) {
      const scheme::FaultModel* m = scheme::find_fault_model(name);
      CWSP_REQUIRE_MSG(m != nullptr,
                       "unknown fault model '"
                           << name << "' (known: "
                           << scheme::known_fault_model_names() << ")");
      models.push_back(m);
    }
  }
  std::vector<CampaignCell> cells;
  cells.reserve(schemes.size() * models.size());
  for (const scheme::ProtectionScheme* s : schemes) {
    for (const scheme::FaultModel* m : models) {
      cells.push_back(CampaignCell{s, m});
    }
  }
  return cells;
}

set::StrikePlanOptions campaign_plan_options(
    const CampaignSpec& spec, const core::ProtectionParams& params,
    Picoseconds clock_period) {
  set::StrikePlanOptions plan_options;
  plan_options.functional_strikes = spec.runs;
  plan_options.cycles_per_run = spec.cycles;
  plan_options.glitch_width = Picoseconds(spec.width_ps);
  plan_options.clock_period = clock_period;
  if (spec.adversarial) {
    const std::size_t extra = std::max<std::size_t>(1, spec.runs / 4);
    plan_options.protection_path_strikes = extra;
    plan_options.clock_edge_strikes = extra;
    plan_options.out_of_envelope_strikes = extra;
    plan_options.out_of_envelope_width = params.delta + Picoseconds(400.0);
  }
  return plan_options;
}

namespace {

CampaignOutcome run_campaign_cell(const DesignSession& session,
                                  const CampaignSpec& spec,
                                  const CampaignCell& cell,
                                  const sim::CancelToken* cancel) {
  const Netlist& netlist = *session.netlist;
  CWSP_REQUIRE_MSG(netlist.num_flip_flops() > 0,
                   "campaign requires a sequential design");
  const auto params = core::ProtectionParams::q100();
  const Picoseconds period = session.period_q100;

  const set::StrikePlanOptions plan_options =
      campaign_plan_options(spec, params, period);

  campaign::EngineOptions engine_options;
  engine_options.seed = spec.seed;
  engine_options.cycles_per_run = spec.cycles;
  engine_options.jobs = std::max<std::size_t>(1, spec.jobs);
  engine_options.timeout_ms = spec.timeout_ms;
  engine_options.journal_path = spec.journal_path;
  engine_options.resume = spec.resume;
  engine_options.minimize_escapes = spec.minimize_escapes;
  engine_options.artifact_dir = spec.artifact_dir;
  engine_options.stop_after = spec.stop_after;
  engine_options.use_legacy_kernel = spec.use_legacy_kernel;
  engine_options.cancel = cancel;
  engine_options.scheme = cell.scheme;
  engine_options.fault_model = cell.model->name();

  set::StrikePlan plan =
      cell.model->build_plan(netlist, plan_options, engine_options.seed);
  if (spec.shard_total > 0) {
    CWSP_REQUIRE_MSG(spec.shard_index >= 1 &&
                         spec.shard_index <= spec.shard_total,
                     "shard index " << spec.shard_index
                                    << " out of range for "
                                    << spec.shard_total << " shards");
    plan = set::shard_plan(plan, spec.shard_total)[spec.shard_index - 1];
  }

  const campaign::CampaignEngine engine(netlist, params, period,
                                        session.kernel_context);
  const auto result = engine.run(plan, engine_options);

  CampaignOutcome outcome;
  outcome.status = campaign::campaign_status(result);
  outcome.output =
      spec.json ? campaign::format_campaign_json(result, plan, netlist,
                                                 engine_options, period)
                : campaign::format_campaign_text(result, plan, netlist);
  return outcome;
}

// Worst-first ordering for a sweep's overall status.
int status_rank(campaign::CampaignStatus status) {
  switch (status) {
    case campaign::CampaignStatus::kInterrupted: return 3;
    case campaign::CampaignStatus::kInvalid: return 2;
    case campaign::CampaignStatus::kEscapes: return 1;
    case campaign::CampaignStatus::kOk: return 0;
  }
  return 0;
}

std::string_view trim_trailing_newline(const std::string& s) {
  std::string_view v = s;
  while (!v.empty() && (v.back() == '\n' || v.back() == '\r')) {
    v.remove_suffix(1);
  }
  return v;
}

}  // namespace

CampaignOutcome run_campaign(const DesignSession& session,
                             const CampaignSpec& spec,
                             const sim::CancelToken* cancel) {
  const std::vector<CampaignCell> cells = campaign_cells(spec);
  if (cells.size() == 1) {
    return run_campaign_cell(session, spec, cells.front(), cancel);
  }

  // Cross-product sweep: one campaign per (scheme, model) cell, each
  // byte-identical to the same cell requested alone. Options that name
  // client-local state or cut the plan apply to a single campaign only.
  CWSP_REQUIRE_MSG(spec.journal_path.empty() && !spec.resume &&
                       !spec.minimize_escapes && spec.artifact_dir.empty() &&
                       spec.stop_after == 0,
                   "journal/resume/minimize/artifact/stop-after options "
                   "apply to a single campaign, not a scheme sweep");
  CWSP_REQUIRE_MSG(spec.shard_total == 0,
                   "sharding applies to a single campaign, not a scheme "
                   "sweep");

  const Netlist& netlist = *session.netlist;
  CampaignOutcome outcome;
  outcome.status = campaign::CampaignStatus::kOk;
  std::ostringstream os;
  if (spec.json) {
    os << "{\n";
    os << "  \"schema\": \"cwsp-campaign-sweep-v1\",\n";
    os << "  \"design\": \"" << netlist.name() << "\",\n";
  }
  std::ostringstream cells_os;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CampaignCell& cell = cells[i];
    const CampaignOutcome one =
        run_campaign_cell(session, spec, cell, cancel);
    if (status_rank(one.status) > status_rank(outcome.status)) {
      outcome.status = one.status;
    }
    if (spec.json) {
      if (i > 0) cells_os << ",\n";
      cells_os << "    {\"scheme\": \"" << cell.scheme->name()
               << "\", \"fault_model\": \"" << cell.model->name()
               << "\", \"status\": \"" << campaign::to_string(one.status)
               << "\",\n     \"report\": "
               << trim_trailing_newline(one.output) << "}";
    } else {
      if (i > 0) cells_os << "\n";
      cells_os << "=== scheme=" << cell.scheme->name()
               << " fault-model=" << cell.model->name() << " ===\n"
               << one.output;
    }
  }
  if (spec.json) {
    os << "  \"status\": \"" << campaign::to_string(outcome.status)
       << "\",\n";
    os << "  \"cells\": [\n" << cells_os.str() << "\n  ]\n}\n";
  } else {
    os << cells_os.str();
  }
  outcome.output = os.str();
  return outcome;
}

ShardExecOutcome run_shard_exec(const DesignSession& session,
                                const CampaignSpec& spec,
                                std::optional<std::uint64_t> expect_fp,
                                const sim::CancelToken* cancel) {
  const Netlist& netlist = *session.netlist;
  CWSP_REQUIRE_MSG(netlist.num_flip_flops() > 0,
                   "campaign requires a sequential design");
  CWSP_REQUIRE_MSG(spec.shard_total >= 1 && spec.shard_index >= 1 &&
                       spec.shard_index <= spec.shard_total,
                   "shard_exec needs shard_index in [1, shard_total]");
  // A per-strike timeout makes results wall-clock dependent; a shard that
  // raced a slow machine would merge differently than a fast one, which
  // breaks the byte-identity contract the fabric is built on.
  CWSP_REQUIRE_MSG(spec.timeout_ms == 0.0,
                   "shard_exec does not accept timeout_ms");
  const std::vector<CampaignCell> cells = campaign_cells(spec);
  CWSP_REQUIRE_MSG(cells.size() == 1,
                   "shard_exec executes exactly one (scheme, fault-model) "
                   "cell — the coordinator fans sweeps out cell by cell");
  const CampaignCell& cell = cells.front();
  const auto params = core::ProtectionParams::q100();
  const Picoseconds period = session.period_q100;

  const set::StrikePlan full_plan = cell.model->build_plan(
      netlist, campaign_plan_options(spec, params, period), spec.seed);
  const set::StrikePlan shard =
      set::shard_plan(full_plan, spec.shard_total)[spec.shard_index - 1];
  const std::uint64_t shard_fp = campaign::campaign_fingerprint(
      shard, spec.seed, spec.cycles, period);
  if (expect_fp.has_value() && *expect_fp != shard_fp) {
    std::ostringstream os;
    os << "shard " << spec.shard_index << "/" << spec.shard_total
       << " fingerprint mismatch: coordinator expects " << std::hex
       << *expect_fp << ", worker derived " << shard_fp;
    throw ShardMismatchError(os.str());
  }

  campaign::EngineOptions engine_options;
  engine_options.seed = spec.seed;
  engine_options.cycles_per_run = spec.cycles;
  engine_options.jobs = std::max<std::size_t>(1, spec.jobs);
  engine_options.use_legacy_kernel = spec.use_legacy_kernel;
  engine_options.cancel = cancel;
  engine_options.scheme = cell.scheme;
  engine_options.fault_model = cell.model->name();

  const campaign::CampaignEngine engine(netlist, params, period,
                                        session.kernel_context);
  const campaign::CampaignResult result = engine.run(shard, engine_options);

  ShardExecOutcome outcome;
  outcome.shard_fingerprint = shard_fp;
  outcome.strikes = shard.size();
  for (const campaign::StrikeResult& r : result.strikes) {
    CWSP_REQUIRE_MSG(r.completed(), "shard execution was interrupted");
    outcome.payload += campaign::format_strike_line(r);
  }
  return outcome;
}

std::string run_sta_report(const DesignSession& session) {
  const Netlist& netlist = *session.netlist;
  std::ostringstream os;
  os << timing_report(netlist, session.sta);
  const auto stats = netlist.stats();
  os << "gates " << stats.num_gates << ", flip-flops "
     << stats.num_flip_flops << ", area " << stats.total_area.value()
     << " um^2\n";
  return os.str();
}

std::uint64_t coverage_spec_fingerprint(const CoverageSpec& spec,
                                        std::uint64_t design_key) {
  std::uint64_t h = 1469598103934665603ULL;
  fnv_mix(h, design_key);
  fnv_mix(h, 0xc0fe);  // op tag: coverage
  fnv_mix(h, spec.runs);
  fnv_mix(h, spec.cycles);
  fnv_mix(h, std::bit_cast<std::uint64_t>(spec.width_ps));
  fnv_mix(h, spec.seed);
  fnv_mix(h, spec.scenarios ? 1 : 0);
  fnv_mix(h, spec.json ? 1 : 0);
  return h;
}

CoverageOutcome run_coverage(const DesignSession& session,
                             const CoverageSpec& spec) {
  const Netlist& netlist = *session.netlist;
  CWSP_REQUIRE_MSG(netlist.num_flip_flops() > 0,
                   "coverage requires a sequential design");
  const auto params = core::ProtectionParams::q100();

  core::CampaignOptions options;
  options.runs = spec.runs;
  options.cycles_per_run = spec.cycles;
  options.glitch_width = Picoseconds(spec.width_ps);
  options.seed = spec.seed;

  const core::CoverageReport report =
      spec.scenarios
          ? core::run_scenario_sweep(netlist, params, session.period_q100,
                                     options)
          : core::run_functional_campaign(netlist, params,
                                          session.period_q100, options);

  CoverageOutcome outcome;
  outcome.valid = report.valid();
  std::ostringstream os;
  if (spec.json) {
    os << "{\n  \"schema\": \"cwsp-coverage-report-v1\",\n  \"design\": \""
       << netlist.name() << "\",\n  \"mode\": \""
       << (spec.scenarios ? "scenarios" : "functional")
       << "\",\n  \"seed\": " << spec.seed
       << ",\n  \"strikes\": " << report.strikes_injected
       << ",\n  \"escapes\": " << report.protected_failures
       << ",\n  \"unprotected_failures\": " << report.unprotected_failures
       << ",\n  \"inconclusive\": " << report.inconclusive
       << ",\n  \"coverage_pct\": " << num(report.protected_coverage_pct())
       << ",\n  \"scenarios\": [";
    for (std::size_t i = 0; i < report.scenarios.size(); ++i) {
      const core::ScenarioStats& s = report.scenarios[i];
      if (i > 0) os << ", ";
      os << "{\"name\": \"" << s.name << "\", \"strikes\": " << s.strikes
         << ", \"escapes\": " << s.escapes << "}";
    }
    os << "]\n}\n";
  } else {
    os << "coverage              : " << netlist.name() << " ("
       << (spec.scenarios ? "scenario sweep" : "functional strikes")
       << ")\n";
    os << "strikes / escapes     : " << report.strikes_injected << " / "
       << report.protected_failures << "\n";
    os << "protected coverage    : " << num(report.protected_coverage_pct())
       << " %\n";
    os << "unprotected failures  : " << num(report.unprotected_failure_pct())
       << " %\n";
    for (const core::ScenarioStats& s : report.scenarios) {
      os << "  " << s.name << ": " << s.strikes << " strikes, " << s.escapes
         << " escape(s)\n";
    }
  }
  outcome.output = os.str();
  return outcome;
}

std::uint64_t certify_spec_fingerprint(const CertifySpec& spec,
                                       std::uint64_t design_key) {
  std::uint64_t h = 1469598103934665603ULL;
  fnv_mix(h, design_key);
  fnv_mix(h, 0xce47);  // op tag: certify
  fnv_mix(h, spec.q150 ? 1 : 0);
  fnv_mix(h, spec.delta_ps.has_value() ? 1 : 0);
  fnv_mix(h, std::bit_cast<std::uint64_t>(spec.delta_ps.value_or(0.0)));
  fnv_mix(h, std::bit_cast<std::uint64_t>(spec.skew_ps));
  fnv_mix(h, std::bit_cast<std::uint64_t>(spec.envelope_ps));
  fnv_mix(h, spec.seed);
  fnv_mix(h, spec.json ? 1 : 0);
  if (!spec.scheme.empty() && spec.scheme != "cwsp") {
    fnv_mix(h, 0x5c4f);  // field tag: non-default certify scheme
    fnv_mix_str(h, spec.scheme);
  }
  return h;
}

CertifyOutcome run_certify(const DesignSession& session,
                           const CertifySpec& spec) {
  const Netlist& netlist = *session.netlist;
  const scheme::ProtectionScheme* sch =
      spec.scheme.empty() ? &scheme::default_scheme()
                          : scheme::find_scheme(spec.scheme);
  CWSP_REQUIRE_MSG(sch != nullptr, "unknown scheme '"
                                       << spec.scheme << "' (known: "
                                       << scheme::known_scheme_names()
                                       << ")");
  core::ProtectionParams params;
  if (spec.delta_ps.has_value()) {
    params = core::ProtectionParams::for_glitch_width(
        Picoseconds(*spec.delta_ps));
  } else {
    params = spec.q150 ? core::ProtectionParams::q150()
                       : core::ProtectionParams::q100();
  }
  // Same period the campaign driver would run this configuration at:
  // the design's hardened period floored at Eq. 6's minimum.
  const Picoseconds period = std::max(
      core::hardened_clock_period(session.sta.dmax, netlist.library()),
      core::min_clock_period_for_delta(params));

  if (!sch->certifiable()) {
    // The static certifier's window-dataflow analysis expresses only the
    // CWSP protection predicate. Every site degrades to `unknown` — the
    // honest answer: a sampling campaign still has to cover them.
    const scheme::Characterization ch = sch->characterize(netlist, params);
    analysis::CertifyResult result;
    result.design = netlist.name();
    result.params = params;
    result.clock_period = period;
    result.envelope_ps = spec.envelope_ps > 0.0 ? spec.envelope_ps
                                                : ch.max_glitch.value();
    result.physical_envelope_ps = ch.max_glitch.value();
    result.seed = spec.seed;
    const std::string note =
        std::string("protection predicate of scheme '") + sch->name() +
        "' is not expressible by the static certifier";
    for (NetId site : set::strike_sites(netlist)) {
      analysis::SiteCertificate cert;
      cert.site = site;
      cert.verdict = analysis::SiteVerdict::kUnknown;
      cert.note = note;
      result.sites.push_back(std::move(cert));
    }
    CertifyOutcome outcome;
    outcome.escapes = 0;
    outcome.unknowns = result.sites.size();
    outcome.output =
        spec.json ? analysis::format_certify_json(result, netlist) + "\n"
                  : analysis::format_certify_text(result, netlist);
    return outcome;
  }

  analysis::CertifyOptions options;
  options.envelope_ps = spec.envelope_ps;
  options.clock_skew_ps = spec.skew_ps;
  options.seed = spec.seed;
  options.artifact_dir = spec.artifact_dir;
  const analysis::CertifyResult result = analysis::certify_design(
      netlist, params, period, options, session.kernel_context);

  CertifyOutcome outcome;
  outcome.escapes = result.escape_count();
  outcome.unknowns = result.unknown_count();
  outcome.output = spec.json
                       ? analysis::format_certify_json(result, netlist) + "\n"
                       : analysis::format_certify_text(result, netlist);
  return outcome;
}

std::uint64_t compare_spec_fingerprint(const CompareSpec& spec,
                                       std::uint64_t design_key) {
  std::uint64_t h = 1469598103934665603ULL;
  fnv_mix(h, design_key);
  fnv_mix(h, 0xc04a);  // op tag: compare
  fnv_mix(h, spec.runs);
  fnv_mix(h, spec.cycles);
  fnv_mix(h, std::bit_cast<std::uint64_t>(spec.width_ps));
  fnv_mix(h, spec.seed);
  fnv_mix(h, spec.schemes.size());
  for (const std::string& name : spec.schemes) fnv_mix_str(h, name);
  fnv_mix(h, spec.fault_models.size());
  for (const std::string& name : spec.fault_models) fnv_mix_str(h, name);
  fnv_mix(h, spec.json ? 1 : 0);
  // jobs excluded for the same reason as campaign specs.
  return h;
}

CompareOutcome run_compare(const DesignSession& session,
                           const CompareSpec& spec) {
  const Netlist& netlist = *session.netlist;
  const auto params = core::ProtectionParams::q100();

  scheme::CompareOptions options;
  options.runs = spec.runs;
  options.cycles = spec.cycles;
  options.glitch_width = Picoseconds(spec.width_ps);
  options.seed = spec.seed;
  options.jobs = std::max<std::size_t>(1, spec.jobs);
  options.schemes = spec.schemes;
  options.fault_models = spec.fault_models;

  const scheme::CompareReport report = scheme::run_compare(
      netlist, params, session.period_q100, session.kernel_context,
      options);

  CompareOutcome outcome;
  for (const scheme::CompareReport::CoverageRow& row : report.coverage) {
    outcome.unexpected_escapes += row.unexpected_escapes;
  }
  outcome.output = spec.json ? scheme::format_compare_json(report)
                             : scheme::format_compare_text(report);
  return outcome;
}

LintOutcome run_lint(const LintSpec& spec, const CellLibrary& library) {
  const bool cwsp_lint = spec.scheme.empty() || spec.scheme == "cwsp";
  if (!cwsp_lint) {
    CWSP_REQUIRE_MSG(scheme::find_scheme(spec.scheme) != nullptr,
                     "unknown scheme '" << spec.scheme << "' (known: "
                                        << scheme::known_scheme_names()
                                        << ")");
  }
  lint::LintOptions options;
  if (spec.hardened && cwsp_lint) {
    options.params = lint_params(spec);
    options.clock_skew = Picoseconds(spec.skew_ps);
    if (spec.period_ps.has_value()) {
      options.clock_period = Picoseconds(*spec.period_ps);
    }
    options.certify = spec.certify;
    options.certify_envelope_ps = spec.certify_envelope_ps;
    options.certify_seed = spec.certify_seed;
  }
  options.fallback_cells = spec.fallback_cells;

  const std::string& design_label =
      spec.path.empty() ? spec.name : spec.path;

  // The certify rules live in the analysis library; a registry carrying
  // them is only needed (and only paid for) when the spec asks. The
  // certify rule family is CWSP-only for the same reason as the
  // structural invariants above.
  const lint::RuleRegistry& registry = (spec.certify && cwsp_lint)
                                           ? analysis::certify_registry()
                                           : lint::default_registry();

  lint::LintReport report;
  bool parse_failed = false;
  std::vector<BenchParseIssue> issues;
  BenchParseOptions parse_options;
  parse_options.lenient = true;
  parse_options.issues = &issues;
  try {
    const Netlist netlist =
        spec.path.empty()
            ? parse_bench_string(spec.text, library, spec.name,
                                 parse_options)
            : parse_bench_file(spec.path, library, parse_options);
    if (options.params.has_value()) {
      const int protected_ffs = core::protected_ff_count(netlist);
      if (protected_ffs >= 1) {
        options.tree = core::build_eqglb_tree(protected_ffs);
      }
    }
    report = lint::run_lint(netlist, options, registry);
    lint::add_parse_issue_diagnostics(issues, report);

    // Hardened checks against a non-CWSP scheme: the structural
    // invariants below encode the CWSP protection topology, so they are
    // skipped — loudly, never as a silent pass.
    if (spec.hardened && !cwsp_lint) {
      lint::Diagnostic d;
      d.rule_id = "scheme-unsupported";
      d.severity = lint::Severity::kWarning;
      d.message = "hardened structural checks encode the CWSP topology; "
                  "skipped for scheme '" +
                  spec.scheme + "' (coverage unverified by lint)";
      report.add(std::move(d));
    }

    // Under hardened checks, additionally elaborate the full protected
    // system and check its per-FF protection structure (self-check of
    // the hardening transform's output).
    if (spec.hardened && cwsp_lint && netlist.num_flip_flops() > 0 &&
        !report.fails_at(lint::Severity::kError)) {
      const auto system = core::elaborate_hardened_system(netlist);
      lint::LintOptions system_options;
      system_options.hardened_structure = true;
      report.merge(lint::run_lint(system.netlist, system_options));
    }
  } catch (const Error& e) {
    parse_failed = true;
    report.design = design_label;
    lint::Diagnostic d;
    d.rule_id = "parse-error";
    d.severity = lint::Severity::kError;
    d.message = e.what();
    report.add(std::move(d));
  }

  LintOutcome outcome;
  outcome.parse_failed = parse_failed;

  // Baseline handling happens before formatting so suppressed findings
  // disappear from the report itself; a design that fails to parse
  // bypasses it entirely (parse failures are never baselinable).
  bool recorded = false;
  if (!spec.baseline_path.empty() && !parse_failed) {
    std::ifstream in(spec.baseline_path, std::ios::binary);
    if (in.good()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      const lint::Baseline baseline = lint::parse_baseline(buf.str());
      const std::size_t suppressed = lint::apply_baseline(report, baseline);
      outcome.baseline_note =
          "baseline: " + std::to_string(suppressed) +
          " diagnostic(s) suppressed by " + spec.baseline_path;
    } else {
      const std::string text = lint::format_baseline(report);
      std::ofstream out(spec.baseline_path, std::ios::binary);
      CWSP_REQUIRE_MSG(out.good(), "cannot write baseline file '"
                                       << spec.baseline_path << "'");
      out << text;
      std::size_t baselinable = 0;
      for (const lint::Diagnostic& d : report.diagnostics) {
        if (d.rule_id != "parse-error") ++baselinable;
      }
      outcome.baseline_note = "baseline: recorded " +
                              std::to_string(baselinable) +
                              " diagnostic(s) to " + spec.baseline_path;
      recorded = true;
    }
  }

  outcome.output = spec.json ? lint::format_json(report)
                             : lint::format_text(report);
  // A recording run accepts the current findings by definition; it fails
  // only if the design itself is broken (which skips recording above).
  outcome.failed = !recorded && report.fails_at(spec.fail_threshold);
  return outcome;
}

}  // namespace cwsp::service
