#include "service/worker_registry.hpp"

#include <sstream>

#include "common/metrics.hpp"
#include "service/json.hpp"

namespace cwsp::service {
namespace {

bool expired(std::chrono::steady_clock::time_point seen,
             std::chrono::steady_clock::time_point now, double ttl_ms) {
  return std::chrono::duration<double, std::milli>(now - seen).count() >
         ttl_ms;
}

}  // namespace

std::size_t WorkerRegistry::upsert(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_seen_[endpoint] = Clock::now();
  return last_seen_.size();
}

std::vector<std::string> WorkerRegistry::live(double ttl_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = Clock::now();
  std::vector<std::string> endpoints;
  for (auto it = last_seen_.begin(); it != last_seen_.end();) {
    if (ttl_ms > 0.0 && expired(it->second, now, ttl_ms)) {
      metrics::Registry::global().counter("fabric.worker_evicted").add();
      it = last_seen_.erase(it);
    } else {
      endpoints.push_back(it->first);
      ++it;
    }
  }
  return endpoints;
}

std::string WorkerRegistry::to_json(double ttl_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = Clock::now();
  std::ostringstream os;
  os << "{\"schema\":\"cwsp-workers-v1\",\"workers\":[";
  bool first = true;
  for (const auto& [endpoint, seen] : last_seen_) {
    if (ttl_ms > 0.0 && expired(seen, now, ttl_ms)) continue;
    if (!first) os << ",";
    first = false;
    const auto age =
        std::chrono::duration<double, std::milli>(now - seen).count();
    os << "{\"endpoint\":\"" << json::escape(endpoint)
       << "\",\"age_ms\":" << static_cast<long long>(age) << "}";
  }
  os << "]}";
  return os.str();
}

std::size_t WorkerRegistry::size() {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_seen_.size();
}

}  // namespace cwsp::service
