#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/stopwatch.hpp"
#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/net.hpp"

namespace cwsp::service {
namespace {

std::string inflight_key(std::uint64_t conn_id, const std::string& id) {
  return std::to_string(conn_id) + "/" + id;
}

int priority_of(const json::Value& request) {
  const std::string p = request.text("priority", "normal");
  if (p == "high") return 0;
  if (p == "low") return 2;
  if (p == "normal") return 1;
  throw ParseError("unknown priority '" + p + "'");
}

bool wants_json(const json::Value& request) {
  const std::string format = request.text("format", "json");
  if (format == "json") return true;
  if (format == "text") return false;
  throw ParseError("unknown format '" + format + "' (json|text)");
}

// ---- numeric admission ---------------------------------------------
// Request numbers arrive as untrusted doubles; casting them straight to
// unsigned types makes {"runs":-1} or NaN undefined behavior and huge
// values a trivial resource-exhaustion vector. Every numeric field is
// therefore bounds-checked here, at admission, before any cast.

/// Caps generous enough for real workloads, tight enough that one
/// request cannot pin the daemon.
constexpr std::uint64_t kMaxRuns = 10'000'000;
constexpr std::uint64_t kMaxCycles = 1'000'000;
constexpr std::uint64_t kMaxJobs = 64;
constexpr std::uint64_t kMaxShardTotal = 1'000'000;
constexpr std::uint64_t kMaxSeed = 1ULL << 53;  // exact in a double
constexpr double kMaxPs = 1e9;                  // width / skew horizon
constexpr double kMaxTimeoutMs = 1e9;
constexpr double kMaxSleepMs = 60'000.0;

double finite_field(const json::Value& request, const char* name,
                    double fallback, double lo, double hi) {
  const double v = request.number(name, fallback);
  if (!std::isfinite(v) || v < lo || v > hi) {
    std::ostringstream os;
    os << "'" << name << "' must be a finite number in [" << lo << ", "
       << hi << "]";
    throw ParseError(os.str());
  }
  return v;
}

std::uint64_t uint_field(const json::Value& request, const char* name,
                         std::uint64_t fallback, std::uint64_t max) {
  const double v = request.number(name, static_cast<double>(fallback));
  if (!std::isfinite(v) || v < 0.0 || v != std::floor(v) ||
      v > static_cast<double>(max)) {
    throw ParseError(std::string("'") + name +
                     "' must be a non-negative integer <= " +
                     std::to_string(max));
  }
  return static_cast<std::uint64_t>(v);
}

/// Fills the job's design fields from `design_path` / `design` (+
/// optional `design_name`). Throws ParseError when absent or unreadable.
void resolve_design(const json::Value& request, Job& job,
                    std::string& design_path) {
  if (const json::Value* path = request.find("design_path")) {
    design_path = path->as_string();
    job.design_name = design_name_from_path(design_path);
    job.design_text = read_design_file(design_path);
    return;
  }
  if (const json::Value* text = request.find("design")) {
    job.design_name = request.text("design_name", "bench");
    job.design_text = text->as_string();
    return;
  }
  throw ParseError("request needs 'design_path' or inline 'design' text");
}

/// Splits a comma-separated name list ("tmr,loco" → {"tmr", "loco"});
/// empty items are dropped, so "" yields the empty (default) list.
std::vector<std::string> split_name_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (comma > start) out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

CampaignSpec parse_campaign_spec(const json::Value& request) {
  for (const char* forbidden :
       {"journal", "resume", "minimize", "artifacts", "stop_after"}) {
    if (request.find(forbidden) != nullptr) {
      throw ParseError(std::string("'") + forbidden +
                       "' is a one-shot CLI option, not a service field");
    }
  }
  CampaignSpec spec;
  spec.runs = static_cast<std::size_t>(uint_field(request, "runs", 50, kMaxRuns));
  spec.cycles =
      static_cast<std::size_t>(uint_field(request, "cycles", 16, kMaxCycles));
  spec.width_ps = finite_field(request, "width", 400.0, 0.0, kMaxPs);
  spec.seed = uint_field(request, "seed", 1, kMaxSeed);
  spec.jobs = std::max<std::size_t>(
      1, static_cast<std::size_t>(uint_field(request, "jobs", 1, kMaxJobs)));
  spec.timeout_ms = finite_field(request, "timeout_ms", 0.0, 0.0, kMaxTimeoutMs);
  spec.adversarial = request.boolean("adversarial", false);
  spec.use_legacy_kernel = request.boolean("legacy_kernel", false);
  spec.shard_index = static_cast<std::size_t>(
      uint_field(request, "shard_index", 0, kMaxShardTotal));
  spec.shard_total = static_cast<std::size_t>(
      uint_field(request, "shard_total", 0, kMaxShardTotal));
  if ((spec.shard_index == 0) != (spec.shard_total == 0)) {
    throw ParseError("shard_index and shard_total must be given together");
  }
  spec.distribute = request.boolean("distribute", false);
  spec.deadline_ms =
      finite_field(request, "deadline_ms", 0.0, 0.0, kMaxTimeoutMs);
  spec.schemes = split_name_list(request.text("scheme", ""));
  spec.fault_models = split_name_list(request.text("fault_model", ""));
  spec.json = wants_json(request);
  return spec;
}

/// Shared-secret comparison that does not leak the mismatch position
/// through timing: scans max(len) bytes whatever the inputs.
bool constant_time_equal(const std::string& a, const std::string& b) {
  const std::size_t n = std::max(a.size(), b.size());
  unsigned char diff = a.size() == b.size() ? 0 : 1;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char ca =
        i < a.size() ? static_cast<unsigned char>(a[i]) : 0;
    const unsigned char cb =
        i < b.size() ? static_cast<unsigned char>(b[i]) : 0;
    diff = static_cast<unsigned char>(diff | (ca ^ cb));
  }
  return diff == 0;
}

/// shard_exec's optional `expect_fp`: a 16-hex-digit shard fingerprint.
std::optional<std::uint64_t> parse_expect_fp(const json::Value& request) {
  const std::string text = request.text("expect_fp", "");
  if (text.empty()) return std::nullopt;
  try {
    std::size_t used = 0;
    const std::uint64_t fp = std::stoull(text, &used, 16);
    if (used != text.size()) throw ParseError("");
    return fp;
  } catch (const std::exception&) {
    throw ParseError("'expect_fp' must be a hex fingerprint");
  }
}

std::uint64_t shard_exec_fingerprint(const CampaignSpec& spec,
                                     std::uint64_t design_key_v) {
  std::uint64_t h = campaign_spec_fingerprint(spec, design_key_v);
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (std::uint64_t{0x5a4d} >> (8 * byte)) & 0xffULL;  // op tag
    h *= 1099511628211ULL;
  }
  return h;
}

CoverageSpec parse_coverage_spec(const json::Value& request) {
  CoverageSpec spec;
  spec.runs = static_cast<std::size_t>(uint_field(request, "runs", 50, kMaxRuns));
  spec.cycles =
      static_cast<std::size_t>(uint_field(request, "cycles", 20, kMaxCycles));
  spec.width_ps = finite_field(request, "width", 400.0, 0.0, kMaxPs);
  spec.seed = uint_field(request, "seed", 1, kMaxSeed);
  spec.scenarios = request.boolean("scenarios", false);
  spec.json = wants_json(request);
  return spec;
}

CertifySpec parse_certify_spec(const json::Value& request) {
  if (request.find("artifacts") != nullptr) {
    throw ParseError(
        "'artifacts' is a one-shot CLI option, not a service field");
  }
  CertifySpec spec;
  spec.q150 = request.boolean("q150", false);
  if (request.find("delta") != nullptr) {
    spec.delta_ps = finite_field(request, "delta", 0.0, 0.0, kMaxPs);
  }
  spec.skew_ps = finite_field(request, "skew", 0.0, 0.0, kMaxPs);
  spec.envelope_ps = finite_field(request, "env_width", 0.0, 0.0, kMaxPs);
  spec.seed = uint_field(request, "seed", 1, kMaxSeed);
  spec.scheme = request.text("scheme", "");
  spec.json = wants_json(request);
  return spec;
}

CompareSpec parse_compare_spec(const json::Value& request) {
  CompareSpec spec;
  spec.runs = static_cast<std::size_t>(uint_field(request, "runs", 50, kMaxRuns));
  spec.cycles =
      static_cast<std::size_t>(uint_field(request, "cycles", 16, kMaxCycles));
  spec.width_ps = finite_field(request, "width", 400.0, 0.0, kMaxPs);
  spec.seed = uint_field(request, "seed", 1, kMaxSeed);
  spec.jobs = std::max<std::size_t>(
      1, static_cast<std::size_t>(uint_field(request, "jobs", 1, kMaxJobs)));
  spec.schemes = split_name_list(request.text("scheme", ""));
  spec.fault_models = split_name_list(request.text("fault_model", ""));
  spec.json = wants_json(request);
  return spec;
}

LintSpec parse_lint_spec(const Job& job, const std::string& design_path,
                         const json::Value& request) {
  if (request.find("baseline") != nullptr) {
    throw ParseError(
        "'baseline' is a one-shot CLI option, not a service field");
  }
  LintSpec spec;
  if (!design_path.empty()) {
    spec.path = design_path;
  } else {
    spec.text = job.design_text;
    spec.name = job.design_name;
  }
  spec.hardened = request.boolean("hardened", false);
  spec.q150 = request.boolean("q150", false);
  if (request.find("delta") != nullptr) {
    spec.delta_ps = finite_field(request, "delta", 0.0, 0.0, kMaxPs);
  }
  spec.skew_ps = finite_field(request, "skew", 0.0, 0.0, kMaxPs);
  if (request.find("period") != nullptr) {
    spec.period_ps = finite_field(request, "period", 0.0, 0.0, kMaxPs);
  }
  if (const json::Value* cells = request.find("fallback_cells")) {
    for (const json::Value& cell : cells->as_array()) {
      spec.fallback_cells.push_back(cell.as_string());
    }
  }
  spec.json = wants_json(request);
  const std::string fail_on = request.text("fail_on", "error");
  if (fail_on == "warn") {
    spec.fail_threshold = lint::Severity::kWarning;
  } else if (fail_on == "error") {
    spec.fail_threshold = lint::Severity::kError;
  } else {
    throw ParseError("fail_on expects 'warn' or 'error'");
  }
  spec.certify = request.boolean("certify", false);
  if (spec.certify && !spec.hardened) {
    throw ParseError("'certify' requires 'hardened'");
  }
  spec.certify_envelope_ps =
      finite_field(request, "env_width", 0.0, 0.0, kMaxPs);
  spec.certify_seed = uint_field(request, "certify_seed", 1, kMaxSeed);
  spec.scheme = request.text("scheme", "");
  return spec;
}

std::uint64_t sta_fingerprint(std::uint64_t design_key_v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t v : {design_key_v, std::uint64_t{0x57a}}) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

// ---- response envelopes --------------------------------------------
// A response is one line: {"id":"<id>"<tail>}\n. The tail is id-free so
// batched requests and the result cache can share it verbatim.

std::string ok_tail(const std::string& op, const char* payload_kind,
                    const std::string& payload, const std::string& extra) {
  std::ostringstream os;
  os << ",\"ok\":true,\"op\":\"" << json::escape(op) << '"' << extra
     << ",\"payload_kind\":\"" << payload_kind << "\",\"payload\":\""
     << json::escape(payload) << "\"}";
  return os.str();
}

std::string error_tail(const std::string& op, const char* code,
                       const std::string& message) {
  std::ostringstream os;
  os << ",\"ok\":false,\"op\":\"" << json::escape(op) << "\",\"code\":\""
     << code << "\",\"error\":\"" << json::escape(message) << "\"}";
  return os.str();
}

bool tail_is_ok(const std::string& tail) {
  return tail.rfind(",\"ok\":true", 0) == 0;
}

}  // namespace

Server::Server(ServerOptions options, const CellLibrary& library)
    : options_(std::move(options)),
      library_(&library),
      queue_(options_.queue_capacity),
      sessions_(options_.cache) {
  CWSP_REQUIRE_MSG(!options_.socket_path.empty(),
                   "server needs a socket path");
  if (options_.workers == 0) options_.workers = 1;
}

Server::~Server() {
  if (shutdown_pipe_[0] >= 0) ::close(shutdown_pipe_[0]);
  if (shutdown_pipe_[1] >= 0) ::close(shutdown_pipe_[1]);
}

void Server::request_shutdown() {
  if (shutting_down_.exchange(true)) return;
  if (shutdown_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(shutdown_pipe_[1], &byte, 1);
  }
}

void Server::run() {
  CWSP_REQUIRE_MSG(::pipe(shutdown_pipe_) == 0, "cannot create pipe");

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CWSP_REQUIRE_MSG(listen_fd >= 0, "cannot create unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CWSP_REQUIRE_MSG(options_.socket_path.size() < sizeof(addr.sun_path),
                   "socket path too long: " << options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd);
    throw Error("cannot bind '" + options_.socket_path +
                "': " + std::strerror(err));
  }
  CWSP_REQUIRE_MSG(::listen(listen_fd, 16) == 0, "listen failed");

  int tcp_fd = -1;
  if (!options_.tcp_endpoint.empty()) {
    net::Endpoint endpoint;
    if (!net::parse_tcp_endpoint(options_.tcp_endpoint, endpoint)) {
      ::close(listen_fd);
      throw Error("bad tcp endpoint '" + options_.tcp_endpoint +
                  "' (expected host:port)");
    }
    std::uint16_t bound = 0;
    try {
      tcp_fd = net::tcp_listen(endpoint, &bound);
    } catch (...) {
      ::close(listen_fd);
      throw;
    }
    tcp_port_.store(bound, std::memory_order_release);
  }

  std::vector<std::thread> workers;
  workers.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers.emplace_back([this] { worker_loop(); });
  }
  std::thread registration;
  if (!options_.register_with.empty()) {
    registration = std::thread([this] { registration_loop(); });
  }

  std::vector<int> listen_fds{listen_fd};
  if (tcp_fd >= 0) listen_fds.push_back(tcp_fd);
  accept_loop(listen_fds);

  // ---- teardown ------------------------------------------------------
  ::close(listen_fd);
  if (tcp_fd >= 0) ::close(tcp_fd);
  ::unlink(options_.socket_path.c_str());
  if (registration.joinable()) registration.join();

  // Workers drain every accepted job before exiting (graceful stop), so
  // every admitted request gets exactly one response. The watchdog bounds
  // that drain: past the grace window it flips the cancel token of every
  // batch as it executes, so long campaigns answer `cancelled` promptly
  // and a SIGTERM always exits in bounded time.
  queue_.shutdown();
  std::atomic<bool> drained{false};
  std::thread drain_watchdog([this, &drained] {
    const auto grace = Stopwatch::deadline_after(options_.drain_grace_ms);
    auto& cancelled_counter =
        metrics::Registry::global().counter("service.drain.cancelled");
    while (!drained.load()) {
      if (Stopwatch::Clock::now() >= grace) {
        std::vector<std::shared_ptr<sim::CancelToken>> tokens;
        {
          std::lock_guard<std::mutex> lock(inflight_mutex_);
          for (auto& [key, member] : inflight_) {
            tokens.push_back(member.batch->token);
          }
        }
        for (const auto& token : tokens) {
          if (token != nullptr && !token->cancelled()) {
            token->cancel();
            cancelled_counter.add();
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  for (auto& t : workers) t.join();
  drained.store(true);
  drain_watchdog.join();
  for (const Job& job : queue_.drain()) {
    respond(job.conn_id, job.id,
            error_tail(job.op, "shutdown", "server is shutting down"));
  }

  // Unblock and retire connection readers.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& [id, conn] : connections_) conns.push_back(conn);
  }
  for (const auto& conn : conns) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    // Wakes the blocked reader; the reader itself closes the fd.
    if (conn->open.exchange(false)) ::shutdown(conn->fd, SHUT_RDWR);
  }
  std::vector<std::thread> readers;
  {
    // Join outside the lock: readers take connections_mutex_ on exit.
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& [id, t] : reader_threads_) readers.push_back(std::move(t));
    reader_threads_.clear();
    finished_readers_.clear();
  }
  for (auto& t : readers) t.join();

  if (!options_.metrics_json_path.empty()) {
    std::ofstream out(options_.metrics_json_path);
    out << metrics::Registry::global().to_json() << "\n";
  }
}

void Server::accept_loop(const std::vector<int>& listen_fds) {
  std::vector<pollfd> fds(listen_fds.size() + 1);
  for (;;) {
    for (std::size_t i = 0; i < listen_fds.size(); ++i) {
      fds[i] = {listen_fds[i], POLLIN, 0};
    }
    fds.back() = {shutdown_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds.back().revents & POLLIN) != 0) break;
    reap_finished_readers();
    for (std::size_t i = 0; i < listen_fds.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(listen_fds[i], nullptr, nullptr);
      if (fd < 0) continue;
      // Chaos: a connection dropped at accept — the client sees EOF and
      // retries; no partial state may leak into the server.
      if (failpoint::fires("service.accept")) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      // listen_fds[0] is the local Unix socket; anything else is the TCP
      // listener, whose peers must present the auth token (if set).
      conn->untrusted = i != 0;
      {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        conn->id = next_conn_id_++;
        connections_[conn->id] = conn;
        reader_threads_.emplace(
            conn->id, std::thread([this, conn] { reader_loop(conn); }));
      }
      metrics::Registry::global().counter("service.connections").add();
    }
  }
}

void Server::registration_loop() {
  auto& registry = metrics::Registry::global();
  while (!shutting_down_.load()) {
    // Bind order makes a startup race possible (registration thread
    // starts with the listeners); wait for the advertised port.
    const std::uint16_t port = tcp_port();
    if (port != 0 || !options_.advertise_endpoint.empty()) {
      const std::string advertised =
          options_.advertise_endpoint.empty()
              ? "127.0.0.1:" + std::to_string(port)
              : options_.advertise_endpoint;
      try {
        DialOptions dial;
        dial.attempts = 1;  // the loop itself is the retry schedule
        dial.connect_timeout_ms = options_.register_interval_ms;
        const std::unique_ptr<Client> client =
            Client::dial(options_.register_with, dial);
        std::string reg = "{\"id\":\"reg\",\"op\":\"worker_register\","
                          "\"endpoint\":\"" +
                          json::escape(advertised) + "\"";
        if (!options_.auth_token.empty()) {
          reg += ",\"auth\":\"" + json::escape(options_.auth_token) + "\"";
        }
        client->send_line(reg + "}");
        std::string response;
        (void)client->read_line_for(response,
                                    options_.register_interval_ms);
        registry.counter("service.register.sent").add();
      } catch (const std::exception&) {
        registry.counter("service.register.failed").add();
      }
    }
    // Interruptible sleep: slice the interval so shutdown is prompt.
    Stopwatch watch;
    while (!shutting_down_.load() &&
           watch.elapsed_ms() < options_.register_interval_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

void Server::reap_finished_readers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::uint64_t id : finished_readers_) {
      const auto it = reader_threads_.find(id);
      if (it == reader_threads_.end()) continue;
      done.push_back(std::move(it->second));
      reader_threads_.erase(it);
    }
    finished_readers_.clear();
  }
  // The announcing thread is in its function epilogue at worst, so these
  // joins return promptly.
  for (auto& t : done) t.join();
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      // Chaos: a garbled inbound frame must surface as a typed
      // bad_request, never crash a reader or corrupt admission.
      failpoint::mutate("service.read_line", line);
      handle_line(conn, line);
    }
    // A line still unterminated past the frame bound will never be
    // admitted; answer once with a typed error and drop the connection
    // instead of buffering an unbounded (possibly adversarial) frame.
    if (buffer.size() > options_.max_frame_bytes) {
      metrics::Registry::global()
          .counter("service.requests.oversized_frame")
          .add();
      send_line(conn,
                std::string("{\"id\":\"\"") +
                    error_tail("", "bad_request",
                               "request line exceeds the " +
                                   std::to_string(options_.max_frame_bytes) +
                                   "-byte frame limit") +
                    "\n");
      break;
    }
  }
  // Connection is gone: stop queued work addressed to it and retire the
  // socket. The fd is closed under the write mutex so a worker can never
  // write into a recycled descriptor.
  queue_.drop_connection(conn->id);
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    conn->open.store(false);
    ::close(conn->fd);
    conn->fd = -1;
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.erase(conn->id);
  // Announce for reaping (accept loop joins us on its next wake-up).
  finished_readers_.push_back(conn->id);
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  auto& registry = metrics::Registry::global();
  registry.counter("service.requests.total").add();

  std::string id;
  std::string op;
  try {
    const json::Value request = json::parse(line);
    if (!request.is_object()) throw ParseError("request must be an object");
    id = request.text("id", "");
    op = request.text("op", "");
    if (op.empty()) throw ParseError("request needs an 'op' field");
    registry.counter("service.requests." + op).add();

    // ---- control ops: answered inline, never queued -----------------
    if (op == "ping") {
      // Deliberately exempt from auth: liveness probes (fabric
      // heartbeats) must work without distributing the secret.
      send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                          ok_tail(op, "text", "pong", "") + "\n");
      return;
    }
    if (conn->untrusted && !options_.auth_token.empty() &&
        !constant_time_equal(request.text("auth", ""),
                             options_.auth_token)) {
      registry.counter("service.requests.unauthorized").add();
      send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                          error_tail(op, "unauthorized",
                                     "missing or invalid 'auth' token") +
                          "\n");
      return;
    }
    if (op == "failpoints") {
      // Chaos-harness control surface: configure/inspect/clear the
      // failpoint registry (docs/chaos.md has the spec grammar). Behind
      // the auth gate on TCP like every non-ping op.
      auto& failpoints = failpoint::Registry::global();
      if (request.boolean("clear", false)) failpoints.clear();
      const std::string spec = request.text("spec", "");
      if (!spec.empty()) {
        failpoints.configure(spec, uint_field(request, "seed", 1, kMaxSeed));
      }
      send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                          ok_tail(op, "json", failpoints.to_json() + "\n",
                                  "") +
                          "\n");
      return;
    }
    if (op == "metrics") {
      send_line(conn,
                "{\"id\":\"" + json::escape(id) + '"' +
                    ok_tail(op, "json", registry.to_json() + "\n", "") +
                    "\n");
      return;
    }
    if (op == "shutdown") {
      send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                          ok_tail(op, "text", "shutting down", "") + "\n");
      request_shutdown();
      return;
    }
    if (op == "cancel") {
      handle_cancel(conn, id, request);
      return;
    }
    if (op == "worker_register") {
      // Inline so registrations land even while every job worker is busy
      // with shards — liveness must not queue behind work.
      const std::string endpoint = request.text("endpoint", "");
      if (endpoint.empty()) {
        throw ParseError("worker_register needs an 'endpoint'");
      }
      const std::size_t count = registry_.upsert(endpoint);
      send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                          ok_tail(op, "text", "registered",
                                  ",\"workers\":" + std::to_string(count)) +
                          "\n");
      return;
    }
    if (op == "workers") {
      send_line(conn,
                "{\"id\":\"" + json::escape(id) + '"' +
                    ok_tail(op, "json",
                            registry_.to_json(options_.worker_ttl_ms) + "\n",
                            "") +
                    "\n");
      return;
    }

    // ---- work ops: admission + enqueue ------------------------------
    if (op != "campaign" && op != "lint" && op != "sta" &&
        op != "coverage" && op != "certify" && op != "compare" &&
        op != "sleep" && op != "shard_exec") {
      throw ParseError("unknown op '" + op + "'");
    }

    Job job;
    job.id = id;
    job.conn_id = conn->id;
    job.priority = priority_of(request);
    job.op = op;
    job.request = request;
    if (op != "sleep") {
      resolve_design(request, job, job.design_path);
      const std::uint64_t dkey = design_key(job.design_name, job.design_text);
      if (op == "campaign") {
        const CampaignSpec spec = parse_campaign_spec(request);
        // A timed campaign may legitimately stop early ("interrupted"),
        // which makes its report wall-clock dependent — it is not a
        // deterministic function of the spec, so it must be neither
        // coalesced nor memoized (batch_key 0).
        job.batch_key = spec.timeout_ms > 0.0
                            ? 0
                            : campaign_spec_fingerprint(spec, dkey);
      } else if (op == "shard_exec") {
        const CampaignSpec spec = parse_campaign_spec(request);
        if (spec.shard_total == 0) {
          throw ParseError("shard_exec needs shard_index and shard_total");
        }
        if (spec.timeout_ms > 0.0) {
          throw ParseError("shard_exec does not accept timeout_ms");
        }
        parse_expect_fp(request);  // validate format at admission
        job.batch_key = shard_exec_fingerprint(spec, dkey);
      } else if (op == "coverage") {
        job.batch_key =
            coverage_spec_fingerprint(parse_coverage_spec(request), dkey);
      } else if (op == "sta") {
        job.batch_key = sta_fingerprint(dkey);
      } else if (op == "certify") {
        job.batch_key =
            certify_spec_fingerprint(parse_certify_spec(request), dkey);
      } else if (op == "compare") {
        job.batch_key =
            compare_spec_fingerprint(parse_compare_spec(request), dkey);
      } else {
        parse_lint_spec(job, job.design_path, request);  // validate only
      }
    }

    // ---- deadline admission -----------------------------------------
    // A deadline-carrying job is wall-clock dependent: it must not
    // coalesce with (or be memoized for) an unbounded twin. When the
    // queue's own p99 history says the deadline cannot be met, shed at
    // admission with a typed `overloaded` instead of burning a worker on
    // a response the client has already written off.
    const double deadline_ms =
        finite_field(request, "deadline_ms", 0.0, 0.0, kMaxTimeoutMs);
    if (deadline_ms > 0.0) {
      constexpr std::uint64_t kMinShedSamples = 16;
      double estimate_us = 0.0;
      const auto& wait_hist = registry.histogram("service.queue_wait_us");
      if (wait_hist.count() >= kMinShedSamples) {
        estimate_us += static_cast<double>(wait_hist.quantile_us(0.99));
      }
      const auto& op_hist = registry.histogram("service.latency_us." + op);
      if (op_hist.count() >= kMinShedSamples) {
        estimate_us += static_cast<double>(op_hist.quantile_us(0.99));
      }
      if (estimate_us > deadline_ms * 1000.0) {
        registry.counter("service.deadline.shed").add();
        send_line(conn,
                  "{\"id\":\"" + json::escape(id) + '"' +
                      error_tail(op, "overloaded",
                                 "p99 queue wait + execution latency "
                                 "exceed the deadline; shed at admission") +
                      "\n");
        return;
      }
      registry.counter("service.deadline.admitted").add();
      job.deadline_ms = deadline_ms;
      job.deadline = Stopwatch::deadline_after(deadline_ms);
      job.batch_key = 0;
    }
    job.enqueued_at = Stopwatch::Clock::now();

    // Chaos: an admission-side fault after parsing — the request must
    // get exactly one typed `injected_fault` response.
    CWSP_FAILPOINT("service.enqueue");
    if (!queue_.try_push(std::move(job))) {
      if (shutting_down_.load()) {
        send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                            error_tail(op, "shutdown",
                                       "server is shutting down") +
                            "\n");
      } else {
        send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                            error_tail(op, "queue_full",
                                       "job queue is at capacity; retry "
                                       "later or lower the request rate") +
                            "\n");
      }
    }
  } catch (const ParseError& e) {
    send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                        error_tail(op, "bad_request", e.what()) + "\n");
  } catch (const failpoint::InjectedFault& e) {
    send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                        error_tail(op, "injected_fault", e.what()) + "\n");
  } catch (const std::exception& e) {
    send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                        error_tail(op, "internal", e.what()) + "\n");
  }
}

void Server::handle_cancel(const std::shared_ptr<Connection>& conn,
                           const std::string& id,
                           const json::Value& request) {
  const std::string target = request.text("target", "");
  if (target.empty()) throw ParseError("cancel needs a 'target' request id");

  if (std::optional<Job> job = queue_.cancel(conn->id, target)) {
    // The queued job never ran; answer it, then acknowledge.
    respond(job->conn_id, job->id,
            error_tail(job->op, "cancelled", "cancelled while queued"));
    send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                        ok_tail("cancel", "text", "cancelled-queued", "") +
                        "\n");
    metrics::Registry::global().counter("service.cancelled.queued").add();
    return;
  }
  // In flight: answer only the canceller's own batch member. The
  // execution itself — possibly shared with other connections' coalesced
  // requests — is aborted only when every member has been cancelled.
  bool found = false;
  std::string op;
  std::shared_ptr<sim::CancelToken> abort;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(inflight_key(conn->id, target));
    if (it != inflight_.end()) {
      found = true;
      op = it->second.op;
      InflightBatch& batch = *it->second.batch;
      batch.cancelled.insert(it->first);
      if (--batch.active == 0) abort = batch.token;
      inflight_.erase(it);
    }
  }
  if (found) {
    if (abort != nullptr) abort->cancel();
    respond(conn->id, target,
            error_tail(op, "cancelled", "cancelled in flight"));
    send_line(conn,
              "{\"id\":\"" + json::escape(id) + '"' +
                  ok_tail("cancel", "text", "cancelling-inflight", "") +
                  "\n");
    metrics::Registry::global().counter("service.cancelled.inflight").add();
    return;
  }
  send_line(conn, "{\"id\":\"" + json::escape(id) + '"' +
                      error_tail("cancel", "not_found",
                                 "no queued or in-flight request '" +
                                     target + "'") +
                      "\n");
}

void Server::worker_loop() {
  for (;;) {
    std::vector<Job> batch = queue_.pop_batch();
    if (batch.empty()) return;
    execute_batch(std::move(batch));
  }
}

void Server::execute_batch(std::vector<Job> batch) {
  auto& registry = metrics::Registry::global();
  const Job& front = batch.front();
  Stopwatch watch;

  // Queue-wait telemetry: the admission-time shed decision reads this
  // histogram's p99 back.
  {
    const auto now = Stopwatch::Clock::now();
    auto& wait_hist = registry.histogram("service.queue_wait_us");
    for (const Job& job : batch) {
      if (job.enqueued_at == Stopwatch::Clock::time_point::min()) continue;
      const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
          now - job.enqueued_at);
      wait_hist.observe_us(
          waited.count() > 0 ? static_cast<std::uint64_t>(waited.count()) : 0);
    }
  }

  // Repeat of an already-answered deterministic request? Serve the
  // memoized envelope. The tail is copied out under the lock and sent
  // after release so a slow client cannot stall other workers on
  // results_mutex_.
  if (front.batch_key != 0) {
    std::string cached;
    {
      std::lock_guard<std::mutex> lock(results_mutex_);
      for (auto it = results_.begin(); it != results_.end(); ++it) {
        if (it->key == front.batch_key) {
          results_.splice(results_.begin(), results_, it);
          cached = results_.front().envelope_tail;
          break;
        }
      }
    }
    if (!cached.empty()) {
      registry.counter("service.result_cache.hits").add(batch.size());
      for (const Job& job : batch) respond(job.conn_id, job.id, cached);
      registry.histogram("service.latency_us." + front.op)
          .observe_ms(watch.elapsed_ms());
      return;
    }
    registry.counter("service.result_cache.misses").add();
  }

  auto state = std::make_shared<InflightBatch>();
  state->token = std::make_shared<sim::CancelToken>();
  // A deadline-carrying job never coalesces (batch_key 0 at admission),
  // so arming the front job's deadline governs exactly one request. The
  // token's deadline is what EngineOptions::cancel polls downstream.
  if (front.deadline != Stopwatch::Clock::time_point::max()) {
    state->token->set_deadline(front.deadline);
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    state->active = batch.size();
    for (const Job& job : batch) {
      inflight_[inflight_key(job.conn_id, job.id)] =
          InflightMember{state, job.op};
    }
  }
  std::string tail = execute_job(front, state->token.get());
  if (front.deadline != Stopwatch::Clock::time_point::max() &&
      Stopwatch::Clock::now() >= front.deadline) {
    // Whatever execute_job produced, the client's budget is gone — the
    // typed answer keeps late success and cancellation distinguishable
    // from an ordinary failure.
    registry.counter("service.deadline.exceeded").add();
    tail = error_tail(front.op, "deadline_exceeded",
                      "deadline of " + std::to_string(front.deadline_ms) +
                          " ms exceeded");
  }
  // Members cancelled mid-flight were already answered `cancelled` by
  // handle_cancel and must not receive a second response.
  std::set<std::string> cancelled;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    for (const Job& job : batch) {
      inflight_.erase(inflight_key(job.conn_id, job.id));
    }
    cancelled.swap(state->cancelled);
  }

  if (front.batch_key != 0 && tail_is_ok(tail)) {
    std::lock_guard<std::mutex> lock(results_mutex_);
    results_.push_front(CachedResult{front.batch_key, tail});
    while (results_.size() > options_.result_cache_entries) {
      results_.pop_back();
    }
  }

  std::size_t answered = 0;
  for (const Job& job : batch) {
    if (cancelled.count(inflight_key(job.conn_id, job.id)) != 0) continue;
    respond(job.conn_id, job.id, tail);
    ++answered;
  }
  if (answered != 0) {
    registry.counter(tail_is_ok(tail) ? "service.responses.ok"
                                      : "service.responses.error")
        .add(answered);
  }
  registry.histogram("service.latency_us." + front.op)
      .observe_ms(watch.elapsed_ms());
}

std::string Server::execute_job(const Job& job, sim::CancelToken* cancel) {
  try {
    if (job.op == "sleep") {
      // Diagnostic op: occupies a worker for a bounded time so tests can
      // fill the queue / exercise cancellation deterministically.
      const double ms = finite_field(job.request, "ms", 10.0, 0.0, kMaxSleepMs);
      Stopwatch watch;
      while (watch.elapsed_ms() < ms) {
        if (cancel != nullptr && cancel->cancelled()) {
          return error_tail(job.op, "cancelled", "cancelled while sleeping");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return ok_tail(job.op, "text", "slept", "");
    }

    if (job.op == "lint") {
      const LintSpec spec =
          parse_lint_spec(job, job.design_path, job.request);
      const LintOutcome outcome = run_lint(spec, *library_);
      return ok_tail(job.op, spec.json ? "json" : "text", outcome.output,
                     outcome.failed ? ",\"failed\":true"
                                    : ",\"failed\":false");
    }

    const std::shared_ptr<const DesignSession> session =
        sessions_.get_or_build(job.design_name, job.design_text, *library_);

    if (job.op == "sta") {
      return ok_tail(job.op, "text", run_sta_report(*session), "");
    }
    if (job.op == "coverage") {
      const CoverageSpec spec = parse_coverage_spec(job.request);
      const CoverageOutcome outcome = run_coverage(*session, spec);
      return ok_tail(job.op, spec.json ? "json" : "text", outcome.output,
                     outcome.valid ? ",\"valid\":true" : ",\"valid\":false");
    }
    if (job.op == "certify") {
      const CertifySpec spec = parse_certify_spec(job.request);
      const CertifyOutcome outcome = run_certify(*session, spec);
      return ok_tail(job.op, spec.json ? "json" : "text", outcome.output,
                     ",\"escapes\":" + std::to_string(outcome.escapes) +
                         ",\"unknowns\":" + std::to_string(outcome.unknowns));
    }
    if (job.op == "compare") {
      const CompareSpec spec = parse_compare_spec(job.request);
      const CompareOutcome outcome = run_compare(*session, spec);
      return ok_tail(job.op, spec.json ? "json" : "text", outcome.output,
                     ",\"unexpected_escapes\":" +
                         std::to_string(outcome.unexpected_escapes));
    }
    if (job.op == "shard_exec") {
      const CampaignSpec spec = parse_campaign_spec(job.request);
      const ShardExecOutcome outcome = run_shard_exec(
          *session, spec, parse_expect_fp(job.request), cancel);
      char fp_hex[24];
      std::snprintf(fp_hex, sizeof(fp_hex), "%llx",
                    static_cast<unsigned long long>(
                        outcome.shard_fingerprint));
      return ok_tail(job.op, "strike-lines", outcome.payload,
                     std::string(",\"shard_fp\":\"") + fp_hex +
                         "\",\"strikes\":" +
                         std::to_string(outcome.strikes));
    }
    // campaign
    const CampaignSpec spec = parse_campaign_spec(job.request);
    CampaignOutcome outcome;
    if (spec.distribute && options_.distributed_campaign) {
      const std::vector<std::string> workers =
          registry_.live(options_.worker_ttl_ms);
      outcome = options_.distributed_campaign(*session, job.design_text,
                                              spec, workers);
    } else {
      outcome = run_campaign(*session, spec, cancel);
    }
    if (cancel != nullptr && cancel->cancelled() &&
        outcome.status == campaign::CampaignStatus::kInterrupted) {
      return error_tail(job.op, "cancelled", "campaign cancelled in flight");
    }
    return ok_tail(job.op, spec.json ? "json" : "text", outcome.output,
                   std::string(",\"status\":\"") +
                       campaign::to_string(outcome.status) + '"');
  } catch (const sim::CancelledError& e) {
    return error_tail(job.op, "cancelled", e.what());
  } catch (const ShardMismatchError& e) {
    return error_tail(job.op, "fp_mismatch", e.what());
  } catch (const ParseError& e) {
    return error_tail(job.op, "bad_request", e.what());
  } catch (const Error& e) {
    return error_tail(job.op, "error", e.what());
  } catch (const std::exception& e) {
    return error_tail(job.op, "internal", e.what());
  }
}

void Server::respond(std::uint64_t conn_id, const std::string& id,
                     const std::string& envelope_tail) {
  const std::shared_ptr<Connection> conn = find_connection(conn_id);
  if (conn == nullptr) return;
  send_line(conn, "{\"id\":\"" + json::escape(id) + '"' + envelope_tail +
                      "\n");
}

void Server::send_line(const std::shared_ptr<Connection>& conn,
                       const std::string& line) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!conn->open.load()) return;
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(conn->fd, line.data() + sent,
                             line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      conn->open.store(false);
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::shared_ptr<Server::Connection> Server::find_connection(
    std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  const auto it = connections_.find(conn_id);
  return it == connections_.end() ? nullptr : it->second;
}

}  // namespace cwsp::service
