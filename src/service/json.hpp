#pragma once
// Minimal JSON reader/escaper for the service's newline-delimited
// protocol (docs/service.md).
//
// The server only needs to *read* small request objects — responses are
// assembled by hand from already-formatted payloads, exactly like every
// other reporter in this codebase, so emission stays byte-deterministic.
// The parser covers the full JSON value grammar (objects, arrays,
// strings with escapes, numbers, booleans, null) but rejects anything a
// request line must not contain: trailing garbage, unterminated strings,
// depth bombs.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace cwsp::service::json {

class Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

enum class Kind : std::uint8_t {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

class Value {
 public:
  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(const std::string& key) const;

  // Typed member accessors with fallbacks; throw cwsp::ParseError when the
  // member exists but has the wrong type (a malformed request should be
  // reported, not silently defaulted).
  [[nodiscard]] std::string text(const std::string& key,
                                 const std::string& fallback) const;
  [[nodiscard]] double number(const std::string& key, double fallback) const;
  [[nodiscard]] bool boolean(const std::string& key, bool fallback) const;

  static Value make_null() { return Value{}; }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses exactly one JSON value spanning the whole input (leading and
/// trailing whitespace allowed). Throws cwsp::ParseError on malformed
/// input.
[[nodiscard]] Value parse(const std::string& text);

/// Escapes `text` for embedding inside a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string escape(const std::string& text);

}  // namespace cwsp::service::json
