#pragma once
// Thin blocking client for the analysis server's NDJSON socket protocol.
//
// The transport is deliberately dumb — send one line, read one line —
// because all protocol intelligence (ids, batching, caching) lives on the
// server side. The `cwsp_tool client` subcommand builds on this to submit
// request lines from stdin/argv and demux responses by id.
//
// Connecting retries with capped exponential backoff + deterministic
// jitter (common/backoff.hpp): a daemon still binding its socket, or a
// worker that restarts mid-campaign, is a transient condition the client
// rides out instead of failing on the first ECONNREFUSED.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace cwsp::service {

struct DialOptions {
  /// Total connect attempts (>= 1); the backoff sleeps between them.
  std::size_t attempts = 5;
  double backoff_base_ms = 20.0;
  double backoff_cap_ms = 500.0;
  /// Seed of the deterministic jitter stream.
  std::uint64_t jitter_seed = 1;
  /// Per-attempt connect budget for TCP endpoints (0 = OS default).
  double connect_timeout_ms = 1000.0;
  /// Observer invoked with each backoff sleep in ms (metrics hook).
  std::function<void(double)> on_backoff;
};

class Client {
 public:
  /// Connects to the server's Unix socket, retrying per `dial`. Throws
  /// cwsp::Error when the socket cannot be reached after every attempt.
  explicit Client(const std::string& socket_path,
                  const DialOptions& dial = {});

  /// Connects to a TCP worker/coordinator endpoint, retrying per `dial`.
  Client(const std::string& host, std::uint16_t port,
         const DialOptions& dial = {});

  /// Endpoint-string front end: "host:port" dials TCP, anything else is
  /// treated as a Unix socket path.
  [[nodiscard]] static std::unique_ptr<Client> dial(
      const std::string& endpoint, const DialOptions& options = {});

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line (a trailing newline is appended when missing).
  /// Throws cwsp::Error on a broken connection.
  void send_line(const std::string& line);

  /// Blocks for the next response line (newline stripped). Returns false
  /// on server EOF.
  [[nodiscard]] bool read_line(std::string& line);

  enum class ReadStatus : std::uint8_t { kLine, kClosed, kTimeout };

  /// read_line with a wall-clock deadline — the fabric's lease-bounded
  /// wait for a shard result.
  [[nodiscard]] ReadStatus read_line_for(std::string& line,
                                         double timeout_ms);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace cwsp::service
