#pragma once
// Thin blocking client for the analysis server's NDJSON socket protocol.
//
// The transport is deliberately dumb — send one line, read one line —
// because all protocol intelligence (ids, batching, caching) lives on the
// server side. The `cwsp_tool client` subcommand builds on this to submit
// request lines from stdin/argv and demux responses by id.

#include <string>

namespace cwsp::service {

class Client {
 public:
  /// Connects to the server's Unix socket. Throws cwsp::Error when the
  /// socket cannot be reached.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line (a trailing newline is appended when missing).
  /// Throws cwsp::Error on a broken connection.
  void send_line(const std::string& line);

  /// Blocks for the next response line (newline stripped). Returns false
  /// on server EOF.
  [[nodiscard]] bool read_line(std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace cwsp::service
