#pragma once
// Registry of campaign-fabric worker daemons known to a coordinator.
//
// Workers announce themselves with the `worker_register` op (typically on
// a periodic timer — `cwsp_tool serve --register`), which doubles as the
// liveness signal: an entry that has not re-registered within the TTL is
// evicted on the next snapshot. Deadline-based eviction here complements
// the fabric's per-connection heartbeats — the registry culls workers
// that vanished between campaigns, the heartbeats catch workers that die
// mid-shard.

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cwsp::service {

class WorkerRegistry {
 public:
  /// Adds or refreshes a worker endpoint; returns the registry size.
  std::size_t upsert(const std::string& endpoint);

  /// Endpoints seen within `ttl_ms`; stale entries are evicted (counted
  /// in `fabric.worker_evicted`). Deterministic order (lexicographic).
  [[nodiscard]] std::vector<std::string> live(double ttl_ms);

  /// Diagnostic snapshot for the `workers` op (cwsp-workers-v1 schema).
  [[nodiscard]] std::string to_json(double ttl_ms);

  [[nodiscard]] std::size_t size();

 private:
  using Clock = std::chrono::steady_clock;
  std::mutex mutex_;
  std::map<std::string, Clock::time_point> last_seen_;
};

}  // namespace cwsp::service
