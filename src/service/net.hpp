#pragma once
// TCP endpoint plumbing for the analysis service and the campaign
// fabric: endpoint parsing, connect-with-timeout and listener setup.
//
// The NDJSON protocol is transport-agnostic (one request line, one
// response line); these helpers only produce connected/listening file
// descriptors, which Server and Client then treat exactly like the Unix
// socket ones.

#include <cstdint>
#include <string>

namespace cwsp::service::net {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port" (or ":port", defaulting the host to 127.0.0.1).
/// Returns false for anything else — notably strings without a colon or
/// with a non-numeric port, which callers treat as Unix socket paths.
[[nodiscard]] bool parse_tcp_endpoint(const std::string& text, Endpoint& out);

[[nodiscard]] std::string to_string(const Endpoint& endpoint);

/// Connects to `endpoint` (IPv4, numeric or resolvable host) with a
/// bounded wall-clock budget; 0 means the OS default. Returns the
/// connected blocking fd, or -1 with errno describing the failure.
[[nodiscard]] int tcp_connect(const Endpoint& endpoint, double timeout_ms);

/// Binds + listens on `endpoint` (port 0 picks an ephemeral port, written
/// to `bound_port`). Throws cwsp::Error when the address cannot be bound.
[[nodiscard]] int tcp_listen(const Endpoint& endpoint,
                             std::uint16_t* bound_port);

}  // namespace cwsp::service::net
