#include "service/session.hpp"

#include <fstream>
#include <sstream>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "cwsp/timing.hpp"
#include "netlist/bench_parser.hpp"

namespace cwsp::service {
namespace {

void fnv_mix(std::uint64_t& h, const std::string& text) {
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
}

/// Rough per-session footprint: the dominant arrays all scale with net
/// and gate counts (netlist records, CSR adjacency, arrival windows,
/// truth tables). The constants are deliberately generous — the bound
/// exists to stop unbounded growth, not to account bytes exactly.
std::size_t estimate_bytes(const Netlist& netlist, const std::string& text) {
  return text.size() + netlist.num_nets() * 256 + netlist.num_gates() * 128 +
         64 * 1024;
}

}  // namespace

std::uint64_t design_key(const std::string& name, const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  fnv_mix(h, name);
  h ^= 0xff;
  h *= 1099511628211ULL;
  fnv_mix(h, text);
  return h;
}

std::string design_name_from_path(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  return base;
}

std::string read_design_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw ParseError("cannot open bench file " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::shared_ptr<const DesignSession> load_design_session(
    const std::string& path, const CellLibrary& library) {
  return DesignSession::build(design_name_from_path(path),
                              read_design_file(path), library);
}

std::shared_ptr<const DesignSession> DesignSession::build(
    const std::string& design_name, const std::string& text,
    const CellLibrary& library) {
  auto session = std::make_shared<DesignSession>();
  session->key = design_key(design_name, text);
  session->name = design_name;
  try {
    session->netlist = std::make_unique<const Netlist>(
        parse_bench_string(text, library, design_name));
  } catch (const ParseError&) {
    throw;
  } catch (const Error& e) {
    // Match parse_bench_file: structural problems surface as parse
    // errors (CLI exit code 2), whatever layer raised them.
    throw ParseError(e.what());
  }
  session->sta = run_sta(*session->netlist);
  const auto params = core::ProtectionParams::q100();
  session->period_q100 =
      std::max(core::hardened_clock_period(session->sta.dmax, library),
               core::min_clock_period_for_delta(params));
  session->kernel_context =
      sim::CompiledKernelContext::build(*session->netlist);
  session->approx_bytes = estimate_bytes(*session->netlist, text);
  return session;
}

SessionCache::SessionCache(const SessionCacheOptions& options)
    : options_(options) {}

std::shared_ptr<const DesignSession> SessionCache::get_or_build(
    const std::string& name, const std::string& text,
    const CellLibrary& library) {
  auto& registry = metrics::Registry::global();
  const std::uint64_t key = design_key(name, text);
  // Chaos: forced full eviction — every lookup becomes a cold rebuild,
  // which must change latency but never any response byte.
  if (failpoint::fires("service.session.evict")) {
    std::lock_guard<std::mutex> lock(mutex_);
    registry.counter("service.sessions.evictions").add(lru_.size());
    lru_.clear();
    resident_bytes_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if ((*it)->key == key) {
        lru_.splice(lru_.begin(), lru_, it);
        registry.counter("service.sessions.hits").add();
        return lru_.front();
      }
    }
  }
  registry.counter("service.sessions.misses").add();
  // Build outside the lock: parsing + STA + kernel context is the
  // expensive part, and concurrent misses on different designs must not
  // serialize on each other.
  std::shared_ptr<const DesignSession> session =
      DesignSession::build(name, text, library);

  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if ((*it)->key == key) {  // lost a build race; keep the first insert
      lru_.splice(lru_.begin(), lru_, it);
      return lru_.front();
    }
  }
  lru_.push_front(session);
  resident_bytes_ += session->approx_bytes;
  evict_locked();
  registry.gauge("service.sessions.entries")
      .set(static_cast<std::int64_t>(lru_.size()));
  registry.gauge("service.sessions.resident_bytes")
      .set(static_cast<std::int64_t>(resident_bytes_));
  return session;
}

std::size_t SessionCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::size_t SessionCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

void SessionCache::evict_locked() {
  auto& evictions = metrics::Registry::global().counter(
      "service.sessions.evictions");
  while (lru_.size() > 1 && (lru_.size() > options_.max_entries ||
                             resident_bytes_ > options_.max_bytes)) {
    resident_bytes_ -= lru_.back()->approx_bytes;
    lru_.pop_back();
    evictions.add();
  }
}

}  // namespace cwsp::service
