#include "bencharness/benchmark_data.hpp"

#include "common/error.hpp"

namespace cwsp::bench {
namespace {

BenchmarkSpec spec(std::string name, std::string suite, int in, int out,
                   bool inferred, double area, double dmax) {
  BenchmarkSpec s;
  s.name = std::move(name);
  s.suite = std::move(suite);
  s.num_inputs = in;
  s.num_outputs = out;
  s.ff_count_inferred = inferred;
  s.regular_area_um2 = area;
  s.dmax_ps = dmax;
  return s;
}

std::vector<BenchmarkSpec> make_overhead_benchmarks() {
  std::vector<BenchmarkSpec> v;

  auto add = [&](BenchmarkSpec s, std::optional<PaperHardened> t150,
                 std::optional<PaperHardened> t100) {
    s.table1_q150 = t150;
    s.table2_q100 = t100;
    v.push_back(std::move(s));
  };

  // name, suite, inputs, outputs(=FFs), area, Dmax — paper Tables 1 & 2.
  add(spec("alu2", "LGSynth93", 10, 6, false, 28.251025, 1624.53789),
      PaperHardened{37.292225, 32.00}, PaperHardened{36.380825, 28.78});
  add(spec("alu4", "LGSynth93", 14, 8, false, 53.87795, 1700.28379),
      PaperHardened{65.87735, 22.27}, PaperHardened{64.66215, 20.02});
  add(spec("apex2", "LGSynth93", 39, 3, false, 399.67155, 2069.548209),
      PaperHardened{404.27545, 1.15}, PaperHardened{403.81975, 1.04});
  add(spec("C1908", "ISCAS85", 33, 25, false, 43.660325, 1562.64811),
      std::nullopt, PaperHardened{77.006925, 76.38});
  add(spec("C3540", "ISCAS85", 50, 22, false, 97.8256, 1931.05049),
      PaperHardened{130.5324, 33.43}, PaperHardened{127.1906, 30.02});
  add(spec("C6288", "ISCAS85", 32, 32, false, 223.594225, 5141.05603),
      PaperHardened{271.092025, 21.24}, PaperHardened{266.231225, 19.07});
  add(spec("seq", "LGSynth93", 41, 35, false, 421.598, 2936.803),
      PaperHardened{473.5331, 12.32}, PaperHardened{468.2166, 11.06});
  add(spec("C7552", "ISCAS85", 207, 108, false, 187.676175, 2472.79124),
      PaperHardened{347.624775, 85.23}, PaperHardened{331.219575, 76.48});
  add(spec("C880", "ISCAS85", 60, 26, false, 36.15365, 1692.79889),
      PaperHardened{74.77685, 106.83}, PaperHardened{70.82745, 95.91});
  add(spec("C5315", "ISCAS85", 178, 123, false, 152.169625, 1475.91072),
      std::nullopt, PaperHardened{315.630825, 107.42});
  add(spec("dalu", "LGSynth93", 75, 16, false, 65.594625, 1489.08672),
      std::nullopt, PaperHardened{86.996425, 32.63});
  return v;
}

std::vector<BenchmarkSpec> make_fast_benchmarks() {
  std::vector<BenchmarkSpec> v;
  auto add = [&](BenchmarkSpec s, PaperHardened t3) {
    s.table3_custom_delta = t3;
    v.push_back(std::move(s));
  };

  add(spec("apex4", "LGSynth93", 9, 19, false, 200.0291, 1396.654),
      PaperHardened{225.4125, 12.69});
  add(spec("apex3", "LGSynth93", 54, 52, true, 139.1276, 1230.121789),
      PaperHardened{208.5942, 49.93});
  add(spec("b11_LoptLC", "ITC99", 38, 37, true, 55.428075, 1270.94562),
      PaperHardened{104.701075, 88.90});
  add(spec("C1355", "ISCAS85", 41, 32, false, 46.009025, 1012.19256),
      PaperHardened{88.646025, 92.67});
  add(spec("C432", "ISCAS85", 36, 7, false, 15.120875, 1385.38584),
      PaperHardened{24.577875, 62.54});
  add(spec("C499", "ISCAS85", 41, 32, false, 46.009025, 1012.19256),
      PaperHardened{88.646025, 92.67});
  add(spec("ex5p", "LGSynth93", 8, 65, true, 178.177325, 1195.07966),
      PaperHardened{264.897525, 48.67});
  add(spec("k2", "LGSynth93", 45, 47, true, 88.5317, 1170.34338),
      PaperHardened{151.3623, 70.97});
  add(spec("apex1", "LGSynth93", 45, 47, true, 111.4312, 982.903),
      PaperHardened{174.2618, 56.39});
  add(spec("ex4p", "LGSynth93", 128, 5, true, 17.594425, 630.381),
      PaperHardened{24.397025, 38.66});
  return v;
}

}  // namespace

const std::vector<BenchmarkSpec>& overhead_benchmarks() {
  static const std::vector<BenchmarkSpec> v = make_overhead_benchmarks();
  return v;
}

const std::vector<BenchmarkSpec>& fast_benchmarks() {
  static const std::vector<BenchmarkSpec> v = make_fast_benchmarks();
  return v;
}

const BenchmarkSpec& find_benchmark(const std::string& name) {
  for (const auto& s : overhead_benchmarks()) {
    if (s.name == name) return s;
  }
  for (const auto& s : fast_benchmarks()) {
    if (s.name == name) return s;
  }
  throw Error("unknown benchmark circuit: " + name);
}

}  // namespace cwsp::bench
