#include "bencharness/generator.hpp"
#include <optional>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "sta/sta.hpp"

namespace cwsp::bench {
namespace {

/// Vernier adjustment appended to the critical output: k INV stages plus
/// optionally one BUF stage (+6.5 ps) for sub-stage resolution.
struct BuildPlan {
  int trunk_stages = 40;
  int vernier_invs = 0;
  int vernier_bufs = 0;
  /// Multiplies the filler-capacity provisioning; the calibration loop
  /// raises it if a build under-delivers area.
  double width_boost = 1.0;
};

class Builder {
 public:
  Builder(const BenchmarkSpec& spec, const CellLibrary& lib,
          std::uint64_t seed)
      : spec_(spec), lib_(lib), seed_(seed) {
    CWSP_REQUIRE(spec.num_inputs >= 1);
    CWSP_REQUIRE(spec.num_outputs >= 1);
  }

  Netlist build(const BuildPlan& plan) {
    Rng rng(seed_);
    Netlist nl(lib_, spec_.name);
    next_id_ = 0;

    // ---- primary inputs, split across the two trunks -----------------
    std::vector<NetId> pis;
    pis.reserve(static_cast<std::size_t>(spec_.num_inputs));
    for (int i = 0; i < spec_.num_inputs; ++i) {
      pis.push_back(nl.add_primary_input("pi" + std::to_string(i)));
    }
    const int num_trunks = 2;
    std::vector<std::vector<NetId>> trunk_pis(num_trunks);
    for (std::size_t i = 0; i < pis.size(); ++i) {
      trunk_pis[i % num_trunks].push_back(pis[i]);
    }
    // A trunk with no PIs of its own starts from the first PI.
    for (auto& tp : trunk_pis) {
      if (tp.empty()) tp.push_back(pis[0]);
    }

    // ---- PI-reduction tree + spine per trunk, built in lockstep ------
    std::vector<std::vector<NetId>> spine(num_trunks);
    for (int t = 0; t < num_trunks; ++t) {
      spine[t].push_back(reduce_tree(nl, trunk_pis[t]));
    }
    const int len0 = plan.trunk_stages;
    const std::vector<int> length{len0, std::max(4, len0 - 3)};
    for (int s = 1; s <= len0; ++s) {
      for (int t = 0; t < num_trunks; ++t) {
        if (s > length[t]) continue;
        const NetId prev = spine[t].back();
        const int other = 1 - t;
        NetId out;
        if (s % 8 == 0 &&
            static_cast<int>(spine[other].size()) > s - 1) {
          out = add_gate(nl, CellKind::kNand2,
                         {prev, spine[other][static_cast<std::size_t>(s - 1)]});
        } else {
          out = add_gate(nl, CellKind::kInv, {prev});
        }
        spine[t].push_back(out);
      }
    }

    // ---- critical output: trunk 0 end + vernier ----------------------
    NetId critical = spine[0].back();
    if (spec_.num_outputs == 1) {
      // Single-output designs must still consume trunk 1's terminal node.
      critical = add_gate(nl, CellKind::kXor2, {critical, spine[1].back()});
    }
    for (int i = 0; i < plan.vernier_invs; ++i) {
      critical = add_gate(nl, CellKind::kInv, {critical});
    }
    for (int i = 0; i < plan.vernier_bufs; ++i) {
      critical = add_gate(nl, CellKind::kBuf, {critical});
    }
    nl.mark_primary_output(critical);

    // ---- remaining outputs: trunk taps with filler-hosting tails -----
    double filler_budget =
        spec_.regular_area_um2 - nl.combinational_area().value() -
        estimate_tail_area(len0);
    const int num_tails = spec_.num_outputs - 1;
    if (num_tails == 0) return finalize(nl);

    // Provision join capacity: each tail hosts `joins_per_tail` filler
    // bundles of `bundle_width` leaves (leaves ≈ 0.7·trunk inverter
    // chains). Capacity is sized to ~1.4× the budget so the budget-driven
    // filler loop always has room to land exactly on target.
    const double inv_area =
        lib_.cell(lib_.cell_for(CellKind::kInv)).active_area().value();
    const double per_leaf_area = std::max(4.0, 0.7 * len0) * inv_area;
    int bundle_width = 1;
    int joins_per_tail = 2;
    if (filler_budget > 0.0) {
      const double need = 1.4 * filler_budget * plan.width_boost;
      bundle_width = static_cast<int>(std::ceil(
          need / (num_tails * joins_per_tail * per_leaf_area)));
      bundle_width = std::clamp(bundle_width, 1, 64);
      const double cap =
          num_tails * joins_per_tail * bundle_width * per_leaf_area;
      if (cap < need) {
        joins_per_tail = static_cast<int>(std::ceil(
            need / (num_tails * bundle_width * per_leaf_area)));
        joins_per_tail =
            std::clamp(joins_per_tail, 2, std::max(2, len0 / 5));
      }
    }

    // Precompute every tail's tap/limit so the filler loop can budget
    // against the exact inverter cost of finishing all remaining tails.
    const int band = std::max(1, (3 * len0) / 10);
    struct TailPlan {
      int trunk = 0;
      int tap = 0;
      int limit = 0;
      bool last = false;
    };
    std::vector<TailPlan> tails;
    for (int k = 1; k < spec_.num_outputs; ++k) {
      TailPlan tp;
      tp.last = k == spec_.num_outputs - 1;
      tp.trunk = k % num_trunks;
      const int lt = length[tp.trunk];
      const int tail_len = std::max(4 + ((k / num_trunks) % band),
                                    2 * joins_per_tail + 2);
      tp.tap = std::clamp(lt - tail_len, std::max(5, lt / 2), lt - 4);
      tp.limit = lt - (tp.last ? 2 : 0);
      tails.push_back(tp);
    }
    const double xor_area =
        lib_.cell(lib_.cell_for(CellKind::kXor2)).active_area().value();
    // Suffix sums of the INV-only completion cost of tails i.. end.
    std::vector<double> completion_after(tails.size() + 1, 0.0);
    for (std::size_t i = tails.size(); i-- > 0;) {
      completion_after[i] =
          completion_after[i + 1] +
          (tails[i].limit - tails[i].tap) * inv_area +
          (tails[i].last ? xor_area : 0.0);
    }

    for (std::size_t i = 0; i < tails.size(); ++i) {
      const TailPlan& tp = tails[i];
      NetId node = spine[tp.trunk][static_cast<std::size_t>(tp.tap)];
      int effective = tp.tap;
      while (effective < tp.limit) {
        // Area left for fillers once every remaining tail stage (this
        // tail and all later ones) is finished with plain inverters.
        const double completion =
            (tp.limit - effective) * inv_area +
            (tp.last ? xor_area : 0.0) + completion_after[i + 1];
        const double filler_room = spec_.regular_area_um2 -
                                   nl.combinational_area().value() -
                                   completion;
        if (filler_room > 2.0 * inv_area + xor_area &&
            effective + 2 <= tp.limit) {
          const NetId mix = build_filler_bundle(
              nl, pis, spine, rng, effective, bundle_width, filler_room);
          node = add_gate(nl, CellKind::kXor2, {node, mix});
          effective += 2;
        } else {
          node = add_gate(nl, CellKind::kInv, {node});
          effective += 1;
        }
      }
      if (tp.last) {
        // Fold in trunk 1's terminal node so it never dangles (its path
        // length len1 + 1 stays below the critical trunk).
        node = add_gate(nl, CellKind::kXor2, {node, spine[1].back()});
      }
      nl.mark_primary_output(node);
    }

    return finalize(nl);
  }

 private:
  NetId add_gate(Netlist& nl, CellKind kind,
                 const std::vector<NetId>& inputs) {
    const GateId g = nl.add_gate(lib_.cell_for(kind), inputs,
                                 "n" + std::to_string(next_id_++));
    return nl.gate(g).output;
  }

  /// Balanced NAND reduction of a PI group down to one net.
  NetId reduce_tree(Netlist& nl, std::vector<NetId> level) {
    while (level.size() > 1) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i < level.size();) {
        const std::size_t n = std::min<std::size_t>(4, level.size() - i);
        if (n == 1) {
          next.push_back(level[i]);
          i += 1;
          continue;
        }
        const CellKind kind = n == 2   ? CellKind::kNand2
                              : n == 3 ? CellKind::kNand3
                                       : CellKind::kNand4;
        std::vector<NetId> group(level.begin() + static_cast<long>(i),
                                 level.begin() + static_cast<long>(i + n));
        next.push_back(add_gate(nl, kind, group));
        i += n;
      }
      level = std::move(next);
    }
    return level[0];
  }

  /// A balanced XOR tree of inverter-chain leaves, depth-matched to join
  /// at `depth_budget`. Each leaf starts from a spine node at exactly the
  /// depth that makes its total path length match the trunk, so fillers
  /// never create short (or long) paths regardless of leaf length.
  /// Consumes at most `budget` µm².
  NetId build_filler_bundle(Netlist& nl, const std::vector<NetId>& pis,
                            const std::vector<std::vector<NetId>>& spine,
                            Rng& rng, int depth_budget, int width,
                            double budget) {
    const double inv_area =
        lib_.cell(lib_.cell_for(CellKind::kInv)).active_area().value();
    const double xor_area =
        lib_.cell(lib_.cell_for(CellKind::kXor2)).active_area().value();

    // Balanced XOR reduction keeps the tree depth at 2·⌈log2 W⌉ stage
    // equivalents, so leaves can be near trunk length.
    int tree_depth = 0;
    while ((1 << tree_depth) < width) ++tree_depth;
    const int leaf_target = std::max(1, depth_budget - 2 * tree_depth - 2);

    const double start_area = nl.combinational_area().value();
    std::vector<NetId> ends;
    for (int j = 0; j < width; ++j) {
      const double spent = nl.combinational_area().value() - start_area;
      // Reserve area for the reduction XORs still to come.
      const double reserve =
          (static_cast<double>(ends.size()) + 1.0) * xor_area;
      const int affordable = static_cast<int>(
          std::floor((budget - spent - reserve) / inv_area));
      if (affordable < 1) break;
      const int leaf_len = std::min(leaf_target, affordable);

      // Full-length leaves start at primary inputs (which carry no driver,
      // so their fanout load is timing-free); budget-trimmed leaves start
      // on a spine node at depth (leaf path target − len) so their join
      // stays depth-matched.
      NetId leaf;
      if (leaf_len == leaf_target) {
        leaf = pis[rng.next_below(pis.size())];
      } else {
        const auto& trunk = spine[rng.next_below(spine.size())];
        const int start_depth = std::clamp(
            leaf_target - leaf_len, 0, static_cast<int>(trunk.size()) - 1);
        leaf = trunk[static_cast<std::size_t>(start_depth)];
      }
      for (int s = 0; s < leaf_len; ++s) {
        leaf = add_gate(nl, CellKind::kInv, {leaf});
      }
      ends.push_back(leaf);
    }
    if (ends.empty()) {
      // Caller guarantees room for at least one inverter + one XOR.
      const auto& trunk = spine[0];
      const int start_depth = std::clamp(
          leaf_target - 1, 0, static_cast<int>(trunk.size()) - 1);
      ends.push_back(add_gate(
          nl, CellKind::kInv,
          {trunk[static_cast<std::size_t>(start_depth)]}));
    }
    while (ends.size() > 1) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i + 1 < ends.size(); i += 2) {
        next.push_back(add_gate(nl, CellKind::kXor2, {ends[i], ends[i + 1]}));
      }
      if (ends.size() % 2 == 1) next.push_back(ends.back());
      ends = std::move(next);
    }
    return ends[0];
  }

  double estimate_tail_area(int len0) const {
    const double inv_area =
        lib_.cell(lib_.cell_for(CellKind::kInv)).active_area().value();
    const double avg_tail = 4.0 + std::min(12.0, len0 * 0.05);
    return (spec_.num_outputs - 1) * avg_tail * inv_area;
  }

  Netlist finalize(Netlist& nl) {
    nl.validate();
    return std::move(nl);
  }

  const BenchmarkSpec& spec_;
  const CellLibrary& lib_;
  std::uint64_t seed_;
  int next_id_ = 0;
};

}  // namespace

GeneratedBenchmark generate_benchmark(const BenchmarkSpec& spec,
                                      const CellLibrary& library,
                                      const GeneratorOptions& options) {
  Builder builder(spec, library, options.seed);

  BuildPlan plan;
  plan.trunk_stages = std::max(16, static_cast<int>(std::lround(
                                       spec.dmax_ps / 14.0)));

  std::optional<GeneratedBenchmark> best;
  double best_score = 1e18;
  int rebuilds = 0;

  for (int iter = 0; iter < options.max_rebuilds; ++iter) {
    ++rebuilds;
    Netlist netlist = builder.build(plan);
    const auto sta = run_sta(netlist);
    const double gap = spec.dmax_ps - sta.dmax.value();
    const SquareMicrons area = netlist.combinational_area();
    const double area_gap = spec.regular_area_um2 - area.value();

    // Area misses dominate the score so an area-complete build is always
    // preferred; within that, minimise the Dmax gap.
    const double score =
        std::fabs(gap) +
        (std::fabs(area_gap) > options.area_tolerance_um2 ? 1e9 : 0.0);
    if (score < best_score) {
      best_score = score;
      best.emplace(GeneratedBenchmark{std::move(netlist), sta.dmax, sta.dmin,
                                      area, rebuilds});
    }
    if (std::fabs(area_gap) > options.area_tolerance_um2) {
      // Under-delivered fillers: provision more capacity and rebuild.
      plan.width_boost = std::min(16.0, plan.width_boost * 2.0);
      continue;
    }
    if (best_score <= options.dmax_tolerance_ps) break;

    if (std::fabs(gap) > 60.0) {
      // Coarse phase: rescale the trunk length multiplicatively.
      const double scale = spec.dmax_ps / sta.dmax.value();
      int next = static_cast<int>(std::lround(plan.trunk_stages * scale));
      if (next == plan.trunk_stages) next += (gap > 0 ? 1 : -1);
      plan.trunk_stages = std::max(16, next);
      plan.vernier_invs = 0;
      plan.vernier_bufs = 0;
    } else {
      // Fine phase: search the vernier grid (INV ≈ +14 ps, BUF ≈ +6.5 ps)
      // for the combination that best cancels the residual.
      int best_dk = 0;
      int best_b = plan.vernier_bufs;
      double best_err = std::fabs(gap);
      for (int dk = -3; dk <= 3; ++dk) {
        for (int b = 0; b <= 1; ++b) {
          const double predicted =
              gap - 14.0 * dk - 6.5 * (b - plan.vernier_bufs);
          if (std::fabs(predicted) < best_err) {
            best_err = std::fabs(predicted);
            best_dk = dk;
            best_b = b;
          }
        }
      }
      int k = plan.vernier_invs + best_dk;
      if (k < 0) {
        plan.trunk_stages = std::max(16, plan.trunk_stages - 1);
        k = 0;
      }
      plan.vernier_invs = k;
      plan.vernier_bufs = best_b;
    }
  }

  CWSP_REQUIRE_MSG(
      best.has_value() && best_score <= options.dmax_tolerance_ps,
      "generator failed to calibrate Dmax for "
          << spec.name << ": best score " << best_score << " after "
          << rebuilds << " rebuilds");
  const double area_gap =
      std::fabs(best->measured_area.value() - spec.regular_area_um2);
  CWSP_REQUIRE_MSG(area_gap <= options.area_tolerance_um2,
                   "generator failed to calibrate area for "
                       << spec.name << ": gap " << area_gap << " um^2");
  return std::move(*best);
}

Netlist clone_with_output_flip_flops(const Netlist& source) {
  const CellLibrary& lib = source.library();
  Netlist clone(lib, source.name() + "_ff");

  std::vector<NetId> map(source.num_nets());
  for (NetId pi : source.primary_inputs()) {
    map[pi.index()] = clone.add_primary_input(source.net(pi).name);
  }
  for (std::size_t i = 0; i < source.num_nets(); ++i) {
    const Net& net = source.net(NetId{i});
    if (net.driver_kind == DriverKind::kConstant) {
      map[i] = clone.add_constant(net.constant_value, net.name);
    }
  }
  // Source FFs keep their boundary role: Q becomes a clone FF output.
  // (Create D nets lazily below; gates drive them.)
  for (GateId g : source.topological_order()) {
    const Gate& gate = source.gate(g);
    std::vector<NetId> ins;
    ins.reserve(gate.inputs.size());
    for (NetId in : gate.inputs) {
      CWSP_REQUIRE_MSG(map[in.index()].valid(),
                       "clone: input net not yet mapped (source FF "
                       "netlists unsupported)");
      ins.push_back(map[in.index()]);
    }
    const GateId ng =
        clone.add_gate(gate.cell, ins, source.net(gate.output).name);
    map[gate.output.index()] = clone.gate(ng).output;
  }
  CWSP_REQUIRE_MSG(source.num_flip_flops() == 0,
                   "clone_with_output_flip_flops expects a combinational "
                   "source netlist");
  for (NetId po : source.primary_outputs()) {
    const FlipFlopId ff = clone.add_flip_flop(
        map[po.index()], source.net(po).name + "_q");
    clone.mark_primary_output(clone.flip_flop(ff).q);
  }
  clone.validate();
  return clone;
}

}  // namespace cwsp::bench
