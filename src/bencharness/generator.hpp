#pragma once
// Calibrated synthetic benchmark generator.
//
// The paper evaluates on the authors' technology-mapped LGSynth93 / ITC /
// ISCAS85 netlists, which are not distributable. Its metrics depend on a
// netlist only through (a) regular active area, (b) D_max (and the
// D_min = 0.8·D_max assumption [33]), and (c) the protected-FF count, so
// this generator synthesises a circuit that our own cell library + STA
// measure to the published area/D_max within tight tolerance:
//
//   * two parallel trunk chains (PI-reduction tree + INV spine with NAND2
//     cross-links every few stages) set D_max; trunk length is calibrated
//     against STA in a rebuild loop;
//   * each primary output taps a trunk near its end through a private
//     INV tail, so all PI→PO paths have near-equal length;
//   * XOR-joined filler bundles (inverter-chain leaves, depth-matched at
//     their join point so they create no short or long paths) bring the
//     active area to the published value.
//
// The result is deterministic for a given (spec, seed).

#include "bencharness/benchmark_data.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::bench {

struct GeneratorOptions {
  std::uint64_t seed = 1;
  /// Accept |measured D_max − target| below this (ps).
  double dmax_tolerance_ps = 8.0;
  /// Accept |measured area − target| below this (µm²).
  double area_tolerance_um2 = 0.05;
  int max_rebuilds = 24;
};

struct GeneratedBenchmark {
  Netlist netlist;
  Picoseconds measured_dmax{0.0};
  Picoseconds measured_dmin{0.0};
  SquareMicrons measured_area{0.0};
  int rebuilds = 0;
};

/// Builds the synthetic netlist for a benchmark spec. Throws cwsp::Error
/// if the calibration loop cannot reach the tolerances.
[[nodiscard]] GeneratedBenchmark generate_benchmark(
    const BenchmarkSpec& spec, const CellLibrary& library,
    const GeneratorOptions& options = {});

/// Clones a combinational netlist, inserting a D flip-flop at every
/// primary output (the system context the paper assumes); the FF Q nets
/// become the primary outputs. Used by the fault-injection experiments.
[[nodiscard]] Netlist clone_with_output_flip_flops(const Netlist& source);

}  // namespace cwsp::bench
