#pragma once
// Published data for every benchmark circuit in the paper's Tables 1–3:
// the regular active area and D_max the authors measured, plus the
// protected-FF count.
//
// FF counts: for most circuits these are the public ISCAS85/LGSynth93
// output counts, which reproduce the paper's per-circuit area overhead to
// ≤1e-4 µm² (see DESIGN.md §5). For four LGSynth circuits (apex3, ex5p,
// k2, apex1) the authors' mapped netlists evidently differ from the public
// ones; their FF counts are inferred from the paper's own area data (best
// integer fit) and flagged `ff_count_inferred`.

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace cwsp::bench {

/// Paper-reported hardened area for one protection level (µm²).
struct PaperHardened {
  double hardened_area_um2 = 0.0;
  double area_overhead_pct = 0.0;
};

struct BenchmarkSpec {
  std::string name;
  std::string suite;  // "LGSynth93", "ISCAS85", "ITC"
  int num_inputs = 0;
  /// Protected flip-flop count (= primary outputs for these combinational
  /// benchmarks).
  int num_outputs = 0;
  bool ff_count_inferred = false;

  /// Paper-reported regular design figures.
  double regular_area_um2 = 0.0;
  double dmax_ps = 0.0;

  /// Paper-reported hardened figures where the circuit appears.
  std::optional<PaperHardened> table1_q150;
  std::optional<PaperHardened> table2_q100;
  std::optional<PaperHardened> table3_custom_delta;
};

/// All circuits of Tables 1 and 2 (Q = 150 fC / 100 fC experiments).
[[nodiscard]] const std::vector<BenchmarkSpec>& overhead_benchmarks();

/// The ten fast circuits of Table 3 (δ = min{Dmin/2, (Dmax−Δ)/2} mode).
[[nodiscard]] const std::vector<BenchmarkSpec>& fast_benchmarks();

/// Lookup across both sets; throws if unknown.
[[nodiscard]] const BenchmarkSpec& find_benchmark(const std::string& name);

}  // namespace cwsp::bench
