#pragma once
// Deterministic pseudo-random generator (xoshiro256**) used by the
// synthetic netlist generator and the fault-injection campaigns.
//
// A fixed, documented PRNG (rather than std::mt19937 with
// implementation-defined distributions) keeps every experiment bit-exact
// across platforms, which matters when EXPERIMENTS.md records numbers.

#include <array>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace cwsp {

class Rng {
 public:
  /// Seeds the four 64-bit lanes via SplitMix64 as recommended by the
  /// xoshiro authors.
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& lane : state_) lane = split_mix(x);
  }

  /// Splittable sub-stream: the generator for a given (seed, stream_id)
  /// pair is a pure function of that pair — independent of how many other
  /// streams exist or in which order they are drawn. Campaign workers use
  /// one stream per strike index, which is what makes parallel campaigns
  /// produce results identical to single-threaded ones.
  [[nodiscard]] static Rng stream(std::uint64_t seed,
                                  std::uint64_t stream_id) {
    Rng r(0);
    std::uint64_t x = seed;
    // Decorrelate the stream chain from the seed chain with an arbitrary
    // odd constant so stream(s, 0) differs from Rng(s).
    std::uint64_t y = stream_id * 0x9e3779b97f4a7c15ULL +
                      0x2545f4914f6cdd1dULL;
    for (auto& lane : r.state_) lane = split_mix(x) ^ split_mix(y);
    return r;
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    CWSP_REQUIRE(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) {
    CWSP_REQUIRE(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  static std::uint64_t split_mix(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cwsp
