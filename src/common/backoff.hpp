#pragma once
// Capped exponential backoff with deterministic jitter.
//
// Shared by the service client's connect retry and the fabric
// coordinator's re-dispatch loop. The jitter source is the repo's
// deterministic Rng (seeded by the caller), so retry schedules are
// reproducible in tests while still decorrelating real fleets: two
// workers hammering a coordinator that just restarted spread their
// reconnects instead of synchronizing ("equal jitter": half the delay is
// fixed, half uniform).

#include <algorithm>
#include <cstdint>

#include "common/rng.hpp"

namespace cwsp {

class Backoff {
 public:
  Backoff(double base_ms, double cap_ms, std::uint64_t jitter_seed)
      : base_ms_(std::max(0.0, base_ms)),
        cap_ms_(std::max(base_ms_, cap_ms)),
        rng_(Rng::stream(jitter_seed, 0xb0ff)) {}

  /// Delay before the next attempt: min(cap, base * 2^n), half fixed and
  /// half jittered. Successive calls advance the exponent.
  [[nodiscard]] double next_delay_ms() {
    double full = base_ms_;
    for (std::uint32_t i = 0; i < exponent_ && full < cap_ms_; ++i) {
      full *= 2.0;
    }
    full = std::min(full, cap_ms_);
    ++exponent_;
    const double half = full / 2.0;
    return half + rng_.next_double_in(0.0, half);
  }

  /// Back to the initial delay (after a successful attempt).
  void reset() { exponent_ = 0; }

  [[nodiscard]] std::uint32_t attempts() const { return exponent_; }

 private:
  double base_ms_;
  double cap_ms_;
  Rng rng_;
  std::uint32_t exponent_ = 0;
};

}  // namespace cwsp
