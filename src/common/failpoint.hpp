#pragma once

// Deterministic failpoint registry. A failpoint is a named site in the
// code that, when the registry arms a matching entry, injects a failure
// there: a typed error, a fixed delay, a torn (truncated) write, a
// garbled byte, or an abort(). Trigger policies (`once`, `every=N`,
// `prob=P`) are evaluated off a seeded `Rng::stream`, so a chaos
// schedule replays byte-for-byte from its seed.
//
// The inactive path is a single relaxed atomic load — `armed()` — so
// production binaries pay nothing for the instrumentation (guarded by
// the BM_FailpointInactive bench in bench_perf).
//
// Spec grammar (see docs/chaos.md):
//   spec   := entry (';' entry)*
//   entry  := name '=' kind [':' arg] ['@' policy]
//   kind   := err | delay | torn | garble | abort
//   arg    := message text (err) | number (delay ms, torn bytes
//             dropped from the tail, garble byte offset)
//   policy := once | always | every=N | prob=P      (default: always)
//
// Example: "campaign.journal.append=torn:17@once;fabric.heartbeat=err@prob=0.5"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cwsp::failpoint {

// Thrown by `err`-action failpoints. Derives from Error so existing
// recovery ladders (worker-pool strike isolation, fabric dispatch
// retry, service internal-error responses) treat it like a real fault.
class InjectedFault : public Error {
 public:
  using Error::Error;
};

enum class ActionKind : std::uint8_t { kErr, kDelay, kTorn, kGarble, kAbort };

struct Action {
  ActionKind kind = ActionKind::kErr;
  // delay: milliseconds; torn: bytes dropped from the end of the write;
  // garble: byte offset (mod size) whose bits get flipped.
  double value = 0.0;
  std::string message;  // err payload
};

enum class PolicyKind : std::uint8_t { kAlways, kOnce, kEvery, kProb };

class Registry {
 public:
  static Registry& global();

  // Parses `spec` and arms the named points (additive: points from a
  // previous configure stay armed unless re-specified). Policies draw
  // from Rng::stream(seed, fnv(name)), so two registries configured
  // with the same spec+seed fire identically. Throws ParseError on a
  // malformed spec.
  void configure(const std::string& spec, std::uint64_t seed = 1);

  // Disarms every point and drops their trigger state.
  void clear();

  // Number of armed points.
  std::size_t size() const;

  // Policy evaluation for the named site. Returns the action when the
  // point is armed and its policy fires this time; increments the
  // `failpoint.<name>.fired` metric on fire.
  std::optional<Action> fire(const std::string& name);

  // cwsp-failpoints-v1: armed points with hit/fired counts, sorted by
  // name — the payload of the service `failpoints` op.
  std::string to_json() const;

 private:
  struct Point {
    Action action;
    PolicyKind policy = PolicyKind::kAlways;
    std::uint64_t every_n = 1;
    double prob = 1.0;
    Rng rng{1};
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
    bool once_done = false;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Point> points_;
};

namespace detail {
extern std::atomic<bool> g_armed;
std::optional<Action> inject_slow(const char* name);
void mutate_slow(const char* name, std::string& data);
bool fires_slow(const char* name);
}  // namespace detail

// The zero-cost gate: false unless some registry entry is armed.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

// Evaluates the failpoint and applies self-contained actions inline:
// `err` throws InjectedFault, `delay` sleeps, `abort` calls abort().
// `torn`/`garble` are returned for the site to apply to its payload
// (prefer mutate() for that).
inline std::optional<Action> inject(const char* name) {
  if (!armed()) return std::nullopt;
  return detail::inject_slow(name);
}

// inject() specialised for write/frame sites: applies `torn` (drop N
// tail bytes) or `garble` (flip a byte) to `data` in place; other
// actions behave as in inject().
inline void mutate(const char* name, std::string& data) {
  if (armed()) detail::mutate_slow(name, data);
}

// Pure policy check for sites with site-defined failure semantics
// (forced cache eviction, solver singularity): true when the point
// fires, whatever its action kind. `delay` still sleeps first.
inline bool fires(const char* name) {
  return armed() && detail::fires_slow(name);
}

// Statement form of inject() for sites that only need err/delay/abort.
#define CWSP_FAILPOINT(name)                                        \
  do {                                                              \
    if (::cwsp::failpoint::armed()) ::cwsp::failpoint::inject(name); \
  } while (false)

}  // namespace cwsp::failpoint
