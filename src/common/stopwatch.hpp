#pragma once
// Monotonic wall-clock measurement for timeouts and progress reporting.
//
// Built on std::chrono::steady_clock (never jumps backwards on NTP
// adjustments), so per-strike campaign deadlines cannot misfire when the
// system clock is corrected mid-run. Timing never feeds experiment
// results — reports stay bit-deterministic — only control decisions.

#include <chrono>

namespace cwsp {

class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Deadline `timeout_ms` from now; never expires when timeout_ms <= 0.
  [[nodiscard]] static Clock::time_point deadline_after(double timeout_ms) {
    if (timeout_ms <= 0.0) return Clock::time_point::max();
    return Clock::now() +
           std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double, std::milli>(timeout_ms));
  }

 private:
  Clock::time_point start_;
};

}  // namespace cwsp
