#pragma once
// Process-wide metrics registry: counters, gauges and latency histograms.
//
// Instrumentation for the long-running analysis service and the
// subsystems it drives (campaign engine, compiled kernel, caches). The
// registry is designed around two constraints:
//
//   * it is updated from hot, multi-threaded paths — every instrument is
//     a bag of relaxed atomics, registration hands out stable references
//     that stay valid for the registry's lifetime, and the fast path
//     (add/observe on an already-registered instrument) takes no lock;
//   * it must never perturb experiment determinism — metrics are
//     observability only; no simulation report ever reads them back.
//
// Histograms bucket by power-of-two microseconds (1 us .. ~1 hour), which
// is plenty for p50/p99 service-latency estimates without unbounded
// memory. `to_json()` emits a deterministic document (instruments sorted
// by name) — the payload of the service's `metrics` request and of the
// `--metrics-json` shutdown dump; docs/service.md lists the catalog.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace cwsp::metrics {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed latency histogram. Bucket b counts observations with
/// us in [2^b, 2^(b+1)); bucket 0 also absorbs sub-microsecond samples.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void observe_us(std::uint64_t us);
  void observe_ms(double ms) {
    observe_us(ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0));
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum_us() const {
    return sum_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_us() const {
    return max_us_.load(std::memory_order_relaxed);
  }
  /// Quantile estimate (q in [0,1]): upper edge of the bucket holding the
  /// q-th observation. Returns 0 for an empty histogram.
  [[nodiscard]] std::uint64_t quantile_us(double q) const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Named instrument registry. counter()/gauge()/histogram() find-or-create
/// and return a reference that remains valid (and lock-free to update)
/// for the registry's lifetime.
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Deterministic JSON document: one object per instrument kind, keys
  /// sorted by name. Histograms expand to
  /// {count, sum_us, max_us, p50_us, p99_us}.
  [[nodiscard]] std::string to_json() const;

  /// Drops every instrument (outstanding references dangle — test-only).
  void reset_for_test();

  /// The process-wide registry used by all built-in instrumentation.
  [[nodiscard]] static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cwsp::metrics
