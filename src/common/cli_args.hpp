#pragma once
// Minimal command-line argument parser shared by the CLI front ends:
// positionals plus `--key [value]` options. A token following an option is
// consumed as its value when it does not itself look like an option —
// including negative numbers (`--skew -5`), which must not be mistaken
// for flags.

#include <map>
#include <string>
#include <vector>

namespace cwsp {

struct CliArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] bool has(const std::string& key) const {
    return options.contains(key);
  }
  /// Numeric option value, or `fallback` when absent. Throws cwsp::Error
  /// when present but not a number.
  [[nodiscard]] double number(const std::string& key, double fallback) const;
  [[nodiscard]] std::string text(const std::string& key,
                                 const std::string& fallback) const;
};

/// True for tokens like "-5", "-0.25" or "-1e3" (an option *value*, not a
/// flag, despite the leading dash).
[[nodiscard]] bool is_negative_number(const std::string& token);

/// Parses argv[first..argc). Options are `--key`; the next token becomes
/// the value when it does not start with '-' or is a negative number,
/// otherwise the option is a flag with value "1".
[[nodiscard]] CliArgs parse_cli_args(int argc, const char* const* argv,
                                     int first = 2);

}  // namespace cwsp
