#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cwsp {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  rows_.clear();
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " |";
    }
    os << '\n';
  };

  print_row(header_);
  os << '|';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace cwsp
