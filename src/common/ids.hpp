#pragma once
// Strongly-typed index handles for netlist / circuit entities.
//
// All containers in the library are index-based (stable, cache-friendly,
// trivially serialisable); a typed wrapper keeps a NetId from being used
// where a GateId is expected.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace cwsp {

template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v)
      : value_(static_cast<underlying_type>(v)) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id a, Id b) = default;

 private:
  underlying_type value_ = kInvalid;
};

struct NetTag {};
struct GateTag {};
struct FlipFlopTag {};
struct CellTag {};
struct SpiceNodeTag {};
struct DeviceTag {};

/// A wire in the gate-level netlist.
using NetId = Id<NetTag>;
/// A combinational gate instance.
using GateId = Id<GateTag>;
/// A sequential element (D flip-flop) instance.
using FlipFlopId = Id<FlipFlopTag>;
/// A cell (gate type) in the cell library.
using CellId = Id<CellTag>;
/// An electrical node in the MiniSpice simulator.
using SpiceNodeId = Id<SpiceNodeTag>;
/// A device instance in the MiniSpice simulator.
using DeviceId = Id<DeviceTag>;

}  // namespace cwsp

template <typename Tag>
struct std::hash<cwsp::Id<Tag>> {
  std::size_t operator()(cwsp::Id<Tag> id) const noexcept {
    return std::hash<typename cwsp::Id<Tag>::underlying_type>{}(id.value());
  }
};
