#pragma once
// Minimal fixed-width ASCII table printer used by the bench binaries to
// print rows in the same layout as the paper's tables.

#include <iosfwd>
#include <string>
#include <vector>

namespace cwsp {

class TextTable {
 public:
  /// Sets the header row; resets any accumulated rows.
  void set_header(std::vector<std::string> header);

  /// Appends a data row. Rows may be shorter than the header; missing
  /// trailing cells render as blanks.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string num(double value, int precision = 2);

  /// Renders the table with column separators and a header rule.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cwsp
