#pragma once
// Strongly-typed physical quantities used throughout the library.
//
// The paper's evaluation mixes picoseconds (delays), femtocoulombs
// (deposited charge), square microns (active area) and volts. Using a
// distinct type per dimension prevents the classic "passed a delay where a
// charge was expected" calibration bug, at zero runtime cost.

#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace cwsp {

/// A double wrapper tagged with a dimension. Supports the affine
/// operations that make sense for all quantities used here.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity(-a.value_); }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(s * a.value_);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.value_ / s);
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

struct PicosecondsTag {};
struct FemtocoulombsTag {};
struct SquareMicronsTag {};
struct VoltsTag {};
struct FemtofaradsTag {};
struct KiloohmsTag {};
struct MicroampsTag {};

/// Time in picoseconds (the paper reports all delays in ps).
using Picoseconds = Quantity<PicosecondsTag>;
/// Deposited charge in femtocoulombs (paper: Q = 100 fC, 150 fC).
using Femtocoulombs = Quantity<FemtocoulombsTag>;
/// Active area in square microns (paper's area unit).
using SquareMicrons = Quantity<SquareMicronsTag>;
/// Node voltage in volts (VDD = 1 V in the paper's 65 nm setup).
using Volts = Quantity<VoltsTag>;
/// Capacitance in femtofarads.
using Femtofarads = Quantity<FemtofaradsTag>;
/// Resistance in kiloohms. Note: 1 kΩ · 1 fF = 1 ps, so the
/// (kΩ, fF, ps, V) system is internally consistent for RC analysis.
using Kiloohms = Quantity<KiloohmsTag>;
/// Current in microamps. 1 V / 1 kΩ = 1 mA = 1000 µA; and
/// 1 fC / 1 ps = 1 mA, so currents are scaled explicitly where needed.
using Microamps = Quantity<MicroampsTag>;

namespace literals {
constexpr Picoseconds operator""_ps(long double v) {
  return Picoseconds(static_cast<double>(v));
}
constexpr Picoseconds operator""_ps(unsigned long long v) {
  return Picoseconds(static_cast<double>(v));
}
constexpr Femtocoulombs operator""_fC(long double v) {
  return Femtocoulombs(static_cast<double>(v));
}
constexpr Femtocoulombs operator""_fC(unsigned long long v) {
  return Femtocoulombs(static_cast<double>(v));
}
constexpr SquareMicrons operator""_um2(long double v) {
  return SquareMicrons(static_cast<double>(v));
}
constexpr SquareMicrons operator""_um2(unsigned long long v) {
  return SquareMicrons(static_cast<double>(v));
}
constexpr Volts operator""_V(long double v) {
  return Volts(static_cast<double>(v));
}
constexpr Volts operator""_V(unsigned long long v) {
  return Volts(static_cast<double>(v));
}
constexpr Femtofarads operator""_fF(long double v) {
  return Femtofarads(static_cast<double>(v));
}
constexpr Femtofarads operator""_fF(unsigned long long v) {
  return Femtofarads(static_cast<double>(v));
}
constexpr Kiloohms operator""_kohm(long double v) {
  return Kiloohms(static_cast<double>(v));
}
constexpr Kiloohms operator""_kohm(unsigned long long v) {
  return Kiloohms(static_cast<double>(v));
}
}  // namespace literals

/// RC product: kΩ × fF = ps exactly (10^3 · 10^-15 = 10^-12 s).
constexpr Picoseconds rc_delay(Kiloohms r, Femtofarads c) {
  return Picoseconds(r.value() * c.value());
}

template <typename Tag>
[[nodiscard]] bool approx_equal(Quantity<Tag> a, Quantity<Tag> b,
                                double rel_tol = 1e-9, double abs_tol = 1e-12) {
  const double diff = std::fabs(a.value() - b.value());
  const double scale =
      std::max(std::fabs(a.value()), std::fabs(b.value()));
  return diff <= std::max(abs_tol, rel_tol * scale);
}

}  // namespace cwsp
