#include "common/cli_args.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace cwsp {

double CliArgs::number(const std::string& key, double fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    // Typed as ParseError so the CLI maps it to the usage exit code (2).
    throw ParseError("option --" + key + " expects a number, got '" +
                     it->second + "'");
  }
  return value;
}

std::string CliArgs::text(const std::string& key,
                          const std::string& fallback) const {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

bool is_negative_number(const std::string& token) {
  if (token.size() < 2 || token[0] != '-') return false;
  char* end = nullptr;
  (void)std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

CliArgs parse_cli_args(int argc, const char* const* argv, int first) {
  CliArgs args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && arg.size() > 2) {
      const std::string key = arg.substr(2);
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        if (next.empty() || next[0] != '-' || is_negative_number(next)) {
          args.options[key] = argv[++i];
          continue;
        }
      }
      args.options[key] = "1";
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

}  // namespace cwsp
