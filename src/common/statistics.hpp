#pragma once
// Streaming statistics accumulator (Welford) used by fault campaigns and
// the benchmark harness for reporting averages, as the paper's tables do.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cwsp {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a retained sample (used for glitch-width sweeps).
class SampleSet {
 public:
  void add(double x) { values_.push_back(x); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }

  /// Nearest-rank percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const {
    CWSP_REQUIRE(!values_.empty());
    CWSP_REQUIRE(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
  }

 private:
  std::vector<double> values_;
};

}  // namespace cwsp
