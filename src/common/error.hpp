#pragma once
// Error handling: a single exception type for recoverable library errors
// (malformed netlists, unsatisfiable timing constraints, solver
// non-convergence) plus precondition macros for programmer errors.

#include <sstream>
#include <stdexcept>
#include <string>

namespace cwsp {

/// Thrown for all recoverable errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Input that could not be parsed: netlist files, library files, CLI
/// argument payloads. cwsp_tool maps this to exit code 2.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A numerical solve that failed after every recovery path was exhausted
/// (MiniSpice ladder, see docs/minispice.md). cwsp_tool maps this to exit
/// code 3.
class SolveError : public Error {
 public:
  explicit SolveError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace cwsp

/// Validate a caller-supplied precondition; throws cwsp::Error on failure.
#define CWSP_REQUIRE(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::cwsp::detail::raise("precondition", #cond, __FILE__, __LINE__, ""); \
  } while (false)

#define CWSP_REQUIRE_MSG(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream cwsp_require_os;                                  \
      cwsp_require_os << msg;                                              \
      ::cwsp::detail::raise("precondition", #cond, __FILE__, __LINE__,     \
                            cwsp_require_os.str());                        \
    }                                                                      \
  } while (false)

/// Internal invariant check; failure indicates a library bug.
#define CWSP_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::cwsp::detail::raise("invariant", #cond, __FILE__, __LINE__, "");   \
  } while (false)
