#include "common/metrics.hpp"

#include <bit>
#include <sstream>

namespace cwsp::metrics {
namespace {

std::size_t bucket_of(std::uint64_t us) {
  if (us == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(us)) - 1;
  return b < Histogram::kBuckets ? b : Histogram::kBuckets - 1;
}

void fetch_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < v && !slot.compare_exchange_weak(seen, v,
                                                 std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe_us(std::uint64_t us) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  fetch_max(max_us_, us);
  buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::quantile_us(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th observation (1-based, ceil), walked over buckets.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank || (seen == rank && rank == total)) {
      // Upper edge of bucket b, capped by the observed maximum.
      const std::uint64_t edge =
          b + 1 >= 64 ? max_us() : (std::uint64_t{1} << (b + 1)) - 1;
      return edge < max_us() ? edge : max_us();
    }
  }
  return max_us();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"schema\": \"cwsp-metrics-v1\", \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << name << "\": " << c->value();
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << name << "\": " << g->value();
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << name << "\": {\"count\": " << h->count()
       << ", \"sum_us\": " << h->sum_us() << ", \"max_us\": " << h->max_us()
       << ", \"p50_us\": " << h->quantile_us(0.5)
       << ", \"p99_us\": " << h->quantile_us(0.99) << '}';
  }
  os << "}}";
  return os.str();
}

void Registry::reset_for_test() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace cwsp::metrics
