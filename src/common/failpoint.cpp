#include "common/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace cwsp::failpoint {
namespace detail {

std::atomic<bool> g_armed{false};

}  // namespace detail

namespace {

std::uint64_t fnv64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

double parse_number(const std::string& text, const std::string& entry) {
  std::size_t used = 0;
  double v = -1.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty() || !(v >= 0.0)) {
    throw ParseError("failpoint spec: bad numeric argument in '" + entry +
                     "'");
  }
  return v;
}

const char* kind_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kErr:
      return "err";
    case ActionKind::kDelay:
      return "delay";
    case ActionKind::kTorn:
      return "torn";
    case ActionKind::kGarble:
      return "garble";
    case ActionKind::kAbort:
      return "abort";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::configure(const std::string& spec, std::uint64_t seed) {
  // Parse into a staging list first so a malformed tail entry cannot
  // leave the registry half-armed.
  std::vector<std::pair<std::string, Point>> staged;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ParseError("failpoint spec: expected name=action in '" + entry +
                       "'");
    }
    const std::string name = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    Point point;
    const std::size_t at = rest.rfind('@');
    std::string policy;
    if (at != std::string::npos) {
      policy = rest.substr(at + 1);
      rest = rest.substr(0, at);
    }
    std::string arg;
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      arg = rest.substr(colon + 1);
      rest = rest.substr(0, colon);
    }

    if (rest == "err") {
      point.action.kind = ActionKind::kErr;
      point.action.message =
          arg.empty() ? "injected fault at " + name : arg;
    } else if (rest == "delay") {
      point.action.kind = ActionKind::kDelay;
      point.action.value = arg.empty() ? 10.0 : parse_number(arg, entry);
    } else if (rest == "torn") {
      point.action.kind = ActionKind::kTorn;
      point.action.value = arg.empty() ? 1.0 : parse_number(arg, entry);
    } else if (rest == "garble") {
      point.action.kind = ActionKind::kGarble;
      point.action.value = arg.empty() ? 0.0 : parse_number(arg, entry);
    } else if (rest == "abort") {
      point.action.kind = ActionKind::kAbort;
    } else {
      throw ParseError("failpoint spec: unknown action '" + rest + "' in '" +
                       entry + "'");
    }

    if (policy.empty() || policy == "always") {
      point.policy = PolicyKind::kAlways;
    } else if (policy == "once") {
      point.policy = PolicyKind::kOnce;
    } else if (policy.rfind("every=", 0) == 0) {
      point.policy = PolicyKind::kEvery;
      point.every_n = static_cast<std::uint64_t>(
          parse_number(policy.substr(6), entry));
      if (point.every_n < 1) {
        throw ParseError("failpoint spec: every=N needs N >= 1 in '" + entry +
                         "'");
      }
    } else if (policy.rfind("prob=", 0) == 0) {
      point.policy = PolicyKind::kProb;
      point.prob = parse_number(policy.substr(5), entry);
      if (point.prob > 1.0) {
        throw ParseError("failpoint spec: prob=P needs P in [0,1] in '" +
                         entry + "'");
      }
    } else {
      throw ParseError("failpoint spec: unknown policy '" + policy + "' in '" +
                       entry + "'");
    }

    point.rng = Rng::stream(seed, fnv64(name));
    staged.emplace_back(name, std::move(point));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, point] : staged) {
    points_[name] = std::move(point);
  }
  detail::g_armed.store(!points_.empty(), std::memory_order_relaxed);
  metrics::Registry::global()
      .gauge("failpoint.armed")
      .set(static_cast<std::int64_t>(points_.size()));
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
  metrics::Registry::global().gauge("failpoint.armed").set(0);
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return points_.size();
}

std::optional<Action> Registry::fire(const std::string& name) {
  std::optional<Action> action;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(name);
    if (it == points_.end()) return std::nullopt;
    Point& point = it->second;
    ++point.hits;
    bool fired = false;
    switch (point.policy) {
      case PolicyKind::kAlways:
        fired = true;
        break;
      case PolicyKind::kOnce:
        fired = !point.once_done;
        point.once_done = true;
        break;
      case PolicyKind::kEvery:
        fired = point.hits % point.every_n == 0;
        break;
      case PolicyKind::kProb:
        fired = point.rng.next_bool(point.prob);
        break;
    }
    if (!fired) return std::nullopt;
    ++point.fired;
    action = point.action;
  }
  metrics::Registry::global().counter("failpoint." + name + ".fired").add(1);
  return action;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"schema\":\"cwsp-failpoints-v1\",\"armed\":" << points_.size()
     << ",\"points\":[";
  bool first = true;
  for (const auto& [name, point] : points_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(name) << "\",\"action\":\""
       << kind_name(point.action.kind) << "\",\"hits\":" << point.hits
       << ",\"fired\":" << point.fired << '}';
  }
  os << "]}";
  return os.str();
}

namespace detail {

namespace {

// Applies err/delay/abort inline; returns torn/garble for the site.
std::optional<Action> apply_inline(std::optional<Action> action) {
  if (!action) return std::nullopt;
  switch (action->kind) {
    case ActionKind::kErr:
      throw InjectedFault(action->message);
    case ActionKind::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<std::int64_t>(action->value * 1000.0)));
      return std::nullopt;
    case ActionKind::kAbort:
      std::abort();
    case ActionKind::kTorn:
    case ActionKind::kGarble:
      return action;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Action> inject_slow(const char* name) {
  return apply_inline(Registry::global().fire(name));
}

void mutate_slow(const char* name, std::string& data) {
  const auto action = apply_inline(Registry::global().fire(name));
  if (!action) return;
  if (action->kind == ActionKind::kTorn) {
    const auto drop = static_cast<std::size_t>(action->value);
    data.resize(drop >= data.size() ? 0 : data.size() - drop);
  } else if (action->kind == ActionKind::kGarble && !data.empty()) {
    const auto offset = static_cast<std::size_t>(action->value) % data.size();
    data[offset] = static_cast<char>(data[offset] ^ 0x20);
  }
}

bool fires_slow(const char* name) {
  auto action = Registry::global().fire(name);
  if (action && action->kind == ActionKind::kDelay) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(action->value * 1000.0)));
  }
  return action.has_value();
}

}  // namespace detail
}  // namespace cwsp::failpoint
