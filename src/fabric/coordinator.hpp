#pragma once
// Fault-tolerant distributed campaign fabric: the coordinator.
//
// One campaign, many boxes. The coordinator rebuilds the campaign's full
// strike plan (the same deterministic construction every execution path
// uses), cuts it into shards with set::shard_plan, and fans the shards
// out to worker daemons (`cwsp_tool serve --tcp`) over the NDJSON
// protocol's `shard_exec` op. Workers return their results as journal-
// format strike lines keyed by global plan indices; the coordinator
// validates each result against the shard's fingerprint, merges the
// lines into a full-plan slot vector and aggregates/formats it with the
// exact code the single-host engine uses — so the merged report is
// byte-identical to `cwsp_tool campaign` on one machine, no matter which
// worker ran what, in what order, or how often.
//
// Robustness model (docs/fabric.md has the full failure matrix):
//   * lease timeouts — a shard not completed within its lease returns to
//     the pending queue and is re-dispatched (straggler mitigation);
//     duplicate completions resolve deterministically: first valid wins;
//   * result validation — a shard result must carry the expected shard
//     fingerprint, the right strike count and in-range indices, or it is
//     rejected (byzantine/garbage workers cannot corrupt the report);
//   * worker eviction — consecutive transport failures or heartbeat
//     silence evict a worker from the rotation;
//   * backoff — reconnects use capped exponential backoff with
//     deterministic jitter (common/backoff.hpp);
//   * local fallback — shards nobody completes are executed in-process,
//     so "no workers reachable" degrades to a plain local campaign;
//   * journal recovery — with a journal configured, every completed
//     shard is durably recorded (strike lines + completion marker); a
//     restarted coordinator resumes from completed shards instead of
//     re-running the campaign.

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/handlers.hpp"

namespace cwsp::fabric {

struct FabricOptions {
  /// Worker endpoints ("host:port" or Unix socket paths).
  std::vector<std::string> workers;
  /// Shard count; 0 derives max(1, 4 × workers), capped at the plan size.
  std::size_t shards = 0;
  /// Per-shard lease: a dispatched shard not completed within this window
  /// is handed to the next free worker.
  double lease_ms = 60'000.0;
  /// Liveness probe cadence and tolerated silence. Probes are answered
  /// inline by worker reader threads, so a busy worker stays live while a
  /// frozen or dead one is evicted.
  double heartbeat_interval_ms = 500.0;
  double heartbeat_timeout_ms = 3'000.0;
  /// Consecutive transport/validation failures before a worker is
  /// evicted from the rotation.
  std::size_t worker_failure_limit = 3;
  /// Connect retry/backoff policy for worker connections.
  service::DialOptions dial;
  /// Fabric journal for coordinator crash recovery; empty disables.
  std::string journal_path;
  /// Resume from an existing fabric journal (journal_path must name it).
  bool resume = false;
  /// Execute shards nobody completed locally (in this process) once the
  /// worker phase ends. Disabling turns unfinished shards into an
  /// `interrupted` report.
  bool local_fallback = true;
  /// Stop after this many freshly completed shards (0 = no limit) — the
  /// deterministic coordinator-crash rehearsal, mirroring the engine's
  /// stop_after. With a journal, a resumed run completes the campaign.
  std::size_t stop_after_shards = 0;
  /// `jobs` forwarded to each worker's shard execution (0 = the spec's).
  std::size_t worker_jobs = 0;
  /// Shared secret sent as the `auth` field of every worker request
  /// (shard_exec dispatches). Empty sends nothing. Workers listening
  /// with `--auth-token` reject unauthenticated work requests.
  std::string auth_token;
  /// Campaign-wide wall-clock budget, ms (0 = none). The remaining
  /// budget rides each shard dispatch as `deadline_ms`, arming the
  /// worker's CancelToken; the local fallback arms its own token, so an
  /// exhausted budget degrades to an `interrupted` report instead of
  /// running long.
  double deadline_ms = 0.0;
  /// Progress/diagnostic log sink (nullptr = silent).
  std::ostream* log = nullptr;
};

struct FabricStats {
  std::size_t shards_total = 0;
  /// Shards restored from the journal without execution.
  std::size_t shards_resumed = 0;
  /// Shards completed by remote workers / by the local fallback.
  std::size_t shards_remote = 0;
  std::size_t shards_local = 0;
  /// Lease expiries that re-queued a shard.
  std::size_t redispatched = 0;
  /// Duplicate completions discarded (first valid result had won).
  std::size_t duplicates = 0;
  /// Results rejected by validation (fingerprint/count/index).
  std::size_t rejected = 0;
  /// Workers evicted (failure limit or heartbeat silence).
  std::size_t workers_evicted = 0;
  /// Total backoff sleep across worker reconnects, ms.
  double backoff_ms = 0.0;
};

struct FabricOutcome {
  service::CampaignOutcome outcome;
  FabricStats stats;
};

/// Runs `spec` distributed across `options.workers`, producing output
/// byte-identical to service::run_campaign for the same session + spec.
/// `design_text` is the design source shipped to workers (the session
/// must have been built from it). Throws cwsp::Error for configuration
/// errors (mismatched resume journal, sharded spec, timed spec).
[[nodiscard]] FabricOutcome run_distributed_campaign(
    const service::DesignSession& session, const std::string& design_text,
    const service::CampaignSpec& spec, const FabricOptions& options);

}  // namespace cwsp::fabric
