#include "fabric/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "common/backoff.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/stopwatch.hpp"
#include "service/json.hpp"
#include "sim/cancel.hpp"

namespace cwsp::fabric {
namespace {

using campaign::StrikeResult;
using service::Client;

enum class ShardState : std::uint8_t { kPending, kLeased, kDone };

std::string hex64(std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

/// Round-trip-exact double formatting for the request line.
std::string num17(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Liveness and failure accounting for one worker endpoint. `evicted`
/// and `failures` are shared between the worker's agent thread and the
/// heartbeat monitor; `heartbeat_misses` is monitor-private.
struct WorkerState {
  explicit WorkerState(std::string e) : endpoint(std::move(e)) {}
  const std::string endpoint;
  std::atomic<bool> evicted{false};
  std::atomic<std::size_t> failures{0};
  std::size_t heartbeat_misses = 0;
};

/// Everything the dispatch threads share, guarded by `mutex` (atomics in
/// WorkerState aside).
struct Dispatch {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::size_t> pending;
  std::vector<ShardState> state;
  std::vector<Stopwatch::Clock::time_point> lease_deadline;
  std::vector<StrikeResult>* slots = nullptr;
  std::size_t done = 0;
  std::size_t fresh_done = 0;
  bool stop = false;
  FabricStats stats;
  double accumulated_backoff_ms = 0.0;
  /// Campaign-wide deadline (time_point::max() = none); dispatches carry
  /// the remaining budget and the monitor stops the remote phase when it
  /// expires.
  Stopwatch::Clock::time_point deadline = Stopwatch::Clock::time_point::max();
};

/// Remaining wall-clock budget in ms, floored at 1 so an expiring
/// deadline still round-trips as an armed (and instantly expiring)
/// deadline on the worker instead of silently dropping off the request.
double remaining_deadline_ms(const Dispatch& dispatch) {
  if (dispatch.deadline == Stopwatch::Clock::time_point::max()) return 0.0;
  const double remaining =
      std::chrono::duration<double, std::milli>(dispatch.deadline -
                                                Stopwatch::Clock::now())
          .count();
  return std::max(1.0, remaining);
}

struct PlanContext {
  const set::StrikePlan* full_plan = nullptr;
  std::vector<set::StrikePlan> shards;
  std::vector<std::size_t> shard_begin;
  std::vector<std::uint64_t> shard_fp;
  std::unordered_map<std::size_t, std::size_t> position_of;
  std::uint64_t full_fp = 0;
};

void fabric_log(const FabricOptions& options, const std::string& message) {
  if (options.log != nullptr) *options.log << "fabric: " << message << "\n";
}

/// Builds the shard_exec request line for shard `s` (1-based on the
/// wire). The design text travels inline so workers need no shared
/// filesystem.
std::string shard_request(const service::DesignSession& session,
                          const std::string& design_text,
                          const service::CampaignSpec& spec,
                          const FabricOptions& options,
                          const PlanContext& ctx, std::size_t s,
                          double deadline_ms) {
  namespace json = service::json;
  const std::size_t jobs =
      options.worker_jobs != 0 ? options.worker_jobs : spec.jobs;
  std::ostringstream os;
  os << "{\"id\":\"shard-" << s << "\",\"op\":\"shard_exec\""
     << ",\"design\":\"" << json::escape(design_text) << '"'
     << ",\"design_name\":\"" << json::escape(session.name) << '"'
     << ",\"runs\":" << spec.runs << ",\"cycles\":" << spec.cycles
     << ",\"width\":" << num17(spec.width_ps) << ",\"seed\":" << spec.seed
     << ",\"jobs\":" << std::max<std::size_t>(1, jobs)
     << (spec.adversarial ? ",\"adversarial\":true" : "")
     << (spec.use_legacy_kernel ? ",\"legacy_kernel\":true" : "");
  // Scheme/model travel only off the defaults, mirroring the flag-style
  // fields above (a default-cell request is byte-identical to one from a
  // pre-registry coordinator).
  if (!spec.schemes.empty() && spec.schemes.front() != "cwsp") {
    os << ",\"scheme\":\"" << json::escape(spec.schemes.front()) << '"';
  }
  if (!spec.fault_models.empty() && spec.fault_models.front() != "single-set") {
    os << ",\"fault_model\":\"" << json::escape(spec.fault_models.front())
       << '"';
  }
  if (!options.auth_token.empty()) {
    os << ",\"auth\":\"" << json::escape(options.auth_token) << '"';
  }
  if (deadline_ms > 0.0) {
    os << ",\"deadline_ms\":" << num17(deadline_ms);
  }
  os << ",\"shard_index\":" << (s + 1)
     << ",\"shard_total\":" << ctx.shards.size() << ",\"expect_fp\":\""
     << hex64(ctx.shard_fp[s]) << "\"}";
  return os.str();
}

/// Parses and validates a worker's shard_exec response payload against
/// shard `s`: every strike line must parse, land inside the shard, and
/// the shard must come back complete with the expected fingerprint.
/// Returns the shard's results (shard order) or nullopt.
std::optional<std::vector<StrikeResult>> validate_shard_payload(
    const PlanContext& ctx, std::size_t s, std::uint64_t reported_fp,
    const std::string& payload) {
  if (reported_fp != ctx.shard_fp[s]) return std::nullopt;
  const set::StrikePlan& shard = ctx.shards[s];
  std::vector<StrikeResult> results(shard.size());
  std::vector<char> seen(shard.size(), 0);
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t end = payload.find('\n', pos);
    if (end == std::string::npos) end = payload.size();
    const std::string line = payload.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    StrikeResult r;
    if (!campaign::parse_strike_line(line, r)) return std::nullopt;
    const auto it = ctx.position_of.find(r.index);
    if (it == ctx.position_of.end()) return std::nullopt;
    const std::size_t begin = ctx.shard_begin[s];
    if (it->second < begin || it->second >= begin + shard.size()) {
      return std::nullopt;
    }
    const std::size_t local = it->second - begin;
    if (seen[local] != 0) return std::nullopt;
    seen[local] = 1;
    results[local] = std::move(r);
    ++count;
  }
  if (count != shard.size()) return std::nullopt;
  return results;
}

/// Records a completed shard: fills the full-plan slots, journals the
/// shard block, flips the state machine. First valid result wins —
/// duplicate completions (a straggler finishing after its lease was
/// re-dispatched) are counted and dropped. Returns false on duplicate.
bool commit_shard(Dispatch& dispatch, const PlanContext& ctx, std::size_t s,
                  const std::vector<StrikeResult>& results, bool remote,
                  double latency_ms, campaign::JournalWriter* writer,
                  const FabricOptions& options) {
  // Chaos: a `delay` here widens the window in which a straggler's
  // duplicate completion races the winner's commit.
  failpoint::fires("fabric.commit");
  std::unique_lock<std::mutex> lock(dispatch.mutex);
  if (dispatch.state[s] == ShardState::kDone) {
    ++dispatch.stats.duplicates;
    return false;
  }
  const std::size_t begin = ctx.shard_begin[s];
  for (std::size_t k = 0; k < results.size(); ++k) {
    (*dispatch.slots)[begin + k] = results[k];
  }
  dispatch.state[s] = ShardState::kDone;
  ++dispatch.done;
  ++dispatch.fresh_done;
  if (remote) {
    ++dispatch.stats.shards_remote;
  } else {
    ++dispatch.stats.shards_local;
  }
  if (options.stop_after_shards != 0 &&
      dispatch.fresh_done >= options.stop_after_shards) {
    dispatch.stop = true;
  }
  lock.unlock();

  if (writer != nullptr) {
    campaign::ShardRecord record;
    record.index = s;
    record.total = ctx.shards.size();
    record.fingerprint = ctx.shard_fp[s];
    record.begin = ctx.full_plan->strikes[begin].index;
    record.count = results.size();
    writer->append_shard(record, results);
  }
  metrics::Registry::global()
      .histogram("fabric.shard_latency_us")
      .observe_ms(latency_ms);
  dispatch.cv.notify_all();
  return true;
}

/// Returns a leased shard to the pending queue (transport failure or
/// rejected result) so another worker can pick it up.
void unclaim_shard(Dispatch& dispatch, std::size_t s) {
  std::lock_guard<std::mutex> lock(dispatch.mutex);
  if (dispatch.state[s] != ShardState::kLeased) return;
  dispatch.state[s] = ShardState::kPending;
  dispatch.pending.push_back(s);
  dispatch.cv.notify_all();
}

/// One worker's dispatch agent: claim a pending shard, lease it, execute
/// it remotely, commit or re-queue. Exits when the campaign is done, the
/// coordinator stops, or the worker is evicted.
void agent_loop(const service::DesignSession& session,
                const std::string& design_text,
                const service::CampaignSpec& spec,
                const FabricOptions& options, const PlanContext& ctx,
                Dispatch& dispatch, campaign::JournalWriter* writer,
                WorkerState& worker, std::size_t worker_index) {
  namespace json = service::json;
  auto& registry = metrics::Registry::global();
  std::unique_ptr<Client> conn;

  service::DialOptions dial = options.dial;
  dial.jitter_seed = options.dial.jitter_seed + worker_index;
  dial.on_backoff = [&dispatch, &registry](double delay_ms) {
    registry.counter("fabric.backoff_ms")
        .add(static_cast<std::uint64_t>(delay_ms));
    std::lock_guard<std::mutex> lock(dispatch.mutex);
    dispatch.accumulated_backoff_ms += delay_ms;
  };

  const auto fail = [&](std::size_t s, const std::string& why) {
    conn.reset();
    unclaim_shard(dispatch, s);
    fabric_log(options, worker.endpoint + ": " + why);
    const std::size_t failures = worker.failures.fetch_add(1) + 1;
    if (failures >= options.worker_failure_limit) {
      if (!worker.evicted.exchange(true)) {
        registry.counter("fabric.worker_evicted").add();
        std::lock_guard<std::mutex> lock(dispatch.mutex);
        ++dispatch.stats.workers_evicted;
        dispatch.cv.notify_all();
      }
    }
  };

  for (;;) {
    std::size_t s = 0;
    {
      std::unique_lock<std::mutex> lock(dispatch.mutex);
      dispatch.cv.wait_for(lock, std::chrono::milliseconds(50), [&] {
        return dispatch.stop || dispatch.done == dispatch.state.size() ||
               !dispatch.pending.empty();
      });
      if (dispatch.stop || dispatch.done == dispatch.state.size()) return;
      if (worker.evicted.load()) return;
      bool claimed = false;
      while (!dispatch.pending.empty()) {
        const std::size_t candidate = dispatch.pending.front();
        dispatch.pending.pop_front();
        if (dispatch.state[candidate] != ShardState::kPending) continue;
        s = candidate;
        claimed = true;
        break;
      }
      if (!claimed) continue;
      dispatch.state[s] = ShardState::kLeased;
      dispatch.lease_deadline[s] =
          Stopwatch::deadline_after(options.lease_ms);
    }

    Stopwatch latency;
    if (conn == nullptr) {
      try {
        conn = Client::dial(worker.endpoint, dial);
      } catch (const std::exception& e) {
        fail(s, e.what());
        continue;
      }
    }

    std::string response_line;
    try {
      // Chaos: a dispatch-side transport fault — the shard must return
      // to the pending queue and count toward this worker's eviction.
      CWSP_FAILPOINT("fabric.dispatch.send");
      conn->send_line(shard_request(session, design_text, spec, options, ctx,
                                    s, remaining_deadline_ms(dispatch)));
      // Wait past the lease: the monitor re-dispatches the shard at lease
      // expiry, and the grace window lets a late result still land (as a
      // counted duplicate) instead of tearing the connection down at the
      // exact moment it delivers. Read in slices so a stalled worker
      // cannot delay coordinator shutdown once the shard (or the whole
      // campaign) completes elsewhere.
      const auto read_deadline =
          Stopwatch::deadline_after(options.lease_ms * 1.5 + 50.0);
      Client::ReadStatus status = Client::ReadStatus::kTimeout;
      bool abandoned = false;
      while (status == Client::ReadStatus::kTimeout && !abandoned) {
        status = conn->read_line_for(response_line, 50.0);
        if (status != Client::ReadStatus::kTimeout) break;
        if (Stopwatch::Clock::now() >= read_deadline) break;
        std::lock_guard<std::mutex> lock(dispatch.mutex);
        abandoned = dispatch.stop ||
                    dispatch.done == dispatch.state.size() ||
                    dispatch.state[s] == ShardState::kDone;
      }
      if (abandoned) {
        // The in-flight response (if it ever arrives) would desync this
        // connection's request/response pairing — drop the connection.
        conn.reset();
        continue;
      }
      if (status == Client::ReadStatus::kTimeout) {
        fail(s, "shard " + std::to_string(s) + " timed out past its lease");
        continue;
      }
      if (status == Client::ReadStatus::kClosed) {
        fail(s, "connection lost mid-shard");
        continue;
      }
    } catch (const std::exception& e) {
      fail(s, e.what());
      continue;
    }

    // Transport succeeded; now validate the result. An invalid result is
    // a worker-quality failure, not a transport hiccup, but both count
    // toward the same eviction limit.
    std::optional<std::vector<StrikeResult>> results;
    // Chaos: a garbled response frame must be rejected by validation and
    // the shard re-dispatched — never merged.
    failpoint::mutate("fabric.dispatch.response", response_line);
    try {
      const json::Value response = json::parse(response_line);
      if (response.boolean("ok", false)) {
        const std::string fp_text = response.text("shard_fp", "");
        const std::uint64_t fp =
            fp_text.empty() ? 0 : std::stoull(fp_text, nullptr, 16);
        results = validate_shard_payload(ctx, s, fp,
                                         response.text("payload", ""));
      } else {
        fabric_log(options, worker.endpoint + ": shard " +
                                std::to_string(s) + " error: " +
                                response.text("error", "unknown"));
      }
    } catch (const std::exception&) {
      results = std::nullopt;
    }

    if (!results.has_value()) {
      {
        std::lock_guard<std::mutex> lock(dispatch.mutex);
        ++dispatch.stats.rejected;
      }
      fail(s, "shard " + std::to_string(s) + " result rejected");
      continue;
    }

    worker.failures.store(0);
    commit_shard(dispatch, ctx, s, *results, /*remote=*/true,
                 latency.elapsed_ms(), writer, options);
  }
}

/// Lease-expiry and heartbeat monitor. Expired leases go back to the
/// pending queue (straggler re-dispatch); workers silent past the
/// heartbeat timeout are evicted. Probes run on short-lived connections
/// so they measure the *daemon's* reader loop, not the agent's busy
/// connection.
void monitor_loop(const FabricOptions& options, Dispatch& dispatch,
                  std::vector<std::unique_ptr<WorkerState>>& workers) {
  auto& registry = metrics::Registry::global();
  auto next_heartbeat = Stopwatch::Clock::now();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(dispatch.mutex);
      dispatch.cv.wait_for(lock, std::chrono::milliseconds(25));
      if (dispatch.stop || dispatch.done == dispatch.state.size()) return;
      const auto now = Stopwatch::Clock::now();
      if (now >= dispatch.deadline) {
        // Campaign budget exhausted: end the remote phase; the local
        // fallback's expired token turns what's left into `interrupted`.
        dispatch.stop = true;
        dispatch.cv.notify_all();
        return;
      }
      for (std::size_t s = 0; s < dispatch.state.size(); ++s) {
        if (dispatch.state[s] != ShardState::kLeased) continue;
        if (now < dispatch.lease_deadline[s]) continue;
        dispatch.state[s] = ShardState::kPending;
        dispatch.pending.push_back(s);
        ++dispatch.stats.redispatched;
        registry.counter("fabric.redispatch").add();
        dispatch.cv.notify_all();
      }
    }

    if (options.heartbeat_interval_ms <= 0.0 ||
        Stopwatch::Clock::now() < next_heartbeat) {
      continue;
    }
    next_heartbeat =
        Stopwatch::deadline_after(options.heartbeat_interval_ms);
    const std::size_t tolerated = std::max<std::size_t>(
        1, static_cast<std::size_t>(options.heartbeat_timeout_ms /
                                    std::max(1.0,
                                             options.heartbeat_interval_ms)));
    for (auto& worker : workers) {
      if (worker->evicted.load()) continue;
      bool alive = false;
      try {
        // Chaos: a dropped probe counts as one heartbeat miss; enough
        // consecutive ones evict the worker.
        CWSP_FAILPOINT("fabric.heartbeat");
        service::DialOptions dial;
        dial.attempts = 1;
        dial.connect_timeout_ms = options.heartbeat_interval_ms;
        const std::unique_ptr<Client> probe =
            Client::dial(worker->endpoint, dial);
        probe->send_line("{\"id\":\"hb\",\"op\":\"ping\"}");
        std::string pong;
        alive = probe->read_line_for(pong, options.heartbeat_timeout_ms) ==
                Client::ReadStatus::kLine;
      } catch (const std::exception&) {
        alive = false;
      }
      if (alive) {
        worker->heartbeat_misses = 0;
        continue;
      }
      if (++worker->heartbeat_misses < tolerated) continue;
      if (!worker->evicted.exchange(true)) {
        registry.counter("fabric.worker_evicted").add();
        std::lock_guard<std::mutex> lock(dispatch.mutex);
        ++dispatch.stats.workers_evicted;
        dispatch.cv.notify_all();
      }
    }
  }
}

}  // namespace

FabricOutcome run_distributed_campaign(const service::DesignSession& session,
                                       const std::string& design_text,
                                       const service::CampaignSpec& spec,
                                       const FabricOptions& options) {
  const Netlist& netlist = *session.netlist;
  CWSP_REQUIRE_MSG(netlist.num_flip_flops() > 0,
                   "campaign requires a sequential design");
  CWSP_REQUIRE_MSG(spec.shard_total == 0,
                   "a distributed campaign shards internally; drop "
                   "shard_index/shard_total");
  CWSP_REQUIRE_MSG(spec.timeout_ms == 0.0,
                   "per-strike timeouts are wall-clock dependent and "
                   "incompatible with distributed byte-identity");
  CWSP_REQUIRE_MSG(spec.journal_path.empty() && !spec.resume &&
                       !spec.minimize_escapes && spec.artifact_dir.empty() &&
                       spec.stop_after == 0,
                   "one-shot campaign extras are not supported with "
                   "--workers; use the fabric journal options");

  const std::vector<service::CampaignCell> cells =
      service::campaign_cells(spec);
  CWSP_REQUIRE_MSG(cells.size() == 1,
                   "a distributed campaign runs one (scheme, fault-model) "
                   "cell; fan sweeps out cell by cell");
  const service::CampaignCell& cell = cells.front();

  const auto params = core::ProtectionParams::q100();
  const Picoseconds period = session.period_q100;

  // The one plan everyone derives: coordinator, workers and the
  // single-host reference all call the same construction.
  PlanContext ctx;
  const set::StrikePlan full_plan = cell.model->build_plan(
      netlist, service::campaign_plan_options(spec, params, period),
      spec.seed);
  ctx.full_plan = &full_plan;
  ctx.full_fp = campaign::campaign_fingerprint(full_plan, spec.seed,
                                               spec.cycles, period);
  const std::size_t shard_count = std::max<std::size_t>(
      1, std::min(options.shards != 0 ? options.shards
                                      : 4 * std::max<std::size_t>(
                                                1, options.workers.size()),
                  std::max<std::size_t>(1, full_plan.size())));
  ctx.shards = set::shard_plan(full_plan, shard_count);
  ctx.shard_begin.resize(shard_count);
  ctx.shard_fp.resize(shard_count);
  std::size_t offset = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    ctx.shard_begin[s] = offset;
    offset += ctx.shards[s].size();
    ctx.shard_fp[s] = campaign::campaign_fingerprint(ctx.shards[s], spec.seed,
                                                     spec.cycles, period);
  }
  ctx.position_of.reserve(full_plan.size());
  for (std::size_t i = 0; i < full_plan.size(); ++i) {
    ctx.position_of.emplace(full_plan.strikes[i].index, i);
  }

  std::vector<StrikeResult> slots(full_plan.size());
  Dispatch dispatch;
  dispatch.slots = &slots;
  dispatch.state.assign(shard_count, ShardState::kPending);
  dispatch.lease_deadline.assign(shard_count, Stopwatch::Clock::now());
  dispatch.stats.shards_total = shard_count;
  if (options.deadline_ms > 0.0) {
    dispatch.deadline = Stopwatch::deadline_after(options.deadline_ms);
  }

  // ---- journal recovery ---------------------------------------------
  std::size_t resumed_strikes = 0;
  std::optional<campaign::JournalWriter> writer;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      const campaign::Journal journal =
          campaign::read_journal(options.journal_path);
      CWSP_REQUIRE_MSG(journal.fingerprint == ctx.full_fp,
                       "fabric journal '"
                           << options.journal_path
                           << "' does not match this campaign "
                              "(plan/seed/cycles/period differ)");
      for (const StrikeResult& r : journal.results) {
        const auto it = ctx.position_of.find(r.index);
        if (it != ctx.position_of.end() &&
            !slots[it->second].completed()) {
          slots[it->second] = r;
        }
      }
      // A marker that disagrees with the re-derived shard fingerprint
      // was written by a diverging coordinator: drop that shard's
      // journaled strikes and re-execute it.
      std::vector<char> suspect(shard_count, 0);
      for (const campaign::ShardRecord& m : journal.shards) {
        if (m.index >= shard_count) continue;
        const bool matches =
            m.total == shard_count &&
            m.fingerprint == ctx.shard_fp[m.index] &&
            m.count == ctx.shards[m.index].size() &&
            m.begin ==
                ctx.full_plan->strikes[ctx.shard_begin[m.index]].index;
        if (!matches) suspect[m.index] = 1;
      }
      for (std::size_t s = 0; s < shard_count; ++s) {
        const std::size_t begin = ctx.shard_begin[s];
        const std::size_t size = ctx.shards[s].size();
        if (suspect[s] != 0) {
          for (std::size_t k = 0; k < size; ++k) {
            slots[begin + k] = StrikeResult{};
          }
          continue;
        }
        bool complete = true;
        for (std::size_t k = 0; k < size && complete; ++k) {
          complete = slots[begin + k].completed();
        }
        if (complete) {
          dispatch.state[s] = ShardState::kDone;
          ++dispatch.done;
          ++dispatch.stats.shards_resumed;
          resumed_strikes += size;
        }
      }
      fabric_log(options,
                 "resumed " + std::to_string(dispatch.stats.shards_resumed) +
                     "/" + std::to_string(shard_count) +
                     " shard(s) from journal");
    }
    // Incomplete journaled shards re-execute whole; their partial strike
    // lines stay in the file (harmless — resume takes the first line per
    // index and validates shard completeness independently).
    writer.emplace(options.journal_path, ctx.full_fp, full_plan.size(),
                   options.resume);
  }

  for (std::size_t s = 0; s < shard_count; ++s) {
    if (dispatch.state[s] == ShardState::kPending) {
      dispatch.pending.push_back(s);
    }
  }

  // ---- remote phase --------------------------------------------------
  std::vector<std::unique_ptr<WorkerState>> workers;
  for (const std::string& endpoint : options.workers) {
    workers.push_back(std::make_unique<WorkerState>(endpoint));
  }
  if (!workers.empty() && dispatch.done < shard_count &&
      options.stop_after_shards == 0) {
    fabric_log(options, "dispatching " +
                            std::to_string(shard_count - dispatch.done) +
                            " shard(s) to " +
                            std::to_string(workers.size()) + " worker(s)");
  }
  {
    std::vector<std::thread> threads;
    const bool need_remote = !workers.empty() && dispatch.done < shard_count;
    if (need_remote) {
      threads.reserve(workers.size() + 1);
      for (std::size_t w = 0; w < workers.size(); ++w) {
        threads.emplace_back([&, w] {
          agent_loop(session, design_text, spec, options, ctx, dispatch,
                     writer.has_value() ? &*writer : nullptr, *workers[w],
                     w);
        });
      }
      threads.emplace_back(
          [&] { monitor_loop(options, dispatch, workers); });

      // The remote phase ends when every shard is done, every worker is
      // evicted, or stop_after_shards fired. Watch for the all-evicted
      // case here so the coordinator degrades to local execution instead
      // of waiting forever on an empty fleet.
      {
        std::unique_lock<std::mutex> lock(dispatch.mutex);
        dispatch.cv.wait(lock, [&] {
          if (dispatch.stop || dispatch.done == dispatch.state.size()) {
            return true;
          }
          return std::all_of(workers.begin(), workers.end(),
                             [](const std::unique_ptr<WorkerState>& w) {
                               return w->evicted.load();
                             });
        });
        dispatch.stop =
            dispatch.stop || dispatch.done == dispatch.state.size() ||
            std::all_of(workers.begin(), workers.end(),
                        [](const std::unique_ptr<WorkerState>& w) {
                          return w->evicted.load();
                        });
        dispatch.cv.notify_all();
      }
      for (auto& t : threads) t.join();
      dispatch.stop = false;
    }
  }

  // ---- local fallback -------------------------------------------------
  const bool stopped_early =
      options.stop_after_shards != 0 &&
      dispatch.fresh_done >= options.stop_after_shards;
  if (options.local_fallback && !stopped_early &&
      dispatch.done < shard_count) {
    const std::size_t remaining = shard_count - dispatch.done;
    fabric_log(options, "executing " + std::to_string(remaining) +
                            " shard(s) locally (fallback)");
    const campaign::CampaignEngine engine(netlist, params, period,
                                          session.kernel_context);
    campaign::EngineOptions engine_options;
    engine_options.seed = spec.seed;
    engine_options.cycles_per_run = spec.cycles;
    engine_options.jobs = std::max<std::size_t>(1, spec.jobs);
    engine_options.use_legacy_kernel = spec.use_legacy_kernel;
    engine_options.scheme = cell.scheme;
    engine_options.fault_model = cell.model->name();
    sim::CancelToken budget_token;
    if (dispatch.deadline != Stopwatch::Clock::time_point::max()) {
      budget_token.set_deadline(dispatch.deadline);
      engine_options.cancel = &budget_token;
    }
    for (std::size_t s = 0; s < shard_count; ++s) {
      bool claim = false;
      {
        std::lock_guard<std::mutex> lock(dispatch.mutex);
        if (dispatch.state[s] != ShardState::kDone) {
          dispatch.state[s] = ShardState::kLeased;
          claim = true;
        }
        if (options.stop_after_shards != 0 &&
            dispatch.fresh_done >= options.stop_after_shards) {
          break;
        }
      }
      if (!claim) continue;
      Stopwatch latency;
      const campaign::CampaignResult result =
          engine.run(ctx.shards[s], engine_options);
      commit_shard(dispatch, ctx, s, result.strikes, /*remote=*/false,
                   latency.elapsed_ms(), writer.has_value() ? &*writer
                                                            : nullptr,
                   options);
    }
  }

  // ---- merge ----------------------------------------------------------
  campaign::CampaignResult merged;
  merged.strikes = std::move(slots);
  merged.scheme = cell.scheme->name();
  merged.fault_model = cell.model->name();
  campaign::aggregate_results(full_plan, merged);
  merged.resumed = resumed_strikes;
  merged.executed = merged.report.runs > resumed_strikes
                        ? merged.report.runs - resumed_strikes
                        : 0;

  campaign::EngineOptions format_options;
  format_options.seed = spec.seed;
  format_options.cycles_per_run = spec.cycles;

  FabricOutcome outcome;
  outcome.outcome.status = campaign::campaign_status(merged);
  outcome.outcome.output =
      spec.json ? campaign::format_campaign_json(merged, full_plan, netlist,
                                                 format_options, period)
                : campaign::format_campaign_text(merged, full_plan, netlist);
  {
    std::lock_guard<std::mutex> lock(dispatch.mutex);
    outcome.stats = dispatch.stats;
    outcome.stats.backoff_ms = dispatch.accumulated_backoff_ms;
  }

  auto& registry = metrics::Registry::global();
  registry.counter("fabric.campaigns").add();
  registry.counter("fabric.shards_remote").add(outcome.stats.shards_remote);
  registry.counter("fabric.shards_local").add(outcome.stats.shards_local);
  registry.counter("fabric.shards_resumed").add(outcome.stats.shards_resumed);
  registry.counter("fabric.results_rejected").add(outcome.stats.rejected);
  registry.counter("fabric.duplicate_results").add(outcome.stats.duplicates);
  return outcome;
}

}  // namespace cwsp::fabric
