#pragma once
// Baseline [13] (Zhou & Mohanram, TCAD 2006): selective gate upsizing for
// SET hardening. Larger devices sink more of the deposited charge, so the
// glitch a strike produces shrinks roughly with the size multiplier; the
// algorithm greedily upsizes the most failure-prone gates until a sampled
// fault-injection campaign reaches the coverage target (the paper
// implements ~90% coverage at ~42.95% area / ~2.8% delay overhead).

#include <vector>

#include "baselines/baseline.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::baselines {

struct GateResizingOptions {
  /// Fraction of sampled strikes that must be harmless.
  double coverage_target = 0.90;
  double max_multiplier = 8.0;
  std::size_t samples = 400;
  std::uint64_t seed = 1;
  /// Glitch width a strike produces on a minimum-sized gate
  /// (500 ps at Q = 100 fC per the paper's calibration).
  Picoseconds base_glitch{500.0};
  /// Charge of the modelled strike; with the MiniSpice width model the
  /// glitch of an upsized gate is measured electrically (larger devices
  /// sink the deposited charge), quenching entirely once the gate's
  /// critical charge exceeds this.
  Femtocoulombs charge{100.0};
  bool use_spice_width_model = true;
  /// [13]'s criterion: a strike counts as an error if its glitch reaches
  /// any latch input at all (no latching-window credit). Setting this
  /// false scores only strikes that actually corrupt a capture.
  bool pessimistic_latching = true;
};

struct GateResizingResult {
  BaselineReport report;
  /// Per-gate size multipliers, indexed by GateId.
  std::vector<double> multipliers;
  double achieved_coverage_pct = 0.0;
  int resized_gates = 0;
};

[[nodiscard]] GateResizingResult harden_gate_resizing(
    const Netlist& netlist, const GateResizingOptions& options = {});

/// Longest path delay with per-gate size multipliers (drive resistance
/// scales 1/m, input capacitance scales m).
[[nodiscard]] Picoseconds resized_dmax(const Netlist& netlist,
                                       const std::vector<double>& multipliers);

}  // namespace cwsp::baselines
