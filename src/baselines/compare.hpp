#pragma once
// Side-by-side comparison harness: our CWSP secondary-path approach
// against every implemented baseline on the same netlist (the code behind
// the paper's Table 4).

#include <vector>

#include "baselines/anghel00.hpp"
#include "baselines/gate_resizing.hpp"
#include "baselines/nicolaidis99.hpp"
#include "baselines/tmr.hpp"
#include "cwsp/harden.hpp"

namespace cwsp::baselines {

struct CompareOptions {
  core::ProtectionParams our_params = core::ProtectionParams::q100();
  Anghel00Options anghel;
  Nicolaidis99Options nicolaidis;
  GateResizingOptions resizing;
  MultiStrobeOptions multistrobe;
  bool include_resizing = true;  // the costly one (fault-sim driven)
};

/// Report for the paper's approach in the common BaselineReport format.
[[nodiscard]] BaselineReport our_approach_report(
    const Netlist& netlist, const core::ProtectionParams& params);

/// Runs every technique on the netlist; first entry is our approach.
[[nodiscard]] std::vector<BaselineReport> compare_all(
    const Netlist& netlist, const CompareOptions& options = {});

}  // namespace cwsp::baselines
