#include "baselines/anghel00.hpp"

#include "cwsp/timing.hpp"
#include "sta/sta.hpp"

namespace cwsp::baselines {
namespace {

using core::protected_ff_count;

/// Min-sized inverter-type CWSP element: 2 series PMOS + 2 series NMOS.
constexpr double kCwspUnits = 4.0;
/// One extra inversion so the combinational output keeps its polarity.
constexpr double kInverterUnits = 2.0;
/// δ delay line: 4 POLY2-resistor + min-inverter segments (paper §4).
constexpr double kDelaySegments = 4.0;
constexpr double kSegmentUnits = 2.0;

/// Delay of the min-sized CWSP element into a flip-flop D load, and of
/// the inverter it conceptually replaces.
constexpr double kDCwspMinPs = 60.0;
constexpr double kReplacedGatePs = 14.0;

}  // namespace

BaselineReport harden_anghel00(const Netlist& netlist,
                               const Anghel00Options& options) {
  CWSP_REQUIRE(options.delta.value() > 0.0);
  const auto sta = run_sta(netlist);
  const CellLibrary& lib = netlist.library();
  const int num_ffs = protected_ff_count(netlist);

  BaselineReport report;
  report.technique = "Anghel00 CWSP-in-path [15]";
  report.area_regular = netlist.total_area();
  const double per_ff_units =
      kCwspUnits + kInverterUnits + kDelaySegments * kSegmentUnits;
  report.area_hardened =
      report.area_regular +
      cal::kUnitActiveArea * (per_ff_units * num_ffs);

  report.period_regular = core::regular_clock_period(sta.dmax, lib);
  // The CWSP element sits in the functional path: its output is only
  // guaranteed 2δ after the un-delayed input settles, plus the element's
  // own delay (minus the inverter it replaces).
  report.period_hardened =
      report.period_regular + options.delta * 2.0 +
      Picoseconds(kDCwspMinPs - kReplacedGatePs);

  report.protection_pct = 100.0;  // within its glitch envelope
  report.max_glitch = options.delta;
  return report;
}

}  // namespace cwsp::baselines
