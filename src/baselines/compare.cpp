#include "baselines/compare.hpp"

namespace cwsp::baselines {

BaselineReport our_approach_report(const Netlist& netlist,
                                   const core::ProtectionParams& params) {
  const auto design = core::harden_assuming_balanced_paths(netlist, params);
  BaselineReport report;
  report.technique = "This work: secondary-path CWSP";
  report.area_regular = design.regular_area;
  report.area_hardened = design.hardened_area;
  report.period_regular = design.regular_period;
  report.period_hardened = design.hardened_period;
  report.protection_pct = 100.0;
  report.max_glitch = design.max_glitch;
  return report;
}

std::vector<BaselineReport> compare_all(const Netlist& netlist,
                                        const CompareOptions& options) {
  std::vector<BaselineReport> reports;
  reports.push_back(our_approach_report(netlist, options.our_params));
  reports.push_back(harden_anghel00(netlist, options.anghel));
  reports.push_back(harden_nicolaidis99(netlist, options.nicolaidis));
  if (options.include_resizing) {
    reports.push_back(harden_gate_resizing(netlist, options.resizing).report);
  }
  reports.push_back(harden_spatial_tmr(netlist));
  reports.push_back(harden_multistrobe(netlist, options.multistrobe));
  return reports;
}

}  // namespace cwsp::baselines
