#include "baselines/tmr.hpp"

#include <algorithm>

#include "cwsp/harden.hpp"
#include "cwsp/timing.hpp"
#include "sta/sta.hpp"

namespace cwsp::baselines {
namespace {

/// Majority voter (AOI-based, ~12 transistors) per protected flip-flop.
constexpr double kVoterUnits = 12.0;
constexpr double kVoterDelayPs = 35.0;

}  // namespace

BaselineReport harden_spatial_tmr(const Netlist& netlist) {
  const auto sta = run_sta(netlist);
  const CellLibrary& lib = netlist.library();
  const int num_ffs = core::protected_ff_count(netlist);

  BaselineReport report;
  report.technique = "Spatial TMR";
  report.area_regular = netlist.total_area();
  report.area_hardened =
      netlist.combinational_area() * 3.0 +
      lib.regular_ff().area * static_cast<double>(3 * num_ffs) +
      cal::kUnitActiveArea * (kVoterUnits * num_ffs);
  report.period_regular = core::regular_clock_period(sta.dmax, lib);
  report.period_hardened =
      report.period_regular + Picoseconds(kVoterDelayPs);
  report.protection_pct = 100.0;
  // Any single-module upset is out-voted regardless of width.
  report.max_glitch = sta.dmax;
  return report;
}

BaselineReport harden_multistrobe(const Netlist& netlist,
                                  const MultiStrobeOptions& options) {
  CWSP_REQUIRE(options.strobes >= 3 && options.strobes % 2 == 1);
  const auto sta = run_sta(netlist);
  const CellLibrary& lib = netlist.library();
  const int num_ffs = core::protected_ff_count(netlist);

  BaselineReport report;
  report.technique = "Multi-strobe time TMR [23]";
  report.area_regular = netlist.total_area();
  const double extra_ffs = static_cast<double>(options.strobes - 1);
  report.area_hardened =
      report.area_regular +
      lib.regular_ff().area * (extra_ffs * num_ffs) +
      cal::kUnitActiveArea * (kVoterUnits * num_ffs);
  report.period_regular = core::regular_clock_period(sta.dmax, lib);
  // Strobing spans (strobes−1)·δ in the functional path + voting.
  report.period_hardened = report.period_regular +
                           options.delta * (options.strobes - 1.0) +
                           Picoseconds(kVoterDelayPs);
  report.protection_pct = 100.0;
  // Tolerance is bounded by half the strobe span and by D_min/2 (§2).
  report.max_glitch = std::min(options.delta, sta.dmin / 2.0);
  return report;
}

}  // namespace cwsp::baselines
