#pragma once
// Baseline [21] (Nicolaidis, VTS 1999): every gate feeding a flip-flop is
// replaced by its CWSP counterpart with 2k inputs (k original + k delayed
// by δ), doubling that gate's transistor stack. Beyond 2-input gates the
// series stacks exceed practical limits in bulk CMOS (paper §3.1), which
// is what [15] fixed; the report flags such designs infeasible.

#include "baselines/baseline.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::baselines {

struct Nicolaidis99Options {
  Picoseconds delta{450.0};
};

[[nodiscard]] BaselineReport harden_nicolaidis99(
    const Netlist& netlist, const Nicolaidis99Options& options = {});

}  // namespace cwsp::baselines
