#pragma once
// Common report for SET-hardening techniques compared in the paper's
// Table 4 (and the surrounding discussion in §2).

#include <string>

#include "common/units.hpp"

namespace cwsp::baselines {

struct BaselineReport {
  std::string technique;
  SquareMicrons area_regular{0.0};
  SquareMicrons area_hardened{0.0};
  Picoseconds period_regular{0.0};
  Picoseconds period_hardened{0.0};
  /// Fraction of SET strikes (within the technique's glitch envelope)
  /// that cannot corrupt committed outputs.
  double protection_pct = 0.0;
  /// Widest tolerated glitch.
  Picoseconds max_glitch{0.0};
  /// False where the technique is physically impractical for the design
  /// (e.g. [21]'s 2k-series-device CWSP gates beyond 2 inputs).
  bool feasible = true;

  [[nodiscard]] double area_overhead_pct() const {
    return (area_hardened / area_regular - 1.0) * 100.0;
  }
  [[nodiscard]] double delay_overhead_pct() const {
    return (period_hardened / period_regular - 1.0) * 100.0;
  }
};

}  // namespace cwsp::baselines
