#include "baselines/gate_resizing.hpp"

#include <algorithm>

#include <cmath>
#include <map>

#include "common/rng.hpp"
#include "cwsp/timing.hpp"
#include "sim/event_sim.hpp"
#include "spice/subckt.hpp"
#include "sta/sta.hpp"

namespace cwsp::baselines {
namespace {

/// Electrically measured glitch width vs device-size multiplier: the same
/// MiniSpice strike harness as Fig. 6, with the struck gate's KP and node
/// capacitance scaled by the multiplier. Memoised per multiplier level.
class SpiceWidthModel {
 public:
  explicit SpiceWidthModel(Femtocoulombs charge) : charge_(charge) {}

  Picoseconds width(double mult) {
    const auto it = cache_.find(mult);
    if (it != cache_.end()) return it->second;
    spice::SpiceTech tech;
    tech.kp_n_min *= mult;
    tech.kp_p_min *= mult;
    tech.c_node_ff *= mult;
    const auto w = spice::measure_strike_glitch_width(charge_, tech);
    cache_.emplace(mult, w);
    return w;
  }

 private:
  Femtocoulombs charge_;
  std::map<double, Picoseconds> cache_;
};

struct Sample {
  GateId gate;
  Picoseconds start{0.0};
  std::vector<bool> pi_values;
  std::vector<bool> ff_values;
};

bool sample_fails(const sim::EventSim& esim, const Netlist& netlist,
                  const Sample& sample, Picoseconds capture,
                  Picoseconds width, bool pessimistic) {
  if (width.value() <= 1.0) return false;  // fully quenched by upsizing
  set::Strike strike;
  strike.node = netlist.gate(sample.gate).output;
  strike.start = sample.start;
  strike.width = width;
  const auto r = esim.simulate_cycle(sample.pi_values, sample.ff_values,
                                     capture, strike);
  if (pessimistic) return r.glitch_reached_endpoint;
  if (r.any_ff_corrupted()) return true;
  return r.struck_po != r.golden_po;
}

}  // namespace

Picoseconds resized_dmax(const Netlist& netlist,
                         const std::vector<double>& multipliers) {
  CWSP_REQUIRE(multipliers.size() == netlist.num_gates());
  const CellLibrary& lib = netlist.library();

  // Per-net load with size-scaled pin capacitances.
  auto load_of = [&](NetId id) {
    const Net& net = netlist.net(id);
    double load = 0.0;
    for (GateId g : net.fanout_gates) {
      const Gate& gate = netlist.gate(g);
      load += lib.cell(gate.cell).input_capacitance().value() *
              multipliers[g.index()];
    }
    load += static_cast<double>(net.fanout_ffs.size()) *
            lib.regular_ff().d_capacitance.value();
    load += lib.wire_capacitance_per_fanout().value() *
            static_cast<double>(net.fanout_gates.size() +
                                net.fanout_ffs.size());
    return load;
  };

  std::vector<double> arrival(netlist.num_nets(), 0.0);
  double dmax = 0.0;
  for (GateId g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    const Cell& cell = netlist.cell_of(g);
    const double delay =
        cell.intrinsic_delay().value() +
        cell.drive_resistance().value() / multipliers[g.index()] *
            load_of(gate.output);
    double in_max = 0.0;
    for (NetId in : gate.inputs) {
      in_max = std::max(in_max, arrival[in.index()]);
    }
    arrival[gate.output.index()] = in_max + delay;
  }
  for (NetId po : netlist.primary_outputs()) {
    dmax = std::max(dmax, arrival[po.index()]);
  }
  for (FlipFlopId f : netlist.flip_flop_ids()) {
    dmax = std::max(dmax, arrival[netlist.flip_flop(f).d.index()]);
  }
  return Picoseconds(dmax);
}

GateResizingResult harden_gate_resizing(const Netlist& netlist,
                                        const GateResizingOptions& options) {
  CWSP_REQUIRE(options.coverage_target > 0.0 &&
               options.coverage_target <= 1.0);
  const CellLibrary& lib = netlist.library();
  const auto sta = run_sta(netlist);
  const Picoseconds capture = core::regular_clock_period(sta.dmax, lib);
  sim::EventSim esim(netlist);
  Rng rng(options.seed);

  // Sampled strike population: random gate, time, inputs and state.
  std::vector<Sample> samples;
  samples.reserve(options.samples);
  for (std::size_t i = 0; i < options.samples; ++i) {
    Sample s;
    s.gate = GateId{rng.next_below(netlist.num_gates())};
    s.start = Picoseconds(rng.next_double_in(0.0, capture.value()));
    s.pi_values.resize(netlist.primary_inputs().size());
    for (std::size_t p = 0; p < s.pi_values.size(); ++p) {
      s.pi_values[p] = rng.next_bool();
    }
    s.ff_values.resize(netlist.num_flip_flops());
    for (std::size_t f = 0; f < s.ff_values.size(); ++f) {
      s.ff_values[f] = rng.next_bool();
    }
    samples.push_back(std::move(s));
  }

  std::vector<double> mult(netlist.num_gates(), 1.0);
  std::vector<char> fails(samples.size(), 0);
  SpiceWidthModel spice_model(options.charge);
  auto width_for = [&](GateId g) {
    const double m = mult[g.index()];
    if (options.use_spice_width_model) return spice_model.width(m);
    return Picoseconds(options.base_glitch.value() / m);
  };
  for (std::size_t i = 0; i < samples.size(); ++i) {
    fails[i] = sample_fails(esim, netlist, samples[i], capture,
                            width_for(samples[i].gate),
                            options.pessimistic_latching);
  }

  auto coverage = [&]() {
    const auto failing =
        static_cast<std::size_t>(std::count(fails.begin(), fails.end(), 1));
    return 1.0 - static_cast<double>(failing) /
                     static_cast<double>(samples.size());
  };

  while (coverage() < options.coverage_target) {
    // Upsize the gate implicated in the most failing samples.
    std::vector<std::size_t> fail_count(netlist.num_gates(), 0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (fails[i]) ++fail_count[samples[i].gate.index()];
    }
    GateId worst;
    std::size_t worst_count = 0;
    for (std::size_t g = 0; g < netlist.num_gates(); ++g) {
      if (fail_count[g] > worst_count && mult[g] < options.max_multiplier) {
        worst_count = fail_count[g];
        worst = GateId{g};
      }
    }
    if (!worst.valid()) break;  // nothing left to upsize
    mult[worst.index()] = std::min(options.max_multiplier,
                                   mult[worst.index()] * 2.0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (samples[i].gate == worst) {
        fails[i] = sample_fails(esim, netlist, samples[i], capture,
                                width_for(worst),
                                options.pessimistic_latching);
      }
    }
  }

  GateResizingResult result;
  result.multipliers = mult;
  result.achieved_coverage_pct = coverage() * 100.0;
  for (double m : mult) {
    if (m > 1.0) ++result.resized_gates;
  }

  BaselineReport& report = result.report;
  report.technique = "Zhou06 gate resizing [13]";
  report.area_regular = netlist.total_area();
  SquareMicrons resized_area{0.0};
  for (GateId g : netlist.gate_ids()) {
    resized_area += netlist.cell_of(g).active_area() * mult[g.index()];
  }
  report.area_hardened =
      resized_area +
      lib.regular_ff().area * static_cast<double>(netlist.num_flip_flops());
  report.period_regular = core::regular_clock_period(sta.dmax, lib);
  report.period_hardened =
      core::regular_clock_period(resized_dmax(netlist, mult), lib);
  report.protection_pct = result.achieved_coverage_pct;
  report.max_glitch = options.base_glitch;
  return result;
}

}  // namespace cwsp::baselines
