#include "baselines/nicolaidis99.hpp"

#include <unordered_set>

#include "cwsp/timing.hpp"
#include "sta/sta.hpp"

namespace cwsp::baselines {
namespace {

constexpr double kSegmentUnits = 2.0;
constexpr double kDelaySegments = 4.0;
/// Extra delay of a CWSP gate over the gate it replaces (doubled series
/// stacks roughly double the resistance).
constexpr double kCwspGatePenaltyPs = 20.0;

/// Gates whose output feeds a flip-flop D pin or primary output.
std::vector<GateId> frontier_gates(const Netlist& netlist) {
  std::unordered_set<std::uint32_t> frontier_nets;
  for (FlipFlopId f : netlist.flip_flop_ids()) {
    frontier_nets.insert(netlist.flip_flop(f).d.value());
  }
  for (NetId po : netlist.primary_outputs()) frontier_nets.insert(po.value());

  std::vector<GateId> gates;
  for (GateId g : netlist.gate_ids()) {
    if (frontier_nets.contains(netlist.gate(g).output.value())) {
      gates.push_back(g);
    }
  }
  return gates;
}

}  // namespace

BaselineReport harden_nicolaidis99(const Netlist& netlist,
                                   const Nicolaidis99Options& options) {
  CWSP_REQUIRE(options.delta.value() > 0.0);
  const auto sta = run_sta(netlist);
  const CellLibrary& lib = netlist.library();
  const auto frontier = frontier_gates(netlist);

  BaselineReport report;
  report.technique = "Nicolaidis99 per-gate CWSP [21]";
  report.area_regular = netlist.total_area();

  double extra_units = 0.0;
  bool feasible = true;
  for (GateId g : frontier) {
    const Cell& cell = netlist.cell_of(g);
    // A k-input gate becomes a 2k-input CWSP gate: the transistor count
    // doubles, and each frontier *signal* needs a δ delay line.
    extra_units += static_cast<double>(cell.devices().size());
    extra_units += kDelaySegments * kSegmentUnits * cell.num_inputs();
    if (cell.num_inputs() > 2) feasible = false;  // >4 series devices
  }
  report.area_hardened =
      netlist.total_area() + cal::kUnitActiveArea * extra_units;

  report.period_regular = core::regular_clock_period(sta.dmax, lib);
  report.period_hardened = report.period_regular + options.delta * 2.0 +
                           Picoseconds(kCwspGatePenaltyPs);
  report.protection_pct = 100.0;
  report.max_glitch = options.delta;
  report.feasible = feasible;
  return report;
}

}  // namespace cwsp::baselines
