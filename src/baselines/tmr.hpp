#pragma once
// Classic spatial triple modular redundancy and the time-redundancy
// multi-strobe TMR of [23] (Nicolaidis, VTS 1999) — the two ends of the
// redundancy spectrum the paper positions itself against.

#include "baselines/baseline.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::baselines {

/// Spatial TMR: three copies of the combinational logic + a majority
/// voter per protected flip-flop. Tolerates any single fault (any glitch
/// width) at ~200% area.
[[nodiscard]] BaselineReport harden_spatial_tmr(const Netlist& netlist);

struct MultiStrobeOptions {
  /// Inter-strobe spacing δ; the scheme tolerates glitches up to δ and at
  /// most D_min/2 (paper §2).
  Picoseconds delta{450.0};
  int strobes = 3;
};

/// Time-redundancy TMR [23]: the output is strobed `strobes` times δ
/// apart and majority-voted. Costs 2δ + voter delay in the functional
/// path; area adds (strobes−1) FFs + one voter per protected FF.
[[nodiscard]] BaselineReport harden_multistrobe(
    const Netlist& netlist, const MultiStrobeOptions& options = {});

}  // namespace cwsp::baselines
