#pragma once
// Baseline [15] (Anghel/Alexandrescu/Nicolaidis, 2000): the inverter-type
// CWSP element is inserted in the *functional* path in front of every
// flip-flop, with a δ delay line feeding its second input. Correctness of
// the latched value requires waiting out 2δ plus the CWSP element delay on
// every register path, so the clock period grows by
//   2δ + D_CWSP − D_g                                   (paper §3.1)
// where D_g is the inverter the element replaces. Area cost is small (the
// element is min-sized) — the paper quotes 17.6% area / 28.65% delay.

#include "baselines/baseline.hpp"
#include "cwsp/harden.hpp"
#include "netlist/netlist.hpp"

namespace cwsp::baselines {

struct Anghel00Options {
  /// Tolerated glitch width / delay-element value.
  Picoseconds delta{450.0};  // [15] tolerates glitches up to 0.45 ns
};

/// Area/delay/protection of [15] applied to `netlist` (every protected FF
/// gets an in-path CWSP element).
[[nodiscard]] BaselineReport harden_anghel00(const Netlist& netlist,
                                             const Anghel00Options& options = {});

}  // namespace cwsp::baselines
