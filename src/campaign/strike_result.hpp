#pragma once
// Per-strike campaign verdict, shared between the campaign engine and the
// protection-scheme registry (src/scheme): a scheme maps lane-simulation
// facts to a StrikeResult, the engine aggregates StrikeResults into the
// coverage report. Header-only so src/scheme can speak the verdict
// vocabulary without linking the engine.

#include <cstdint>
#include <string>

namespace cwsp::campaign {

enum class StrikeStatus : std::uint8_t {
  /// Protected design recovered (no corrupted commit, no livelock).
  kCovered,
  /// Protected design committed a wrong output or livelocked.
  kEscape,
  /// Strike exceeded its wall-clock budget; verdict unknown.
  kTimeout,
  /// Simulator raised an exception; verdict unknown.
  kError,
};

[[nodiscard]] const char* to_string(StrikeStatus status);

struct StrikeResult {
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  std::size_t index = kNoIndex;
  StrikeStatus status = StrikeStatus::kCovered;
  /// Whether the same strike corrupted the unprotected reference design
  /// (functional-class strikes only).
  bool unprotected_failed = false;
  std::uint64_t bubbles = 0;
  std::uint64_t detected_errors = 0;
  std::uint64_t spurious_recomputes = 0;
  /// Human-readable cause for escapes and inconclusive strikes. Always
  /// deterministic (never contains wall-clock measurements).
  std::string diagnostic;

  [[nodiscard]] bool completed() const { return index != kNoIndex; }
  [[nodiscard]] bool conclusive() const {
    return status == StrikeStatus::kCovered ||
           status == StrikeStatus::kEscape;
  }
};

}  // namespace cwsp::campaign
