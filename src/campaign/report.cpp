#include "campaign/report.hpp"

#include <cstdio>
#include <sstream>

namespace cwsp::campaign {
namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-precision formatting keeps the JSON byte-deterministic.
std::string num(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

}  // namespace

const char* to_string(CampaignStatus status) {
  switch (status) {
    case CampaignStatus::kOk:
      return "ok";
    case CampaignStatus::kEscapes:
      return "escapes";
    case CampaignStatus::kInterrupted:
      return "interrupted";
    case CampaignStatus::kInvalid:
      return "invalid";
  }
  return "unknown";
}

CampaignStatus campaign_status(const CampaignResult& result) {
  if (result.interrupted) return CampaignStatus::kInterrupted;
  if (!result.report.valid()) return CampaignStatus::kInvalid;
  if (result.unexpected_escapes > 0) return CampaignStatus::kEscapes;
  return CampaignStatus::kOk;
}

std::string format_campaign_text(const CampaignResult& result,
                                 const set::StrikePlan& plan,
                                 const Netlist& netlist) {
  const core::CoverageReport& r = result.report;
  std::ostringstream os;
  os << "campaign              : " << netlist.name() << "\n";
  // Emitted only off the default (scheme=cwsp, fault-model=single-set) so
  // plain CWSP reports stay byte-identical to pre-scheme-registry output.
  if (result.scheme != "cwsp" || result.fault_model != "single-set") {
    os << "scheme / fault model  : " << result.scheme << " / "
       << result.fault_model << "\n";
  }
  os << "status                : " << to_string(campaign_status(result))
     << "\n";
  os << "strikes (plan/done)   : " << plan.size() << " / "
     << r.strikes_injected << "\n";
  if (result.resumed > 0) {
    os << "resumed from journal  : " << result.resumed << "\n";
  }
  if (!r.valid()) {
    os << "zero strikes injected — campaign is INVALID, coverage unproven\n";
    return os.str();
  }
  os << "protected coverage    : " << num(r.protected_coverage_pct())
     << " %\n";
  os << "escapes (unexpected)  : " << r.protected_failures << " ("
     << result.unexpected_escapes << ")\n";
  os << "inconclusive/timeouts : " << r.inconclusive << " / " << r.timeouts
     << "\n";
  os << "unprotected failures  : " << num(r.unprotected_failure_pct())
     << " %\n";
  os << "bubbles (detected/spurious): " << r.bubbles << " ("
     << r.detected_errors << "/" << r.spurious_recomputes << ")\n";
  if (!r.scenarios.empty()) {
    os << "per-scenario breakdown:\n";
    for (const core::ScenarioStats& s : r.scenarios) {
      os << "  " << s.name << ": " << s.strikes << " strikes, " << s.escapes
         << " escape(s), " << s.inconclusive << " inconclusive\n";
    }
  }
  for (const StrikeResult& s : result.strikes) {
    if (!s.completed() || s.conclusive()) continue;
    os << "inconclusive strike " << s.index << " [" << to_string(s.status)
       << "]: " << s.diagnostic << "\n";
  }
  for (const EscapeRepro& repro : result.repros) {
    os << "escape " << repro.strike_index << " minimized: width "
       << num(repro.original_width.value()) << " -> "
       << num(repro.minimized.strike.width.value()) << " ps";
    if (!repro.spec_path.empty()) os << ", repro at " << repro.spec_path;
    os << "\n";
  }
  return os.str();
}

std::string format_campaign_json(const CampaignResult& result,
                                 const set::StrikePlan& plan,
                                 const Netlist& netlist,
                                 const EngineOptions& options,
                                 Picoseconds clock_period) {
  const core::CoverageReport& r = result.report;
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"cwsp-campaign-report-v1\",\n";
  os << "  \"design\": \"" << json_escape(netlist.name()) << "\",\n";
  // Emitted only off the default (scheme=cwsp, fault-model=single-set) so
  // plain CWSP reports stay byte-identical to pre-scheme-registry output.
  if (result.scheme != "cwsp" || result.fault_model != "single-set") {
    os << "  \"scheme\": \"" << json_escape(result.scheme) << "\",\n";
    os << "  \"fault_model\": \"" << json_escape(result.fault_model)
       << "\",\n";
  }
  os << "  \"status\": \"" << to_string(campaign_status(result)) << "\",\n";
  os << "  \"seed\": " << options.seed << ",\n";
  os << "  \"cycles_per_run\": " << options.cycles_per_run << ",\n";
  os << "  \"clock_period_ps\": " << num(clock_period.value()) << ",\n";

  // Plan composition, classes in plan order.
  os << "  \"plan\": {\"total\": " << plan.size();
  {
    std::vector<std::pair<const char*, std::size_t>> counts;
    for (const set::PlannedStrike& p : plan.strikes) {
      const char* name = set::to_string(p.klass);
      bool found = false;
      for (auto& [n, c] : counts) {
        if (n == name) {
          ++c;
          found = true;
        }
      }
      if (!found) counts.emplace_back(name, 1);
    }
    for (const auto& [name, count] : counts) {
      os << ", \"" << name << "\": " << count;
    }
  }
  os << "},\n";

  os << "  \"totals\": {"
     << "\"strikes\": " << r.strikes_injected
     << ", \"covered\": "
     << (r.conclusive_strikes() - r.protected_failures)
     << ", \"escapes\": " << r.protected_failures
     << ", \"unexpected_escapes\": " << result.unexpected_escapes
     << ", \"inconclusive\": " << r.inconclusive
     << ", \"timeouts\": " << r.timeouts
     << ", \"unprotected_failures\": " << r.unprotected_failures
     << ", \"bubbles\": " << r.bubbles
     << ", \"detected_errors\": " << r.detected_errors
     << ", \"spurious_recomputes\": " << r.spurious_recomputes
     << ", \"coverage_pct\": " << num(r.protected_coverage_pct()) << "},\n";

  os << "  \"scenarios\": [";
  for (std::size_t i = 0; i < r.scenarios.size(); ++i) {
    const core::ScenarioStats& s = r.scenarios[i];
    if (i > 0) os << ", ";
    os << "{\"name\": \"" << json_escape(s.name)
       << "\", \"strikes\": " << s.strikes << ", \"escapes\": " << s.escapes
       << ", \"inconclusive\": " << s.inconclusive
       << ", \"timeouts\": " << s.timeouts
       << ", \"unprotected_failures\": " << s.unprotected_failures << "}";
  }
  os << "],\n";

  os << "  \"escapes\": [";
  {
    bool first = true;
    // result.strikes[i] is the outcome of plan.strikes[i]; pairing by
    // position (not by s.index) keeps this correct for shard sub-plans,
    // whose stable indices are offsets into the full plan.
    for (std::size_t i = 0; i < result.strikes.size(); ++i) {
      const StrikeResult& s = result.strikes[i];
      if (!s.completed() || s.status != StrikeStatus::kEscape) continue;
      const set::PlannedStrike& p = plan.strikes[i];
      if (!first) os << ", ";
      first = false;
      os << "{\"index\": " << s.index << ", \"class\": \""
         << set::to_string(p.klass) << "\"";
      if (p.strike.node.valid()) {
        os << ", \"node\": \"" << json_escape(netlist.net(p.strike.node).name)
           << "\"";
      }
      os << ", \"cycle\": " << p.cycle << ", \"start_ps\": "
         << num(p.strike.start.value()) << ", \"width_ps\": "
         << num(p.strike.width.value()) << ", \"diagnostic\": \""
         << json_escape(s.diagnostic) << "\"}";
    }
  }
  os << "],\n";

  os << "  \"inconclusive\": [";
  {
    bool first = true;
    for (const StrikeResult& s : result.strikes) {
      if (!s.completed() || s.conclusive()) continue;
      if (!first) os << ", ";
      first = false;
      os << "{\"index\": " << s.index << ", \"status\": \""
         << to_string(s.status) << "\", \"diagnostic\": \""
         << json_escape(s.diagnostic) << "\"}";
    }
  }
  os << "],\n";

  os << "  \"repros\": [";
  for (std::size_t i = 0; i < result.repros.size(); ++i) {
    const EscapeRepro& repro = result.repros[i];
    if (i > 0) os << ", ";
    os << "{\"index\": " << repro.strike_index << ", \"width_ps\": "
       << num(repro.minimized.strike.width.value()) << ", \"start_ps\": "
       << num(repro.minimized.strike.start.value()) << ", \"cycles\": "
       << repro.inputs.size();
    if (!repro.spec_path.empty()) {
      os << ", \"spec\": \"" << json_escape(repro.spec_path) << "\"";
    }
    os << "}";
  }
  os << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace cwsp::campaign
