#include "campaign/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <sstream>

#include "common/failpoint.hpp"

namespace cwsp::campaign {
namespace {

constexpr char kHeaderLine[] = "# cwsp-campaign-journal v1";

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffULL;
    h *= 1099511628211ULL;
  }
}

std::string escape_text(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_text(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      out += text[i];
      continue;
    }
    ++i;
    switch (text[i]) {
      case 'n':
        out += '\n';
        break;
      default:
        out += text[i];
    }
  }
  return out;
}

/// Extracts the value of `key=` from a whitespace-separated line; returns
/// false when absent.
bool field(const std::string& line, const std::string& key,
           std::string& value) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    if (pos != 0 && line[pos - 1] != ' ') {
      pos += needle.size();
      continue;
    }
    const std::size_t begin = pos + needle.size();
    const std::size_t end = line.find(' ', begin);
    value = line.substr(begin, end == std::string::npos ? end : end - begin);
    return true;
  }
  return false;
}

bool parse_status(const std::string& text, StrikeStatus& status) {
  if (text == "covered") status = StrikeStatus::kCovered;
  else if (text == "escape") status = StrikeStatus::kEscape;
  else if (text == "timeout") status = StrikeStatus::kTimeout;
  else if (text == "error") status = StrikeStatus::kError;
  else return false;
  return true;
}

}  // namespace

bool parse_strike_line(const std::string& line_in, StrikeResult& result) {
  std::string line = line_in;
  if (!line.empty() && line.back() == '\n') line.pop_back();
  // diag="..." runs to the closing quote at end of line; a line truncated
  // inside the quotes is rejected. Fixed fields are only extracted from
  // the prefix, so diagnostic text can never shadow them.
  const std::size_t diag = line.find(" diag=\"");
  if (diag == std::string::npos) return false;
  const std::size_t begin = diag + 7;
  if (line.size() < begin + 1 || line.back() != '"') return false;
  result.diagnostic =
      unescape_text(line.substr(begin, line.size() - begin - 1));

  const std::string prefix = line.substr(0, diag);
  std::string value;
  try {
    if (!field(prefix, "idx", value)) return false;
    result.index = std::stoull(value);
    if (!field(prefix, "status", value) ||
        !parse_status(value, result.status))
      return false;
    if (!field(prefix, "uf", value)) return false;
    result.unprotected_failed = value == "1";
    if (!field(prefix, "bub", value)) return false;
    result.bubbles = std::stoull(value);
    if (!field(prefix, "det", value)) return false;
    result.detected_errors = std::stoull(value);
    if (!field(prefix, "spur", value)) return false;
    result.spurious_recomputes = std::stoull(value);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

std::string format_strike_line(const StrikeResult& result) {
  std::ostringstream os;
  os << "strike idx=" << result.index << " status="
     << to_string(result.status) << " uf="
     << (result.unprotected_failed ? 1 : 0) << " bub=" << result.bubbles
     << " det=" << result.detected_errors << " spur="
     << result.spurious_recomputes << " diag=\""
     << escape_text(result.diagnostic) << "\"\n";
  return os.str();
}

std::string format_shard_line(const ShardRecord& record) {
  std::ostringstream os;
  os << "shard idx=" << record.index << " total=" << record.total
     << " fp=" << std::hex << record.fingerprint << std::dec
     << " begin=" << record.begin << " count=" << record.count << "\n";
  return os.str();
}

bool parse_shard_line(const std::string& line_in, ShardRecord& record) {
  std::string line = line_in;
  if (!line.empty() && line.back() == '\n') line.pop_back();
  std::string value;
  try {
    if (!field(line, "idx", value)) return false;
    record.index = std::stoull(value);
    if (!field(line, "total", value)) return false;
    record.total = std::stoull(value);
    if (!field(line, "fp", value)) return false;
    record.fingerprint = std::stoull(value, nullptr, 16);
    if (!field(line, "begin", value)) return false;
    record.begin = std::stoull(value);
    if (!field(line, "count", value)) return false;
    record.count = std::stoull(value);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

std::uint64_t campaign_fingerprint(const set::StrikePlan& plan,
                                   std::uint64_t seed,
                                   std::size_t cycles_per_run,
                                   Picoseconds clock_period) {
  std::uint64_t h = 1469598103934665603ULL;
  fnv_mix(h, seed);
  fnv_mix(h, cycles_per_run);
  fnv_mix(h, std::bit_cast<std::uint64_t>(clock_period.value()));
  fnv_mix(h, set::plan_fingerprint(plan));
  return h;
}

Journal read_journal(const std::string& path) {
  std::ifstream in(path);
  CWSP_REQUIRE_MSG(in.good(), "cannot read journal '" << path << "'");
  Journal journal;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("plan ", 0) == 0) {
      std::string value;
      if (field(line, "fp", value)) {
        journal.fingerprint = std::stoull(value, nullptr, 16);
      }
      if (field(line, "strikes", value)) {
        journal.total_strikes = std::stoull(value);
      }
      continue;
    }
    if (line.rfind("shard ", 0) == 0) {
      ShardRecord record;
      if (parse_shard_line(line, record)) {
        journal.shards.push_back(record);
      }
      continue;
    }
    if (line.rfind("strike ", 0) != 0) continue;
    StrikeResult result;
    if (parse_strike_line(line, result)) {
      journal.results.push_back(std::move(result));
    }
  }
  return journal;
}

namespace {

/// Flushes a file's data to stable storage (best effort: an fsync failure
/// is not a journal-corrupting event, the rename below still is atomic).
void sync_to_disk(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

JournalWriter::JournalWriter(const std::string& path,
                             std::uint64_t fingerprint,
                             std::size_t total_strikes, bool append) {
  if (!append) {
    // Stage the header in a temp file, flush + fsync it, and atomically
    // rename it over the target. Truncating in place would destroy a
    // previous (possibly still resumable) journal the instant the new
    // campaign starts, and a crash before the first flush would leave an
    // empty file behind; with the rename, every observable state of
    // `path` is either the old journal or a new one with a valid header.
    const std::string tmp = path + ".tmp";
    {
      std::ofstream header(tmp, std::ios::trunc);
      CWSP_REQUIRE_MSG(header.good(), "cannot open journal '" << tmp << "'");
      std::ostringstream header_os;
      header_os << kHeaderLine << "\nplan fp=" << std::hex << fingerprint
                << std::dec << " strikes=" << total_strikes << "\n";
      std::string header_text = header_os.str();
      failpoint::mutate("campaign.journal.header", header_text);
      header << header_text;
      header.flush();
      CWSP_REQUIRE_MSG(header.good(), "cannot write journal '" << tmp << "'");
    }
    sync_to_disk(tmp);
    CWSP_REQUIRE_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                     "cannot move journal '" << tmp << "' into place");
  }
  out_.open(path, std::ios::app);
  CWSP_REQUIRE_MSG(out_.good(), "cannot open journal '" << path << "'");
}

void JournalWriter::append(const StrikeResult& result) {
  std::string line = format_strike_line(result);
  // Chaos: a torn append models a crash mid-write — the damaged strike
  // line must be skipped by read_journal and re-executed on resume.
  failpoint::mutate("campaign.journal.append", line);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line;
  out_.flush();
}

void JournalWriter::append_shard(const ShardRecord& record,
                                 const std::vector<StrikeResult>& results) {
  std::string block;
  for (const StrikeResult& r : results) block += format_strike_line(r);
  block += format_shard_line(record);
  // Chaos: the marker is the last line of the block, so a torn shard
  // write damages it first and resume must re-execute the whole shard.
  failpoint::mutate("campaign.journal.shard_marker", block);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << block;
  out_.flush();
}

}  // namespace cwsp::campaign
