#pragma once
// Resilient parallel fault-injection campaign engine.
//
// Wraps the strike planner (set::StrikePlan) and the protection simulator
// (core::ProtectionSim) in a worker pool built for campaigns that must
// survive crashes, hangs and interruption at scale:
//
//   * deterministic parallelism — every strike draws its stimulus from a
//     splittable RNG stream keyed by its plan index, so reports are
//     byte-identical for any `jobs` value;
//   * checkpoint/resume — each finished strike is flushed to a journal
//     file; a resumed campaign re-runs only the unfinished strikes and
//     aggregates to the same totals as an uninterrupted run;
//   * per-strike timeouts and exception isolation — a hung or throwing
//     simulation degrades that one strike to `inconclusive` (with a
//     captured diagnostic) instead of aborting the campaign;
//   * escape minimization — every coverage escape can be shrunk to a
//     minimal standalone repro artifact (.bench + strike spec).
//
// See docs/campaign.md for the architecture, journal format and report
// schema.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "campaign/minimize.hpp"
#include "campaign/strike_result.hpp"
#include "cwsp/coverage.hpp"
#include "set/strike_plan.hpp"
#include "sim/cancel.hpp"

namespace cwsp::scheme {
class ProtectionScheme;
}  // namespace cwsp::scheme

namespace cwsp::campaign {

class JournalWriter;

struct EngineOptions {
  /// Seed of the per-strike stimulus streams (Rng::stream(seed, index)).
  std::uint64_t seed = 1;
  /// Length of the input sequence each strike is injected into.
  std::size_t cycles_per_run = 20;
  /// Worker threads. Results are identical for any value ≥ 1.
  std::size_t jobs = 1;
  /// Per-strike wall-clock budget; 0 disables timeouts.
  double timeout_ms = 0.0;
  /// Journal file for checkpoint/resume; empty disables journaling.
  std::string journal_path;
  /// Resume from an existing journal (journal_path must name it); its
  /// fingerprint must match this plan + options.
  bool resume = false;
  /// Shrink every escape to a minimal repro.
  bool minimize_escapes = false;
  /// Directory for repro artifacts (written only when non-empty and
  /// minimize_escapes is set).
  std::string artifact_dir;
  /// Execute at most this many *fresh* strikes, then stop (0 = no limit).
  /// Simulates an interruption deterministically; the journal keeps the
  /// finished work, so `resume` completes the campaign.
  std::size_t stop_after = 0;
  /// Run strikes on the legacy (full-netlist, allocation-heavy) EventSim
  /// instead of the compiled kernel. Reports are byte-identical either
  /// way; this exists for differential tests and the speedup benchmark.
  bool use_legacy_kernel = false;
  /// Resolve strikes on the fault-parallel strike-lane kernel
  /// (sim::StrikeLaneSim): functional strikes are packed lanes() at a
  /// time into bit-parallel sweeps and protection-path strikes are
  /// answered from the closed-form §3.2 case analysis. Reports are
  /// byte-identical to the scalar ProtectionSim path at any lane width
  /// and any `jobs`; the engine falls back to the scalar path whenever a
  /// feature needs full per-strike timed simulation plumbing
  /// (use_legacy_kernel, per-strike timeouts, test hooks).
  bool use_lane_kernel = true;
  /// Lane width for the strike-lane kernel (64, 256 or 512); 0 picks the
  /// widest ISA-accelerated width this CPU supports.
  std::size_t lane_width = 0;
  /// Test hook run before each strike's simulation on the worker thread
  /// (e.g. to inject a hang that only the watchdog can break). Must throw
  /// sim::CancelledError to emulate a cancelled hang.
  std::function<void(std::size_t, const sim::CancelToken&)> test_hook;
  /// Cooperative whole-campaign abort (the analysis service's job
  /// cancellation): workers stop claiming strikes once the token is
  /// cancelled, and the result reports `interrupted`. Already-claimed
  /// strikes finish normally, so a journaled campaign stays resumable.
  const sim::CancelToken* cancel = nullptr;
  /// Protection scheme supplying the per-strike verdict semantics;
  /// nullptr selects the registry's default (the paper's CWSP protocol,
  /// byte-identical to the pre-registry engine). Non-CWSP schemes resolve
  /// verdicts on the strike-lane kernel only (no legacy kernel, per-strike
  /// timeouts, test hooks or escape minimization).
  const scheme::ProtectionScheme* scheme = nullptr;
  /// Name of the fault model that built the plan; recorded in the report
  /// and in per-scenario accounting so merged fabric reports never alias
  /// two (scheme, model) cells into one bucket.
  std::string fault_model = "single-set";
};

struct CampaignResult {
  /// Aggregate over completed strikes, in plan-index order.
  core::CoverageReport report;
  /// One slot per planned strike; slots never executed (interruption)
  /// have completed() == false.
  std::vector<StrikeResult> strikes;
  /// Minimized escapes (when minimize_escapes is set), index order.
  std::vector<EscapeRepro> repros;
  /// Escapes outside the expected (out-of-envelope) class — the ones that
  /// would falsify the paper's coverage claim.
  std::size_t unexpected_escapes = 0;
  /// Strikes loaded from the journal instead of executed.
  std::size_t resumed = 0;
  /// Strikes executed by this invocation.
  std::size_t executed = 0;
  /// True when the campaign stopped before completing every strike.
  bool interrupted = false;
  /// The (scheme, fault-model) cell this result was produced under; set
  /// by the engine (and by the fabric merge) before aggregation so
  /// scenario buckets are keyed per cell.
  std::string scheme = "cwsp";
  std::string fault_model = "single-set";
};

/// Recomputes result.report, result.unexpected_escapes and
/// result.interrupted from result.strikes (one slot per plan position,
/// sequential plan order → deterministic). The engine calls this after
/// its workers finish; the distributed fabric calls it after merging
/// shard results into a full-plan slot vector, which is what makes a
/// merged report byte-identical to a single-host run.
void aggregate_results(const set::StrikePlan& plan, CampaignResult& result);

class CampaignEngine {
 public:
  /// The netlist and library must outlive the engine.
  CampaignEngine(const Netlist& netlist, const core::ProtectionParams& params,
                 Picoseconds clock_period);
  /// Shares a prebuilt kernel context (the analysis service's warm-cache
  /// path) instead of rebuilding flat view + STA per engine. `context`
  /// must have been built from `netlist`.
  CampaignEngine(const Netlist& netlist, const core::ProtectionParams& params,
                 Picoseconds clock_period,
                 std::shared_ptr<const sim::CompiledKernelContext> context);

  /// Executes `plan`. Throws cwsp::Error for configuration errors
  /// (mismatched resume journal, zero jobs); per-strike failures never
  /// propagate — they degrade to inconclusive results.
  [[nodiscard]] CampaignResult run(const set::StrikePlan& plan,
                                   const EngineOptions& options) const;

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
  [[nodiscard]] Picoseconds clock_period() const { return clock_period_; }
  [[nodiscard]] const core::ProtectionParams& params() const {
    return params_;
  }

  /// The deterministic stimulus for one strike: the engine's workers, the
  /// minimizer and tests all derive inputs through this single function.
  [[nodiscard]] static std::vector<std::vector<bool>> strike_inputs(
      const Netlist& netlist, std::size_t cycles, std::uint64_t seed,
      std::size_t strike_index);

 private:
  /// The strike-lane fast path of run(): resolves every undone strike of
  /// `plan` (respecting stop_after/cancel) into result.strikes, batching
  /// functional strikes lanes-at-a-time through sim::StrikeLaneSim and
  /// answering protection-path strikes analytically. Byte-identical to
  /// the scalar worker pool.
  void run_lane_strikes(const set::StrikePlan& plan,
                        const EngineOptions& options,
                        const std::vector<char>& done, JournalWriter* writer,
                        CampaignResult& result) const;

  const Netlist* netlist_;
  core::ProtectionParams params_;
  Picoseconds clock_period_;
  /// Flat view + STA delays, built once and shared read-only by every
  /// worker's ProtectionSim (each worker keeps private scratch/caches).
  std::shared_ptr<const sim::CompiledKernelContext> kernel_context_;
};

}  // namespace cwsp::campaign
