#pragma once
// Campaign report formatters: human-readable text and a deterministic
// JSON document (docs/campaign.md schema). The JSON deliberately omits
// anything execution-dependent (thread count, wall-clock times), so runs
// with different `--jobs` values produce byte-identical reports.

#include <string>

#include "campaign/campaign.hpp"

namespace cwsp::campaign {

/// Overall campaign verdict, also the CLI exit-status driver.
enum class CampaignStatus : std::uint8_t {
  kOk,           // complete, no unexpected escapes
  kEscapes,      // at least one escape outside the out-of-envelope class
  kInterrupted,  // stopped before every strike completed
  kInvalid,      // zero strikes injected — proves nothing
};

[[nodiscard]] const char* to_string(CampaignStatus status);
[[nodiscard]] CampaignStatus campaign_status(const CampaignResult& result);

[[nodiscard]] std::string format_campaign_text(const CampaignResult& result,
                                               const set::StrikePlan& plan,
                                               const Netlist& netlist);

[[nodiscard]] std::string format_campaign_json(const CampaignResult& result,
                                               const set::StrikePlan& plan,
                                               const Netlist& netlist,
                                               const EngineOptions& options,
                                               Picoseconds clock_period);

}  // namespace cwsp::campaign
