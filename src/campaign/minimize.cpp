#include "campaign/minimize.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "netlist/bench_parser.hpp"
#include "netlist/writer.hpp"

namespace cwsp::campaign {
namespace {

core::ScheduledStrike functional_strike(const set::PlannedStrike& p) {
  core::ScheduledStrike s;
  s.cycle = p.cycle;
  s.target = core::StrikeTarget::kFunctional;
  s.strike = p.strike;
  return s;
}

bool escapes(const core::ProtectionSim& sim,
             const std::vector<std::vector<bool>>& inputs,
             const set::PlannedStrike& candidate) {
  return !sim.run(inputs, {functional_strike(candidate)}).recovered();
}

/// Round-trippable double formatting for spec files.
std::string full_precision(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

EscapeRepro minimize_escape(const core::ProtectionSim& sim,
                            const set::PlannedStrike& strike,
                            std::vector<std::vector<bool>> inputs) {
  CWSP_REQUIRE_MSG(strike.strike.node.valid(),
                   "only functional-class strikes can be minimized");
  EscapeRepro repro;
  repro.strike_index = strike.index;
  repro.minimized = strike;
  repro.original_width = strike.strike.width;
  repro.original_start = strike.strike.start;
  repro.inputs = std::move(inputs);
  repro.params = sim.params();
  repro.clock_period = sim.clock_period();

  // The caller hands us a confirmed escape, but re-verify: a repro that
  // does not reproduce is worse than none.
  if (!escapes(sim, repro.inputs, repro.minimized)) return repro;

  // Smallest escaping width, to 1 ps. `hi` always escapes.
  double lo = 0.0;
  double hi = repro.minimized.strike.width.value();
  while (hi - lo > 1.0) {
    const double mid = 0.5 * (lo + hi);
    set::PlannedStrike candidate = repro.minimized;
    candidate.strike.width = Picoseconds(mid);
    if (escapes(sim, repro.inputs, candidate)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  repro.minimized.strike.width = Picoseconds(hi);

  // Earliest escaping strike time: probe evenly spaced candidates from
  // t=0 towards the original start and keep the first that still escapes.
  const double original_start = repro.minimized.strike.start.value();
  constexpr int kStartProbes = 16;
  for (int p = 0; p < kStartProbes; ++p) {
    const double t = original_start * p / kStartProbes;
    set::PlannedStrike candidate = repro.minimized;
    candidate.strike.start = Picoseconds(t);
    if (escapes(sim, repro.inputs, candidate)) {
      repro.minimized.strike.start = Picoseconds(t);
      break;
    }
  }

  // Shortest escaping input prefix: corruption is committed within two
  // cycles of the strike, so try truncating there first, then give up.
  const std::size_t shortest = repro.minimized.cycle + 2;
  if (shortest < repro.inputs.size()) {
    std::vector<std::vector<bool>> truncated(
        repro.inputs.begin(),
        repro.inputs.begin() + static_cast<std::ptrdiff_t>(shortest));
    if (escapes(sim, truncated, repro.minimized)) {
      repro.inputs = std::move(truncated);
    }
  }
  return repro;
}

void write_repro(EscapeRepro& repro, const Netlist& netlist,
                 const std::string& dir) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  std::ostringstream stem;
  stem << "repro_strike" << repro.strike_index;
  const fs::path bench_path = fs::path(dir) / (stem.str() + ".bench");
  const fs::path spec_path = fs::path(dir) / (stem.str() + ".strike");

  {
    std::ofstream bench(bench_path);
    CWSP_REQUIRE_MSG(bench.good(),
                     "cannot write repro '" << bench_path.string() << "'");
    write_bench(netlist, bench);
  }

  // Spec files must be standalone: the replayer reconstructs the sim from
  // these lines alone, so every protection parameter is spelled out.
  std::ofstream spec(spec_path);
  CWSP_REQUIRE_MSG(spec.good(),
                   "cannot write repro '" << spec_path.string() << "'");
  spec << "# cwsp-escape-repro v1\n";
  spec << "design " << bench_path.filename().string() << "\n";
  spec << "strike_index " << repro.strike_index << "\n";
  spec << "clock_period_ps " << full_precision(repro.clock_period.value())
       << "\n";
  const core::ProtectionParams& pp = repro.params;
  spec << "param delta_ps " << full_precision(pp.delta.value()) << "\n";
  spec << "param d_cwsp_ps " << full_precision(pp.d_cwsp.value()) << "\n";
  spec << "param cwsp_pmos_mult " << full_precision(pp.cwsp_pmos_mult)
       << "\n";
  spec << "param cwsp_nmos_mult " << full_precision(pp.cwsp_nmos_mult)
       << "\n";
  spec << "param segments_delta " << pp.segments_delta << "\n";
  spec << "param segments_clk_del " << pp.segments_clk_del << "\n";
  spec << "param per_ff_area_um2 " << full_precision(pp.per_ff_area.value())
       << "\n";
  spec << "node " << netlist.net(repro.minimized.strike.node).name << "\n";
  spec << "cycle " << repro.minimized.cycle << "\n";
  spec << "start_ps " << full_precision(repro.minimized.strike.start.value())
       << "\n";
  spec << "width_ps " << full_precision(repro.minimized.strike.width.value())
       << "\n";
  spec << "original_width_ps " << full_precision(repro.original_width.value())
       << "\n";
  spec << "inputs " << repro.inputs.size() << "\n";
  for (const auto& vec : repro.inputs) {
    spec << "vec ";
    for (bool b : vec) spec << (b ? '1' : '0');
    spec << "\n";
  }
  spec << "expect escape\n";

  repro.bench_path = bench_path.string();
  repro.spec_path = spec_path.string();
}

bool replay_repro(const std::string& spec_path, const CellLibrary& library) {
  namespace fs = std::filesystem;
  std::ifstream spec(spec_path);
  CWSP_REQUIRE_MSG(spec.good(), "cannot read repro '" << spec_path << "'");

  std::string design;
  std::string node;
  double clock_period = 0.0;
  core::ProtectionParams params;
  std::size_t cycle = 0;
  double start = 0.0;
  double width = 0.0;
  std::vector<std::vector<bool>> inputs;

  std::string line;
  while (std::getline(spec, line)) {
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (key == "design") {
      is >> design;
    } else if (key == "clock_period_ps") {
      is >> clock_period;
    } else if (key == "param") {
      std::string name;
      is >> name;
      if (name == "delta_ps") {
        double v = 0.0;
        is >> v;
        params.delta = Picoseconds(v);
      } else if (name == "d_cwsp_ps") {
        double v = 0.0;
        is >> v;
        params.d_cwsp = Picoseconds(v);
      } else if (name == "cwsp_pmos_mult") {
        is >> params.cwsp_pmos_mult;
      } else if (name == "cwsp_nmos_mult") {
        is >> params.cwsp_nmos_mult;
      } else if (name == "segments_delta") {
        is >> params.segments_delta;
      } else if (name == "segments_clk_del") {
        is >> params.segments_clk_del;
      } else if (name == "per_ff_area_um2") {
        double v = 0.0;
        is >> v;
        params.per_ff_area = SquareMicrons(v);
      }
    } else if (key == "node") {
      is >> node;
    } else if (key == "cycle") {
      is >> cycle;
    } else if (key == "start_ps") {
      is >> start;
    } else if (key == "width_ps") {
      is >> width;
    } else if (key == "vec") {
      std::string bits;
      is >> bits;
      std::vector<bool> vec(bits.size());
      for (std::size_t i = 0; i < bits.size(); ++i) vec[i] = bits[i] == '1';
      inputs.push_back(std::move(vec));
    }
  }
  CWSP_REQUIRE_MSG(!design.empty() && !node.empty() && !inputs.empty(),
                   "repro spec '" << spec_path << "' is incomplete");

  const fs::path bench_path = fs::path(spec_path).parent_path() / design;
  const Netlist netlist = parse_bench_file(bench_path.string(), library);
  const auto struck_net = netlist.find_net(node);
  CWSP_REQUIRE_MSG(struck_net.has_value(),
                   "repro node '" << node << "' not found in " << design);

  const core::ProtectionSim sim(netlist, params, Picoseconds(clock_period));
  core::ScheduledStrike strike;
  strike.cycle = cycle;
  strike.target = core::StrikeTarget::kFunctional;
  strike.strike.node = *struck_net;
  strike.strike.start = Picoseconds(start);
  strike.strike.width = Picoseconds(width);
  return !sim.run(inputs, {strike}).recovered();
}

}  // namespace cwsp::campaign
