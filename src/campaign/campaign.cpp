#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <optional>
#include <sstream>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "campaign/journal.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "cwsp/timing.hpp"
#include "scheme/scheme.hpp"
#include "sim/strike_lanes.hpp"

namespace cwsp::campaign {
namespace {

core::ScheduledStrike to_scheduled(const set::PlannedStrike& p) {
  core::ScheduledStrike s;
  s.cycle = p.cycle;
  s.ff_index = p.ff_index;
  s.strike = p.strike;
  if (p.klass == set::StrikeClass::kProtectionPath) {
    switch (p.site) {
      case set::ProtectionSite::kEqChecker:
        s.target = core::StrikeTarget::kEqChecker;
        break;
      case set::ProtectionSite::kEqglbfDff:
        s.target = core::StrikeTarget::kEqglbfDff;
        break;
      case set::ProtectionSite::kCwStarDff:
        s.target = core::StrikeTarget::kCwStarDff;
        break;
      case set::ProtectionSite::kCwspOutput:
        s.target = core::StrikeTarget::kCwspOutput;
        break;
    }
  } else {
    s.target = core::StrikeTarget::kFunctional;
  }
  return s;
}

// Flips cancel tokens of in-flight strikes whose deadline passed. One
// slot per worker; polling granularity ~1 ms, far below any useful
// per-strike budget.
class Watchdog {
 public:
  explicit Watchdog(std::size_t workers) : slots_(workers) {
    thread_ = std::thread([this] { loop(); });
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void arm(std::size_t worker, sim::CancelToken* token, double timeout_ms) {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[worker] = {token, Stopwatch::deadline_after(timeout_ms)};
  }

  void disarm(std::size_t worker) {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[worker].token = nullptr;
  }

 private:
  struct Slot {
    sim::CancelToken* token = nullptr;
    Stopwatch::Clock::time_point deadline;
  };

  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(1));
      const auto now = Stopwatch::Clock::now();
      for (Slot& slot : slots_) {
        if (slot.token != nullptr && now >= slot.deadline) {
          slot.token->cancel();
          slot.token = nullptr;
        }
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::thread thread_;
  bool stop_ = false;
};

std::string escape_diagnostic(const core::ProtectionRunResult& r) {
  if (r.livelocked) return "protocol livelocked";
  std::ostringstream os;
  os << r.silent_corruptions << " corrupted commit(s)";
  return os.str();
}

// ---- strike-lane fast path -------------------------------------------
//
// A protocol has no internal timing once the strike cycle itself is
// resolved: a single scheduled strike perturbs exactly one cycle, the
// pre-strike trajectory is golden, and the post-strike divergence (if
// any) is pure boolean evolution. The verdict is therefore a closed-form
// function of four per-lane facts (fired, latched_diff, aperture, silent
// commits) plus two static ones (squash-at-strike, width vs δ). That
// mapping lives in the ProtectionScheme registry (src/scheme): the CWSP
// scheme carries the §3.2 mappings lifted verbatim from here, with the
// scalar ProtectionSim as its executable specification pinned by
// differential tests; TMR and LOCO supply their own.

const scheme::ProtectionScheme& scheme_of(const EngineOptions& options) {
  return options.scheme != nullptr ? *options.scheme
                                   : scheme::default_scheme();
}

bool is_cwsp(const scheme::ProtectionScheme& sch) {
  return std::string_view(sch.name()) == "cwsp";
}

}  // namespace

void aggregate_results(const set::StrikePlan& plan, CampaignResult& result) {
  CWSP_REQUIRE(result.strikes.size() == plan.size());
  result.report = core::CoverageReport{};
  result.unexpected_escapes = 0;
  result.interrupted = false;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const StrikeResult& r = result.strikes[i];
    if (!r.completed()) {
      result.interrupted = true;
      continue;
    }
    const set::PlannedStrike& planned = plan.strikes[i];
    core::CoverageReport& report = result.report;
    core::ScenarioStats& slice = report.scenario(
        set::to_string(planned.klass), result.scheme, result.fault_model);
    ++report.runs;
    ++report.strikes_injected;
    ++slice.strikes;
    switch (r.status) {
      case StrikeStatus::kCovered:
        break;
      case StrikeStatus::kEscape:
        ++report.protected_failures;
        ++slice.escapes;
        if (planned.klass != set::StrikeClass::kOutOfEnvelope) {
          ++result.unexpected_escapes;
        }
        break;
      case StrikeStatus::kTimeout:
        ++report.timeouts;
        ++slice.timeouts;
        [[fallthrough]];
      case StrikeStatus::kError:
        ++report.inconclusive;
        ++slice.inconclusive;
        break;
    }
    if (r.conclusive()) {
      report.bubbles += r.bubbles;
      report.detected_errors += r.detected_errors;
      report.spurious_recomputes += r.spurious_recomputes;
      if (r.unprotected_failed) {
        ++report.unprotected_failures;
        ++slice.unprotected_failures;
      }
    }
  }
}

const char* to_string(StrikeStatus status) {
  switch (status) {
    case StrikeStatus::kCovered:
      return "covered";
    case StrikeStatus::kEscape:
      return "escape";
    case StrikeStatus::kTimeout:
      return "timeout";
    case StrikeStatus::kError:
      return "error";
  }
  return "unknown";
}

CampaignEngine::CampaignEngine(const Netlist& netlist,
                               const core::ProtectionParams& params,
                               Picoseconds clock_period)
    : CampaignEngine(netlist, params, clock_period,
                     sim::CompiledKernelContext::build(netlist)) {}

CampaignEngine::CampaignEngine(
    const Netlist& netlist, const core::ProtectionParams& params,
    Picoseconds clock_period,
    std::shared_ptr<const sim::CompiledKernelContext> context)
    : netlist_(&netlist),
      params_(params),
      clock_period_(clock_period),
      kernel_context_(std::move(context)) {
  CWSP_REQUIRE(kernel_context_ != nullptr);
}

std::vector<std::vector<bool>> CampaignEngine::strike_inputs(
    const Netlist& netlist, std::size_t cycles, std::uint64_t seed,
    std::size_t strike_index) {
  Rng rng = Rng::stream(seed, strike_index);
  std::vector<std::vector<bool>> inputs(cycles);
  for (auto& vec : inputs) {
    vec.resize(netlist.primary_inputs().size());
    for (std::size_t i = 0; i < vec.size(); ++i) vec[i] = rng.next_bool();
  }
  return inputs;
}

CampaignResult CampaignEngine::run(const set::StrikePlan& plan,
                                   const EngineOptions& options) const {
  CWSP_REQUIRE(options.jobs > 0);
  CWSP_REQUIRE(options.cycles_per_run > 0);
  const scheme::ProtectionScheme& sch = scheme_of(options);
  const bool cwsp_semantics = is_cwsp(sch);
  bool multi_node = false;
  for (const set::PlannedStrike& p : plan.strikes) {
    if (p.node2.valid()) {
      multi_node = true;
      break;
    }
  }
  // Non-CWSP verdicts and multi-node strikes exist only as closed-form
  // functions of lane facts; the scalar ProtectionSim speaks the CWSP
  // protocol over single-node strikes and nothing else.
  const bool needs_scalar = options.use_legacy_kernel ||
                            !options.use_lane_kernel ||
                            options.timeout_ms > 0.0 ||
                            static_cast<bool>(options.test_hook);
  CWSP_REQUIRE_MSG(cwsp_semantics || !needs_scalar,
                   "scheme '" << sch.name()
                              << "' resolves verdicts on the strike-lane "
                                 "kernel only; drop --legacy-kernel and "
                                 "per-strike timeouts");
  CWSP_REQUIRE_MSG(!multi_node || !needs_scalar,
                   "multi-node strike plans require the strike-lane kernel; "
                   "drop --legacy-kernel and per-strike timeouts");
  CWSP_REQUIRE_MSG(!options.minimize_escapes || cwsp_semantics,
                   "escape minimization replays the CWSP protocol; not "
                   "available for scheme '"
                       << sch.name() << "'");
  const std::uint64_t fingerprint = campaign_fingerprint(
      plan, options.seed, options.cycles_per_run, clock_period_);

  CampaignResult result;
  result.scheme = sch.name();
  result.fault_model = options.fault_model;
  result.strikes.assign(plan.size(), StrikeResult{});
  std::vector<char> done(plan.size(), 0);

  // Plan positions keyed by the stable strike index. For a full plan the
  // two coincide; for a shard sub-plan (distributed execution) journal
  // entries and RNG streams must follow the index, not the position, so
  // the shard reproduces exactly the strikes of the full run.
  std::unordered_map<std::size_t, std::size_t> position_of;
  position_of.reserve(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    position_of.emplace(plan.strikes[i].index, i);
  }

  std::optional<JournalWriter> writer;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      const Journal journal = read_journal(options.journal_path);
      CWSP_REQUIRE_MSG(journal.fingerprint == fingerprint,
                       "journal '" << options.journal_path
                                   << "' does not match this campaign "
                                      "(plan/seed/cycles/period differ)");
      for (const StrikeResult& r : journal.results) {
        const auto it = position_of.find(r.index);
        if (it != position_of.end() && done[it->second] == 0) {
          result.strikes[it->second] = r;
          done[it->second] = 1;
          ++result.resumed;
        }
      }
    }
    writer.emplace(options.journal_path, fingerprint, plan.size(),
                   options.resume);
  }

  core::ProtectionSimOptions sim_options;
  sim_options.use_compiled_kernel = !options.use_legacy_kernel;

  // The lane path answers batches of strikes at once, so per-strike
  // wall-clock budgets and per-strike test hooks need the scalar pool.
  const bool lane_path = options.use_lane_kernel && !options.use_legacy_kernel &&
                         options.timeout_ms <= 0.0 && !options.test_hook;
  if (lane_path) {
    run_lane_strikes(plan, options, done,
                     writer.has_value() ? &*writer : nullptr, result);
  } else {
  // ---- worker pool ---------------------------------------------------
  // Workers claim strike indices from an atomic cursor; each result lands
  // in its own pre-sized slot, so aggregation (below, sequential and in
  // index order) is independent of scheduling.
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> fresh_started{0};
  const std::size_t jobs =
      std::max<std::size_t>(1, std::min(options.jobs, plan.size()));
  Watchdog watchdog(jobs);

  auto worker = [&](std::size_t worker_id) {
    core::ProtectionSim sim(*netlist_, params_, clock_period_, sim_options,
                            kernel_context_);
    sim::CancelToken token;
    sim.set_cancel_token(&token);

    for (;;) {
      if (options.cancel != nullptr && options.cancel->cancelled()) break;
      const std::size_t i = cursor.fetch_add(1);
      if (i >= plan.size()) break;
      if (done[i] != 0) continue;
      if (options.stop_after != 0 &&
          fresh_started.fetch_add(1) >= options.stop_after) {
        break;
      }

      const set::PlannedStrike& planned = plan.strikes[i];
      StrikeResult r;
      r.index = planned.index;
      token.reset();
      if (options.timeout_ms > 0.0) {
        watchdog.arm(worker_id, &token, options.timeout_ms);
      }
      try {
        if (options.test_hook) options.test_hook(planned.index, token);
        const auto inputs = strike_inputs(*netlist_, options.cycles_per_run,
                                          options.seed, planned.index);
        const core::ScheduledStrike scheduled = to_scheduled(planned);
        const auto protected_r = sim.run(inputs, {scheduled});
        r.bubbles = protected_r.bubbles;
        r.detected_errors = protected_r.detected_errors;
        r.spurious_recomputes = protected_r.spurious_recomputes;
        if (protected_r.recovered()) {
          r.status = StrikeStatus::kCovered;
        } else {
          r.status = StrikeStatus::kEscape;
          r.diagnostic = escape_diagnostic(protected_r);
        }
        if (scheduled.target == core::StrikeTarget::kFunctional) {
          const auto unprotected_r = sim.run_unprotected(inputs, {scheduled});
          r.unprotected_failed = unprotected_r.corrupted_cycles > 0;
        }
      } catch (const sim::CancelledError&) {
        r = StrikeResult{};
        r.index = planned.index;
        r.status = StrikeStatus::kTimeout;
        std::ostringstream os;
        os << "per-strike budget of " << options.timeout_ms
           << " ms exhausted";
        r.diagnostic = os.str();
      } catch (const std::exception& e) {
        r = StrikeResult{};
        r.index = planned.index;
        r.status = StrikeStatus::kError;
        r.diagnostic = e.what();
      }
      watchdog.disarm(worker_id);
      if (writer.has_value()) writer->append(r);
      result.strikes[i] = r;
    }
  };

  if (jobs <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      threads.emplace_back(worker, w);
    }
    for (auto& t : threads) t.join();
  }
  }  // lane_path / worker pool

  // ---- aggregation (sequential, plan order → deterministic) ----------
  aggregate_results(plan, result);
  result.executed = result.report.runs > result.resumed
                        ? result.report.runs - result.resumed
                        : 0;

  // Observability only: the metrics registry never feeds the report, so
  // determinism is untouched.
  auto& registry = metrics::Registry::global();
  registry.counter("campaign.runs").add();
  registry.counter("campaign.strikes_executed").add(result.executed);
  registry.counter("campaign.strikes_resumed").add(result.resumed);
  registry.counter("campaign.escapes").add(result.report.protected_failures);
  registry.counter("campaign.inconclusive").add(result.report.inconclusive);
  const std::string scheme_prefix = "scheme." + result.scheme;
  registry.counter(scheme_prefix + ".campaigns").add();
  registry.counter(scheme_prefix + ".strikes")
      .add(result.report.strikes_injected);
  registry.counter(scheme_prefix + ".escapes")
      .add(result.report.protected_failures);

  // ---- escape minimization ------------------------------------------
  if (options.minimize_escapes) {
    core::ProtectionSim sim(*netlist_, params_, clock_period_, sim_options,
                            kernel_context_);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const StrikeResult& r = result.strikes[i];
      if (!r.completed() || r.status != StrikeStatus::kEscape) continue;
      const set::PlannedStrike& planned = plan.strikes[i];
      // Protection-path strikes have no functional net to shrink, and a
      // charge-sharing pair has no single-strike scalar replay.
      if (planned.klass == set::StrikeClass::kProtectionPath) continue;
      if (planned.node2.valid()) continue;
      EscapeRepro repro = minimize_escape(
          sim, planned,
          strike_inputs(*netlist_, options.cycles_per_run, options.seed,
                        planned.index));
      if (!options.artifact_dir.empty()) {
        write_repro(repro, *netlist_, options.artifact_dir);
      }
      result.repros.push_back(std::move(repro));
    }
  }
  return result;
}

void CampaignEngine::run_lane_strikes(const set::StrikePlan& plan,
                                      const EngineOptions& options,
                                      const std::vector<char>& done,
                                      JournalWriter* writer,
                                      CampaignResult& result) const {
  const scheme::ProtectionScheme& sch = scheme_of(options);
  const bool cwsp_semantics = is_cwsp(sch);
  // Replicate the scalar path's constructor-time validation with
  // identical messages: the lane path never builds a ProtectionSim, but
  // a misconfigured campaign must fail the same way on either path.
  params_.validate();
  CWSP_REQUIRE_MSG(netlist_->num_flip_flops() > 0,
                   "protection protocol requires flip-flops");
  CWSP_REQUIRE_MSG(clock_period_ >= core::min_clock_period_for_delta(params_),
                   "clock period " << clock_period_.value()
                       << " ps violates Eq. 6 minimum "
                       << core::min_clock_period_for_delta(params_).value()
                       << " ps for delta " << params_.delta.value() << " ps");

  // The work list: the first stop_after (or all) undone strikes in plan
  // order — exactly what the scalar pool executes at jobs == 1, which is
  // the documented stop_after semantics every jobs value must reproduce.
  std::vector<std::size_t> todo;
  todo.reserve(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (done[i] != 0) continue;
    if (options.stop_after != 0 && todo.size() >= options.stop_after) break;
    todo.push_back(i);
  }

  // Protection-path strikes are closed-form (§3.2 case analysis) —
  // resolve them inline; only functional strikes need lane simulation.
  std::vector<std::size_t> functional;
  functional.reserve(todo.size());
  std::uint64_t analytic = 0;
  bool cancelled = false;
  for (std::size_t pos : todo) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      cancelled = true;
      break;
    }
    const set::PlannedStrike& planned = plan.strikes[pos];
    if (planned.klass != set::StrikeClass::kProtectionPath) {
      functional.push_back(pos);
      continue;
    }
    StrikeResult r = sch.resolve_protection_path(
        planned, options.cycles_per_run, clock_period_);
    if (writer != nullptr) writer->append(r);
    result.strikes[pos] = r;
    ++analytic;
  }

  // ---- lane batches --------------------------------------------------
  // Workers claim whole batches from an atomic cursor; batch boundaries
  // are fixed by plan order (batch b = functional[b*L .. b*L+L)), so the
  // per-strike outcomes — and therefore the report — are independent of
  // which worker runs which batch.
  const std::size_t lane_count =
      sim::WideLogicSim::isa_for(options.lane_width).lanes;
  const std::size_t num_batches =
      (functional.size() + lane_count - 1) / lane_count;
  std::atomic<std::size_t> batch_cursor{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> lanes_filled{0};
  std::atomic<std::uint64_t> lane_slots{0};
  std::atomic<std::uint64_t> timed{0};

  auto lane_worker = [&] {
    sim::StrikeLaneSim lane_sim(kernel_context_, clock_period_, params_.delta,
                                options.lane_width);
    // Scalar fallback simulator, built only if a batch throws.
    std::unique_ptr<core::ProtectionSim> scalar;
    std::vector<std::vector<std::vector<bool>>> stimuli;
    std::vector<sim::LaneScenario> batch;
    std::vector<sim::LaneOutcome> out;
    for (;;) {
      if (cancelled ||
          (options.cancel != nullptr && options.cancel->cancelled())) {
        break;
      }
      const std::size_t b = batch_cursor.fetch_add(1);
      if (b >= num_batches) break;
      const std::size_t begin = b * lane_count;
      const std::size_t end =
          std::min(begin + lane_count, functional.size());
      stimuli.clear();
      // Reserve before filling: LaneScenario::inputs points at
      // stimuli elements, so the vector must never reallocate.
      stimuli.reserve(end - begin);
      batch.clear();
      batch.reserve(end - begin);
      for (std::size_t k = begin; k < end; ++k) {
        const set::PlannedStrike& planned = plan.strikes[functional[k]];
        stimuli.push_back(strike_inputs(*netlist_, options.cycles_per_run,
                                        options.seed, planned.index));
        sim::LaneScenario sc;
        sc.strike = planned.strike;
        sc.node2 = planned.node2;
        sc.cycle = planned.cycle;
        sc.squash_at_strike = sch.squash_at_strike(*netlist_, params_, planned);
        sc.inputs = &stimuli.back();
        batch.push_back(sc);
      }
      try {
        lane_sim.run_batch(batch, out);
        for (std::size_t k = begin; k < end; ++k) {
          const set::PlannedStrike& planned = plan.strikes[functional[k]];
          StrikeResult r = sch.resolve_functional(
              planned, out[k - begin], batch[k - begin].squash_at_strike,
              options.cycles_per_run, params_);
          if (writer != nullptr) writer->append(r);
          result.strikes[functional[k]] = r;
        }
      } catch (const std::exception& batch_error) {
        // Degrade the batch to the scalar per-strike path with the same
        // exception isolation as the worker pool: one bad strike costs
        // one inconclusive result, never the campaign.
        if (scalar == nullptr) {
          scalar = std::make_unique<core::ProtectionSim>(
              *netlist_, params_, clock_period_, core::ProtectionSimOptions{},
              kernel_context_);
        }
        for (std::size_t k = begin; k < end; ++k) {
          const set::PlannedStrike& planned = plan.strikes[functional[k]];
          StrikeResult r;
          r.index = planned.index;
          if (!cwsp_semantics || planned.node2.valid()) {
            // The scalar simulator speaks only the CWSP protocol over
            // single-node strikes; an inexpressible strike degrades to
            // inconclusive instead of a wrong verdict.
            r.status = StrikeStatus::kError;
            r.diagnostic = batch_error.what();
            if (writer != nullptr) writer->append(r);
            result.strikes[functional[k]] = r;
            continue;
          }
          try {
            const core::ScheduledStrike scheduled = to_scheduled(planned);
            const auto protected_r =
                scalar->run(stimuli[k - begin], {scheduled});
            r.bubbles = protected_r.bubbles;
            r.detected_errors = protected_r.detected_errors;
            r.spurious_recomputes = protected_r.spurious_recomputes;
            if (protected_r.recovered()) {
              r.status = StrikeStatus::kCovered;
            } else {
              r.status = StrikeStatus::kEscape;
              r.diagnostic = escape_diagnostic(protected_r);
            }
            const auto unprotected_r =
                scalar->run_unprotected(stimuli[k - begin], {scheduled});
            r.unprotected_failed = unprotected_r.corrupted_cycles > 0;
          } catch (const std::exception& e) {
            r = StrikeResult{};
            r.index = planned.index;
            r.status = StrikeStatus::kError;
            r.diagnostic = e.what();
          }
          if (writer != nullptr) writer->append(r);
          result.strikes[functional[k]] = r;
        }
      }
    }
    batches.fetch_add(lane_sim.batches_run());
    lanes_filled.fetch_add(lane_sim.lanes_filled());
    lane_slots.fetch_add(lane_sim.lane_slots());
    timed.fetch_add(lane_sim.timed_resolutions());
  };

  const std::size_t jobs = std::max<std::size_t>(
      1, std::min(options.jobs, std::max<std::size_t>(num_batches, 1)));
  if (jobs <= 1) {
    lane_worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) threads.emplace_back(lane_worker);
    for (auto& t : threads) t.join();
  }

  // Observability only (never feeds the report).
  auto& registry = metrics::Registry::global();
  registry.counter("campaign.lane_batches").add(batches.load());
  registry.counter("campaign.lane_slots_filled").add(lanes_filled.load());
  registry.counter("campaign.lane_slots_total").add(lane_slots.load());
  registry.counter("campaign.lane_timed_resolutions").add(timed.load());
  registry.counter("campaign.lane_analytic_strikes").add(analytic);
}

}  // namespace cwsp::campaign
