#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "campaign/journal.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"

namespace cwsp::campaign {
namespace {

core::ScheduledStrike to_scheduled(const set::PlannedStrike& p) {
  core::ScheduledStrike s;
  s.cycle = p.cycle;
  s.ff_index = p.ff_index;
  s.strike = p.strike;
  if (p.klass == set::StrikeClass::kProtectionPath) {
    switch (p.site) {
      case set::ProtectionSite::kEqChecker:
        s.target = core::StrikeTarget::kEqChecker;
        break;
      case set::ProtectionSite::kEqglbfDff:
        s.target = core::StrikeTarget::kEqglbfDff;
        break;
      case set::ProtectionSite::kCwStarDff:
        s.target = core::StrikeTarget::kCwStarDff;
        break;
      case set::ProtectionSite::kCwspOutput:
        s.target = core::StrikeTarget::kCwspOutput;
        break;
    }
  } else {
    s.target = core::StrikeTarget::kFunctional;
  }
  return s;
}

// Flips cancel tokens of in-flight strikes whose deadline passed. One
// slot per worker; polling granularity ~1 ms, far below any useful
// per-strike budget.
class Watchdog {
 public:
  explicit Watchdog(std::size_t workers) : slots_(workers) {
    thread_ = std::thread([this] { loop(); });
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void arm(std::size_t worker, sim::CancelToken* token, double timeout_ms) {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[worker] = {token, Stopwatch::deadline_after(timeout_ms)};
  }

  void disarm(std::size_t worker) {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[worker].token = nullptr;
  }

 private:
  struct Slot {
    sim::CancelToken* token = nullptr;
    Stopwatch::Clock::time_point deadline;
  };

  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(1));
      const auto now = Stopwatch::Clock::now();
      for (Slot& slot : slots_) {
        if (slot.token != nullptr && now >= slot.deadline) {
          slot.token->cancel();
          slot.token = nullptr;
        }
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::thread thread_;
  bool stop_ = false;
};

std::string escape_diagnostic(const core::ProtectionRunResult& r) {
  if (r.livelocked) return "protocol livelocked";
  std::ostringstream os;
  os << r.silent_corruptions << " corrupted commit(s)";
  return os.str();
}

}  // namespace

void aggregate_results(const set::StrikePlan& plan, CampaignResult& result) {
  CWSP_REQUIRE(result.strikes.size() == plan.size());
  result.report = core::CoverageReport{};
  result.unexpected_escapes = 0;
  result.interrupted = false;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const StrikeResult& r = result.strikes[i];
    if (!r.completed()) {
      result.interrupted = true;
      continue;
    }
    const set::PlannedStrike& planned = plan.strikes[i];
    core::CoverageReport& report = result.report;
    core::ScenarioStats& slice =
        report.scenario(set::to_string(planned.klass));
    ++report.runs;
    ++report.strikes_injected;
    ++slice.strikes;
    switch (r.status) {
      case StrikeStatus::kCovered:
        break;
      case StrikeStatus::kEscape:
        ++report.protected_failures;
        ++slice.escapes;
        if (planned.klass != set::StrikeClass::kOutOfEnvelope) {
          ++result.unexpected_escapes;
        }
        break;
      case StrikeStatus::kTimeout:
        ++report.timeouts;
        ++slice.timeouts;
        [[fallthrough]];
      case StrikeStatus::kError:
        ++report.inconclusive;
        ++slice.inconclusive;
        break;
    }
    if (r.conclusive()) {
      report.bubbles += r.bubbles;
      report.detected_errors += r.detected_errors;
      report.spurious_recomputes += r.spurious_recomputes;
      if (r.unprotected_failed) {
        ++report.unprotected_failures;
        ++slice.unprotected_failures;
      }
    }
  }
}

const char* to_string(StrikeStatus status) {
  switch (status) {
    case StrikeStatus::kCovered:
      return "covered";
    case StrikeStatus::kEscape:
      return "escape";
    case StrikeStatus::kTimeout:
      return "timeout";
    case StrikeStatus::kError:
      return "error";
  }
  return "unknown";
}

CampaignEngine::CampaignEngine(const Netlist& netlist,
                               const core::ProtectionParams& params,
                               Picoseconds clock_period)
    : CampaignEngine(netlist, params, clock_period,
                     sim::CompiledKernelContext::build(netlist)) {}

CampaignEngine::CampaignEngine(
    const Netlist& netlist, const core::ProtectionParams& params,
    Picoseconds clock_period,
    std::shared_ptr<const sim::CompiledKernelContext> context)
    : netlist_(&netlist),
      params_(params),
      clock_period_(clock_period),
      kernel_context_(std::move(context)) {
  CWSP_REQUIRE(kernel_context_ != nullptr);
}

std::vector<std::vector<bool>> CampaignEngine::strike_inputs(
    const Netlist& netlist, std::size_t cycles, std::uint64_t seed,
    std::size_t strike_index) {
  Rng rng = Rng::stream(seed, strike_index);
  std::vector<std::vector<bool>> inputs(cycles);
  for (auto& vec : inputs) {
    vec.resize(netlist.primary_inputs().size());
    for (std::size_t i = 0; i < vec.size(); ++i) vec[i] = rng.next_bool();
  }
  return inputs;
}

CampaignResult CampaignEngine::run(const set::StrikePlan& plan,
                                   const EngineOptions& options) const {
  CWSP_REQUIRE(options.jobs > 0);
  CWSP_REQUIRE(options.cycles_per_run > 0);
  const std::uint64_t fingerprint = campaign_fingerprint(
      plan, options.seed, options.cycles_per_run, clock_period_);

  CampaignResult result;
  result.strikes.assign(plan.size(), StrikeResult{});
  std::vector<char> done(plan.size(), 0);

  // Plan positions keyed by the stable strike index. For a full plan the
  // two coincide; for a shard sub-plan (distributed execution) journal
  // entries and RNG streams must follow the index, not the position, so
  // the shard reproduces exactly the strikes of the full run.
  std::unordered_map<std::size_t, std::size_t> position_of;
  position_of.reserve(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    position_of.emplace(plan.strikes[i].index, i);
  }

  std::optional<JournalWriter> writer;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      const Journal journal = read_journal(options.journal_path);
      CWSP_REQUIRE_MSG(journal.fingerprint == fingerprint,
                       "journal '" << options.journal_path
                                   << "' does not match this campaign "
                                      "(plan/seed/cycles/period differ)");
      for (const StrikeResult& r : journal.results) {
        const auto it = position_of.find(r.index);
        if (it != position_of.end() && done[it->second] == 0) {
          result.strikes[it->second] = r;
          done[it->second] = 1;
          ++result.resumed;
        }
      }
    }
    writer.emplace(options.journal_path, fingerprint, plan.size(),
                   options.resume);
  }

  // ---- worker pool ---------------------------------------------------
  // Workers claim strike indices from an atomic cursor; each result lands
  // in its own pre-sized slot, so aggregation (below, sequential and in
  // index order) is independent of scheduling.
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> fresh_started{0};
  const std::size_t jobs =
      std::max<std::size_t>(1, std::min(options.jobs, plan.size()));
  Watchdog watchdog(jobs);

  core::ProtectionSimOptions sim_options;
  sim_options.use_compiled_kernel = !options.use_legacy_kernel;

  auto worker = [&](std::size_t worker_id) {
    core::ProtectionSim sim(*netlist_, params_, clock_period_, sim_options,
                            kernel_context_);
    sim::CancelToken token;
    sim.set_cancel_token(&token);

    for (;;) {
      if (options.cancel != nullptr && options.cancel->cancelled()) break;
      const std::size_t i = cursor.fetch_add(1);
      if (i >= plan.size()) break;
      if (done[i] != 0) continue;
      if (options.stop_after != 0 &&
          fresh_started.fetch_add(1) >= options.stop_after) {
        break;
      }

      const set::PlannedStrike& planned = plan.strikes[i];
      StrikeResult r;
      r.index = planned.index;
      token.reset();
      if (options.timeout_ms > 0.0) {
        watchdog.arm(worker_id, &token, options.timeout_ms);
      }
      try {
        if (options.test_hook) options.test_hook(planned.index, token);
        const auto inputs = strike_inputs(*netlist_, options.cycles_per_run,
                                          options.seed, planned.index);
        const core::ScheduledStrike scheduled = to_scheduled(planned);
        const auto protected_r = sim.run(inputs, {scheduled});
        r.bubbles = protected_r.bubbles;
        r.detected_errors = protected_r.detected_errors;
        r.spurious_recomputes = protected_r.spurious_recomputes;
        if (protected_r.recovered()) {
          r.status = StrikeStatus::kCovered;
        } else {
          r.status = StrikeStatus::kEscape;
          r.diagnostic = escape_diagnostic(protected_r);
        }
        if (scheduled.target == core::StrikeTarget::kFunctional) {
          const auto unprotected_r = sim.run_unprotected(inputs, {scheduled});
          r.unprotected_failed = unprotected_r.corrupted_cycles > 0;
        }
      } catch (const sim::CancelledError&) {
        r = StrikeResult{};
        r.index = planned.index;
        r.status = StrikeStatus::kTimeout;
        std::ostringstream os;
        os << "per-strike budget of " << options.timeout_ms
           << " ms exhausted";
        r.diagnostic = os.str();
      } catch (const std::exception& e) {
        r = StrikeResult{};
        r.index = planned.index;
        r.status = StrikeStatus::kError;
        r.diagnostic = e.what();
      }
      watchdog.disarm(worker_id);
      if (writer.has_value()) writer->append(r);
      result.strikes[i] = r;
    }
  };

  if (jobs <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      threads.emplace_back(worker, w);
    }
    for (auto& t : threads) t.join();
  }

  // ---- aggregation (sequential, plan order → deterministic) ----------
  aggregate_results(plan, result);
  result.executed = result.report.runs > result.resumed
                        ? result.report.runs - result.resumed
                        : 0;

  // Observability only: the metrics registry never feeds the report, so
  // determinism is untouched.
  auto& registry = metrics::Registry::global();
  registry.counter("campaign.runs").add();
  registry.counter("campaign.strikes_executed").add(result.executed);
  registry.counter("campaign.strikes_resumed").add(result.resumed);
  registry.counter("campaign.escapes").add(result.report.protected_failures);
  registry.counter("campaign.inconclusive").add(result.report.inconclusive);

  // ---- escape minimization ------------------------------------------
  if (options.minimize_escapes) {
    core::ProtectionSim sim(*netlist_, params_, clock_period_, sim_options,
                            kernel_context_);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const StrikeResult& r = result.strikes[i];
      if (!r.completed() || r.status != StrikeStatus::kEscape) continue;
      const set::PlannedStrike& planned = plan.strikes[i];
      // Protection-path strikes have no functional net to shrink.
      if (planned.klass == set::StrikeClass::kProtectionPath) continue;
      EscapeRepro repro = minimize_escape(
          sim, planned,
          strike_inputs(*netlist_, options.cycles_per_run, options.seed,
                        planned.index));
      if (!options.artifact_dir.empty()) {
        write_repro(repro, *netlist_, options.artifact_dir);
      }
      result.repros.push_back(std::move(repro));
    }
  }
  return result;
}

}  // namespace cwsp::campaign
