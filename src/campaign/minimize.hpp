#pragma once
// Escape minimization: shrink a coverage escape to the smallest repro
// that still escapes, and persist it as a standalone artifact — the
// design as .bench plus a strike-spec file with the exact stimulus and
// protection parameters, replayable without the original campaign.

#include <string>
#include <vector>

#include "cwsp/protection_sim.hpp"
#include "set/strike_plan.hpp"

namespace cwsp::campaign {

struct EscapeRepro {
  /// Plan index of the original escape.
  std::size_t strike_index = 0;
  /// The shrunk strike (smallest width, earliest start that still
  /// escapes; single site by construction).
  set::PlannedStrike minimized;
  /// Width/start of the campaign strike before shrinking.
  Picoseconds original_width{0.0};
  Picoseconds original_start{0.0};
  /// Input vectors, possibly truncated to the shortest escaping prefix.
  std::vector<std::vector<bool>> inputs;
  /// Simulation context captured so the artifact is standalone.
  core::ProtectionParams params;
  Picoseconds clock_period{0.0};
  /// Paths filled in by write_repro().
  std::string bench_path;
  std::string spec_path;
};

/// Greedily shrinks an escaping functional-class strike: binary-searches
/// the smallest escaping glitch width, then the earliest escaping strike
/// time, then the shortest escaping input prefix. Every candidate is
/// re-simulated; the returned repro is guaranteed to still escape under
/// `sim`. Deterministic.
[[nodiscard]] EscapeRepro minimize_escape(
    const core::ProtectionSim& sim, const set::PlannedStrike& strike,
    std::vector<std::vector<bool>> inputs);

/// Writes `repro_strike<index>.bench` and `repro_strike<index>.strike`
/// into `dir` (created if absent) and records the paths in `repro`.
void write_repro(EscapeRepro& repro, const Netlist& netlist,
                 const std::string& dir);

/// Replays a spec written by write_repro() from scratch (fresh parse,
/// fresh simulator). Returns true when the escape reproduces.
[[nodiscard]] bool replay_repro(const std::string& spec_path,
                                const CellLibrary& library);

}  // namespace cwsp::campaign
