#pragma once
// Campaign journal: an append-only, line-oriented checkpoint file.
//
// The engine flushes one line per finished strike, so a campaign killed
// at any point loses at most the strikes in flight. A resumed campaign
// validates the journal's fingerprint (plan + stimulus configuration)
// and re-runs only the strikes with no journal line. The reader is
// tolerant of a truncated final line — the crash case the journal exists
// for.
//
// Format (docs/campaign.md has the full specification):
//   # cwsp-campaign-journal v1
//   plan fp=<16-hex-digit fingerprint> strikes=<total>
//   strike idx=<n> status=<covered|escape|timeout|error> uf=<0|1>
//          bub=<n> det=<n> spur=<n> diag="<escaped>"
//   shard idx=<n> total=<n> fp=<16-hex shard fingerprint>
//          begin=<first strike index> count=<strikes>
//
// `shard` lines are completion markers written by the distributed fabric
// coordinator after all of a shard's strike lines; a resuming coordinator
// only trusts a marker whose fingerprint matches the shard it re-derives
// from the plan. Readers that predate them skip the lines (unknown record
// kinds are ignored), so the format stays at v1.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "common/units.hpp"
#include "set/strike_plan.hpp"

namespace cwsp::campaign {

/// Stable digest of everything that determines per-strike outcomes: the
/// materialised plan, the stimulus seed, run length and clock period.
/// Resume refuses a journal whose fingerprint differs.
[[nodiscard]] std::uint64_t campaign_fingerprint(const set::StrikePlan& plan,
                                                 std::uint64_t seed,
                                                 std::size_t cycles_per_run,
                                                 Picoseconds clock_period);

/// A shard-completion marker: shard `index` of `total` (fingerprinted by
/// set::plan_fingerprint over the shard sub-plan mixed with the stimulus
/// config) finished all `count` strikes starting at plan index `begin`.
struct ShardRecord {
  std::size_t index = 0;
  std::size_t total = 0;
  std::uint64_t fingerprint = 0;
  std::size_t begin = 0;
  std::size_t count = 0;
};

struct Journal {
  std::uint64_t fingerprint = 0;
  std::size_t total_strikes = 0;
  /// Completed strikes, in file order (not necessarily index order).
  std::vector<StrikeResult> results;
  /// Shard-completion markers, in file order (duplicates preserved).
  std::vector<ShardRecord> shards;
};

/// Parses a journal file. Unknown and truncated lines are skipped; a
/// missing or unreadable file throws cwsp::Error.
[[nodiscard]] Journal read_journal(const std::string& path);

/// One `strike ...` journal line (with trailing newline). This is also
/// the fabric's shard-result wire format: workers ship journal lines and
/// the coordinator replays them through parse_strike_line.
[[nodiscard]] std::string format_strike_line(const StrikeResult& result);

/// Parses one `strike ...` line (trailing newline optional); returns
/// false for malformed (e.g. truncated by a crash) lines.
[[nodiscard]] bool parse_strike_line(const std::string& line,
                                     StrikeResult& result);

/// One `shard ...` completion-marker line (with trailing newline).
[[nodiscard]] std::string format_shard_line(const ShardRecord& record);

/// Parses one `shard ...` line; returns false for malformed lines.
[[nodiscard]] bool parse_shard_line(const std::string& line,
                                    ShardRecord& record);

class JournalWriter {
 public:
  /// Creates (append == false) or appends to (append == true) `path`.
  /// A fresh journal is staged in `path`.tmp (header, flush, fsync) and
  /// atomically renamed into place, so a crash during initialisation
  /// never leaves a truncated journal where a resumable one was. Throws
  /// cwsp::Error when the file cannot be opened.
  JournalWriter(const std::string& path, std::uint64_t fingerprint,
                std::size_t total_strikes, bool append);

  /// Appends one strike line and flushes. Thread-safe.
  void append(const StrikeResult& result);

  /// Appends a shard's strike lines followed by its completion marker in
  /// one flush. The marker goes last so a crash mid-write leaves strike
  /// lines (individually recoverable) but never a marker that promises
  /// strikes the file does not contain. Thread-safe.
  void append_shard(const ShardRecord& record,
                    const std::vector<StrikeResult>& results);

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace cwsp::campaign
