#pragma once
// Campaign journal: an append-only, line-oriented checkpoint file.
//
// The engine flushes one line per finished strike, so a campaign killed
// at any point loses at most the strikes in flight. A resumed campaign
// validates the journal's fingerprint (plan + stimulus configuration)
// and re-runs only the strikes with no journal line. The reader is
// tolerant of a truncated final line — the crash case the journal exists
// for.
//
// Format (docs/campaign.md has the full specification):
//   # cwsp-campaign-journal v1
//   plan fp=<16-hex-digit fingerprint> strikes=<total>
//   strike idx=<n> status=<covered|escape|timeout|error> uf=<0|1>
//          bub=<n> det=<n> spur=<n> diag="<escaped>"

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "common/units.hpp"
#include "set/strike_plan.hpp"

namespace cwsp::campaign {

/// Stable digest of everything that determines per-strike outcomes: the
/// materialised plan, the stimulus seed, run length and clock period.
/// Resume refuses a journal whose fingerprint differs.
[[nodiscard]] std::uint64_t campaign_fingerprint(const set::StrikePlan& plan,
                                                 std::uint64_t seed,
                                                 std::size_t cycles_per_run,
                                                 Picoseconds clock_period);

struct Journal {
  std::uint64_t fingerprint = 0;
  std::size_t total_strikes = 0;
  /// Completed strikes, in file order (not necessarily index order).
  std::vector<StrikeResult> results;
};

/// Parses a journal file. Unknown and truncated lines are skipped; a
/// missing or unreadable file throws cwsp::Error.
[[nodiscard]] Journal read_journal(const std::string& path);

class JournalWriter {
 public:
  /// Creates (append == false) or appends to (append == true) `path`.
  /// A fresh journal is staged in `path`.tmp (header, flush, fsync) and
  /// atomically renamed into place, so a crash during initialisation
  /// never leaves a truncated journal where a resumable one was. Throws
  /// cwsp::Error when the file cannot be opened.
  JournalWriter(const std::string& path, std::uint64_t fingerprint,
                std::size_t total_strikes, bool append);

  /// Appends one strike line and flushes. Thread-safe.
  void append(const StrikeResult& result);

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace cwsp::campaign
