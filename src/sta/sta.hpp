#pragma once
// Static timing analysis over the gate-level netlist.
//
// Delay semantics follow the paper: D_max/D_min are the longest/shortest
// *combinational* path delays between timing sources (primary inputs and
// flip-flop Q pins, at time 0) and timing endpoints (flip-flop D pins and
// primary outputs). Flip-flop clk→Q and setup are added separately when a
// full register-to-register period is needed (as the paper's Tables do:
// "Regular delay" = D_max + T_SETUP_SYS + T_CLK_OUT_SYS).

#include <limits>
#include <vector>

#include "netlist/netlist.hpp"

namespace cwsp {

struct ArrivalWindow {
  /// Earliest possible transition at this net, ps. +inf if unreachable.
  double min_ps = std::numeric_limits<double>::infinity();
  /// Latest possible transition at this net, ps. -inf if unreachable.
  double max_ps = -std::numeric_limits<double>::infinity();

  [[nodiscard]] bool reachable() const {
    return max_ps != -std::numeric_limits<double>::infinity();
  }
};

struct TimingResult {
  /// Per-net arrival windows, indexed by NetId.
  std::vector<ArrivalWindow> arrivals;
  /// Per-gate propagation delay (intrinsic + R·C_load), indexed by GateId.
  std::vector<double> gate_delay_ps;

  Picoseconds dmax{0.0};
  Picoseconds dmin{0.0};
  NetId dmax_endpoint;
  NetId dmin_endpoint;

  /// Nets of the critical (longest) path, source first.
  std::vector<NetId> critical_path;
};

/// Runs STA. The netlist must be valid (acyclic combinational core).
[[nodiscard]] TimingResult run_sta(const Netlist& netlist);

/// Longest-path delay only (convenience).
[[nodiscard]] Picoseconds compute_dmax(const Netlist& netlist);

/// Produces a short human-readable timing report.
[[nodiscard]] std::string timing_report(const Netlist& netlist,
                                        const TimingResult& result);

struct TimingPath {
  NetId endpoint;
  Picoseconds arrival{0.0};
  /// Nets along the path, source first.
  std::vector<NetId> nets;
};

/// The K worst paths, one per endpoint, sorted by decreasing arrival —
/// the slack-ranked view a timing signoff flow starts from.
[[nodiscard]] std::vector<TimingPath> worst_paths(const Netlist& netlist,
                                                  const TimingResult& result,
                                                  std::size_t k);

/// Backtracks the max-arrival path into `endpoint` (source first).
[[nodiscard]] std::vector<NetId> detail_trace_path(const Netlist& netlist,
                                                   const TimingResult& result,
                                                   NetId endpoint);

/// Which parts of a timing result rest on calibrated-fallback delay arcs
/// (cells whose electrical characterization degraded to the analytical
/// model — see cell/characterize.hpp). The lint rule `timing-fallback-arc`
/// flags designs where `critical_path_tainted` is true.
struct TimingProvenanceAudit {
  /// Gates (by GateId) instantiating a fallback-characterized cell.
  std::vector<GateId> fallback_gates;
  /// True when any gate on the critical (D_max) path is a fallback gate.
  bool critical_path_tainted = false;
  /// Fallback gates on the critical path, in path order.
  std::vector<GateId> tainted_critical_gates;
};

/// Audits `result` against a list of fallback cell names (as produced by
/// CharacterizationReport::fallback_cells). Unknown names are ignored.
[[nodiscard]] TimingProvenanceAudit audit_timing_provenance(
    const Netlist& netlist, const TimingResult& result,
    const std::vector<std::string>& fallback_cells);

}  // namespace cwsp
