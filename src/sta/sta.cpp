#include "sta/sta.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace cwsp {
namespace {

bool is_timing_source(const Net& net) {
  return net.driver_kind == DriverKind::kPrimaryInput ||
         net.driver_kind == DriverKind::kFlipFlop;
}

}  // namespace

TimingResult run_sta(const Netlist& netlist) {
  TimingResult result;
  result.arrivals.resize(netlist.num_nets());
  result.gate_delay_ps.resize(netlist.num_gates(), 0.0);

  // Sources arrive at t = 0.
  for (std::size_t i = 0; i < netlist.num_nets(); ++i) {
    const Net& net = netlist.net(NetId{i});
    if (is_timing_source(net)) {
      result.arrivals[i].min_ps = 0.0;
      result.arrivals[i].max_ps = 0.0;
    }
  }

  // Propagate in topological order.
  for (GateId g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    const Cell& cell = netlist.cell_of(g);
    const double delay =
        cell.delay(netlist.load_of(gate.output)).value();
    result.gate_delay_ps[g.index()] = delay;

    ArrivalWindow in;
    for (NetId net_id : gate.inputs) {
      const ArrivalWindow& w = result.arrivals[net_id.index()];
      if (!w.reachable()) continue;  // constant or dead input
      in.min_ps = std::min(in.min_ps, w.min_ps);
      in.max_ps = std::max(in.max_ps, w.max_ps);
    }
    if (!in.reachable()) continue;  // gate fed by constants only

    ArrivalWindow& out = result.arrivals[gate.output.index()];
    out.min_ps = std::min(out.min_ps, in.min_ps + delay);
    out.max_ps = std::max(out.max_ps, in.max_ps + delay);
  }

  // Endpoints: FF D nets and primary outputs.
  double dmax = 0.0;
  double dmin = std::numeric_limits<double>::infinity();
  auto consider_endpoint = [&](NetId net_id) {
    // A primary output driven directly by a flip-flop is a register
    // output, not a combinational endpoint (its path is zero-length).
    if (netlist.net(net_id).driver_kind == DriverKind::kFlipFlop) return;
    const ArrivalWindow& w = result.arrivals[net_id.index()];
    if (!w.reachable()) return;
    if (w.max_ps > dmax) {
      dmax = w.max_ps;
      result.dmax_endpoint = net_id;
    }
    if (w.min_ps < dmin) {
      dmin = w.min_ps;
      result.dmin_endpoint = net_id;
    }
  };
  for (FlipFlopId f : netlist.flip_flop_ids()) {
    consider_endpoint(netlist.flip_flop(f).d);
  }
  for (NetId po : netlist.primary_outputs()) consider_endpoint(po);

  result.dmax = Picoseconds(dmax);
  result.dmin =
      Picoseconds(dmin == std::numeric_limits<double>::infinity() ? 0.0
                                                                  : dmin);

  // Critical path: walk back from the D_max endpoint picking, at each gate,
  // the input whose max-arrival explains the output arrival.
  if (result.dmax_endpoint.valid()) {
    result.critical_path =
        detail_trace_path(netlist, result, result.dmax_endpoint);
  }

  return result;
}

std::vector<NetId> detail_trace_path(const Netlist& netlist,
                                     const TimingResult& result,
                                     NetId endpoint) {
  std::vector<NetId> reverse_path;
  NetId current = endpoint;
  reverse_path.push_back(current);
  while (true) {
    const Net& net = netlist.net(current);
    if (net.driver_kind != DriverKind::kGate) break;
    const Gate& gate = netlist.gate(GateId{net.driver_index});
    const double delay = result.gate_delay_ps[net.driver_index];
    const double needed = result.arrivals[current.index()].max_ps - delay;
    NetId best;
    double best_err = std::numeric_limits<double>::infinity();
    for (NetId in : gate.inputs) {
      const ArrivalWindow& w = result.arrivals[in.index()];
      if (!w.reachable()) continue;
      const double err = std::abs(w.max_ps - needed);
      if (err < best_err) {
        best_err = err;
        best = in;
      }
    }
    if (!best.valid()) break;
    current = best;
    reverse_path.push_back(current);
  }
  return {reverse_path.rbegin(), reverse_path.rend()};
}

std::vector<TimingPath> worst_paths(const Netlist& netlist,
                                    const TimingResult& result,
                                    std::size_t k) {
  // Collect endpoints (FF D pins and gate-driven primary outputs).
  std::vector<NetId> endpoints;
  for (FlipFlopId f : netlist.flip_flop_ids()) {
    endpoints.push_back(netlist.flip_flop(f).d);
  }
  for (NetId po : netlist.primary_outputs()) {
    if (netlist.net(po).driver_kind != DriverKind::kFlipFlop) {
      endpoints.push_back(po);
    }
  }
  // Deduplicate (a net can be both PO and FF D).
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  // Rank by arrival, worst first.
  std::sort(endpoints.begin(), endpoints.end(), [&](NetId a, NetId b) {
    return result.arrivals[a.index()].max_ps >
           result.arrivals[b.index()].max_ps;
  });

  std::vector<TimingPath> paths;
  for (NetId endpoint : endpoints) {
    if (paths.size() >= k) break;
    const ArrivalWindow& w = result.arrivals[endpoint.index()];
    if (!w.reachable()) continue;
    TimingPath path;
    path.endpoint = endpoint;
    path.arrival = Picoseconds(w.max_ps);
    path.nets = detail_trace_path(netlist, result, endpoint);
    paths.push_back(std::move(path));
  }
  return paths;
}

Picoseconds compute_dmax(const Netlist& netlist) {
  return run_sta(netlist).dmax;
}

std::string timing_report(const Netlist& netlist, const TimingResult& result) {
  std::ostringstream os;
  os << "Timing report for '" << netlist.name() << "'\n";
  os << "  Dmax = " << result.dmax.value() << " ps  (endpoint "
     << (result.dmax_endpoint.valid()
             ? netlist.net(result.dmax_endpoint).name
             : "<none>")
     << ")\n";
  os << "  Dmin = " << result.dmin.value() << " ps  (endpoint "
     << (result.dmin_endpoint.valid()
             ? netlist.net(result.dmin_endpoint).name
             : "<none>")
     << ")\n";
  os << "  Critical path (" << result.critical_path.size() << " nets):";
  for (NetId n : result.critical_path) {
    os << ' ' << netlist.net(n).name << " @"
       << result.arrivals[n.index()].max_ps;
  }
  os << '\n';
  return os.str();
}

TimingProvenanceAudit audit_timing_provenance(
    const Netlist& netlist, const TimingResult& result,
    const std::vector<std::string>& fallback_cells) {
  TimingProvenanceAudit audit;
  if (fallback_cells.empty()) return audit;
  const std::unordered_set<std::string> fallback(fallback_cells.begin(),
                                                 fallback_cells.end());
  auto is_fallback_gate = [&](GateId g) {
    return fallback.count(netlist.cell_of(g).name()) != 0;
  };
  for (std::size_t i = 0; i < netlist.num_gates(); ++i) {
    if (is_fallback_gate(GateId{i})) audit.fallback_gates.push_back(GateId{i});
  }
  for (NetId net_id : result.critical_path) {
    const Net& net = netlist.net(net_id);
    if (net.driver_kind != DriverKind::kGate) continue;
    const GateId g{net.driver_index};
    if (is_fallback_gate(g)) audit.tainted_critical_gates.push_back(g);
  }
  audit.critical_path_tainted = !audit.tainted_critical_gates.empty();
  return audit;
}

}  // namespace cwsp
