#!/usr/bin/env bash
# Ratcheted campaign-throughput gate: compares the BENCH_campaign.json a
# bench_campaign run just produced against the committed baseline in
# ci/perf-baseline.json and fails on a >25% regression, so the strike-lane
# kernel can never quietly lose its speedup.
#
#   ci/check-perf.sh <BENCH_campaign.json>          # gate (CI)
#   ci/check-perf.sh <BENCH_campaign.json> update   # refresh the baseline
#
# Only machine-normalized ratios are ratcheted — the lane/scalar speedup
# and the lane occupancy come from two kernels timed in the same process
# on the same machine, so they are stable across CI runner generations,
# unlike absolute strikes/second (recorded for information only). The
# report-identity bit is a hard invariant, not a ratchet: any divergence
# fails regardless of the baseline.
set -euo pipefail

result=${1:-BENCH_campaign.json}
mode=${2:-check}
baseline=ci/perf-baseline.json

command -v python3 >/dev/null || {
  echo "error: python3 not found in PATH" >&2
  exit 1
}
test -f "$result" || {
  echo "error: $result missing — run build/bench/bench_campaign first" >&2
  exit 1
}

if [ "$mode" = update ]; then
  python3 - "$result" "$baseline" <<'EOF'
import json, sys
result, baseline = sys.argv[1], sys.argv[2]
with open(result) as f:
    doc = json.load(f)
t = doc["throughput"]
doc_schemes = doc.get("schemes", {})
with open(baseline, "w") as f:
    json.dump({
        "schema": "cwsp-perf-baseline-v1",
        "design": t["design"],
        "speedup_lane_vs_scalar": t["speedup_lane_vs_scalar"],
        "lane_occupancy": t["lane_occupancy"],
        "max_regression_pct": 25,
        "info_strikes_per_second": {
            r["kernel"] + "-j" + str(r["jobs"]): r["strikes_per_second"]
            for r in t["rows"]
        },
        # Per-scheme throughput relative to CWSP (machine-normalized:
        # both rates come from the same process on the same machine).
        "scheme_relative_throughput": {
            r["scheme"]: r["relative_to_cwsp"]
            for r in doc_schemes.get("rows", [])
        },
    }, f, indent=2)
    f.write("\n")
print(f"baseline refreshed from {result}: "
      f"speedup {t['speedup_lane_vs_scalar']}x, "
      f"occupancy {t['lane_occupancy']}")
EOF
  exit 0
fi

test -f "$baseline" || {
  echo "error: $baseline missing — seed it with:" \
       "ci/check-perf.sh $result update" >&2
  exit 1
}

python3 - "$result" "$baseline" <<'EOF'
import json, sys
result, baseline = sys.argv[1], sys.argv[2]
with open(result) as f:
    doc = json.load(f)
with open(baseline) as f:
    base = json.load(f)

failures = []
t = doc["throughput"]

if not doc["identity"]["byte_identical"]:
    failures.append("report identity broken: lane/scalar/legacy reports "
                    "diverged (hard invariant, see bench_campaign output)")

floor_pct = base.get("max_regression_pct", 25)
floor = base["speedup_lane_vs_scalar"] * (1 - floor_pct / 100.0)
got = t["speedup_lane_vs_scalar"]
if got < floor:
    failures.append(
        f"lane/scalar speedup regressed: {got:.2f}x < {floor:.2f}x floor "
        f"(baseline {base['speedup_lane_vs_scalar']:.2f}x - {floor_pct}%)")

base_occ = base.get("lane_occupancy")
occ = t.get("lane_occupancy")
if base_occ is not None and occ is not None:
    occ_floor = base_occ * (1 - floor_pct / 100.0)
    if occ < occ_floor:
        failures.append(
            f"lane occupancy regressed: {occ:.4f} < {occ_floor:.4f} floor "
            f"(baseline {base_occ:.4f} - {floor_pct}%)")

# Per-scheme gates (absent from results produced by older bench builds
# and from baselines seeded before the scheme registry — both skip).
schemes = doc.get("schemes")
if schemes is not None:
    if not schemes.get("byte_identical", True):
        failures.append("scheme determinism broken: a registered scheme's "
                        "report diverged between jobs=1 and jobs=8 "
                        "(hard invariant, see bench_campaign Part C)")
    base_rel = base.get("scheme_relative_throughput", {})
    for row in schemes.get("rows", []):
        name = row["scheme"]
        if name == "cwsp" or name not in base_rel:
            continue
        rel_floor = base_rel[name] * (1 - floor_pct / 100.0)
        if row["relative_to_cwsp"] < rel_floor:
            failures.append(
                f"scheme '{name}' throughput regressed vs cwsp: "
                f"{row['relative_to_cwsp']:.3f} < {rel_floor:.3f} floor "
                f"(baseline {base_rel[name]:.3f} - {floor_pct}%)")

if failures:
    print("perf ratchet FAILED:")
    for f_ in failures:
        print(f"  - {f_}")
    print(f"\nif the regression is deliberate, accept it with:\n"
          f"  ci/check-perf.sh {result} update")
    sys.exit(1)

scheme_note = ""
if schemes is not None:
    rels = ", ".join(f"{r['scheme']} {r['relative_to_cwsp']:.2f}x"
                     for r in schemes.get("rows", []))
    scheme_note = f", schemes [{rels}]"
print(f"perf ratchet: ok — {t['design']} lane speedup {got:.2f}x "
      f"(floor {floor:.2f}x), occupancy {occ}, "
      f"isa {t['kernel_isa']}{scheme_note}")
EOF
