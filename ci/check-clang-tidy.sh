#!/usr/bin/env bash
# Ratcheted clang-tidy gate over src/: fails only on findings that are
# not recorded in ci/clang-tidy-baseline.txt, so the tree can never get
# worse while pre-existing debt is paid down incrementally.
#
#   ci/check-clang-tidy.sh <build-dir>          # gate (CI)
#   ci/check-clang-tidy.sh <build-dir> update   # refresh the baseline
#
# The build dir must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON. Findings are normalized to
# "<repo-relative file> [check]" lines (no line numbers — they move with
# every unrelated edit and would churn the baseline).
set -euo pipefail

build_dir=${1:-build}
mode=${2:-check}
baseline=ci/clang-tidy-baseline.txt

command -v clang-tidy >/dev/null || {
  echo "error: clang-tidy not found in PATH" >&2
  exit 1
}
test -f "$build_dir/compile_commands.json" || {
  echo "error: $build_dir/compile_commands.json missing — configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
}

mapfile -t sources < <(git ls-files 'src/*.cpp' 'src/**/*.cpp')

current=$(mktemp)
trap 'rm -f "$current"' EXIT
clang-tidy -p "$build_dir" --quiet "${sources[@]}" 2>/dev/null |
  grep -E '^[^ ]+:[0-9]+:[0-9]+: warning: ' |
  sed -E "s|^$(pwd)/||" |
  sed -E 's|^([^:]+):[0-9]+:[0-9]+: warning: .* (\[[A-Za-z0-9.,-]+\])$|\1 \2|' |
  sort -u > "$current"

if [ "$mode" = update ]; then
  cp "$current" "$baseline"
  echo "baseline refreshed: $(wc -l < "$baseline") finding(s)"
  exit 0
fi

new_findings=$(comm -13 <(sort -u "$baseline") "$current")
if [ -n "$new_findings" ]; then
  echo "new clang-tidy findings (not in $baseline):"
  echo "$new_findings"
  echo
  echo "fix them, or accept deliberately with:" \
       "ci/check-clang-tidy.sh $build_dir update"
  exit 1
fi
echo "clang-tidy: clean against baseline" \
     "($(wc -l < "$current") known finding(s))"
