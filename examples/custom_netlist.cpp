// Hardening a user-provided netlist: parses an ISCAS .bench description
// (from a file given as argv[1], or a built-in serial-adder demo), runs
// STA, hardens it at both charge levels and emits a Graphviz rendering.

#include <fstream>
#include <iostream>
#include <sstream>

#include "cwsp/harden.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/writer.hpp"
#include "sta/sta.hpp"

namespace {

constexpr const char* kDemoBench = R"(
# 2-bit accumulator with carry feedback
INPUT(x0)
INPUT(x1)
OUTPUT(s0)
OUTPUT(s1)
OUTPUT(cout)
a0 = XOR(x0, s0)
c0 = AND(x0, s0)
a1 = XOR(x1, s1)
t1 = XOR(a1, c0)
c1a = AND(x1, s1)
c1b = AND(a1, c0)
cnext = OR(c1a, c1b)
s0 = DFF(a0)
s1 = DFF(t1)
cout = DFF(cnext)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cwsp;
  const CellLibrary library = make_default_library();

  Netlist netlist = [&] {
    if (argc > 1) {
      std::cout << "Parsing " << argv[1] << "\n";
      return parse_bench_file(argv[1], library);
    }
    std::cout << "Parsing built-in 2-bit accumulator demo\n";
    return parse_bench_string(kDemoBench, library, "accumulator2");
  }();

  const auto stats = netlist.stats();
  std::cout << "  " << stats.num_gates << " gates, "
            << stats.num_flip_flops << " flip-flops, "
            << stats.num_primary_inputs << " inputs, "
            << stats.num_primary_outputs << " outputs, "
            << stats.total_area.value() << " um^2\n\n";

  const auto timing = run_sta(netlist);
  std::cout << timing_report(netlist, timing) << '\n';

  for (const auto params :
       {core::ProtectionParams::q100(), core::ProtectionParams::q150()}) {
    const auto design = core::harden(netlist, params);
    std::cout << "Q envelope with delta = " << params.delta.value()
              << " ps:\n";
    std::cout << "  area  +" << design.area_overhead_pct() << " %\n";
    std::cout << "  delay +" << design.delay_overhead_pct() << " %\n";
    std::cout << "  max protected glitch " << design.max_glitch.value()
              << " ps"
              << (design.full_designed_protection ? " (full designed width)"
                                                  : "")
              << "\n\n";
  }

  const std::string dot_path = "netlist.dot";
  std::ofstream dot(dot_path);
  write_dot(netlist, dot);
  std::cout << "Wrote Graphviz rendering to " << dot_path << '\n';

  std::ostringstream bench;
  write_bench(netlist, bench);
  std::cout << "Round-trippable .bench form:\n" << bench.str();
  return 0;
}
