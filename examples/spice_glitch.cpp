// Circuit-level exploration with MiniSpice: charge → glitch-width
// characterisation of a struck min-sized inverter (Fig. 6 territory), the
// LET → charge relation, and a demonstration of the CWSP element holding
// its state through an input glitch.

#include <iostream>

#include "common/table.hpp"
#include "set/glitch_model.hpp"
#include "set/pulse.hpp"
#include "spice/subckt.hpp"

int main() {
  using namespace cwsp;
  using namespace cwsp::literals;

  // --- charge sweep -----------------------------------------------------
  set::GlitchModel model;
  TextTable sweep;
  sweep.set_header({"Q (fC)", "LET equiv (MeV cm^2/mg, t=2um)",
                    "glitch width (ps)"});
  for (double q = 20.0; q <= 200.0; q += 20.0) {
    // Invert Q = 0.01036·L·t (pC) for the equivalent LET at 2 µm depth.
    const double let = q / 1000.0 / (0.01036 * 2.0);
    sweep.add_row({TextTable::num(q, 0), TextTable::num(let, 1),
                   TextTable::num(
                       model.glitch_width(Femtocoulombs(q)).value(), 1)});
  }
  std::cout << "Strike charge vs glitch width on a min-sized inverter\n";
  sweep.print(std::cout);
  std::cout << "critical charge (first visible glitch): "
            << model.critical_charge().value() << " fC\n\n";

  // --- the strike current itself ----------------------------------------
  const set::DoubleExponentialPulse pulse(100.0_fC);
  std::cout << "Double-exponential pulse, Q = 100 fC: peak "
            << TextTable::num(pulse.peak_current_ma(), 3) << " mA at t = "
            << TextTable::num(pulse.peak_time().value(), 1) << " ps\n\n";

  // --- CWSP element holding through a glitch -----------------------------
  spice::SpiceTech tech;
  spice::Circuit c;
  const int vdd = spice::add_vdd(c, tech);
  const int a = c.node("a");
  const int a_star = c.node("a_star");
  const int cw = c.node("cw");
  // 300 ps glitch on a at t=200; a* sees it delta=350 ps later.
  c.add_voltage_source("Va", a, spice::kGround,
                       spice::SourceFunction::pulse(tech.vdd, 0.0, 200.0,
                                                    5.0, 300.0, 5.0));
  c.add_voltage_source("Vastar", a_star, spice::kGround,
                       spice::SourceFunction::pulse(tech.vdd, 0.0, 550.0,
                                                    5.0, 300.0, 5.0));
  spice::add_cwsp_element(c, "cwsp", a, a_star, cw, vdd, 30.0, 12.0, tech);

  spice::TransientOptions options;
  options.t_stop_ps = 1400.0;
  const auto result = spice::run_transient(c, options, {a, a_star, cw});

  TextTable wave;
  wave.set_header({"t (ps)", "V(a)", "V(a*)", "V(cw)"});
  for (double t = 0.0; t <= 1400.0; t += 100.0) {
    wave.add_row({TextTable::num(t, 0),
                  TextTable::num(result.probe(a).value_at(t), 3),
                  TextTable::num(result.probe(a_star).value_at(t), 3),
                  TextTable::num(result.probe(cw).value_at(t), 3)});
  }
  std::cout << "CWSP element (30/12) holding through a 300 ps input glitch\n";
  wave.print(std::cout);
  std::cout << "CW excursion peak: "
            << TextTable::num(result.probe(cw).peak(), 3)
            << " V (stays below the 0.5 V switch point -> held)\n";
  return 0;
}
