// Structural walkthrough: elaborate the complete hardened system (logic +
// checker + repair MUXes) into one netlist, run it in the logic simulator
// with an architectural replay harness, corrupt a flip-flop mid-run, and
// watch EQGLB catch it. Writes the whole episode as a VCD waveform
// (hardened_system.vcd — open with GTKWave) and prints ASCII waves.

#include <fstream>
#include <iostream>

#include "cwsp/elaborate_system.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/verilog_writer.hpp"
#include "sim/logic_sim.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();

  const Netlist source = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q1)
OUTPUT(y)
t1 = NAND(a, q2)
t2 = XOR(t1, b)
d1 = NOT(t2)
q1 = DFF(d1)
q2 = DFF(t1)
y  = AND(q1, q2)
)",
                                            library, "demo_fsm");

  const auto sys = core::elaborate_hardened_system(source);
  std::cout << "Elaborated hardened system: " << sys.netlist.num_gates()
            << " gates, " << sys.netlist.num_flip_flops()
            << " flip-flops (" << source.num_gates() << " gates / "
            << source.num_flip_flops() << " FFs functional)\n\n";

  sim::LogicSim golden(source);
  sim::LogicSim hardened(sys.netlist);
  sim::TraceRecorder trace(sys.netlist,
                           {"a", "b", "q1", "q2", "y", "eqglb", "eqglbf"});

  auto inputs_for = [](std::size_t i) {
    return std::vector<bool>{(i % 2) == 0, (i % 3) == 0};
  };

  std::size_t pi = 0;
  std::size_t mismatches = 0;
  bool corrupted_this_run = false;
  for (std::size_t cycle = 0; cycle < 16; ++cycle) {
    // The architectural harness: replay the input while EQGLB is low.
    hardened.set_inputs(inputs_for(pi));
    hardened.evaluate();
    trace.sample(hardened);
    const bool squash = !hardened.value(sys.eqglb);

    if (!squash) {
      golden.set_inputs(inputs_for(pi));
      golden.evaluate();
      if (golden.output_values() !=
          std::vector<bool>{hardened.value(*sys.netlist.find_net("q1")),
                            hardened.value(*sys.netlist.find_net("y"))}) {
        ++mismatches;
      }
      golden.clock();
      ++pi;
    } else {
      std::cout << "cycle " << cycle
                << ": EQGLB low -> squash + replay of input " << pi << "\n";
    }
    hardened.clock();

    // Inject an SET at the start of cycle 6: flip system FF q1.
    if (cycle == 5 && !corrupted_this_run) {
      auto state = hardened.ff_state();
      const std::size_t victim = sys.system_ffs[0].index();
      state[victim] = !state[victim];
      hardened.set_ff_state(state);
      corrupted_this_run = true;
      std::cout << "cycle 6: SET injected into system FF q1\n";
    }
  }

  std::cout << "\ncommitted-output mismatches vs golden: " << mismatches
            << " (must be 0)\n\n";
  std::cout << trace.ascii_waves() << '\n';

  std::ofstream vcd("hardened_system.vcd");
  trace.write_vcd(vcd, "hardened_demo");
  std::cout << "wrote hardened_system.vcd\n";

  std::ofstream verilog("hardened_system.v");
  write_verilog(sys.netlist, verilog);
  std::cout << "wrote hardened_system.v (structural Verilog)\n";
  return mismatches == 0 ? 0 : 1;
}
