// Fault-injection walkthrough: injects a capture-corrupting SET into a
// protected design, traces the recovery protocol cycle by cycle, then
// runs a randomized campaign showing 100% coverage (and that the same
// strikes corrupt the unprotected design).

#include <iostream>

#include "common/table.hpp"
#include "cwsp/coverage.hpp"
#include "cwsp/timing.hpp"
#include "netlist/bench_parser.hpp"

int main() {
  using namespace cwsp;
  using namespace cwsp::literals;
  const CellLibrary library = make_default_library();

  const Netlist netlist = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(q1)
OUTPUT(y)
t1 = NAND(a, q2)
t2 = XOR(t1, b)
d1 = NOT(t2)
q1 = DFF(d1)
q2 = DFF(t1)
y  = AND(q1, q2)
)",
                                             library, "demo_fsm");

  const auto params = core::ProtectionParams::q100();
  const Picoseconds period{2000.0};
  core::ProtectionSim sim(netlist, params, period);

  // --- single-strike walkthrough --------------------------------------
  std::vector<std::vector<bool>> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back({(i % 2) == 0, (i % 3) == 0});

  core::ScheduledStrike strike;
  strike.cycle = 3;
  strike.target = core::StrikeTarget::kFunctional;
  strike.strike.node = *netlist.find_net("d1");
  strike.strike.start = 1800.0_ps;  // spans the capture edge at 2000 ps
  strike.strike.width = 400.0_ps;

  const auto protected_run = sim.run(inputs, {strike});
  const auto unprotected_run = sim.run_unprotected(inputs, {strike});

  std::cout << "Single strike on net d1 spanning the capture edge of cycle "
            << strike.cycle << ":\n";
  std::cout << "  protected   : " << protected_run.detected_errors
            << " detection(s), " << protected_run.bubbles
            << " pipeline bubble(s), "
            << protected_run.silent_corruptions << " silent corruption(s) — "
            << (protected_run.recovered() ? "RECOVERED" : "FAILED") << "\n";
  std::cout << "  unprotected : " << unprotected_run.corrupted_cycles
            << " corrupted cycle(s)\n\n";

  TextTable trace;
  trace.set_header({"program cycle", "golden outputs", "committed outputs"});
  for (std::size_t i = 0; i < protected_run.golden_outputs.size(); ++i) {
    auto fmt = [](const std::vector<bool>& v) {
      std::string s;
      for (bool b : v) s += b ? '1' : '0';
      return s;
    };
    trace.add_row({std::to_string(i), fmt(protected_run.golden_outputs[i]),
                   fmt(protected_run.committed_outputs[i])});
  }
  trace.print(std::cout);

  // --- randomized campaign --------------------------------------------
  core::CampaignOptions options;
  options.runs = 100;
  options.cycles_per_run = 16;
  options.glitch_width = 400.0_ps;
  options.seed = 7;

  const auto report =
      core::run_functional_campaign(netlist, params, period, options);
  std::cout << "\nRandomized campaign (" << report.runs << " runs):\n";
  std::cout << "  protected coverage   : "
            << report.protected_coverage_pct() << " %\n";
  std::cout << "  unprotected failures : "
            << report.unprotected_failure_pct() << " % of strikes\n";
  std::cout << "  detected / spurious  : " << report.detected_errors << " / "
            << report.spurious_recomputes << "\n";
  return 0;
}
