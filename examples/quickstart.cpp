// Quickstart: build a small sequential design with the netlist API,
// harden it with the paper's secondary-path CWSP protection, and print
// the resulting area/delay/protection report.

#include <iostream>

#include "cwsp/harden.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

int main() {
  using namespace cwsp;

  // 1. A cell library calibrated to the paper's 65 nm setup.
  const CellLibrary library = make_default_library();

  // 2. A toy pipeline stage: two flip-flops with a bit of logic.
  Netlist netlist(library, "quickstart");
  const NetId a = netlist.add_primary_input("a");
  const NetId b = netlist.add_primary_input("b");
  const NetId en = netlist.add_primary_input("en");

  const GateId g1 =
      netlist.add_gate(library.cell_for(CellKind::kNand2), {a, b}, "nab");
  const GateId g2 = netlist.add_gate(library.cell_for(CellKind::kXor2),
                                     {netlist.gate(g1).output, en}, "mix");
  const FlipFlopId ff1 =
      netlist.add_flip_flop(netlist.gate(g2).output, "state");
  const GateId g3 = netlist.add_gate(library.cell_for(CellKind::kAnd2),
                                     {netlist.flip_flop(ff1).q, en}, "out_d");
  const FlipFlopId ff2 =
      netlist.add_flip_flop(netlist.gate(g3).output, "out_q");
  netlist.mark_primary_output(netlist.flip_flop(ff2).q);
  netlist.validate();

  // 3. Static timing: Dmax/Dmin and the critical path.
  const auto timing = run_sta(netlist);
  std::cout << timing_report(netlist, timing) << '\n';

  // 4. Harden against Q = 100 fC strikes (500 ps glitches).
  const auto design =
      core::harden(netlist, core::ProtectionParams::q100());
  std::cout << core::describe(design);

  // 5. The headline numbers.
  std::cout << "\nArea overhead : " << design.area_overhead_pct() << " %\n";
  std::cout << "Delay overhead: " << design.delay_overhead_pct()
            << " %  (paper: < 1% on benchmark-scale designs)\n";
  return 0;
}
