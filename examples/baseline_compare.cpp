// Compares every implemented hardening technique on one benchmark-scale
// design — the per-circuit view behind the paper's Table 4.

#include <iostream>

#include "baselines/compare.hpp"
#include "bencharness/generator.hpp"
#include "common/table.hpp"

int main() {
  using namespace cwsp;
  const CellLibrary library = make_default_library();

  const auto gen =
      bench::generate_benchmark(bench::find_benchmark("dalu"), library);
  std::cout << "Benchmark dalu (synthetic, calibrated): Dmax "
            << gen.measured_dmax.value() << " ps, area "
            << gen.measured_area.value() << " um^2, "
            << gen.netlist.num_gates() << " gates\n\n";

  baselines::CompareOptions options;
  options.resizing.samples = 200;
  const auto reports = baselines::compare_all(gen.netlist, options);

  TextTable table;
  table.set_header({"Technique", "Area Ovh %", "Delay Ovh %", "Protection %",
                    "Max glitch ps", "Feasible"});
  for (const auto& r : reports) {
    table.add_row({r.technique, TextTable::num(r.area_overhead_pct(), 2),
                   TextTable::num(r.delay_overhead_pct(), 2),
                   TextTable::num(r.protection_pct, 1),
                   TextTable::num(r.max_glitch.value(), 0),
                   r.feasible ? "yes" : "no"});
  }
  table.print(std::cout);

  std::cout << "\nReading: the secondary-path CWSP approach is the only "
               "technique with 100% protection at sub-1% delay overhead; "
               "[15] pays ~2delta in the clock period, [13] stays fast but "
               "caps protection at 90%, TMR triples the area.\n";
  return 0;
}
