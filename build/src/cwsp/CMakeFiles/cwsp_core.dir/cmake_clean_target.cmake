file(REMOVE_RECURSE
  "libcwsp_core.a"
)
