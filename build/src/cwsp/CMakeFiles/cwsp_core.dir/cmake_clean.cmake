file(REMOVE_RECURSE
  "CMakeFiles/cwsp_core.dir/area_report.cpp.o"
  "CMakeFiles/cwsp_core.dir/area_report.cpp.o.d"
  "CMakeFiles/cwsp_core.dir/coverage.cpp.o"
  "CMakeFiles/cwsp_core.dir/coverage.cpp.o.d"
  "CMakeFiles/cwsp_core.dir/elaborate.cpp.o"
  "CMakeFiles/cwsp_core.dir/elaborate.cpp.o.d"
  "CMakeFiles/cwsp_core.dir/elaborate_system.cpp.o"
  "CMakeFiles/cwsp_core.dir/elaborate_system.cpp.o.d"
  "CMakeFiles/cwsp_core.dir/eqglb_tree.cpp.o"
  "CMakeFiles/cwsp_core.dir/eqglb_tree.cpp.o.d"
  "CMakeFiles/cwsp_core.dir/harden.cpp.o"
  "CMakeFiles/cwsp_core.dir/harden.cpp.o.d"
  "CMakeFiles/cwsp_core.dir/protection_params.cpp.o"
  "CMakeFiles/cwsp_core.dir/protection_params.cpp.o.d"
  "CMakeFiles/cwsp_core.dir/protection_sim.cpp.o"
  "CMakeFiles/cwsp_core.dir/protection_sim.cpp.o.d"
  "CMakeFiles/cwsp_core.dir/timing.cpp.o"
  "CMakeFiles/cwsp_core.dir/timing.cpp.o.d"
  "libcwsp_core.a"
  "libcwsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
