
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cwsp/area_report.cpp" "src/cwsp/CMakeFiles/cwsp_core.dir/area_report.cpp.o" "gcc" "src/cwsp/CMakeFiles/cwsp_core.dir/area_report.cpp.o.d"
  "/root/repo/src/cwsp/coverage.cpp" "src/cwsp/CMakeFiles/cwsp_core.dir/coverage.cpp.o" "gcc" "src/cwsp/CMakeFiles/cwsp_core.dir/coverage.cpp.o.d"
  "/root/repo/src/cwsp/elaborate.cpp" "src/cwsp/CMakeFiles/cwsp_core.dir/elaborate.cpp.o" "gcc" "src/cwsp/CMakeFiles/cwsp_core.dir/elaborate.cpp.o.d"
  "/root/repo/src/cwsp/elaborate_system.cpp" "src/cwsp/CMakeFiles/cwsp_core.dir/elaborate_system.cpp.o" "gcc" "src/cwsp/CMakeFiles/cwsp_core.dir/elaborate_system.cpp.o.d"
  "/root/repo/src/cwsp/eqglb_tree.cpp" "src/cwsp/CMakeFiles/cwsp_core.dir/eqglb_tree.cpp.o" "gcc" "src/cwsp/CMakeFiles/cwsp_core.dir/eqglb_tree.cpp.o.d"
  "/root/repo/src/cwsp/harden.cpp" "src/cwsp/CMakeFiles/cwsp_core.dir/harden.cpp.o" "gcc" "src/cwsp/CMakeFiles/cwsp_core.dir/harden.cpp.o.d"
  "/root/repo/src/cwsp/protection_params.cpp" "src/cwsp/CMakeFiles/cwsp_core.dir/protection_params.cpp.o" "gcc" "src/cwsp/CMakeFiles/cwsp_core.dir/protection_params.cpp.o.d"
  "/root/repo/src/cwsp/protection_sim.cpp" "src/cwsp/CMakeFiles/cwsp_core.dir/protection_sim.cpp.o" "gcc" "src/cwsp/CMakeFiles/cwsp_core.dir/protection_sim.cpp.o.d"
  "/root/repo/src/cwsp/timing.cpp" "src/cwsp/CMakeFiles/cwsp_core.dir/timing.cpp.o" "gcc" "src/cwsp/CMakeFiles/cwsp_core.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sta/CMakeFiles/cwsp_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cwsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/set/CMakeFiles/cwsp_set.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/cwsp_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/cwsp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/cwsp_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cwsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
