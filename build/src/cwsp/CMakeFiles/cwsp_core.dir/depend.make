# Empty dependencies file for cwsp_core.
# This may be replaced when dependencies are built.
