file(REMOVE_RECURSE
  "libcwsp_common.a"
)
