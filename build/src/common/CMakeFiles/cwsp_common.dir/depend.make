# Empty dependencies file for cwsp_common.
# This may be replaced when dependencies are built.
