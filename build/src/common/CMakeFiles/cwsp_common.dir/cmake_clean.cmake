file(REMOVE_RECURSE
  "CMakeFiles/cwsp_common.dir/table.cpp.o"
  "CMakeFiles/cwsp_common.dir/table.cpp.o.d"
  "libcwsp_common.a"
  "libcwsp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
