file(REMOVE_RECURSE
  "CMakeFiles/cwsp_sta.dir/sta.cpp.o"
  "CMakeFiles/cwsp_sta.dir/sta.cpp.o.d"
  "libcwsp_sta.a"
  "libcwsp_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
