# Empty dependencies file for cwsp_sta.
# This may be replaced when dependencies are built.
