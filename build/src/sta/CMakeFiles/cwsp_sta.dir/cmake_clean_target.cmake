file(REMOVE_RECURSE
  "libcwsp_sta.a"
)
