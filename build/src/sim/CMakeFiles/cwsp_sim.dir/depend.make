# Empty dependencies file for cwsp_sim.
# This may be replaced when dependencies are built.
