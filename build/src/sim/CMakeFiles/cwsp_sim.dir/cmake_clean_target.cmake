file(REMOVE_RECURSE
  "libcwsp_sim.a"
)
