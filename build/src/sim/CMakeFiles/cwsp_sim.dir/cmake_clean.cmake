file(REMOVE_RECURSE
  "CMakeFiles/cwsp_sim.dir/digital_waveform.cpp.o"
  "CMakeFiles/cwsp_sim.dir/digital_waveform.cpp.o.d"
  "CMakeFiles/cwsp_sim.dir/equivalence.cpp.o"
  "CMakeFiles/cwsp_sim.dir/equivalence.cpp.o.d"
  "CMakeFiles/cwsp_sim.dir/event_sim.cpp.o"
  "CMakeFiles/cwsp_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/cwsp_sim.dir/logic_sim.cpp.o"
  "CMakeFiles/cwsp_sim.dir/logic_sim.cpp.o.d"
  "CMakeFiles/cwsp_sim.dir/trace.cpp.o"
  "CMakeFiles/cwsp_sim.dir/trace.cpp.o.d"
  "libcwsp_sim.a"
  "libcwsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
