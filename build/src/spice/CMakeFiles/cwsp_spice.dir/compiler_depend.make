# Empty compiler generated dependencies file for cwsp_spice.
# This may be replaced when dependencies are built.
