
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/cwsp_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/cwsp_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/delay_line.cpp" "src/spice/CMakeFiles/cwsp_spice.dir/delay_line.cpp.o" "gcc" "src/spice/CMakeFiles/cwsp_spice.dir/delay_line.cpp.o.d"
  "/root/repo/src/spice/devices.cpp" "src/spice/CMakeFiles/cwsp_spice.dir/devices.cpp.o" "gcc" "src/spice/CMakeFiles/cwsp_spice.dir/devices.cpp.o.d"
  "/root/repo/src/spice/netlist_bridge.cpp" "src/spice/CMakeFiles/cwsp_spice.dir/netlist_bridge.cpp.o" "gcc" "src/spice/CMakeFiles/cwsp_spice.dir/netlist_bridge.cpp.o.d"
  "/root/repo/src/spice/solver.cpp" "src/spice/CMakeFiles/cwsp_spice.dir/solver.cpp.o" "gcc" "src/spice/CMakeFiles/cwsp_spice.dir/solver.cpp.o.d"
  "/root/repo/src/spice/subckt.cpp" "src/spice/CMakeFiles/cwsp_spice.dir/subckt.cpp.o" "gcc" "src/spice/CMakeFiles/cwsp_spice.dir/subckt.cpp.o.d"
  "/root/repo/src/spice/transient.cpp" "src/spice/CMakeFiles/cwsp_spice.dir/transient.cpp.o" "gcc" "src/spice/CMakeFiles/cwsp_spice.dir/transient.cpp.o.d"
  "/root/repo/src/spice/waveform.cpp" "src/spice/CMakeFiles/cwsp_spice.dir/waveform.cpp.o" "gcc" "src/spice/CMakeFiles/cwsp_spice.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cell/CMakeFiles/cwsp_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/cwsp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cwsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
