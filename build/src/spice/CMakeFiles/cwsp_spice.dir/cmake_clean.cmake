file(REMOVE_RECURSE
  "CMakeFiles/cwsp_spice.dir/circuit.cpp.o"
  "CMakeFiles/cwsp_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/cwsp_spice.dir/delay_line.cpp.o"
  "CMakeFiles/cwsp_spice.dir/delay_line.cpp.o.d"
  "CMakeFiles/cwsp_spice.dir/devices.cpp.o"
  "CMakeFiles/cwsp_spice.dir/devices.cpp.o.d"
  "CMakeFiles/cwsp_spice.dir/netlist_bridge.cpp.o"
  "CMakeFiles/cwsp_spice.dir/netlist_bridge.cpp.o.d"
  "CMakeFiles/cwsp_spice.dir/solver.cpp.o"
  "CMakeFiles/cwsp_spice.dir/solver.cpp.o.d"
  "CMakeFiles/cwsp_spice.dir/subckt.cpp.o"
  "CMakeFiles/cwsp_spice.dir/subckt.cpp.o.d"
  "CMakeFiles/cwsp_spice.dir/transient.cpp.o"
  "CMakeFiles/cwsp_spice.dir/transient.cpp.o.d"
  "CMakeFiles/cwsp_spice.dir/waveform.cpp.o"
  "CMakeFiles/cwsp_spice.dir/waveform.cpp.o.d"
  "libcwsp_spice.a"
  "libcwsp_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
