file(REMOVE_RECURSE
  "libcwsp_spice.a"
)
