file(REMOVE_RECURSE
  "libcwsp_set.a"
)
