# Empty dependencies file for cwsp_set.
# This may be replaced when dependencies are built.
