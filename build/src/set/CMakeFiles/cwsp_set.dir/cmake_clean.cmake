file(REMOVE_RECURSE
  "CMakeFiles/cwsp_set.dir/glitch_model.cpp.o"
  "CMakeFiles/cwsp_set.dir/glitch_model.cpp.o.d"
  "CMakeFiles/cwsp_set.dir/ser.cpp.o"
  "CMakeFiles/cwsp_set.dir/ser.cpp.o.d"
  "CMakeFiles/cwsp_set.dir/strike_plan.cpp.o"
  "CMakeFiles/cwsp_set.dir/strike_plan.cpp.o.d"
  "libcwsp_set.a"
  "libcwsp_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
