# Empty dependencies file for cwsp_baselines.
# This may be replaced when dependencies are built.
