file(REMOVE_RECURSE
  "libcwsp_baselines.a"
)
