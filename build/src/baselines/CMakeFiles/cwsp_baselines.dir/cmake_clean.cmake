file(REMOVE_RECURSE
  "CMakeFiles/cwsp_baselines.dir/anghel00.cpp.o"
  "CMakeFiles/cwsp_baselines.dir/anghel00.cpp.o.d"
  "CMakeFiles/cwsp_baselines.dir/compare.cpp.o"
  "CMakeFiles/cwsp_baselines.dir/compare.cpp.o.d"
  "CMakeFiles/cwsp_baselines.dir/gate_resizing.cpp.o"
  "CMakeFiles/cwsp_baselines.dir/gate_resizing.cpp.o.d"
  "CMakeFiles/cwsp_baselines.dir/nicolaidis99.cpp.o"
  "CMakeFiles/cwsp_baselines.dir/nicolaidis99.cpp.o.d"
  "CMakeFiles/cwsp_baselines.dir/tmr.cpp.o"
  "CMakeFiles/cwsp_baselines.dir/tmr.cpp.o.d"
  "libcwsp_baselines.a"
  "libcwsp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
