file(REMOVE_RECURSE
  "libcwsp_cell.a"
)
