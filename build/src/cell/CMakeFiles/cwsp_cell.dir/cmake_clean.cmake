file(REMOVE_RECURSE
  "CMakeFiles/cwsp_cell.dir/cell.cpp.o"
  "CMakeFiles/cwsp_cell.dir/cell.cpp.o.d"
  "CMakeFiles/cwsp_cell.dir/library.cpp.o"
  "CMakeFiles/cwsp_cell.dir/library.cpp.o.d"
  "CMakeFiles/cwsp_cell.dir/library_io.cpp.o"
  "CMakeFiles/cwsp_cell.dir/library_io.cpp.o.d"
  "libcwsp_cell.a"
  "libcwsp_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
