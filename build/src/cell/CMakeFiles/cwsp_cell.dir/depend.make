# Empty dependencies file for cwsp_cell.
# This may be replaced when dependencies are built.
