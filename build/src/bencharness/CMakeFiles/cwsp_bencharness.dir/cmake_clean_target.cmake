file(REMOVE_RECURSE
  "libcwsp_bencharness.a"
)
