# Empty dependencies file for cwsp_bencharness.
# This may be replaced when dependencies are built.
