file(REMOVE_RECURSE
  "CMakeFiles/cwsp_bencharness.dir/benchmark_data.cpp.o"
  "CMakeFiles/cwsp_bencharness.dir/benchmark_data.cpp.o.d"
  "CMakeFiles/cwsp_bencharness.dir/generator.cpp.o"
  "CMakeFiles/cwsp_bencharness.dir/generator.cpp.o.d"
  "libcwsp_bencharness.a"
  "libcwsp_bencharness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_bencharness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
