# Empty dependencies file for cwsp_netlist.
# This may be replaced when dependencies are built.
