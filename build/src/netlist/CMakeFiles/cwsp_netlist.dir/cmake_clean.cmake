file(REMOVE_RECURSE
  "CMakeFiles/cwsp_netlist.dir/analysis.cpp.o"
  "CMakeFiles/cwsp_netlist.dir/analysis.cpp.o.d"
  "CMakeFiles/cwsp_netlist.dir/bench_parser.cpp.o"
  "CMakeFiles/cwsp_netlist.dir/bench_parser.cpp.o.d"
  "CMakeFiles/cwsp_netlist.dir/blif_parser.cpp.o"
  "CMakeFiles/cwsp_netlist.dir/blif_parser.cpp.o.d"
  "CMakeFiles/cwsp_netlist.dir/blif_writer.cpp.o"
  "CMakeFiles/cwsp_netlist.dir/blif_writer.cpp.o.d"
  "CMakeFiles/cwsp_netlist.dir/decompose.cpp.o"
  "CMakeFiles/cwsp_netlist.dir/decompose.cpp.o.d"
  "CMakeFiles/cwsp_netlist.dir/netlist.cpp.o"
  "CMakeFiles/cwsp_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/cwsp_netlist.dir/transform.cpp.o"
  "CMakeFiles/cwsp_netlist.dir/transform.cpp.o.d"
  "CMakeFiles/cwsp_netlist.dir/verilog_writer.cpp.o"
  "CMakeFiles/cwsp_netlist.dir/verilog_writer.cpp.o.d"
  "CMakeFiles/cwsp_netlist.dir/writer.cpp.o"
  "CMakeFiles/cwsp_netlist.dir/writer.cpp.o.d"
  "libcwsp_netlist.a"
  "libcwsp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
