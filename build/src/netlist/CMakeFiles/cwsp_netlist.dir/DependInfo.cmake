
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/analysis.cpp" "src/netlist/CMakeFiles/cwsp_netlist.dir/analysis.cpp.o" "gcc" "src/netlist/CMakeFiles/cwsp_netlist.dir/analysis.cpp.o.d"
  "/root/repo/src/netlist/bench_parser.cpp" "src/netlist/CMakeFiles/cwsp_netlist.dir/bench_parser.cpp.o" "gcc" "src/netlist/CMakeFiles/cwsp_netlist.dir/bench_parser.cpp.o.d"
  "/root/repo/src/netlist/blif_parser.cpp" "src/netlist/CMakeFiles/cwsp_netlist.dir/blif_parser.cpp.o" "gcc" "src/netlist/CMakeFiles/cwsp_netlist.dir/blif_parser.cpp.o.d"
  "/root/repo/src/netlist/blif_writer.cpp" "src/netlist/CMakeFiles/cwsp_netlist.dir/blif_writer.cpp.o" "gcc" "src/netlist/CMakeFiles/cwsp_netlist.dir/blif_writer.cpp.o.d"
  "/root/repo/src/netlist/decompose.cpp" "src/netlist/CMakeFiles/cwsp_netlist.dir/decompose.cpp.o" "gcc" "src/netlist/CMakeFiles/cwsp_netlist.dir/decompose.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/cwsp_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/cwsp_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/transform.cpp" "src/netlist/CMakeFiles/cwsp_netlist.dir/transform.cpp.o" "gcc" "src/netlist/CMakeFiles/cwsp_netlist.dir/transform.cpp.o.d"
  "/root/repo/src/netlist/verilog_writer.cpp" "src/netlist/CMakeFiles/cwsp_netlist.dir/verilog_writer.cpp.o" "gcc" "src/netlist/CMakeFiles/cwsp_netlist.dir/verilog_writer.cpp.o.d"
  "/root/repo/src/netlist/writer.cpp" "src/netlist/CMakeFiles/cwsp_netlist.dir/writer.cpp.o" "gcc" "src/netlist/CMakeFiles/cwsp_netlist.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cell/CMakeFiles/cwsp_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cwsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
