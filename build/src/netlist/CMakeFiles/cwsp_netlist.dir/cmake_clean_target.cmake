file(REMOVE_RECURSE
  "libcwsp_netlist.a"
)
