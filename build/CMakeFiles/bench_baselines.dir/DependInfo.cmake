
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_baselines.cpp" "CMakeFiles/bench_baselines.dir/bench/bench_baselines.cpp.o" "gcc" "CMakeFiles/bench_baselines.dir/bench/bench_baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/cwsp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/bencharness/CMakeFiles/cwsp_bencharness.dir/DependInfo.cmake"
  "/root/repo/build/src/cwsp/CMakeFiles/cwsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cwsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/set/CMakeFiles/cwsp_set.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/cwsp_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/cwsp_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/cwsp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/cwsp_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cwsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
