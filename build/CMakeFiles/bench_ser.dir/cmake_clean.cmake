file(REMOVE_RECURSE
  "CMakeFiles/bench_ser.dir/bench/bench_ser.cpp.o"
  "CMakeFiles/bench_ser.dir/bench/bench_ser.cpp.o.d"
  "bench/bench_ser"
  "bench/bench_ser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
