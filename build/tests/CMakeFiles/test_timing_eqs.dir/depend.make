# Empty dependencies file for test_timing_eqs.
# This may be replaced when dependencies are built.
