file(REMOVE_RECURSE
  "CMakeFiles/test_timing_eqs.dir/test_timing_eqs.cpp.o"
  "CMakeFiles/test_timing_eqs.dir/test_timing_eqs.cpp.o.d"
  "test_timing_eqs"
  "test_timing_eqs.pdb"
  "test_timing_eqs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_eqs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
