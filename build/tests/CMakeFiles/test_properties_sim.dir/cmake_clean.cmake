file(REMOVE_RECURSE
  "CMakeFiles/test_properties_sim.dir/test_properties_sim.cpp.o"
  "CMakeFiles/test_properties_sim.dir/test_properties_sim.cpp.o.d"
  "test_properties_sim"
  "test_properties_sim.pdb"
  "test_properties_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
