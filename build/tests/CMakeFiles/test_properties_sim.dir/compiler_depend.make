# Empty compiler generated dependencies file for test_properties_sim.
# This may be replaced when dependencies are built.
