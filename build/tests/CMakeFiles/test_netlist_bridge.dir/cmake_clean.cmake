file(REMOVE_RECURSE
  "CMakeFiles/test_netlist_bridge.dir/test_netlist_bridge.cpp.o"
  "CMakeFiles/test_netlist_bridge.dir/test_netlist_bridge.cpp.o.d"
  "test_netlist_bridge"
  "test_netlist_bridge.pdb"
  "test_netlist_bridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
