# Empty dependencies file for test_netlist_bridge.
# This may be replaced when dependencies are built.
