# Empty dependencies file for test_sta_paths.
# This may be replaced when dependencies are built.
