file(REMOVE_RECURSE
  "CMakeFiles/test_sta_paths.dir/test_sta_paths.cpp.o"
  "CMakeFiles/test_sta_paths.dir/test_sta_paths.cpp.o.d"
  "test_sta_paths"
  "test_sta_paths.pdb"
  "test_sta_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sta_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
