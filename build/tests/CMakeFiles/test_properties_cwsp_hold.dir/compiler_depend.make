# Empty compiler generated dependencies file for test_properties_cwsp_hold.
# This may be replaced when dependencies are built.
