file(REMOVE_RECURSE
  "CMakeFiles/test_properties_cwsp_hold.dir/test_properties_cwsp_hold.cpp.o"
  "CMakeFiles/test_properties_cwsp_hold.dir/test_properties_cwsp_hold.cpp.o.d"
  "test_properties_cwsp_hold"
  "test_properties_cwsp_hold.pdb"
  "test_properties_cwsp_hold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_cwsp_hold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
