# Empty dependencies file for test_properties_cells.
# This may be replaced when dependencies are built.
