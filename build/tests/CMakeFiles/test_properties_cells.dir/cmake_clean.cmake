file(REMOVE_RECURSE
  "CMakeFiles/test_properties_cells.dir/test_properties_cells.cpp.o"
  "CMakeFiles/test_properties_cells.dir/test_properties_cells.cpp.o.d"
  "test_properties_cells"
  "test_properties_cells.pdb"
  "test_properties_cells[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
