file(REMOVE_RECURSE
  "CMakeFiles/test_iscas_circuits.dir/test_iscas_circuits.cpp.o"
  "CMakeFiles/test_iscas_circuits.dir/test_iscas_circuits.cpp.o.d"
  "test_iscas_circuits"
  "test_iscas_circuits.pdb"
  "test_iscas_circuits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iscas_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
