# Empty dependencies file for test_iscas_circuits.
# This may be replaced when dependencies are built.
