file(REMOVE_RECURSE
  "CMakeFiles/test_spice_devices.dir/test_spice_devices.cpp.o"
  "CMakeFiles/test_spice_devices.dir/test_spice_devices.cpp.o.d"
  "test_spice_devices"
  "test_spice_devices.pdb"
  "test_spice_devices[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
