# Empty compiler generated dependencies file for test_spice_devices.
# This may be replaced when dependencies are built.
