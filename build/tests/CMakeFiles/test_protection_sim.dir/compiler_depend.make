# Empty compiler generated dependencies file for test_protection_sim.
# This may be replaced when dependencies are built.
