file(REMOVE_RECURSE
  "CMakeFiles/test_protection_sim.dir/test_protection_sim.cpp.o"
  "CMakeFiles/test_protection_sim.dir/test_protection_sim.cpp.o.d"
  "test_protection_sim"
  "test_protection_sim.pdb"
  "test_protection_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protection_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
