# Empty dependencies file for test_noise_margin.
# This may be replaced when dependencies are built.
