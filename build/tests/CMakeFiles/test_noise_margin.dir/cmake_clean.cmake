file(REMOVE_RECURSE
  "CMakeFiles/test_noise_margin.dir/test_noise_margin.cpp.o"
  "CMakeFiles/test_noise_margin.dir/test_noise_margin.cpp.o.d"
  "test_noise_margin"
  "test_noise_margin.pdb"
  "test_noise_margin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
