# Empty dependencies file for test_logic_sim.
# This may be replaced when dependencies are built.
