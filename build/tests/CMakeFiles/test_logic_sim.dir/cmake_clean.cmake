file(REMOVE_RECURSE
  "CMakeFiles/test_logic_sim.dir/test_logic_sim.cpp.o"
  "CMakeFiles/test_logic_sim.dir/test_logic_sim.cpp.o.d"
  "test_logic_sim"
  "test_logic_sim.pdb"
  "test_logic_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
