file(REMOVE_RECURSE
  "CMakeFiles/test_verilog_writer.dir/test_verilog_writer.cpp.o"
  "CMakeFiles/test_verilog_writer.dir/test_verilog_writer.cpp.o.d"
  "test_verilog_writer"
  "test_verilog_writer.pdb"
  "test_verilog_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verilog_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
