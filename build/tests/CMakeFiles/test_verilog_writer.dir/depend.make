# Empty dependencies file for test_verilog_writer.
# This may be replaced when dependencies are built.
