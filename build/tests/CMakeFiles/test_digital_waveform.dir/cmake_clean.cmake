file(REMOVE_RECURSE
  "CMakeFiles/test_digital_waveform.dir/test_digital_waveform.cpp.o"
  "CMakeFiles/test_digital_waveform.dir/test_digital_waveform.cpp.o.d"
  "test_digital_waveform"
  "test_digital_waveform.pdb"
  "test_digital_waveform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_digital_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
