# Empty dependencies file for test_digital_waveform.
# This may be replaced when dependencies are built.
