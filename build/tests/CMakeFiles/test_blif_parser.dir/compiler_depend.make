# Empty compiler generated dependencies file for test_blif_parser.
# This may be replaced when dependencies are built.
