file(REMOVE_RECURSE
  "CMakeFiles/test_blif_parser.dir/test_blif_parser.cpp.o"
  "CMakeFiles/test_blif_parser.dir/test_blif_parser.cpp.o.d"
  "test_blif_parser"
  "test_blif_parser.pdb"
  "test_blif_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blif_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
