# Empty dependencies file for test_subckt.
# This may be replaced when dependencies are built.
