file(REMOVE_RECURSE
  "CMakeFiles/test_subckt.dir/test_subckt.cpp.o"
  "CMakeFiles/test_subckt.dir/test_subckt.cpp.o.d"
  "test_subckt"
  "test_subckt.pdb"
  "test_subckt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subckt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
