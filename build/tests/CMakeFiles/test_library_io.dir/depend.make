# Empty dependencies file for test_library_io.
# This may be replaced when dependencies are built.
