file(REMOVE_RECURSE
  "CMakeFiles/test_library_io.dir/test_library_io.cpp.o"
  "CMakeFiles/test_library_io.dir/test_library_io.cpp.o.d"
  "test_library_io"
  "test_library_io.pdb"
  "test_library_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_library_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
