file(REMOVE_RECURSE
  "CMakeFiles/test_blif_writer.dir/test_blif_writer.cpp.o"
  "CMakeFiles/test_blif_writer.dir/test_blif_writer.cpp.o.d"
  "test_blif_writer"
  "test_blif_writer.pdb"
  "test_blif_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blif_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
