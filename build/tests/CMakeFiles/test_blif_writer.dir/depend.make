# Empty dependencies file for test_blif_writer.
# This may be replaced when dependencies are built.
