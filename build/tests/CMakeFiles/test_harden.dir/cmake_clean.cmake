file(REMOVE_RECURSE
  "CMakeFiles/test_harden.dir/test_harden.cpp.o"
  "CMakeFiles/test_harden.dir/test_harden.cpp.o.d"
  "test_harden"
  "test_harden.pdb"
  "test_harden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
