# Empty dependencies file for test_properties_decompose.
# This may be replaced when dependencies are built.
