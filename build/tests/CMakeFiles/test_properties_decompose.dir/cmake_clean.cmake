file(REMOVE_RECURSE
  "CMakeFiles/test_properties_decompose.dir/test_properties_decompose.cpp.o"
  "CMakeFiles/test_properties_decompose.dir/test_properties_decompose.cpp.o.d"
  "test_properties_decompose"
  "test_properties_decompose.pdb"
  "test_properties_decompose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
