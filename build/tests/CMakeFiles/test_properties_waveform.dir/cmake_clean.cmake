file(REMOVE_RECURSE
  "CMakeFiles/test_properties_waveform.dir/test_properties_waveform.cpp.o"
  "CMakeFiles/test_properties_waveform.dir/test_properties_waveform.cpp.o.d"
  "test_properties_waveform"
  "test_properties_waveform.pdb"
  "test_properties_waveform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
