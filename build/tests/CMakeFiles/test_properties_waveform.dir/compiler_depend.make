# Empty compiler generated dependencies file for test_properties_waveform.
# This may be replaced when dependencies are built.
