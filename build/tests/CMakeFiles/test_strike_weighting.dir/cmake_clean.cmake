file(REMOVE_RECURSE
  "CMakeFiles/test_strike_weighting.dir/test_strike_weighting.cpp.o"
  "CMakeFiles/test_strike_weighting.dir/test_strike_weighting.cpp.o.d"
  "test_strike_weighting"
  "test_strike_weighting.pdb"
  "test_strike_weighting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strike_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
