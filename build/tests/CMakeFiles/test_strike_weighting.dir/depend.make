# Empty dependencies file for test_strike_weighting.
# This may be replaced when dependencies are built.
