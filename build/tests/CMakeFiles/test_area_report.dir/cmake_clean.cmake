file(REMOVE_RECURSE
  "CMakeFiles/test_area_report.dir/test_area_report.cpp.o"
  "CMakeFiles/test_area_report.dir/test_area_report.cpp.o.d"
  "test_area_report"
  "test_area_report.pdb"
  "test_area_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_area_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
