# Empty compiler generated dependencies file for test_area_report.
# This may be replaced when dependencies are built.
