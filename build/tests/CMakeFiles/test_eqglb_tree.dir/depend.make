# Empty dependencies file for test_eqglb_tree.
# This may be replaced when dependencies are built.
