file(REMOVE_RECURSE
  "CMakeFiles/test_eqglb_tree.dir/test_eqglb_tree.cpp.o"
  "CMakeFiles/test_eqglb_tree.dir/test_eqglb_tree.cpp.o.d"
  "test_eqglb_tree"
  "test_eqglb_tree.pdb"
  "test_eqglb_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eqglb_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
