file(REMOVE_RECURSE
  "CMakeFiles/test_strike_plan.dir/test_strike_plan.cpp.o"
  "CMakeFiles/test_strike_plan.dir/test_strike_plan.cpp.o.d"
  "test_strike_plan"
  "test_strike_plan.pdb"
  "test_strike_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strike_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
