# Empty dependencies file for test_strike_plan.
# This may be replaced when dependencies are built.
