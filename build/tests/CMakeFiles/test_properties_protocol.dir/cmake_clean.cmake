file(REMOVE_RECURSE
  "CMakeFiles/test_properties_protocol.dir/test_properties_protocol.cpp.o"
  "CMakeFiles/test_properties_protocol.dir/test_properties_protocol.cpp.o.d"
  "test_properties_protocol"
  "test_properties_protocol.pdb"
  "test_properties_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
