# Empty dependencies file for test_properties_protocol.
# This may be replaced when dependencies are built.
