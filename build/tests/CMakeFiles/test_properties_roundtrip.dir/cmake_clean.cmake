file(REMOVE_RECURSE
  "CMakeFiles/test_properties_roundtrip.dir/test_properties_roundtrip.cpp.o"
  "CMakeFiles/test_properties_roundtrip.dir/test_properties_roundtrip.cpp.o.d"
  "test_properties_roundtrip"
  "test_properties_roundtrip.pdb"
  "test_properties_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
