# Empty compiler generated dependencies file for test_properties_roundtrip.
# This may be replaced when dependencies are built.
