file(REMOVE_RECURSE
  "CMakeFiles/test_writer.dir/test_writer.cpp.o"
  "CMakeFiles/test_writer.dir/test_writer.cpp.o.d"
  "test_writer"
  "test_writer.pdb"
  "test_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
