# Empty dependencies file for test_glitch_model.
# This may be replaced when dependencies are built.
