file(REMOVE_RECURSE
  "CMakeFiles/test_glitch_model.dir/test_glitch_model.cpp.o"
  "CMakeFiles/test_glitch_model.dir/test_glitch_model.cpp.o.d"
  "test_glitch_model"
  "test_glitch_model.pdb"
  "test_glitch_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glitch_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
