file(REMOVE_RECURSE
  "CMakeFiles/test_protection_tuning.dir/test_protection_tuning.cpp.o"
  "CMakeFiles/test_protection_tuning.dir/test_protection_tuning.cpp.o.d"
  "test_protection_tuning"
  "test_protection_tuning.pdb"
  "test_protection_tuning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protection_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
