# Empty dependencies file for test_protection_tuning.
# This may be replaced when dependencies are built.
