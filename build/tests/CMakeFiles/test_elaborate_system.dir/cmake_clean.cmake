file(REMOVE_RECURSE
  "CMakeFiles/test_elaborate_system.dir/test_elaborate_system.cpp.o"
  "CMakeFiles/test_elaborate_system.dir/test_elaborate_system.cpp.o.d"
  "test_elaborate_system"
  "test_elaborate_system.pdb"
  "test_elaborate_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elaborate_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
