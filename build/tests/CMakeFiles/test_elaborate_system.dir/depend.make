# Empty dependencies file for test_elaborate_system.
# This may be replaced when dependencies are built.
