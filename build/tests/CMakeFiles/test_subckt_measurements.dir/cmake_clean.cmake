file(REMOVE_RECURSE
  "CMakeFiles/test_subckt_measurements.dir/test_subckt_measurements.cpp.o"
  "CMakeFiles/test_subckt_measurements.dir/test_subckt_measurements.cpp.o.d"
  "test_subckt_measurements"
  "test_subckt_measurements.pdb"
  "test_subckt_measurements[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subckt_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
