# Empty compiler generated dependencies file for test_subckt_measurements.
# This may be replaced when dependencies are built.
