# Empty compiler generated dependencies file for test_suite_calibration.
# This may be replaced when dependencies are built.
