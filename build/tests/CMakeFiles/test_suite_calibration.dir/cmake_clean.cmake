file(REMOVE_RECURSE
  "CMakeFiles/test_suite_calibration.dir/test_suite_calibration.cpp.o"
  "CMakeFiles/test_suite_calibration.dir/test_suite_calibration.cpp.o.d"
  "test_suite_calibration"
  "test_suite_calibration.pdb"
  "test_suite_calibration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
