# Empty compiler generated dependencies file for test_spice_solver.
# This may be replaced when dependencies are built.
