file(REMOVE_RECURSE
  "CMakeFiles/test_spice_solver.dir/test_spice_solver.cpp.o"
  "CMakeFiles/test_spice_solver.dir/test_spice_solver.cpp.o.d"
  "test_spice_solver"
  "test_spice_solver.pdb"
  "test_spice_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
