# Empty dependencies file for test_properties_timing.
# This may be replaced when dependencies are built.
