file(REMOVE_RECURSE
  "CMakeFiles/test_properties_timing.dir/test_properties_timing.cpp.o"
  "CMakeFiles/test_properties_timing.dir/test_properties_timing.cpp.o.d"
  "test_properties_timing"
  "test_properties_timing.pdb"
  "test_properties_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
