# Empty dependencies file for test_benchmark_data.
# This may be replaced when dependencies are built.
