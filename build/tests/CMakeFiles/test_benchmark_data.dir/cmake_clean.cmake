file(REMOVE_RECURSE
  "CMakeFiles/test_benchmark_data.dir/test_benchmark_data.cpp.o"
  "CMakeFiles/test_benchmark_data.dir/test_benchmark_data.cpp.o.d"
  "test_benchmark_data"
  "test_benchmark_data.pdb"
  "test_benchmark_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchmark_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
