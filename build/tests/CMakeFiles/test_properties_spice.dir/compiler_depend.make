# Empty compiler generated dependencies file for test_properties_spice.
# This may be replaced when dependencies are built.
