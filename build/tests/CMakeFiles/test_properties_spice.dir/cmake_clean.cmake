file(REMOVE_RECURSE
  "CMakeFiles/test_properties_spice.dir/test_properties_spice.cpp.o"
  "CMakeFiles/test_properties_spice.dir/test_properties_spice.cpp.o.d"
  "test_properties_spice"
  "test_properties_spice.pdb"
  "test_properties_spice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
