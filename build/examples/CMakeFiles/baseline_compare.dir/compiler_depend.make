# Empty compiler generated dependencies file for baseline_compare.
# This may be replaced when dependencies are built.
