file(REMOVE_RECURSE
  "CMakeFiles/spice_glitch.dir/spice_glitch.cpp.o"
  "CMakeFiles/spice_glitch.dir/spice_glitch.cpp.o.d"
  "spice_glitch"
  "spice_glitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_glitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
