# Empty dependencies file for spice_glitch.
# This may be replaced when dependencies are built.
