# Empty compiler generated dependencies file for hardened_system_sim.
# This may be replaced when dependencies are built.
