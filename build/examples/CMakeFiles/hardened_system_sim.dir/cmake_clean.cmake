file(REMOVE_RECURSE
  "CMakeFiles/hardened_system_sim.dir/hardened_system_sim.cpp.o"
  "CMakeFiles/hardened_system_sim.dir/hardened_system_sim.cpp.o.d"
  "hardened_system_sim"
  "hardened_system_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardened_system_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
