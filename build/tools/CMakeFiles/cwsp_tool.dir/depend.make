# Empty dependencies file for cwsp_tool.
# This may be replaced when dependencies are built.
