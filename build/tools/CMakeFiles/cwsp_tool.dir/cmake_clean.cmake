file(REMOVE_RECURSE
  "CMakeFiles/cwsp_tool.dir/cwsp_tool.cpp.o"
  "CMakeFiles/cwsp_tool.dir/cwsp_tool.cpp.o.d"
  "cwsp_tool"
  "cwsp_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
